#!/usr/bin/env python
"""Branch pre-execution: the paper's Section 7 extension, running.

Selects branch-outcome p-threads for bzip2 (whose data-dependent branch
hides behind the problem gather), alone and combined with the usual load
prefetching p-threads, and reports mispredictions removed.

Usage::

    python examples/branch_preexecution.py [benchmark]
"""

import sys

from repro import Target, run_experiment
from repro.harness.report import format_table


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "bzip2"
    rows = []
    for label, branch in (("loads only", False), ("loads + branches", True)):
        result = run_experiment(
            benchmark, target=Target.LATENCY,
            include_branch_pthreads=branch,
        )
        stats = result.optimized.stats
        rows.append({
            "selection": label,
            "n_pthreads": result.selection.n_pthreads,
            "speedup_pct": round(result.speedup_pct, 2),
            "energy_save_pct": round(result.energy_save_pct, 2),
            "mispredictions": stats.mispredictions,
            "hints_used": stats.branch_hints_used,
        })
        baseline_mispredicts = result.baseline.stats.mispredictions
    print(f"Branch pre-execution on {benchmark!r} "
          f"(baseline mispredictions: {baseline_mispredicts}):")
    print(format_table(rows))


if __name__ == "__main__":
    main()
