#!/usr/bin/env python
"""Bring your own workload: build a program, profile it, pre-execute it.

Demonstrates the public API end to end on a program built with the
:class:`~repro.isa.builder.ProgramBuilder` DSL instead of the bundled
benchmark suite: a Figure-1-style transaction loop whose "receipts"
gather misses the L2, with a control fork selecting between two index
fields (the paper's rxid / g_rxid example).

Usage::

    python examples/custom_workload.py
"""

import random

from repro.config import MachineConfig
from repro.cpu.pipeline import simulate
from repro.ddmt import expand_pthreads
from repro.energy import EnergyModel
from repro.frontend import interpret
from repro.isa import ProgramBuilder, Reg
from repro.pthsel import Target, select_pthreads
from repro.pthsel.framework import BaselineEstimates


def build_transactions(n_xact: int = 6000, rx_bits: int = 16):
    """The paper's Figure 1 loop, in our ISA.

    for (i = 0; i < N_XACT; i++) {
        if (xact[i].cover == FULL) continue;
        else if (xact[i].cover == PART) rxid = xact[i].rxid;
        else                            rxid = xact[i].g_rxid;
        receipts += rx[rxid].price;     // the problem load
    }
    """
    rng = random.Random(42)
    b = ProgramBuilder("transactions")
    # Records: [cover, rxid, g_rxid, pad] per transaction.
    xact = b.data.alloc("xact", n_xact * 4)
    for i in range(n_xact):
        cover = rng.choices((0, 1, 2), weights=(20, 60, 20))[0]
        b.data.set_word("xact", i * 4 + 0, cover)
        b.data.set_word("xact", i * 4 + 1, rng.randrange(1 << rx_bits))
        b.data.set_word("xact", i * 4 + 2, rng.randrange(1 << rx_bits))
    b.data.alloc("rx", 1 << rx_bits)  # 512KB of receipts: misses the L2

    r_i, r_bound, r_cover, r_rxid, r_price, r_receipts = (
        Reg.r1, Reg.r2, Reg.r3, Reg.r4, Reg.r5, Reg.r6
    )
    b.set_reg(r_i, 0)
    b.set_reg(r_bound, n_xact * 32)  # 4 words x 8 bytes per record

    b.label("loop")
    b.load(r_cover, r_i, base_symbol="xact", annotation="cover-load")
    b.beq(r_cover, 0, "next", rhs_is_imm=True, annotation="full-cover")
    b.beq(r_cover, 1, "part", rhs_is_imm=True, annotation="part-cover")
    b.load(r_rxid, r_i, imm=16, base_symbol="xact", annotation="g_rxid")
    b.jump("price")
    b.label("part")
    b.load(r_rxid, r_i, imm=8, base_symbol="xact", annotation="rxid")
    b.label("price")
    b.shli(r_rxid, r_rxid, 3)
    b.load(r_price, r_rxid, base_symbol="rx", annotation="problem:price")
    b.add(r_receipts, r_receipts, r_price)
    b.label("next")
    b.addi(r_i, r_i, 32, annotation="induction")
    b.blt(r_i, r_bound, "loop")
    b.halt()
    return b.build()


def main() -> None:
    program = build_transactions()
    print(f"Built {program.name!r}: {len(program)} static instructions")

    trace = interpret(program, max_instructions=1_000_000)
    machine = MachineConfig()
    baseline = simulate(trace, machine)
    energy_model = EnergyModel(machine=machine)
    e0 = energy_model.evaluate(baseline.activity).total_joules
    print(
        f"Baseline: {baseline.cycles} cycles, IPC {baseline.ipc:.3f}, "
        f"{baseline.demand_l2_misses} L2 misses"
    )

    selection = select_pthreads(
        trace,
        BaselineEstimates(baseline.ipc, float(baseline.cycles), e0),
        target=Target.ED,
        machine=machine,
    )
    print()
    print(selection.describe())

    augmented = expand_pthreads(program, selection.pthreads)
    optimized = simulate(augmented.trace, machine, augmented.pthreads)
    e1 = energy_model.evaluate(optimized.activity).total_joules
    speedup = 100.0 * (1 - optimized.cycles / baseline.cycles)
    energy_save = 100.0 * (1 - e1 / e0)
    print()
    print(f"With ED-targeted p-threads: {optimized.cycles} cycles "
          f"({speedup:+.1f}%), energy {energy_save:+.1f}%, "
          f"{optimized.covered_misses_full + optimized.covered_misses_partial}"
          f"/{baseline.demand_l2_misses} misses covered")


if __name__ == "__main__":
    main()
