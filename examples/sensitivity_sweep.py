#!/usr/bin/env python
"""Machine-parameter sensitivity: how p-thread selection responds.

Reproduces a slice of the paper's Figure 5 interactively: sweep one
machine parameter (idle energy factor, memory latency, or L2 size) on
one benchmark and watch PTHSEL+E adapt its selection.

Usage::

    python examples/sensitivity_sweep.py idle      [benchmark]
    python examples/sensitivity_sweep.py memlat    [benchmark]
    python examples/sensitivity_sweep.py l2        [benchmark]
"""

import sys

from repro import EnergyConfig, MachineConfig, Target, run_experiment
from repro.harness.report import format_table


def sweep_idle(benchmark: str):
    rows = []
    for factor in (0.0, 0.05, 0.10):
        for target in (Target.LATENCY, Target.ENERGY):
            r = run_experiment(
                benchmark, target=target,
                energy=EnergyConfig().with_idle_factor(factor),
            )
            rows.append({
                "idle_factor": factor, "target": target.label,
                "n_pthreads": r.selection.n_pthreads,
                "speedup_pct": round(r.speedup_pct, 2),
                "energy_save_pct": round(r.energy_save_pct, 2),
            })
    return rows


def sweep_memlat(benchmark: str):
    rows = []
    for latency in (100, 200, 300):
        r = run_experiment(
            benchmark, target=Target.LATENCY,
            machine=MachineConfig().with_memory_latency(latency),
        )
        rows.append({
            "memory_latency": latency,
            "n_pthreads": r.selection.n_pthreads,
            "avg_len": round(r.selection.average_length, 1),
            "speedup_pct": round(r.speedup_pct, 2),
            "energy_save_pct": round(r.energy_save_pct, 2),
        })
    return rows


def sweep_l2(benchmark: str):
    rows = []
    for kb, lat in ((128, 10), (256, 12), (512, 15)):
        r = run_experiment(
            benchmark, target=Target.LATENCY,
            machine=MachineConfig().scaled_l2(kb * 1024, lat),
        )
        rows.append({
            "l2_kb": kb, "l2_latency": lat,
            "n_pthreads": r.selection.n_pthreads,
            "speedup_pct": round(r.speedup_pct, 2),
            "energy_save_pct": round(r.energy_save_pct, 2),
        })
    return rows


def main() -> None:
    mode = sys.argv[1] if len(sys.argv) > 1 else "idle"
    benchmark = sys.argv[2] if len(sys.argv) > 2 else "twolf"
    sweeps = {"idle": sweep_idle, "memlat": sweep_memlat, "l2": sweep_l2}
    if mode not in sweeps:
        raise SystemExit(f"unknown sweep {mode!r}; pick one of {list(sweeps)}")
    print(f"{mode} sweep on {benchmark!r}:")
    print(format_table(sweeps[mode](benchmark)))


if __name__ == "__main__":
    main()
