#!/usr/bin/env python
"""Quickstart: select latency-targeted p-threads for one benchmark.

Runs the full pipeline on `gap` -- baseline simulation, PTHSEL+E
selection, DDMT augmentation, optimized simulation -- and prints the
selected p-threads plus the latency/energy effects.

Usage::

    python examples/quickstart.py [benchmark]
"""

import sys

from repro import Target, run_experiment
from repro.harness.report import format_table


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gap"
    print(f"Running PTHSEL+E latency-target experiment on {benchmark!r}...")
    result = run_experiment(benchmark, target=Target.LATENCY)

    print()
    print(result.selection.describe())
    print()

    diag = result.diagnostics()
    rows = [
        {"metric": "execution time reduction", "value": f"{result.speedup_pct:+.2f}%"},
        {"metric": "energy reduction", "value": f"{result.energy_save_pct:+.2f}%"},
        {"metric": "ED reduction", "value": f"{result.ed_save_pct:+.2f}%"},
        {"metric": "ED^2 reduction", "value": f"{result.ed2_save_pct:+.2f}%"},
        {"metric": "misses fully covered",
         "value": f"{diag['full_coverage_pct']:.1f}%"},
        {"metric": "misses partially covered",
         "value": f"{diag['partial_coverage_pct']:.1f}%"},
        {"metric": "p-instruction increase",
         "value": f"{diag['pinst_increase_pct']:.1f}%"},
        {"metric": "spawn usefulness", "value": f"{diag['usefulness_pct']:.1f}%"},
        {"metric": "baseline cycles", "value": result.baseline.cycles},
        {"metric": "optimized cycles", "value": result.optimized.cycles},
    ]
    print(format_table(rows))


if __name__ == "__main__":
    main()
