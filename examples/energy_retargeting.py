#!/usr/bin/env python
"""Retargeting study: sweep the composition weight W on one benchmark.

The paper's PTHSEL+E selects p-threads that optimize latency (W=1),
energy (W=0), ED (W=0.5), ED^2 (W=0.67) or anything in between.  This
example sweeps the named targets plus a few intermediate weights on
`twolf` (whose two contemporaneous gathers make the trade-off visible)
and prints the resulting latency/energy frontier.

Usage::

    python examples/energy_retargeting.py [benchmark]
"""

import sys

from repro import Target, run_experiment
from repro.harness.report import format_table


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "twolf"
    rows = []
    for target in (Target.ORIGINAL, Target.LATENCY, Target.ED2, Target.ED,
                   Target.ENERGY):
        result = run_experiment(benchmark, target=target)
        diag = result.diagnostics()
        rows.append(
            {
                "target": target.label,
                "W": target.composition_weight,
                "n_pthreads": result.selection.n_pthreads,
                "avg_len": round(diag["avg_pthread_length"], 1),
                "speedup_pct": round(result.speedup_pct, 2),
                "energy_save_pct": round(result.energy_save_pct, 2),
                "ed_save_pct": round(result.ed_save_pct, 2),
                "pinst_pct": round(diag["pinst_increase_pct"], 1),
            }
        )
    print(f"Latency/energy frontier for {benchmark!r}:")
    print(format_table(rows))
    print()
    print("Reading guide: L maximizes speedup; E trims selection until")
    print("p-threads pay for their own energy; P (ED) sits in between.")


if __name__ == "__main__":
    main()
