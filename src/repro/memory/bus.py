"""Simple occupancy-based bus models."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BusStats:
    transfers: int = 0
    busy_cycles: int = 0
    queue_delay: int = 0


class Bus:
    """A bus that serializes line transfers.

    A transfer of ``line_bytes`` over a ``width_bytes`` bus clocked at
    ``1/divisor`` of the core frequency occupies the bus for
    ``(line_bytes / width_bytes) * divisor`` core cycles.
    """

    def __init__(self, name: str, width_bytes: int, divisor: int = 1) -> None:
        self.name = name
        self.width_bytes = width_bytes
        self.divisor = divisor
        self.stats = BusStats()
        self._free_at = 0

    def transfer_cycles(self, n_bytes: int) -> int:
        beats = (n_bytes + self.width_bytes - 1) // self.width_bytes
        return beats * self.divisor

    def acquire(self, request_time: int, n_bytes: int) -> int:
        """Schedule a transfer; return its completion time."""
        start = max(request_time, self._free_at)
        duration = self.transfer_cycles(n_bytes)
        self._free_at = start + duration
        self.stats.transfers += 1
        self.stats.busy_cycles += duration
        self.stats.queue_delay += start - request_time
        return start + duration

    def reset(self) -> None:
        self._free_at = 0
        self.stats = BusStats()
