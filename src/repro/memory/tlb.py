"""Fully associative TLBs with LRU replacement."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class TLBStats:
    accesses: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class TLB:
    """A fully associative translation lookaside buffer.

    Translation is identity (the simulator runs physically-addressed); the
    TLB exists to charge miss latency and energy like the paper's 64-entry
    I/D TLBs.
    """

    def __init__(self, name: str, entries: int, page_bytes: int,
                 miss_latency: int) -> None:
        self.name = name
        self.entries = entries
        self.page_shift = page_bytes.bit_length() - 1
        self.miss_latency = miss_latency
        self.stats = TLBStats()
        self._pages: "OrderedDict[int, None]" = OrderedDict()

    def access(self, addr: int) -> int:
        """Translate; return the added latency (0 on hit)."""
        self.stats.accesses += 1
        page = addr >> self.page_shift
        if page in self._pages:
            self._pages.move_to_end(page)
            return 0
        self.stats.misses += 1
        if len(self._pages) >= self.entries:
            self._pages.popitem(last=False)
        self._pages[page] = None
        return self.miss_latency
