"""Two-level on-chip memory hierarchy with TLBs, MSHRs, and buses.

Default geometry follows the paper (Section 3.1): 32KB/2-way/1-cycle L1I,
16KB/2-way/2-cycle L1D, 256KB/4-way/12-cycle unified L2, 64-entry I/D TLBs,
16 outstanding misses, 16-byte buses with the memory bus clocked at 1/4
core frequency, and an infinite 200-cycle main memory.
"""

from repro.memory.cache import Cache, CacheStats
from repro.memory.hierarchy import AccessResult, MemoryHierarchy
from repro.memory.mshr import MSHRFile
from repro.memory.tlb import TLB

__all__ = ["AccessResult", "Cache", "CacheStats", "MSHRFile", "MemoryHierarchy", "TLB"]
