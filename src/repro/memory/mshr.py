"""Miss status holding registers: track and merge outstanding L2 misses.

The MSHR file is also the point where cache fills become visible: a
missing line is *not* installed into the caches when the miss is
initiated (that would let dependent accesses hit instantly, breaking
pointer-chase timing); instead the file holds the line until its fill
time passes and then hands it to an ``on_expire`` callback that performs
the actual cache installation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

#: on_expire(line, fill_time, is_pthread, wants_l1, dirty)
ExpireHook = Callable[[int, int, bool, bool, bool], None]


@dataclass
class MSHRStats:
    allocations: int = 0
    merges: int = 0
    full_stalls: int = 0


class _Entry:
    __slots__ = ("fill_time", "is_pthread", "wants_l1", "dirty")

    def __init__(self, fill_time: int, is_pthread: bool,
                 wants_l1: bool, dirty: bool) -> None:
        self.fill_time = fill_time
        self.is_pthread = is_pthread
        self.wants_l1 = wants_l1
        self.dirty = dirty


class MSHRFile:
    """A finite file of miss status holding registers.

    A new miss to an already-outstanding line merges with the existing
    entry and completes when it does.  When all entries are busy, new
    misses must retry (the CPU re-issues the load next cycle).  Each entry
    remembers whether a p-thread allocated it, so demand accesses that
    merge with an in-flight prefetch can be counted as partially covered
    misses (the paper's Figure 3 "part-cov" bars).
    """

    #: Cached-minimum sentinel: no outstanding entry.
    _NO_FILL = 1 << 62

    def __init__(self, entries: int,
                 on_expire: Optional[ExpireHook] = None) -> None:
        self.entries = entries
        self.stats = MSHRStats()
        self.on_expire = on_expire
        self._outstanding: Dict[int, _Entry] = {}
        # Earliest outstanding fill time; lets sync() -- called on every
        # data access -- return without scanning the file when nothing
        # can have landed yet.
        self._next_fill = self._NO_FILL

    def sync(self, now: int) -> None:
        """Retire every entry whose fill time has passed, installing its
        line into the caches via ``on_expire``."""
        if now < self._next_fill:
            return
        outstanding = self._outstanding
        done: List[int] = [
            line
            for line, entry in outstanding.items()
            if entry.fill_time <= now
        ]
        for line in done:
            entry = outstanding.pop(line)
            if self.on_expire is not None:
                self.on_expire(
                    line,
                    entry.fill_time,
                    entry.is_pthread,
                    entry.wants_l1,
                    entry.dirty,
                )
        self._next_fill = min(
            (entry.fill_time for entry in outstanding.values()),
            default=self._NO_FILL,
        )

    def lookup(self, line: int, now: int) -> Optional[int]:
        """If ``line`` is outstanding at ``now``, return its fill time."""
        self.sync(now)
        entry = self._outstanding.get(line)
        return entry.fill_time if entry is not None else None

    def pthread_owned(self, line: int, now: int) -> bool:
        """Was the outstanding miss for ``line`` initiated by a p-thread?"""
        self.sync(now)
        entry = self._outstanding.get(line)
        return entry is not None and entry.is_pthread

    def merge_flags(self, line: int, wants_l1: bool, dirty: bool) -> None:
        """Fold a merging access's fill requirements into the entry."""
        entry = self._outstanding.get(line)
        if entry is not None:
            entry.wants_l1 = entry.wants_l1 or wants_l1
            entry.dirty = entry.dirty or dirty

    def has_capacity(self, line: int, now: int) -> bool:
        """Could a miss to ``line`` be accepted at ``now``?

        True when the line is already outstanding (it would merge) or a
        free entry exists.  Callers must check this *before* committing
        bus/memory resources to the miss.
        """
        self.sync(now)
        return line in self._outstanding or len(self._outstanding) < self.entries

    def allocate(self, line: int, fill_time: int, now: int,
                 is_pthread: bool = False, wants_l1: bool = False,
                 dirty: bool = False) -> bool:
        """Reserve an entry for ``line``; False if the file is full."""
        self.sync(now)
        if line in self._outstanding:
            self.stats.merges += 1
            self.merge_flags(line, wants_l1, dirty)
            return True
        if len(self._outstanding) >= self.entries:
            self.stats.full_stalls += 1
            return False
        self._outstanding[line] = _Entry(fill_time, is_pthread, wants_l1, dirty)
        if fill_time < self._next_fill:
            self._next_fill = fill_time
        self.stats.allocations += 1
        return True

    def occupancy(self, now: int) -> int:
        self.sync(now)
        return len(self._outstanding)
