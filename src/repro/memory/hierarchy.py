"""The composed memory hierarchy the timing simulator talks to.

The hierarchy owns the L1I/L1D/L2 caches, I/D TLBs, MSHR file, and the L2
and memory buses.  Each access returns an :class:`AccessResult` carrying
the completion time plus the structure-activity flags the energy model
needs.  Pre-execution (p-thread) accesses fill the L2 but bypass the L1
by default, matching DDMT (Section 4.2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import MachineConfig
from repro.memory.bus import Bus
from repro.memory.cache import Cache
from repro.memory.mshr import MSHRFile
from repro.memory.tlb import TLB


@dataclass(slots=True)
class AccessResult:
    """Outcome of one data-side access.

    Slotted: one of these is built per load/store issue, making its
    construction a measurable slice of simulation time.
    """

    complete_at: int
    l1_hit: bool = False
    l2_accessed: bool = False
    l2_hit: bool = False
    mem_access: bool = False
    mshr_merged: bool = False
    #: The merge target was an in-flight p-thread prefetch (partial cover).
    merged_with_prefetch: bool = False
    #: A demand access that hit in L2 on a p-thread-prefetched line.
    prefetched_hit: bool = False
    tlb_miss: bool = False
    #: The access could not even allocate an MSHR; retry next cycle.
    retry: bool = False


class MemoryHierarchy:
    """Two-level hierarchy with a shared L2 and infinite main memory."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.icache = Cache("l1i", config.icache)
        self.dcache = Cache("l1d", config.dcache)
        self.l2 = Cache("l2", config.l2)
        self.itlb = TLB("itlb", config.itlb_entries, config.page_bytes,
                        config.tlb_miss_latency)
        self.dtlb = TLB("dtlb", config.dtlb_entries, config.page_bytes,
                        config.tlb_miss_latency)
        self.mshrs = MSHRFile(config.mshr_entries, on_expire=self._install)
        self.l2_bus = Bus("l2", config.bus_bytes, divisor=1)
        self.mem_bus = Bus("mem", config.bus_bytes,
                           divisor=config.memory_bus_divisor)
        # Diagnostics the harness reports.
        self.demand_l2_misses = 0
        self.pthread_l2_misses = 0
        self.prefetched_hits = 0
        self._prefetched_lines: set = set()

    def _install(self, line: int, fill_time: int, is_pthread: bool,
                 wants_l1: bool, dirty: bool) -> None:
        """MSHR expiry hook: the fill has arrived, install the line.

        Installation is deferred to fill time (rather than performed when
        the miss is initiated) so that accesses issued while the line is
        in flight merge with the MSHR entry instead of hitting a cache
        that does not really hold the data yet.
        """
        victim = self.l2.fill(line)
        if victim is not None:
            self.mem_bus.acquire(fill_time, self.config.l2.line_bytes)
        if wants_l1:
            self.dcache.fill(line, dirty=dirty)
        if is_pthread:
            self._prefetched_lines.add(line)
        else:
            self._prefetched_lines.discard(line)

    # ------------------------------------------------------------------ #

    def _miss_to_memory(self, line: int, request_time: int) -> int:
        """Charge a full L2-miss path for ``line``; return fill time."""
        latency_start = request_time
        mem_done = latency_start + self.config.memory_latency
        # The returning line occupies the memory bus.
        fill_time = self.mem_bus.acquire(mem_done, self.config.l2.line_bytes)
        return fill_time

    def data_access(
        self,
        addr: int,
        now: int,
        is_write: bool = False,
        is_pthread: bool = False,
    ) -> AccessResult:
        """Perform a load/store data access starting at cycle ``now``.

        Returns when the value is available (loads) or the line is owned
        (stores).  P-thread accesses honor DDMT's L2-only fill policy.
        """
        cfg = self.config
        tlb_extra = self.dtlb.access(addr)
        t = now + tlb_extra
        fill_l1 = not is_pthread or cfg.pthread_fill_l1
        self.mshrs.sync(t)  # land any fills that completed before this access

        l1_hit = self.dcache.access(addr, is_write=is_write)
        if l1_hit:
            return AccessResult(
                complete_at=t + cfg.dcache.hit_latency,
                l1_hit=True,
                tlb_miss=tlb_extra > 0,
            )

        # L1 miss: go to L2 after the L1 lookup.
        t += cfg.dcache.hit_latency
        line = self.l2.line_of(addr)

        # A line already in flight?  Merge with the outstanding miss.
        outstanding = self.mshrs.lookup(line, t)
        if outstanding is not None:
            merged_with_prefetch = (
                not is_pthread and self.mshrs.pthread_owned(line, t)
            )
            self.mshrs.stats.merges += 1
            self.mshrs.merge_flags(line, wants_l1=fill_l1, dirty=is_write)
            complete = max(outstanding, t + cfg.l2.hit_latency)
            return AccessResult(
                complete_at=complete,
                l2_accessed=False,
                mshr_merged=True,
                merged_with_prefetch=merged_with_prefetch,
                tlb_miss=tlb_extra > 0,
            )

        l2_hit = self.l2.access(addr, is_write=False)
        if l2_hit:
            done = self.l2_bus.acquire(t + cfg.l2.hit_latency,
                                       cfg.dcache.line_bytes)
            if fill_l1:
                self.dcache.fill(addr, dirty=is_write)
            prefetched_hit = False
            if not is_pthread and line in self._prefetched_lines:
                self.prefetched_hits += 1
                self._prefetched_lines.discard(line)
                prefetched_hit = True
            return AccessResult(
                complete_at=done,
                l2_accessed=True,
                l2_hit=True,
                prefetched_hit=prefetched_hit,
                tlb_miss=tlb_extra > 0,
            )

        # L2 miss: needs an MSHR and a trip to memory.  Capacity must be
        # checked before touching the memory bus: a rejected miss must not
        # reserve bus cycles it will re-request on retry.  The line is NOT
        # installed into the caches here -- it lands via the MSHR expiry
        # hook at fill time, so in-flight accesses merge rather than hit.
        if not self.mshrs.has_capacity(line, t):
            self.mshrs.stats.full_stalls += 1
            return AccessResult(complete_at=t, retry=True,
                                tlb_miss=tlb_extra > 0)
        fill_time = self._miss_to_memory(line, t + cfg.l2.hit_latency)
        self.mshrs.allocate(
            line,
            fill_time,
            t,
            is_pthread=is_pthread,
            wants_l1=fill_l1,
            dirty=is_write,
        )
        if is_pthread:
            self.pthread_l2_misses += 1
        else:
            self.demand_l2_misses += 1
        return AccessResult(
            complete_at=fill_time,
            l2_accessed=True,
            l2_hit=False,
            mem_access=True,
            tlb_miss=tlb_extra > 0,
        )

    def inst_fetch(self, addr: int, now: int) -> AccessResult:
        """Fetch one instruction block starting at cycle ``now``."""
        cfg = self.config
        tlb_extra = self.itlb.access(addr)
        t = now + tlb_extra

        if self.icache.access(addr):
            return AccessResult(
                complete_at=t + cfg.icache.hit_latency,
                l1_hit=True,
                tlb_miss=tlb_extra > 0,
            )
        t += cfg.icache.hit_latency
        if self.l2.access(addr):
            done = self.l2_bus.acquire(t + cfg.l2.hit_latency,
                                       cfg.icache.line_bytes)
            self.icache.fill(addr)
            return AccessResult(
                complete_at=done,
                l2_accessed=True,
                l2_hit=True,
                tlb_miss=tlb_extra > 0,
            )
        fill_time = self._miss_to_memory(self.l2.line_of(addr),
                                         t + cfg.l2.hit_latency)
        self.l2.fill(addr)
        self.icache.fill(addr)
        return AccessResult(
            complete_at=fill_time,
            l2_accessed=True,
            l2_hit=False,
            mem_access=True,
            tlb_miss=tlb_extra > 0,
        )

    # ------------------------------------------------------------------ #

    def warm_data(self, addr: int) -> None:
        """Functionally touch a data address (cache warm-up, no timing)."""
        if not self.dcache.access(addr):
            if not self.l2.access(addr):
                self.l2.fill(addr)
            self.dcache.fill(addr)

    def warm_inst(self, addr: int) -> None:
        """Functionally touch an instruction address."""
        if not self.icache.access(addr):
            if not self.l2.access(addr):
                self.l2.fill(addr)
            self.icache.fill(addr)
