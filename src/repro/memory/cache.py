"""Set-associative cache with true LRU replacement and write-back lines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.config import CacheConfig


@dataclass
class CacheStats:
    """Access counters for one cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    fills: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.fills = 0


class Cache:
    """A set-associative, write-back, write-allocate cache.

    Each set is an ordered list of (tag, dirty) pairs, most recent last.
    ``probe`` checks residency without side effects; ``access`` performs a
    lookup with LRU update; ``fill`` installs a line, returning the victim
    tag if a dirty line was evicted.
    """

    def __init__(self, name: str, config: CacheConfig) -> None:
        self.name = name
        self.config = config
        self.stats = CacheStats()
        self._offset_bits = config.line_bytes.bit_length() - 1
        self._n_sets = config.n_sets
        self._index_mask = self._n_sets - 1
        self._index_bits = self._n_sets.bit_length() - 1
        # set index -> list of [tag, dirty] entries, LRU first.
        self._sets: List[List[List[int]]] = [[] for _ in range(self._n_sets)]

    def line_of(self, addr: int) -> int:
        """The line-aligned address containing ``addr``."""
        return addr >> self._offset_bits << self._offset_bits

    def _split(self, addr: int) -> Tuple[int, int]:
        line = addr >> self._offset_bits
        return line & self._index_mask, line >> self._index_bits

    def probe(self, addr: int) -> bool:
        """Is the line containing ``addr`` resident?  No LRU update."""
        index, tag = self._split(addr)
        return any(entry[0] == tag for entry in self._sets[index])

    def access(self, addr: int, is_write: bool = False) -> bool:
        """Look up ``addr``; return True on hit.  Misses do NOT fill."""
        stats = self.stats
        stats.accesses += 1
        line = addr >> self._offset_bits
        tag = line >> self._index_bits
        ways = self._sets[line & self._index_mask]
        for i, entry in enumerate(ways):
            if entry[0] == tag:
                ways.append(ways.pop(i))
                if is_write:
                    entry[1] = 1
                stats.hits += 1
                return True
        stats.misses += 1
        return False

    def fill(self, addr: int, dirty: bool = False) -> Optional[int]:
        """Install the line containing ``addr``.

        Returns the line address of an evicted *dirty* victim (which the
        hierarchy turns into writeback traffic), or ``None``.
        """
        self.stats.fills += 1
        index, tag = self._split(addr)
        ways = self._sets[index]
        for i, entry in enumerate(ways):
            if entry[0] == tag:  # already present (e.g. racing fills)
                ways.append(ways.pop(i))
                if dirty:
                    entry[1] = 1
                return None
        victim_line = None
        if len(ways) >= self.config.assoc:
            victim = ways.pop(0)
            if victim[1]:
                self.stats.writebacks += 1
                n_index_bits = self._index_bits
                victim_line = (
                    (victim[0] << n_index_bits | index) << self._offset_bits
                )
        ways.append([tag, 1 if dirty else 0])
        return victim_line

    def invalidate_all(self) -> None:
        """Flush the cache (used between sampling intervals in tests)."""
        self._sets = [[] for _ in range(self._n_sets)]

    @property
    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)
