"""Backward data-dependence slicing over a dynamic trace."""

from __future__ import annotations

from typing import List

from repro.frontend.trace import NO_PRODUCER, Trace


def backward_slice(
    trace: Trace,
    seq: int,
    window: int = 2048,
    max_insts: int = 64,
) -> List[int]:
    """The backward slice of dynamic instruction ``seq``.

    Follows register dataflow only (loads contribute their address
    computation; memory dependences are not followed -- a p-thread load
    picks its value up from the cache/LSQ at runtime, Section 2.1).

    Returns sequence numbers in descending order, starting with ``seq``
    itself, truncated to the slicing window and to ``max_insts``
    instructions (the paper's defaults: a 2048-instruction window and 64
    instructions per linear p-thread).
    """
    horizon = seq - window
    result: List[int] = []
    visited = {seq}
    L = trace.as_lists()
    src1 = L.src1
    src2 = L.src2
    # Frontier kept as a descending-ordered worklist: because producers
    # always precede consumers, popping the largest pending seq yields the
    # slice already sorted by descending sequence number.
    frontier = [seq]
    while frontier and len(result) < max_insts:
        current = max(frontier)
        frontier.remove(current)
        result.append(current)
        for producer in (src1[current], src2[current]):
            if (
                producer != NO_PRODUCER
                and producer >= horizon
                and producer >= 0
                and producer not in visited
            ):
                visited.add(producer)
                frontier.append(producer)
    return result
