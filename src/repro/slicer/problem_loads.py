"""Problem load identification from miss profiles.

"A small number of static loads -- problem loads -- defy address
prediction and generate disproportionate numbers of misses."  We identify
them the way the paper's profiling tool does: rank static loads by L2
miss count and keep those above a share threshold.
"""

from __future__ import annotations

from typing import List

from repro.config import SelectionConfig
from repro.critpath.classify import LoadClassification


def identify_problem_loads(
    classification: LoadClassification,
    config: SelectionConfig | None = None,
) -> List[int]:
    """Static PCs of problem loads, ordered by descending miss count."""
    config = config or SelectionConfig()
    total = classification.total_l2_misses
    if not total:
        return []
    ranked = sorted(
        classification.miss_counts.items(), key=lambda kv: -kv[1]
    )
    selected = [
        pc
        for pc, misses in ranked
        if misses / total >= config.min_miss_share
    ]
    return selected[: config.max_problem_loads]
