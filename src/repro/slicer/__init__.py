"""Dynamic backward slicing and slice-tree construction.

PTHSEL's front half (Section 2.2): linear p-thread candidates are
extracted from dynamic traces by backward data-dependence slicing within
a bounded window, grouped by static problem load, and organized into
slice trees annotated with the dynamic counts the selection formulae
consume (DCtrig, DCptcm) plus the trigger-to-load distances the latency
model needs.
"""

from repro.slicer.backslice import backward_slice
from repro.slicer.problem_loads import identify_problem_loads
from repro.slicer.slicetree import SliceNode, SliceTree, build_slice_tree

__all__ = [
    "SliceNode",
    "SliceTree",
    "backward_slice",
    "build_slice_tree",
    "identify_problem_loads",
]
