"""Slice trees: p-thread candidates grouped per static problem load.

The root of a tree is the problem load.  Each node is a potential
trigger; its body is the path from the node (exclusive) down to the root
(inclusive).  A fork marks a control decision that changes the load's
data slice between dynamic instances (Figure 1b of the paper).

Nodes carry the counts the PTHSEL formulae need:

- ``count_total``: dynamic instances whose slice passes through the node
  (how often the trigger leads to the load along the assumed path);
- ``count_miss``: those instances whose load actually missed (DCptcm);
- ``sum_distance``: accumulated trigger-to-load instruction distances
  (for the latency-tolerance estimate);
- the trigger's total dynamic execution count (DCtrig) comes from the
  whole-trace occurrence counter, because DDMT spawns on *every*
  execution of the trigger PC, path-assumed or not.
"""

from __future__ import annotations

import bisect
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.critpath.classify import MEM, LoadClassification
from repro.frontend.trace import Trace
from repro.slicer.backslice import backward_slice


@dataclass
class SliceNode:
    """One node of a slice tree."""

    pc: int
    depth: int
    parent: Optional["SliceNode"] = None
    children: Dict[int, "SliceNode"] = field(default_factory=dict)
    count_total: int = 0
    count_miss: int = 0
    sum_distance: int = 0
    sum_distance_miss: int = 0
    #: Accumulated number of *root-PC occurrences* in (trigger, root] --
    #: i.e. how many dynamic instances of the target a trigger instance
    #: leads by.  Exact, unlike dividing instruction distance by average
    #: iteration length (loop bodies vary).  Branch pre-execution uses it
    #: to pair each spawn's hint with the right future branch instance.
    sum_root_gap: int = 0

    @property
    def dc_ptcm(self) -> int:
        """Covered misses if this node triggers a p-thread (DCpt-cm)."""
        return self.count_miss

    @property
    def avg_distance(self) -> float:
        """Mean trigger-to-load distance in dynamic instructions."""
        if not self.count_total:
            return 0.0
        return self.sum_distance / self.count_total

    @property
    def avg_root_gap(self) -> float:
        """Mean number of root instances a trigger instance leads by."""
        if not self.count_total:
            return 0.0
        return self.sum_root_gap / self.count_total

    def path_to_root(self) -> List["SliceNode"]:
        """Nodes from this one down to (and including) the root."""
        path: List[SliceNode] = []
        node: Optional[SliceNode] = self
        while node is not None:
            path.append(node)
            node = node.parent
        return path

    def body_pcs(self) -> List[int]:
        """Static PCs of the p-thread body, in execution order.

        The body is everything between the trigger (exclusive -- its
        result reaches the body as a live-in) and the problem load
        (inclusive).  ``path_to_root`` walks trigger -> root, which is
        already oldest-to-newest: deeper nodes are further back in the
        slice, and the root is the load itself.
        """
        return [node.pc for node in self.path_to_root()[1:]]


@dataclass
class SliceTree:
    """All linear p-thread candidates for one static problem load."""

    root_pc: int
    root: SliceNode
    #: Static PC -> dynamic execution count over the whole trace (DCtrig).
    trigger_counts: Counter = field(default_factory=Counter)
    instances: int = 0
    instances_missed: int = 0

    def candidates(self) -> Iterator[SliceNode]:
        """All candidate trigger nodes (everything except the root)."""
        stack = list(self.root.children.values())
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def dc_trig(self, node: SliceNode) -> int:
        """DCtrig: dynamic executions of the node's (trigger's) static PC."""
        return self.trigger_counts[node.pc]

    @property
    def n_candidates(self) -> int:
        return sum(1 for _ in self.candidates())


def build_slice_tree(
    trace: Trace,
    classification: LoadClassification,
    problem_pc: int,
    window: int = 2048,
    max_insts: int = 64,
    pc_occurrences: Optional[Counter] = None,
    event_seqs: Optional[set] = None,
) -> SliceTree:
    """Mine the slice tree of one problem instruction from a trace.

    Every dynamic instance of the root contributes its backward slice as
    a root-to-leaf path; forks appear where instances' slices diverge.

    By default the "covered event" that DCptcm counts is an L2 miss of
    the root load; passing ``event_seqs`` overrides this with an explicit
    set of dynamic sequence numbers (e.g. mispredicted instances, for
    branch pre-execution).
    """
    if pc_occurrences is None:
        pc_occurrences = trace.pc_occurrence_counts()
    root = SliceNode(pc=problem_pc, depth=0)
    tree = SliceTree(
        root_pc=problem_pc, root=root, trigger_counts=pc_occurrences
    )
    service = classification.service
    occurrences = trace.occurrences(problem_pc)
    pc_l = trace.as_lists().pc

    for root_index, seq in enumerate(occurrences):
        slice_seqs = backward_slice(trace, seq, window, max_insts)
        if event_seqs is not None:
            missed = seq in event_seqs
        else:
            missed = service.get(seq) == MEM
        tree.instances += 1
        if missed:
            tree.instances_missed += 1
        node = root
        node.count_total += 1
        if missed:
            node.count_miss += 1
        for slice_seq in slice_seqs[1:]:
            pc = pc_l[slice_seq]
            child = node.children.get(pc)
            if child is None:
                child = SliceNode(pc=pc, depth=node.depth + 1, parent=node)
                node.children[pc] = child
            distance = seq - slice_seq
            child.count_total += 1
            child.sum_distance += distance
            # Root instances strictly after the trigger, up to and
            # including this one: exact lead in occurrence counts.
            child.sum_root_gap += root_index - bisect.bisect_right(
                occurrences, slice_seq
            ) + 1
            if missed:
                child.count_miss += 1
                child.sum_distance_miss += distance
            node = child
    return tree
