"""Opportunistic build + ctypes loader for the compiled cycle kernel.

The ``native`` sim backend runs ``_kernel.c`` (a direct transliteration
of ``_kernel.py``) as a shared library.  This module owns its lifecycle:

- :func:`load` compiles the C source on first use -- if a C compiler is
  on PATH -- into a content-addressed cache directory and returns the
  ``ctypes`` handle, or ``None`` when no artifact can be produced (no
  toolchain, build failure, ABI mismatch).  The outcome is memoized per
  process either way, so probing is cheap.
- :func:`native_available` / :func:`native_error` are what
  :mod:`repro.cpu.engine` uses to gate backend selection and to explain
  *why* ``native`` is unavailable.
- ``python -m repro.cpu.nativebuild`` builds eagerly and reports.

Environment knobs:

- ``REPRO_NATIVE_DIR`` -- artifact cache directory (default
  ``~/.cache/repro-native``);
- ``REPRO_NATIVE=0`` -- disable the native kernel entirely (probes
  report unavailable; the pure-Python kernel serves ``native`` requests
  nowhere, since engine selection is gated on availability);
- ``REPRO_NATIVE_CC`` -- compiler executable to use (default: first of
  ``cc``, ``gcc``, ``clang`` on PATH).

The artifact file name embeds a SHA-256 of the C source, so source
edits never load a stale library; the exported ``repro_kernel_abi()``
is additionally checked against :data:`repro.cpu._kernel.KERNEL_ABI`.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

from repro.cpu._kernel import KERNEL_ABI

#: int64 input-pointer table layout (must match _kernel.c's I_* enum).
I_LEN = 24
#: uint8 input-pointer table layout (must match _kernel.c's B_* enum).
B_LEN = 8

_SOURCE = Path(__file__).with_name("_kernel.c")

_BUILD_TIMEOUT_S = 120

# Memoized probe result: unset / (lib, None) / (None, reason).
_probe: Optional[tuple] = None


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_NATIVE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-native"


def _find_compiler() -> Optional[str]:
    env = os.environ.get("REPRO_NATIVE_CC")
    if env:
        return env if shutil.which(env) else None
    for cc in ("cc", "gcc", "clang"):
        if shutil.which(cc):
            return cc
    return None


def _artifact_path(source_text: bytes) -> Path:
    digest = hashlib.sha256(source_text).hexdigest()[:16]
    return _cache_dir() / f"repro_kernel_{digest}_abi{KERNEL_ABI}.so"


def _configure(lib: ctypes.CDLL) -> None:
    i64p = ctypes.POINTER(ctypes.c_int64)
    lib.repro_kernel_abi.restype = ctypes.c_int64
    lib.repro_kernel_abi.argtypes = []
    lib.repro_kernel_run.restype = ctypes.c_int
    lib.repro_kernel_run.argtypes = [
        i64p,                                     # cfg
        ctypes.POINTER(i64p),                     # I table
        ctypes.POINTER(ctypes.POINTER(ctypes.c_uint8)),  # B table
        i64p,                                     # out
        i64p,                                     # missed_out
        i64p,                                     # misspc_out
        i64p,                                     # fa_out
    ]


def _try_load(path: Path):
    """Load + ABI-check an existing artifact; returns (lib, reason)."""
    try:
        lib = ctypes.CDLL(str(path))
    except OSError as exc:
        return None, f"failed to load {path}: {exc}"
    try:
        _configure(lib)
        abi = lib.repro_kernel_abi()
    except AttributeError as exc:
        return None, f"artifact {path} lacks kernel symbols: {exc}"
    if abi != KERNEL_ABI:
        return None, (
            f"artifact {path} reports ABI {abi}, expected {KERNEL_ABI}"
        )
    return lib, None


def _build(source_text: bytes, artifact: Path):
    """Compile the kernel; returns (lib, reason)."""
    cc = _find_compiler()
    if cc is None:
        return None, "no C compiler found on PATH (cc/gcc/clang)"
    artifact.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        suffix=".so", prefix=".build-", dir=str(artifact.parent)
    )
    os.close(fd)
    cmd = [
        cc, "-O2", "-fPIC", "-shared", "-o", tmp, str(_SOURCE),
    ]
    try:
        proc = subprocess.run(
            cmd,
            capture_output=True,
            text=True,
            timeout=_BUILD_TIMEOUT_S,
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        os.unlink(tmp)
        return None, f"compiler invocation failed: {exc}"
    if proc.returncode != 0:
        os.unlink(tmp)
        tail = (proc.stderr or proc.stdout or "").strip()[-400:]
        return None, f"{cc} exited {proc.returncode}: {tail}"
    os.replace(tmp, artifact)  # atomic publish
    return _try_load(artifact)


def load():
    """Return the ctypes handle to the compiled kernel, or ``None``.

    First call per process probes (and builds if possible); the result
    -- including a failure -- is memoized so later calls are free.
    """
    global _probe
    if _probe is not None:
        return _probe[0]
    if os.environ.get("REPRO_NATIVE", "").strip() == "0":
        _probe = (None, "disabled via REPRO_NATIVE=0")
        return None
    if not _SOURCE.exists():
        _probe = (None, f"kernel source missing: {_SOURCE}")
        return None
    source_text = _SOURCE.read_bytes()
    artifact = _artifact_path(source_text)
    if artifact.exists():
        lib, reason = _try_load(artifact)
        if lib is not None:
            _probe = (lib, None)
            return lib
        # Stale or broken artifact: fall through to a rebuild.
    lib, reason = _build(source_text, artifact)
    _probe = (lib, reason)
    return lib


def native_available() -> bool:
    """True when the compiled kernel is loadable (building if needed)."""
    return load() is not None


def native_error() -> Optional[str]:
    """Why the native kernel is unavailable (None when it is loaded)."""
    load()
    return _probe[1] if _probe else None


def reset_probe() -> None:
    """Forget the memoized probe (tests only)."""
    global _probe
    _probe = None


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.cpu.nativebuild",
        description="Build the compiled cycle kernel eagerly.",
    )
    parser.parse_args()
    lib = load()
    if lib is None:
        print(f"native kernel unavailable: {native_error()}")
        return 1
    source_text = _SOURCE.read_bytes()
    print(f"native kernel ready: {_artifact_path(source_text)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
