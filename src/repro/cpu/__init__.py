"""Cycle-level out-of-order multithreaded CPU with DDMT pre-execution.

The simulator is trace-driven: the functional frontend resolves dataflow,
addresses, and branch outcomes (see :mod:`repro.frontend`); this package
charges cycles.  It models the paper's default machine: a 6-way, 15-stage
superscalar with a 128-entry ROB, 80 reservation stations, 384 physical
registers, and 8 thread contexts, where p-threads execute in DDMT
lightweight mode -- reservation stations and physical registers but no
ROB or LSQ entries, sequenced in width-sized blocks at one instruction
per cycle, prefetching into the L2.
"""

from repro.cpu.pipeline import Pipeline, simulate
from repro.cpu.pthreads import PInstClass, PInstSpec, PThreadProgram, SpawnSpec
from repro.cpu.stats import ActivityCounts, LatencyBreakdown, SimStats

__all__ = [
    "ActivityCounts",
    "LatencyBreakdown",
    "PInstClass",
    "PInstSpec",
    "PThreadProgram",
    "Pipeline",
    "SimStats",
    "SpawnSpec",
    "simulate",
]
