"""P-thread descriptions consumed by the timing simulator.

The DDMT layer (:mod:`repro.ddmt`) expands selected static p-threads into
per-spawn instruction lists functionally (addresses resolved from the
architectural state at the trigger).  The timing simulator only needs each
p-instruction's class, address, and dependences.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


class PInstClass(enum.Enum):
    """Timing-relevant classes of p-instructions.

    P-threads contain neither stores nor branches (DDMT control-less-ness),
    so three classes suffice.
    """

    ALU = "alu"
    MUL = "mul"
    LOAD = "load"


@dataclass(frozen=True)
class PInstSpec:
    """One p-instruction within one dynamic spawn.

    ``body_deps`` are indices of earlier instructions in the same body this
    instruction reads; ``livein_seqs`` are main-thread trace sequence
    numbers whose results this instruction reads directly (values captured
    through the spawn-time register map).  ``addr`` is the resolved
    effective address for loads, -1 otherwise.  ``is_target`` marks the
    problem load the p-thread exists to prefetch.
    """

    klass: PInstClass
    addr: int = -1
    body_deps: Tuple[int, ...] = ()
    livein_seqs: Tuple[int, ...] = ()
    is_target: bool = False
    #: Branch pre-execution (the paper's Section 7 extension): when >= 0,
    #: this p-instruction computes the outcome of the dynamic branch with
    #: this trace sequence number; ``hint_taken`` is the pre-computed
    #: direction the fetch stage may consume once the p-instruction
    #: completes.
    hint_branch_seq: int = -1
    hint_taken: bool = False


@dataclass(frozen=True)
class SpawnSpec:
    """One dynamic p-thread instance, anchored at a main-thread trigger.

    ``trigger_seq`` is the trace sequence number of the trigger instance;
    ``static_id`` identifies the static p-thread (for per-p-thread
    accounting); ``on_correct_path`` is False when the spawn corresponds to
    a trigger the main thread only reached speculatively (modeled
    probabilistically by the DDMT layer).
    """

    trigger_seq: int
    static_id: int
    insts: Tuple[PInstSpec, ...]
    on_correct_path: bool = True


@dataclass
class PThreadProgram:
    """All dynamic spawns for one simulation, grouped by trigger."""

    spawns_by_trigger: Dict[int, List[SpawnSpec]] = field(default_factory=dict)

    @classmethod
    def from_spawns(cls, spawns: List[SpawnSpec]) -> "PThreadProgram":
        grouped: Dict[int, List[SpawnSpec]] = {}
        for spawn in spawns:
            grouped.setdefault(spawn.trigger_seq, []).append(spawn)
        return cls(spawns_by_trigger=grouped)

    @property
    def total_spawns(self) -> int:
        return sum(len(v) for v in self.spawns_by_trigger.values())

    @property
    def total_pinsts(self) -> int:
        return sum(
            len(s.insts) for v in self.spawns_by_trigger.values() for s in v
        )

    def empty(self) -> bool:
        return not self.spawns_by_trigger
