"""Marshal/unmarshal driver for the extracted cycle kernel.

Sits between :func:`repro.cpu.batch.simulate_fast` (which routes every
uninstrumented run here) and the two kernel implementations -- the pure
CPython :func:`repro.cpu._kernel.run` and its compiled C mirror loaded
by :mod:`repro.cpu.nativebuild`.  All object traffic stops at this
boundary: the driver flattens the trace columns, machine config,
p-thread program and warmed cache image into the kernel's ``C_*``
config block and flat arrays, and rebuilds ``SimStats`` (and the
byte-identical error objects) from the ``O_*`` counter block and
ordered event streams the kernel returns.

Marshaled forms are memoized on ``trace.derived["simprep"]`` next to
the existing batch-engine precomputes (and *derived from* them, so the
branch-predictor replay, BTB replay and warm-up replay still run once
per trace regardless of backend):

- ``("kwarm", icache, dcache, l2)`` -- packed ``tag << 1 | dirty``
  per-set lists for the Python kernel;
- ``("kcols",)``, ``("kline", shift)``, ``("kpred", entries)``,
  ``("kbtb", bpred, btb)``, ``("kcwarm", ...)``, ``("kscratch",)`` --
  ``array('q')``/``bytes`` forms and output scratch buffers for the C
  kernel.
"""

from __future__ import annotations

import time
from array import array
from typing import List, Optional, Tuple

from repro import obs
from repro.config import MachineConfig
from repro.cpu import _kernel
from repro.cpu import batch as _batch
from repro.cpu import pipeline as _ref
from repro.cpu._kernel import (
    O_LEN,
    STATUS_DEADLOCK,
    STATUS_OK,
    STATUS_SAFETY,
)
from repro.cpu.pthreads import PThreadProgram
from repro.cpu.stats import SimStats
from repro.errors import ExecutionError, PipelineDeadlockError
from repro.frontend.trace import NO_PRODUCER, Trace

K = _kernel

# The kernel module defines its enums locally to stay import-free; they
# must be value-identical to the pipeline's.
assert (K.K_ALU, K.K_MUL, K.K_LOAD, K.K_STORE, K.K_BRANCH, K.K_NOP) == (
    _ref._ALU, _ref._MUL, _ref._LOAD, _ref._STORE, _ref._BRANCH, _ref._NOP
)
assert (K.CTRL_NONE, K.CTRL_BRANCH, K.CTRL_JUMP) == (
    _ref._CTRL_NONE, _ref._CTRL_BRANCH, _ref._CTRL_JUMP
)
assert K.NOT_DONE == _ref._NOT_DONE


class _FlatPThreads:
    """A PThreadProgram flattened to spawn/p-inst index arrays."""

    __slots__ = (
        "sp_trigger", "sp_static", "sp_inst_lo", "sp_inst_hi",
        "pi_kind", "pi_addr", "pi_hint_seq", "pi_hint_taken",
        "pi_dep_lo", "pi_dep_hi", "dep_flat",
        "pi_live_lo", "pi_live_hi", "live_flat",
    )

    def __init__(self, pth: PThreadProgram) -> None:
        # Stable-sorted by trigger: dispatch visits sequence numbers in
        # strictly increasing order, so the kernel replaces the trigger
        # dict with one advancing cursor over this array.
        spawns = [
            spawn
            for _, group in sorted(pth.spawns_by_trigger.items())
            for spawn in group
        ]
        self.sp_trigger: List[int] = []
        self.sp_static: List[int] = []
        self.sp_inst_lo: List[int] = []
        self.sp_inst_hi: List[int] = []
        self.pi_kind: List[int] = []
        self.pi_addr: List[int] = []
        self.pi_hint_seq: List[int] = []
        self.pi_hint_taken: List[int] = []
        self.pi_dep_lo: List[int] = []
        self.pi_dep_hi: List[int] = []
        self.dep_flat: List[int] = []
        self.pi_live_lo: List[int] = []
        self.pi_live_hi: List[int] = []
        self.live_flat: List[int] = []
        kind_of = _ref._PCLASS_TO_KIND
        for spawn in spawns:
            self.sp_trigger.append(spawn.trigger_seq)
            self.sp_static.append(spawn.static_id)
            self.sp_inst_lo.append(len(self.pi_kind))
            for spec in spawn.insts:
                self.pi_kind.append(kind_of[spec.klass])
                self.pi_addr.append(spec.addr)
                self.pi_hint_seq.append(spec.hint_branch_seq)
                self.pi_hint_taken.append(1 if spec.hint_taken else 0)
                self.pi_dep_lo.append(len(self.dep_flat))
                self.dep_flat.extend(spec.body_deps)
                self.pi_dep_hi.append(len(self.dep_flat))
                self.pi_live_lo.append(len(self.live_flat))
                self.live_flat.extend(spec.livein_seqs)
                self.pi_live_hi.append(len(self.live_flat))
            self.sp_inst_hi.append(len(self.pi_kind))


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _cfg_block(
    cfg: MachineConfig,
    n_main: int,
    flat: _FlatPThreads,
    do_warm: bool,
    has_spawns: bool,
    has_hints: bool,
    use_btb_col: bool,
) -> List[int]:
    c = [0] * K.C_LEN
    c[K.C_N_MAIN] = n_main
    c[K.C_WIDTH] = cfg.width
    c[K.C_COMMIT_WIDTH] = cfg.commit_width
    c[K.C_FRONTEND_DEPTH] = cfg.frontend_depth
    c[K.C_RS_CAPACITY] = cfg.rs_entries
    c[K.C_ROB_CAPACITY] = cfg.rob_entries
    c[K.C_PHYS_BUDGET] = cfg.physical_registers - 32  # main arch state
    c[K.C_PIPE_CAPACITY] = cfg.width * cfg.frontend_depth
    c[K.C_PTH_BLOCK_INTERVAL] = max(
        1, int(round(cfg.width / cfg.pthread_fetch_ipc))
    )
    c[K.C_INT_ALUS] = cfg.int_alus
    c[K.C_LOAD_PORTS] = cfg.load_ports
    c[K.C_STORE_PORTS] = cfg.store_ports
    c[K.C_MUL_LATENCY] = cfg.mul_latency
    c[K.C_ISSUE_POOL_LIMIT] = cfg.width + 8
    c[K.C_MAIN_RS_CAP] = max(
        cfg.width, cfg.rs_entries - cfg.pthread_rs_reserve
    )
    c[K.C_FREE_CONTEXTS] = cfg.thread_contexts - 1
    c[K.C_SAFETY_LIMIT] = 400 * n_main + 10_000_000
    c[K.C_INST_BYTES] = _ref.INST_BYTES
    c[K.C_LINE_SHIFT] = cfg.icache.line_bytes.bit_length() - 1
    c[K.C_L2_LINE_SHIFT] = cfg.l2.line_bytes.bit_length() - 1
    c[K.C_HAS_SPAWNS] = 1 if has_spawns else 0
    c[K.C_HAS_HINTS] = 1 if has_hints else 0
    c[K.C_USE_BTB_COL] = 1 if use_btb_col else 0
    c[K.C_BTB_ENTRIES] = cfg.btb_entries
    c[K.C_PTHREAD_FILL_L1] = 1 if cfg.pthread_fill_l1 else 0
    c[K.C_NO_PRODUCER] = NO_PRODUCER
    c[K.C_DO_WARM] = 1 if do_warm else 0
    for base, cc in (
        (K.C_IC_OFFSET_BITS, cfg.icache),
        (K.C_DC_OFFSET_BITS, cfg.dcache),
        (K.C_L2_OFFSET_BITS, cfg.l2),
    ):
        n_sets = cc.n_sets
        c[base] = cc.line_bytes.bit_length() - 1
        c[base + 1] = n_sets.bit_length() - 1
        c[base + 2] = n_sets - 1
        c[base + 3] = cc.assoc
        c[base + 4] = n_sets
        c[base + 5] = cc.hit_latency
    c[K.C_ITLB_ENTRIES] = cfg.itlb_entries
    c[K.C_DTLB_ENTRIES] = cfg.dtlb_entries
    c[K.C_PAGE_SHIFT] = cfg.page_bytes.bit_length() - 1
    c[K.C_TLB_MISS_LAT] = cfg.tlb_miss_latency
    c[K.C_MSHR_ENTRIES] = cfg.mshr_entries
    c[K.C_MEMORY_LATENCY] = cfg.memory_latency
    c[K.C_L2BUS_CYC_DLINE] = _ceil_div(cfg.dcache.line_bytes, cfg.bus_bytes)
    c[K.C_L2BUS_CYC_ILINE] = _ceil_div(cfg.icache.line_bytes, cfg.bus_bytes)
    c[K.C_MEMBUS_CYC_L2LINE] = (
        _ceil_div(cfg.l2.line_bytes, cfg.bus_bytes) * cfg.memory_bus_divisor
    )
    c[K.C_N_SPAWNS] = len(flat.sp_trigger)
    c[K.C_N_PINSTS] = len(flat.pi_kind)
    c[K.C_DEP_LEN] = len(flat.dep_flat)
    c[K.C_LIVE_LEN] = len(flat.live_flat)
    return c


def _warm_packed(trace: Trace, cfg: MachineConfig) -> Tuple:
    """Warm image as packed ``tag << 1 | dirty`` per-set lists."""
    store = _batch._prep_store(trace)
    key = ("kwarm", cfg.icache, cfg.dcache, cfg.l2)
    image = store.get(key)
    if image is None:
        image = tuple(
            [
                [entry[0] << 1 | (1 if entry[1] else 0) for entry in ways]
                for ways in sets
            ]
            for sets in _batch._warm_image(trace, cfg)
        )
        store[key] = image
    return image


# ------------------------------------------------------------------ #
# C-kernel marshaling (array('q') / bytes forms + scratch buffers).
# ------------------------------------------------------------------ #


def _c_columns(trace: Trace) -> Tuple:
    store = _batch._prep_store(trace)
    key = ("kcols",)
    cols = store.get(key)
    if cols is None:
        view = _ref._pipeline_view(trace)
        (kind_arr, ctrl_arr, writes_arr, pc_arr, addr_arr, src1_arr,
         src2_arr, taken_arr, next_pc_arr) = view
        cols = (
            bytes(bytearray(kind_arr)),
            bytes(bytearray(ctrl_arr)),
            bytes(bytearray(1 if w else 0 for w in writes_arr)),
            bytes(bytearray(1 if t else 0 for t in taken_arr)),
            array("q", pc_arr),
            array("q", addr_arr),
            array("q", src1_arr),
            array("q", src2_arr),
            array("q", next_pc_arr),
        )
        store[key] = cols
    return cols


def _c_line(trace: Trace, line_arr: List[int], line_shift: int) -> array:
    store = _batch._prep_store(trace)
    key = ("kline", line_shift)
    col = store.get(key)
    if col is None:
        col = array("q", line_arr)
        store[key] = col
    return col


def _c_pred(trace: Trace, pred_arr: List[bool], entries: int) -> bytes:
    store = _batch._prep_store(trace)
    key = ("kpred", entries)
    col = store.get(key)
    if col is None:
        col = bytes(bytearray(pred_arr))
        store[key] = col
    return col


def _c_warm(trace: Trace, cfg: MachineConfig) -> Tuple:
    """Warm image as flat ``ways[set * assoc + i]`` / ``occ[set]`` arrays."""
    store = _batch._prep_store(trace)
    key = ("kcwarm", cfg.icache, cfg.dcache, cfg.l2)
    image = store.get(key)
    if image is None:
        packed = _warm_packed(trace, cfg)
        parts = []
        for sets, cc in zip(packed, (cfg.icache, cfg.dcache, cfg.l2)):
            assoc = cc.assoc
            ways = array("q", bytes(8 * cc.n_sets * assoc))
            occ = array("q", bytes(8 * cc.n_sets))
            for index, entries in enumerate(sets):
                base = index * assoc
                for i, e in enumerate(entries):
                    ways[base + i] = e
                occ[index] = len(entries)
            parts.append(ways)
            parts.append(occ)
        image = tuple(parts)
        store[key] = image
    return image


def _c_scratch(trace: Trace, n_main: int) -> Tuple[array, array]:
    store = _batch._prep_store(trace)
    key = ("kscratch",)
    bufs = store.get(key)
    if bufs is None:
        bufs = (
            array("q", bytes(8 * (n_main + 1))),
            array("q", bytes(8 * (n_main + 1))),
        )
        store[key] = bufs
    return bufs


def _run_native(
    lib,
    trace: Trace,
    cfg: MachineConfig,
    cfg_block: List[int],
    flat: _FlatPThreads,
    line_arr: List[int],
    pred_arr: List[bool],
    btb_col: Optional[bytearray],
    do_warm: bool,
):
    import ctypes

    from repro.cpu import nativebuild

    n_main = cfg_block[K.C_N_MAIN]
    n_spawns = cfg_block[K.C_N_SPAWNS]
    (kind_b, ctrl_b, writes_b, taken_b, pc_a, addr_a, src1_a, src2_a,
     next_pc_a) = _c_columns(trace)
    line_a = _c_line(trace, line_arr, cfg_block[K.C_LINE_SHIFT])
    pred_b = _c_pred(trace, pred_arr, cfg.bpred_entries) if n_main else b""
    btb_b = bytes(btb_col) if btb_col is not None else b""
    if do_warm:
        warm = _c_warm(trace, cfg)
    else:
        warm = (None,) * 6

    sp_trigger = array("q", flat.sp_trigger)
    sp_static = array("q", flat.sp_static)
    sp_inst_lo = array("q", flat.sp_inst_lo)
    sp_inst_hi = array("q", flat.sp_inst_hi)
    pi_addr = array("q", flat.pi_addr)
    pi_hint_seq = array("q", flat.pi_hint_seq)
    pi_dep_lo = array("q", flat.pi_dep_lo)
    pi_dep_hi = array("q", flat.pi_dep_hi)
    dep_flat = array("q", flat.dep_flat)
    pi_live_lo = array("q", flat.pi_live_lo)
    pi_live_hi = array("q", flat.pi_live_hi)
    live_flat = array("q", flat.live_flat)
    pi_kind_b = bytes(bytearray(flat.pi_kind))
    pi_hint_taken_b = bytes(bytearray(flat.pi_hint_taken))

    out = array("q", bytes(8 * O_LEN))
    missed_out, misspc_out = _c_scratch(trace, n_main)
    fa_out = array("q", bytes(8 * (6 * n_spawns + 8)))
    cfg_a = array("q", cfg_block)

    i64p = ctypes.POINTER(ctypes.c_int64)
    u8p = ctypes.POINTER(ctypes.c_uint8)

    def ip(arr):
        if arr is None or not len(arr):
            return ctypes.cast(None, i64p)
        return ctypes.cast(arr.buffer_info()[0], i64p)

    # bytes objects are read-only buffers the kernel never writes: take
    # their addresses zero-copy via c_char_p.
    def bpz(buf):
        if not buf:
            return ctypes.cast(None, u8p)
        return ctypes.cast(ctypes.c_char_p(buf), u8p)

    i_tbl = (i64p * nativebuild.I_LEN)(
        ip(pc_a), ip(addr_a), ip(src1_a), ip(src2_a), ip(next_pc_a),
        ip(line_a),
        ip(sp_trigger), ip(sp_static), ip(sp_inst_lo), ip(sp_inst_hi),
        ip(pi_addr), ip(pi_hint_seq),
        ip(pi_dep_lo), ip(pi_dep_hi), ip(dep_flat),
        ip(pi_live_lo), ip(pi_live_hi), ip(live_flat),
        ip(warm[0]), ip(warm[1]), ip(warm[2]),
        ip(warm[3]), ip(warm[4]), ip(warm[5]),
    )
    b_tbl = (u8p * nativebuild.B_LEN)(
        bpz(kind_b), bpz(ctrl_b), bpz(writes_b), bpz(taken_b),
        bpz(pred_b), bpz(btb_b), bpz(pi_kind_b), bpz(pi_hint_taken_b),
    )
    rc = lib.repro_kernel_run(
        ip(cfg_a), i_tbl, b_tbl, ip(out), ip(missed_out), ip(misspc_out),
        ip(fa_out),
    )
    if rc != 0:
        raise MemoryError(f"native kernel failed to allocate (rc={rc})")
    out_list = out.tolist()
    missed = missed_out[: out_list[K.O_N_MISSED]].tolist()
    misspc = misspc_out[: out_list[K.O_N_MISSPC]].tolist()
    dead_fa = [
        tuple(fa_out[6 * i: 6 * i + 6]) for i in range(out_list[K.O_N_FA])
    ]
    return out_list, missed, misspc, dead_fa


# ------------------------------------------------------------------ #
# Entry point.
# ------------------------------------------------------------------ #


def simulate_kernel(
    trace: Trace,
    config: Optional[MachineConfig] = None,
    pthreads: Optional[PThreadProgram] = None,
    warm: bool = True,
    vector: bool = False,
    native: bool = False,
) -> SimStats:
    """Run one timing simulation through the extracted kernel.

    Bit-identical drop-in for :func:`repro.cpu.batch.simulate_fast`;
    ``native=True`` runs the compiled C kernel (falling back to the
    Python kernel only if the artifact cannot be loaded, which
    :mod:`repro.cpu.engine` prevents by gating backend selection).
    """
    cfg = config or MachineConfig()
    pth = pthreads or PThreadProgram()
    wall_start = time.perf_counter()
    n_main = len(trace)

    view = _ref._pipeline_view(trace)
    (kind_arr, ctrl_arr, writes_arr, pc_arr, addr_arr, src1_arr,
     src2_arr, taken_arr, next_pc_arr) = view
    line_shift = cfg.icache.line_bytes.bit_length() - 1
    line_arr = _batch._line_column(trace, line_shift, vector) if n_main else []
    pred_arr = (
        _batch._pred_column(trace, cfg.bpred_entries, vector) if n_main else []
    )
    has_spawns = bool(pth.spawns_by_trigger)
    has_hints = has_spawns and _batch._has_branch_hints(pth)
    use_btb_col = bool(n_main and not has_hints)
    btb_col = (
        _batch._btb_column(trace, cfg.bpred_entries, cfg.btb_entries, vector)
        if use_btb_col
        else None
    )
    flat = _FlatPThreads(pth)
    do_warm = bool(warm and n_main)
    cfg_block = _cfg_block(
        cfg, n_main, flat, do_warm, has_spawns, has_hints, use_btb_col
    )

    lib = None
    if native:
        from repro.cpu import nativebuild

        lib = nativebuild.load()
    if lib is not None:
        out, missed, misspc, dead_fa = _run_native(
            lib, trace, cfg, cfg_block, flat, line_arr, pred_arr, btb_col,
            do_warm,
        )
        if do_warm:
            _batch._WARM_RESTORES.add()
    else:
        if do_warm:
            warm_ic, warm_dc, warm_l2 = _warm_packed(trace, cfg)
            _batch._WARM_RESTORES.add()
        else:
            warm_ic = warm_dc = warm_l2 = ()
        out, missed, misspc, dead_fa = _kernel.run(
            cfg_block,
            kind_arr, ctrl_arr, writes_arr, pc_arr, addr_arr,
            src1_arr, src2_arr, taken_arr, next_pc_arr,
            line_arr, pred_arr, btb_col,
            warm_ic, warm_dc, warm_l2,
            flat.sp_trigger, flat.sp_static, flat.sp_inst_lo,
            flat.sp_inst_hi,
            flat.pi_kind, flat.pi_addr, flat.pi_hint_seq,
            flat.pi_hint_taken,
            flat.pi_dep_lo, flat.pi_dep_hi, flat.dep_flat,
            flat.pi_live_lo, flat.pi_live_hi, flat.live_flat,
        )

    status = out[K.O_STATUS]
    now = out[K.O_CYCLES]
    committed = out[K.O_COMMITTED]
    if status == STATUS_SAFETY:
        safety_limit = 400 * n_main + 10_000_000
        raise ExecutionError(
            f"simulation exceeded {safety_limit} cycles "
            f"({committed}/{n_main} committed)"
        )
    if status == STATUS_DEADLOCK:
        raise _rebuild_deadlock(
            out, dead_fa, n_main, pc_arr, kind_arr
        )
    assert status == STATUS_OK

    stats = SimStats()
    stats.cycles = now
    stats.committed = committed
    stats.branches = out[K.O_BRANCHES]
    stats.mispredictions = out[K.O_MISPREDICTIONS]
    stats.btb_misses = out[K.O_BTB_MISSES]
    stats.demand_l2_misses = out[K.O_DEMAND_L2]
    stats.pthread_l2_misses = out[K.O_PTHREAD_L2]
    stats.covered_misses_full = out[K.O_COVERED_FULL]
    stats.covered_misses_partial = out[K.O_COVERED_PARTIAL]
    stats.useful_prefetches = out[K.O_USEFUL]
    stats.branch_hints_used = out[K.O_HINTS_USED]
    stats.pinsts_fetched = out[K.O_PINSTS_FETCHED]
    stats.pinsts_executed = out[K.O_PINSTS_EXECUTED]
    stats.spawns_attempted = out[K.O_SPAWNS_ATTEMPTED]
    stats.spawns_started = out[K.O_SPAWNS_STARTED]
    stats.spawns_dropped_no_context = out[K.O_SPAWNS_DROPPED]
    act = stats.activity
    act.cycles = now
    act.committed_main = out[K.O_AC_COMMITTED]
    act.dispatched_main = out[K.O_AC_DISP_MAIN]
    act.dispatched_pth = out[K.O_AC_DISP_PTH]
    act.fetch_blocks_main = out[K.O_AC_FETCH_MAIN]
    act.fetch_blocks_pth = out[K.O_AC_FETCH_PTH]
    act.bpred_accesses = out[K.O_AC_BPRED]
    act.dmem_accesses_main = out[K.O_AC_DMEM_MAIN]
    act.dmem_accesses_pth = out[K.O_AC_DMEM_PTH]
    act.l2_accesses_main = out[K.O_AC_L2_MAIN]
    act.l2_accesses_pth = out[K.O_AC_L2_PTH]
    act.alu_ops_main = out[K.O_AC_ALU_MAIN]
    act.alu_ops_pth = out[K.O_AC_ALU_PTH]
    breakdown = stats.breakdown
    breakdown.mem += out[K.O_BD_MEM]
    breakdown.l2 += out[K.O_BD_L2]
    breakdown.exec += out[K.O_BD_EXEC]
    breakdown.commit += out[K.O_BD_COMMIT]
    breakdown.fetch += out[K.O_BD_FETCH]
    stalls = stats.stalls
    stalls.retiring += out[K.O_SL_RETIRE]
    stalls.fetch_starved += out[K.O_SL_FETCH]
    stalls.branch_recovery += out[K.O_SL_BRANCH]
    stalls.load_miss += out[K.O_SL_LOAD]
    stalls.rob_full += out[K.O_SL_ROB]
    stalls.rs_full += out[K.O_SL_RS]
    stalls.pthread_contention += out[K.O_SL_PTH]
    stalls.exec += out[K.O_SL_EXEC]
    stats.missed_load_seqs.update(missed)
    misses_by_pc = stats.l2_misses_by_pc
    for uid in misspc:
        pc = pc_arr[uid]
        misses_by_pc[pc] = misses_by_pc.get(pc, 0) + 1

    wall_s = time.perf_counter() - wall_start
    _ref._SIM_RUNS.add()
    _ref._SIM_CYCLES.add(now)
    _ref._SIM_RETIRED.add(committed)
    if wall_s > 0:
        _ref._SIM_RETIRE_RATE.set(round(committed / wall_s))
        _ref._SIM_CYCLE_RATE.set(round(now / wall_s))
    if obs.is_enabled("info"):
        obs.log_event(
            "sim.done",
            cycles=now,
            committed=committed,
            ipc=round(stats.ipc, 4),
            spawns=stats.spawns_started,
            pinsts=stats.pinsts_executed,
            stall_slots=stalls.as_dict(),
            wall_s=round(wall_s, 6),
            cycles_per_sec=round(now / wall_s) if wall_s else 0,
            retired_per_sec=round(committed / wall_s) if wall_s else 0,
        )
    return stats


def _rebuild_deadlock(
    out: List[int],
    dead_fa: List[Tuple[int, ...]],
    n_main: int,
    pc_arr: List[int],
    kind_arr: List[int],
) -> PipelineDeadlockError:
    """Byte-identical reconstruction of pipeline._deadlock_error."""
    now = out[K.O_CYCLES]
    committed = out[K.O_COMMITTED]
    rob_len = out[K.O_DEAD_ROB_LEN]
    rob_head = None
    if rob_len:
        head = out[K.O_DEAD_HEAD_SEQ]
        done_at = out[K.O_DEAD_HEAD_DONE]
        rob_head = {
            "seq": head,
            "pc": pc_arr[head] if head < len(pc_arr) else None,
            "kind": kind_arr[head] if head < len(kind_arr) else None,
            "done_at": None if done_at == K.NOT_DONE else done_at,
        }
    fetch_state = [
        {
            "static_id": fa[0],
            "trigger_seq": fa[1],
            "fetch_idx": fa[2],
            "next_fetch": fa[3],
            "in_flight": fa[4],
            "fetched_all": bool(fa[5]),
        }
        for fa in dead_fa
    ]
    return PipelineDeadlockError(
        f"pipeline deadlock at cycle {now}: "
        f"{committed}/{n_main} committed, rob={rob_len}",
        cycle=now,
        committed=committed,
        total=n_main,
        rob_size=rob_len,
        rob_head=rob_head,
        fetch_state=fetch_state,
    )
