"""Batched merged-loop cycle engine.

This is the ``batched``/``numpy`` backend behind
:func:`repro.cpu.pipeline.simulate` (selected in :mod:`repro.cpu.engine`).
It reproduces the reference :class:`~repro.cpu.pipeline.Pipeline` --
stage by stage, counter by counter -- with the per-cycle interpreter
overhead stripped out, and is gated on bit-identical
:class:`~repro.cpu.stats.SimStats` by the golden suite
(``tests/cpu/test_golden_sim_backends.py``).  Two ideas:

1. **Merged loop, scalar window state.**  The reference engine runs four
   per-stage closures per cycle and allocates an ``_Entry`` object per
   in-flight instruction.  Here the stages are inlined into one loop
   body over plain locals; main-thread instructions are identified by
   their sequence number alone (uid == seq), so the scheduler runs on
   int heaps and flat per-seq lists -- no per-instruction allocation.
   P-instructions (a small minority) live in side dicts keyed by uid.

2. **Trace-pure precomputes, shared across machine configs.**  Several
   per-run passes are pure functions of the trace (or of the trace plus
   one config axis) and are computed once, memoized on
   ``trace.derived``, and shared by every simulation of the same trace:

   - the **branch-predictor outcome column**: the predictor is updated
     unconditionally for every branch in fetch order, exactly once each,
     so its per-branch outcomes depend only on (trace, bpred_entries) --
     never on machine timing or p-threads (hints override the *use* of a
     prediction after the update);
   - the **BTB redirect column** (valid only when no branch-hint
     p-threads exist: a hint can flip a branch's predicted-correct
     status, which gates BTB lookups);
   - the **fetch line-id column** (trace x I-cache line size);
   - the **warmed cache image**: the functional warm-up pass replayed
     once per (trace, cache geometry), then restored into each run's
     hierarchy by copying the set arrays.

   A figure sweep simulates the same sealed trace columns under N
   machine configs (:func:`simulate_batch` /
   :mod:`repro.harness.batchplan`), which is exactly the shape these
   shared columns exploit.

The ``numpy`` backend runs this same engine with the precompute passes
vectorized over the sealed columns (``vector=True``); the cycle loop
itself is data-dependent and stays scalar.  Microarchitectural tracing
(:mod:`repro.obs.utrace`) and ``REPRO_DEBUG_PIPELINE`` have hooks only
in the reference engine; the dispatch in ``pipeline.simulate`` routes
traced runs there.
"""

from __future__ import annotations

import heapq
import time
from collections import OrderedDict, defaultdict, deque
from typing import Dict, List, Optional, Tuple

from repro import faults, obs
from repro.branch.predictors import HybridPredictor
from repro.config import MachineConfig
from repro.cpu import pipeline as _ref
from repro.cpu.pipeline import (
    _ALU,
    _BRANCH,
    _CTRL_BRANCH,
    _CTRL_JUMP,
    _LOAD,
    _MUL,
    _NOP,
    _NOT_DONE,
    _STORE,
    _Context,
    _PCLASS_TO_KIND,
    _deadlock_error,
    _pipeline_view,
    HEARTBEAT_CYCLES,
    INST_BYTES,
)
from repro.cpu.pthreads import PThreadProgram
from repro.cpu.stats import SimStats
from repro.errors import ExecutionError
from repro.frontend.trace import NO_PRODUCER, Trace
from repro.memory.hierarchy import MemoryHierarchy

try:  # the batched engine itself is pure Python; numpy only vectorizes prep
    import numpy as _np
except ImportError:  # pragma: no cover - exercised where numpy is absent
    _np = None

_PREP_BUILDS = obs.counters.counter("cpu.batch.prep_builds")
_PREP_REUSES = obs.counters.counter("cpu.batch.prep_reuses")
_WARM_RESTORES = obs.counters.counter("cpu.batch.warm_restores")


# --------------------------------------------------------------------- #
# Shared precomputes, memoized on trace.derived["simprep"].
# --------------------------------------------------------------------- #


def _prep_store(trace: Trace) -> Dict[Tuple, object]:
    store = trace.derived.get("simprep")
    if store is None:
        store = {}
        trace.derived["simprep"] = store
    return store


def _branch_indexes(trace: Trace, vector: bool) -> List[int]:
    """Indexes of branch instructions, in trace order."""
    store = _prep_store(trace)
    key = ("branches",)
    idxs = store.get(key)
    if idxs is None:
        ctrl_arr = _pipeline_view(trace)[1]
        if vector and _np is not None:
            idxs = _np.nonzero(
                _np.asarray(ctrl_arr, dtype=_np.int8) == _CTRL_BRANCH
            )[0].tolist()
        else:
            idxs = [i for i, c in enumerate(ctrl_arr) if c == _CTRL_BRANCH]
        store[key] = idxs
    return idxs


def _line_column(trace: Trace, line_shift: int, vector: bool) -> List[int]:
    """Per-instruction I-cache line id: ``(pc * INST_BYTES) >> line_shift``."""
    store = _prep_store(trace)
    key = ("lines", line_shift)
    lines = store.get(key)
    if lines is None:
        pc_arr = _pipeline_view(trace)[3]
        if vector and _np is not None:
            pcs = _np.asarray(pc_arr, dtype=_np.int64)
            lines = ((pcs * INST_BYTES) >> line_shift).tolist()
        else:
            lines = [(pc * INST_BYTES) >> line_shift for pc in pc_arr]
        store[key] = lines
    return lines


def _pred_column(trace: Trace, bpred_entries: int, vector: bool) -> List[bool]:
    """Predicted direction per branch index.

    The reference fetch stage calls ``predict_and_update(pc, taken)``
    unconditionally for every branch, in increasing sequence order,
    exactly once each (fetch visits every main instruction once; a
    mispredict redirect only delays the successor, never re-fetches a
    branch).  Hints override the *returned* prediction after the call,
    so predictor state -- and therefore this column -- is independent of
    machine timing and of p-threads.  Non-branch slots are False and
    never read.
    """
    store = _prep_store(trace)
    key = ("pred", bpred_entries)
    pred = store.get(key)
    if pred is None:
        _PREP_BUILDS.add()
        view = _pipeline_view(trace)
        pc_arr, taken_arr = view[3], view[7]
        predictor = HybridPredictor(bpred_entries)
        predict_and_update = predictor.predict_and_update
        pred = [False] * len(pc_arr)
        for i in _branch_indexes(trace, vector):
            pred[i] = predict_and_update(pc_arr[i], taken_arr[i])
        store[key] = pred
    else:
        _PREP_REUSES.add()
    return pred


def _btb_column(
    trace: Trace, bpred_entries: int, btb_entries: int, vector: bool
) -> bytearray:
    """BTB redirect (miss) flag per branch index.

    The reference consults the BTB only for correctly-predicted taken
    branches, in fetch order -- a sequence fully determined by the
    prediction column above.  The LRU replay below mirrors
    :class:`repro.branch.btb.BTB` operation for operation.  Only valid
    when the run has no branch-hint p-instructions (a timely hint can
    flip a branch's predicted outcome, changing which branches reach the
    BTB); :func:`simulate_fast` falls back to a live BTB in that case.
    """
    store = _prep_store(trace)
    key = ("btb", bpred_entries, btb_entries)
    col = store.get(key)
    if col is None:
        view = _pipeline_view(trace)
        pc_arr, taken_arr, next_pc_arr = view[3], view[7], view[8]
        pred = _pred_column(trace, bpred_entries, vector)
        col = bytearray(len(pc_arr))
        table: "OrderedDict[int, int]" = OrderedDict()
        move_to_end = table.move_to_end
        table_get = table.get
        for i in _branch_indexes(trace, vector):
            if not (taken_arr[i] and pred[i]):
                continue
            pc = pc_arr[i]
            target = table_get(pc, -1)
            if target != -1:
                move_to_end(pc)
            npc = next_pc_arr[i]
            if target != npc:
                col[i] = 1
                if target == -1 and len(table) >= btb_entries:
                    table.popitem(last=False)
                table[pc] = npc
        store[key] = col
    return col


def _warm_image(trace: Trace, config: MachineConfig) -> Tuple[List, List, List]:
    """Cache set arrays after the functional warm-up pass.

    Replays :meth:`Pipeline._warm_caches` exactly (same access order,
    same LRU movement) against a fresh hierarchy, once per (trace, cache
    geometry); each warm run then restores the image by copying.  Keyed
    on the cache configs alone -- machine configs differing in, say,
    memory latency share the image.
    """
    store = _prep_store(trace)
    key = ("warm", config.icache, config.dcache, config.l2)
    image = store.get(key)
    if image is None:
        hierarchy = MemoryHierarchy(config)
        warm_inst = hierarchy.warm_inst
        warm_data = hierarchy.warm_data
        line_insts = config.icache.line_bytes // INST_BYTES
        view = _pipeline_view(trace)
        pc_arr, addr_arr = view[3], view[4]
        seen_lines = set()
        seen_add = seen_lines.add
        for pc, addr in zip(pc_arr, addr_arr):
            line = pc // line_insts
            if line not in seen_lines:
                seen_add(line)
                warm_inst(pc * INST_BYTES)
            if addr >= 0:
                warm_data(addr)
        image = (
            _copy_sets(hierarchy.icache._sets),
            _copy_sets(hierarchy.dcache._sets),
            _copy_sets(hierarchy.l2._sets),
        )
        store[key] = image
    return image


def _copy_sets(sets: List[List[List[int]]]) -> List[List[List[int]]]:
    return [[entry[:] for entry in ways] for ways in sets]


def _restore_warm(hierarchy: MemoryHierarchy, image: Tuple) -> None:
    ic, dc, l2 = image
    hierarchy.icache._sets = _copy_sets(ic)
    hierarchy.dcache._sets = _copy_sets(dc)
    hierarchy.l2._sets = _copy_sets(l2)
    _WARM_RESTORES.add()


def _has_branch_hints(pthreads: PThreadProgram) -> bool:
    return any(
        spec.hint_branch_seq >= 0
        for spawns in pthreads.spawns_by_trigger.values()
        for spawn in spawns
        for spec in spawn.insts
    )


# --------------------------------------------------------------------- #
# The engine.
# --------------------------------------------------------------------- #


def simulate_fast(
    trace: Trace,
    config: Optional[MachineConfig] = None,
    pthreads: Optional[PThreadProgram] = None,
    warm: bool = True,
    vector: bool = False,
    native: bool = False,
) -> SimStats:
    """Run one timing simulation on the merged-loop engine.

    Drop-in for :func:`repro.cpu.pipeline.simulate` with bit-identical
    results; ``vector=True`` additionally vectorizes the shared
    precompute passes (the ``numpy`` backend); ``native=True`` routes
    the cycle loop to the flat-array kernel
    (:mod:`repro.cpu.kerneldriver`, the ``native`` backend) unless
    instrumentation is active -- the heartbeat/tap/fault hooks live only
    in this loop, and all engines are bit-identical so the fallback is
    unobservable numerically.
    """
    if native and not (
        obs.is_enabled("debug")
        or obs.has_taps()
        or faults.site_active("pipeline.step")
    ):
        from repro.cpu import kerneldriver

        return kerneldriver.simulate_kernel(
            trace, config, pthreads, warm=warm, vector=vector, native=True
        )
    cfg = config or MachineConfig()
    pth = pthreads or PThreadProgram()
    stats = SimStats()
    act = stats.activity
    hierarchy = MemoryHierarchy(cfg)
    n_main = len(trace)

    if warm and n_main:
        _restore_warm(hierarchy, _warm_image(trace, cfg))

    (kind_arr, ctrl_arr, writes_arr, pc_arr, addr_arr, src1_arr,
     src2_arr, taken_arr, next_pc_arr) = _pipeline_view(trace)

    line_shift = cfg.icache.line_bytes.bit_length() - 1
    line_arr = _line_column(trace, line_shift, vector) if n_main else []
    pred_arr = _pred_column(trace, cfg.bpred_entries, vector) if n_main else []

    spawns_by_trigger = pth.spawns_by_trigger
    has_spawns = bool(spawns_by_trigger)
    spawns_get = spawns_by_trigger.get
    has_hints = has_spawns and _has_branch_hints(pth)
    if n_main and not has_hints:
        btb_col: Optional[bytearray] = _btb_column(
            trace, cfg.bpred_entries, cfg.btb_entries, vector
        )
        btb_lookup = btb_update = None
    else:
        # Branch-hint p-threads make BTB traffic timing-dependent: fall
        # back to a live BTB, exactly as the reference drives it.
        from repro.branch.btb import BTB

        btb_col = None
        live_btb = BTB(cfg.btb_entries)
        btb_lookup = live_btb.lookup
        btb_update = live_btb.update

    heappush = heapq.heappush
    heappop = heapq.heappop
    data_access = hierarchy.data_access
    inst_fetch = hierarchy.inst_fetch

    width = cfg.width
    commit_width = cfg.commit_width
    frontend_depth = cfg.frontend_depth
    rs_capacity = cfg.rs_entries
    rob_capacity = cfg.rob_entries
    phys_budget = cfg.physical_registers - 32  # main arch state
    pipe_capacity = width * frontend_depth
    pth_block_interval = max(1, int(round(width / cfg.pthread_fetch_ipc)))
    int_alus = cfg.int_alus
    load_ports = cfg.load_ports
    store_ports = cfg.store_ports
    mul_latency = cfg.mul_latency
    issue_pool_limit = width + 8
    l2_line_shift = cfg.l2.line_bytes.bit_length() - 1

    # Scheduler state.  Main-thread uids are trace sequence numbers, so
    # completion times and pending counts live in flat per-seq lists;
    # p-instruction state (uid >= n_main) lives in flat lists indexed by
    # ``uid - n_main``, grown when a spawn starts.
    completion: List[int] = [_NOT_DONE] * n_main
    pending_main: List[int] = [0] * n_main
    p_completion: List[int] = []
    p_pending: List[int] = []
    p_kind: List[int] = []
    p_addr: List[int] = []
    p_ctx: List[_Context] = []
    p_hint: Dict[int, Tuple[int, bool]] = {}  # uid -> (branch seq, taken)

    wakeup: Dict[int, List[int]] = defaultdict(list)
    # Ready uids: appended unsorted, sorted once per issue cycle.  The
    # reference pops a min-heap, yielding ascending uids into the pool;
    # sorting and slicing yields the same ascending prefix with the same
    # remainder, at plain-append cost on the scheduling fast path (the
    # leftover tail stays sorted, so the next sort is near-linear).
    ready: List[int] = []
    ready_append = ready.append
    deferred: List[int] = []
    completion_events: List[Tuple[int, int]] = []
    # Completions landing at exactly ``now + 1`` -- the overwhelmingly
    # common case (ALUs, stores, L1-hit tails) -- bypass the event heap:
    # anything issued at ``now`` makes the cycle active, so these are
    # always drained at the very next iteration, before any jump logic
    # can observe the heap.
    events_t1: List[int] = []

    rob = deque()
    rob_append = rob.append
    rob_popleft = rob.popleft
    # The frontend pipe holds only dispatch-ready times: fetch appends
    # ``next_seq`` values in strictly increasing order and nothing ever
    # flushes the pipe (a redirect only stalls fetch; the trace is the
    # correct path), so the head entry's sequence number is always
    # ``fp_head`` and per-entry tuples are unnecessary.
    frontend_pipe = deque()
    fp_append = frontend_pipe.append
    fp_popleft = frontend_pipe.popleft
    fp_head = 0
    pth_pipe = deque()
    # Queue lengths tracked as plain counters: len() on every dispatch
    # and fetch gate is a measurable slice of the loop.
    rob_len = 0
    fp_len = 0
    pp_len = 0
    rs_used_main = 0
    rs_used_pth = 0
    main_rs_cap = max(cfg.width, rs_capacity - cfg.pthread_rs_reserve)
    phys_used = 0

    next_seq = 0
    fetch_line = -1
    line_ready_at = 0
    fetch_hold_until = 0
    pending_redirect: Optional[int] = None
    redirect_clear_at: Optional[int] = None

    load_kind: Dict[int, str] = {}
    load_kind_get = load_kind.get
    partial_counted: set = set()
    branch_hints: Dict[int, Tuple[int, bool]] = {}
    branch_hints_get = branch_hints.get

    fetch_active: List[_Context] = []
    free_contexts = cfg.thread_contexts - 1
    next_uid = n_main

    now = 0
    committed = 0

    # Frequently-bumped stats as plain locals, flushed once after the
    # loop (matching the reference's breakdown/stall treatment).
    st_branches = st_mispredictions = st_btb_misses = 0
    st_demand_l2 = st_pthread_l2 = 0
    st_covered_full = st_covered_partial = st_useful = 0
    st_hints_used = 0
    st_pinsts_fetched = st_pinsts_executed = 0
    st_spawns_attempted = st_spawns_started = st_spawns_dropped = 0
    ac_committed = ac_dispatched_main = ac_dispatched_pth = 0
    ac_fetch_main = ac_fetch_pth = ac_bpred = 0
    ac_dmem_main = ac_dmem_pth = ac_l2_main = ac_l2_pth = 0
    ac_alu_main = ac_alu_pth = 0
    missed_add = stats.missed_load_seqs.add
    misses_by_pc = stats.l2_misses_by_pc

    bd_mem = bd_l2 = bd_exec = bd_commit = bd_fetch = 0
    sl_retire = sl_fetch = sl_branch = sl_load = 0
    sl_rob = sl_rs = sl_pth = sl_exec = 0

    def attribute_cycles(n: int, retired: int = 0) -> None:
        """Identical charging rules to the reference (see Pipeline.run)."""
        nonlocal bd_mem, bd_l2, bd_exec, bd_commit, bd_fetch
        nonlocal sl_retire, sl_fetch, sl_branch, sl_load
        nonlocal sl_rob, sl_rs, sl_pth, sl_exec
        r = retired if retired < width else width
        sl_retire += r
        slots = width * n - r
        if not rob:
            bd_fetch += n
            if pending_redirect is not None:
                sl_branch += slots
            else:
                sl_fetch += slots
            return
        head = rob[0]
        t = completion[head]
        if t != _NOT_DONE and t <= now:
            bd_commit += n
            sl_exec += slots
            return
        if kind_arr[head] == _LOAD:
            kind = load_kind_get(head)
            if kind == "mem":
                bd_mem += n
                sl_load += slots
                return
            if kind == "l2":
                bd_l2 += n
                sl_load += slots
                return
        bd_exec += n
        if len(rob) >= rob_capacity:
            sl_rob += slots
        elif rs_used_pth and rs_used_main + rs_used_pth >= rs_capacity:
            sl_pth += slots
        elif rs_used_main >= main_rs_cap:
            sl_rs += slots
        else:
            sl_exec += slots

    safety_limit = 400 * n_main + 10_000_000
    wall_start = time.perf_counter()
    heartbeat = (
        obs.is_enabled("debug") or obs.has_taps()
    ) and not obs.is_quiet()
    heartbeat_next = HEARTBEAT_CYCLES
    hb_last_wall = wall_start
    hb_last_cycles = 0
    hb_last_committed = 0
    fault_step = faults.site_active("pipeline.step")
    fault_next = 0

    while committed < n_main:
        if fault_step and now >= fault_next:
            fault_next = now + HEARTBEAT_CYCLES
            faults.raise_if("pipeline.step", key=f"cycle:{now}")
        if heartbeat and now >= heartbeat_next:
            wall_now = time.perf_counter()
            wall_s = wall_now - wall_start
            dt = wall_now - hb_last_wall
            retired_rate = (
                (committed - hb_last_committed) / dt if dt > 0 else 0.0
            )
            eta_s = (
                (n_main - committed) / retired_rate
                if retired_rate > 0
                else None
            )
            obs.log_event(
                "sim_heartbeat",
                level="debug",
                cycles=now,
                committed=committed,
                progress_pct=round(100.0 * committed / n_main, 2)
                if n_main
                else 100.0,
                spawns=st_spawns_started,
                wall_s=round(wall_s, 3),
                cycles_per_sec=round(now / wall_s) if wall_s else 0,
                interval_cycles_per_sec=round((now - hb_last_cycles) / dt)
                if dt > 0
                else 0,
                interval_retired_per_sec=round(retired_rate),
                eta_s=round(eta_s, 1) if eta_s is not None else None,
            )
            hb_last_wall = wall_now
            hb_last_cycles = now
            hb_last_committed = committed
            heartbeat_next = now + HEARTBEAT_CYCLES

        # ---- wakeup ------------------------------------------------- #
        # Processing order across same-cycle completions is free: each
        # wakeup independently decrements a counter, and the ready heap
        # re-establishes age order.
        if events_t1:
            for uid in events_t1:
                waiters = wakeup.pop(uid, None)
                if waiters:
                    for w in waiters:
                        if w < n_main:
                            p = pending_main[w] - 1
                            pending_main[w] = p
                        else:
                            wi = w - n_main
                            p = p_pending[wi] - 1
                            p_pending[wi] = p
                        if p == 0:
                            ready_append(w)
            events_t1 = []
        if completion_events and completion_events[0][0] <= now:
            while completion_events and completion_events[0][0] <= now:
                _, uid = heappop(completion_events)
                waiters = wakeup.pop(uid, None)
                if waiters:
                    for w in waiters:
                        if w < n_main:
                            p = pending_main[w] - 1
                            pending_main[w] = p
                        else:
                            wi = w - n_main
                            p = p_pending[wi] - 1
                            p_pending[wi] = p
                        if p == 0:
                            ready_append(w)

        # ---- commit ------------------------------------------------- #
        ncommitted = 0
        while ncommitted < commit_width and rob:
            head = rob[0]
            t = completion[head]
            if t == _NOT_DONE or t > now:
                break
            rob_popleft()
            rob_len -= 1
            if writes_arr[head]:
                phys_used -= 1
            committed += 1
            ncommitted += 1
        if ncommitted:
            ac_committed += ncommitted
        active = ncommitted > 0

        # ---- issue -------------------------------------------------- #
        if ready or deferred:
            now1 = now + 1
            alu_slots = int_alus
            load_slots = load_ports
            store_slots = store_ports
            issued = 0
            retry: List[int] = []
            pool: List[int] = deferred[:]
            deferred.clear()
            if ready:
                ready.sort()
                k = issue_pool_limit - len(pool)
                if k > 0:
                    pool += ready[:k]
                    del ready[:k]
            for uid in pool:
                if uid < n_main:
                    kind = kind_arr[uid]
                    if kind == _LOAD:
                        if load_slots <= 0 or issued >= width:
                            retry.append(uid)
                            continue
                        result = data_access(addr_arr[uid], now)
                        if result.retry:
                            retry.append(uid)
                            continue
                        ac_dmem_main += 1
                        mem_access = result.mem_access
                        if result.l2_accessed or mem_access:
                            ac_l2_main += 1
                        if mem_access:
                            st_demand_l2 += 1
                            missed_add(uid)
                            pc = pc_arr[uid]
                            misses_by_pc[pc] = misses_by_pc.get(pc, 0) + 1
                            load_kind[uid] = "mem"
                        elif result.mshr_merged:
                            load_kind[uid] = "mem"
                            if result.merged_with_prefetch:
                                line = addr_arr[uid] >> l2_line_shift
                                if line not in partial_counted:
                                    partial_counted.add(line)
                                    st_covered_partial += 1
                                    st_useful += 1
                                missed_add(uid)
                        elif result.l2_accessed:
                            load_kind[uid] = "l2"
                        if result.prefetched_hit:
                            st_covered_full += 1
                            st_useful += 1
                        t = result.complete_at
                        completion[uid] = t
                        if t == now1:
                            events_t1.append(uid)
                        else:
                            heappush(completion_events, (t, uid))
                        load_slots -= 1
                    elif kind == _STORE:
                        if store_slots <= 0 or issued >= width:
                            retry.append(uid)
                            continue
                        result = data_access(addr_arr[uid], now, True)
                        if result.retry:
                            retry.append(uid)
                            continue
                        ac_dmem_main += 1
                        if result.l2_accessed or result.mem_access:
                            ac_l2_main += 1
                        completion[uid] = now1
                        events_t1.append(uid)
                        store_slots -= 1
                    else:
                        if alu_slots <= 0 or issued >= width:
                            retry.append(uid)
                            continue
                        if kind == _MUL:
                            t = now + mul_latency
                            completion[uid] = t
                            if t == now1:
                                events_t1.append(uid)
                            else:
                                heappush(completion_events, (t, uid))
                        else:
                            if kind == _BRANCH and uid == pending_redirect:
                                redirect_clear_at = now1
                            completion[uid] = now1
                            events_t1.append(uid)
                        ac_alu_main += 1
                        alu_slots -= 1
                    rs_used_main -= 1
                else:
                    pu = uid - n_main
                    kind = p_kind[pu]
                    if kind == _LOAD:
                        if load_slots <= 0 or issued >= width:
                            retry.append(uid)
                            continue
                        result = data_access(p_addr[pu], now, False, True)
                        if result.retry:
                            retry.append(uid)
                            continue
                        ac_dmem_pth += 1
                        if result.l2_accessed or result.mem_access:
                            ac_l2_pth += 1
                        if result.mem_access:
                            st_pthread_l2 += 1
                        t = result.complete_at
                        p_completion[pu] = t
                        if t == now1:
                            events_t1.append(uid)
                        else:
                            heappush(completion_events, (t, uid))
                        load_slots -= 1
                    else:
                        if alu_slots <= 0 or issued >= width:
                            retry.append(uid)
                            continue
                        t = now + mul_latency if kind == _MUL else now1
                        p_completion[pu] = t
                        if t == now1:
                            events_t1.append(uid)
                        else:
                            heappush(completion_events, (t, uid))
                        ac_alu_pth += 1
                        alu_slots -= 1
                    st_pinsts_executed += 1
                    hint = p_hint.get(uid)
                    if hint is not None:
                        branch_hints[hint[0]] = (t, hint[1])
                    ctx = p_ctx[pu]
                    ctx.in_flight -= 1
                    if ctx.fetched_all and ctx.in_flight == 0:
                        phys_used -= len(ctx.spawn.insts)
                        free_contexts += 1
                    rs_used_pth -= 1
                issued += 1
            deferred.extend(retry)
            if issued:
                active = True

        # ---- dispatch ----------------------------------------------- #
        n = 0
        while n < width and fp_len:
            if frontend_pipe[0] > now:
                break
            seq = fp_head
            kind = kind_arr[seq]
            if rob_len >= rob_capacity:
                break
            needs_rs = kind != _NOP
            if needs_rs and rs_used_main >= main_rs_cap:
                break
            writes = writes_arr[seq]
            if writes and phys_used >= phys_budget:
                break
            fp_popleft()
            fp_len -= 1
            fp_head += 1
            rob_append(seq)
            rob_len += 1
            ac_dispatched_main += 1
            if writes:
                phys_used += 1
            if needs_rs:
                rs_used_main += 1
                pending = 0
                producer = src1_arr[seq]
                if producer != NO_PRODUCER:
                    t = completion[producer]
                    if t == _NOT_DONE or t > now:
                        wakeup[producer].append(seq)
                        pending += 1
                producer = src2_arr[seq]
                if producer != NO_PRODUCER:
                    t = completion[producer]
                    if t == _NOT_DONE or t > now:
                        wakeup[producer].append(seq)
                        pending += 1
                if pending:
                    pending_main[seq] = pending
                else:
                    ready_append(seq)
            else:
                # NOPs complete instantly and can never have waiters:
                # dispatch is in-order, so any reader dispatches later and
                # sees the completion already set.  The reference's
                # (now, seq) event fires next cycle into an empty wakeup
                # list; eliding it changes nothing observable.
                completion[seq] = now
            if has_spawns:
                spawn_list = spawns_get(seq)
                if spawn_list:
                    for spawn in spawn_list:
                        st_spawns_attempted += 1
                        if free_contexts <= 0:
                            st_spawns_dropped += 1
                            continue
                        insts = spawn.insts
                        if phys_used + len(insts) > phys_budget:
                            st_spawns_dropped += 1
                            continue
                        free_contexts -= 1
                        phys_used += len(insts)
                        ctx = _Context(spawn, next_uid, now)
                        fetch_active.append(ctx)
                        next_uid += len(insts)
                        for spec in insts:
                            p_kind.append(_PCLASS_TO_KIND[spec.klass])
                            p_addr.append(spec.addr)
                            p_ctx.append(ctx)
                        k = len(insts)
                        p_completion.extend([_NOT_DONE] * k)
                        p_pending.extend([0] * k)
                        st_spawns_started += 1
            n += 1
        while n < width and pth_pipe:
            ready_at, ctx, idx = pth_pipe[0]
            if ready_at > now:
                break
            if rs_used_main + rs_used_pth >= rs_capacity:
                break
            pth_pipe.popleft()
            pp_len -= 1
            rs_used_pth += 1
            ac_dispatched_pth += 1
            spec = ctx.spawn.insts[idx]
            uid_base = ctx.uid_base
            uid = uid_base + idx
            if spec.hint_branch_seq >= 0:
                p_hint[uid] = (spec.hint_branch_seq, spec.hint_taken)
            pending = 0
            base_off = uid_base - n_main
            for d in spec.body_deps:
                t = p_completion[base_off + d]
                if t == _NOT_DONE or t > now:
                    wakeup[uid_base + d].append(uid)
                    pending += 1
            for producer in spec.livein_seqs:
                if producer < n_main:
                    t = completion[producer]
                else:
                    t = p_completion[producer - n_main]
                if t == _NOT_DONE or t > now:
                    wakeup[producer].append(uid)
                    pending += 1
            if pending:
                p_pending[uid - n_main] = pending
            else:
                ready_append(uid)
            n += 1
        if n:
            active = True

        # ---- fetch -------------------------------------------------- #
        fetched_any = False
        if fetch_active and pp_len < pipe_capacity:
            for ctx in fetch_active:
                if ctx.next_fetch > now:
                    continue
                body = ctx.spawn.insts
                block_start = ctx.fetch_idx
                block_end = min(block_start + width, len(body))
                for idx in range(block_start, block_end):
                    pth_pipe.append((now + frontend_depth, ctx, idx))
                    pp_len += 1
                    ctx.in_flight += 1
                    st_pinsts_fetched += 1
                ctx.fetch_idx = block_end
                ctx.next_fetch = now + pth_block_interval
                if ctx.fetch_idx >= len(body):
                    ctx.fetched_all = True
                    fetch_active.remove(ctx)
                ac_fetch_pth += 1
                fetched_any = True
                break
        if not fetched_any and fp_len < pipe_capacity:
            fetch_ok = True
            if pending_redirect is not None:
                if redirect_clear_at is None or now <= redirect_clear_at:
                    fetch_ok = False
                else:
                    pending_redirect = None
                    redirect_clear_at = None
                    fetch_line = -1  # refetch the target line
            if fetch_ok and now >= fetch_hold_until and next_seq < n_main:
                line = line_arr[next_seq]
                line_miss = False
                if line != fetch_line:
                    result = inst_fetch(pc_arr[next_seq] * INST_BYTES, now)
                    fetch_line = line
                    if not result.l1_hit:
                        line_ready_at = result.complete_at
                        # The fetch slot is consumed by the miss.
                        line_miss = True
                        fetched_any = True
                    else:
                        line_ready_at = now
                if not line_miss and now >= line_ready_at:
                    ac_fetch_main += 1
                    fetched = 0
                    dispatch_at = now + frontend_depth
                    while (
                        fetched < width
                        and next_seq < n_main
                        and fp_len < pipe_capacity
                    ):
                        idx = next_seq
                        if line_arr[idx] != fetch_line:
                            break
                        fp_append(dispatch_at)
                        fp_len += 1
                        next_seq += 1
                        fetched += 1
                        ctrl = ctrl_arr[idx]
                        if ctrl == _CTRL_BRANCH:
                            taken = taken_arr[idx]
                            st_branches += 1
                            ac_bpred += 1
                            predicted = pred_arr[idx]
                            if has_hints:
                                hint = branch_hints_get(idx)
                                if hint is not None and hint[0] <= now:
                                    st_hints_used += 1
                                    predicted = hint[1]
                            if predicted != taken:
                                st_mispredictions += 1
                                pending_redirect = idx
                                redirect_clear_at = None
                                break
                            if taken:
                                branch_next_pc = next_pc_arr[idx]
                                if btb_col is not None:
                                    if btb_col[idx]:
                                        st_btb_misses += 1
                                        fetch_hold_until = now + 2
                                else:
                                    pc = pc_arr[idx]
                                    target = btb_lookup(pc)
                                    if target != branch_next_pc:
                                        st_btb_misses += 1
                                        btb_update(pc, branch_next_pc)
                                        fetch_hold_until = now + 2
                                fetch_line = (
                                    branch_next_pc * INST_BYTES
                                ) >> line_shift
                                result = inst_fetch(
                                    branch_next_pc * INST_BYTES, now
                                )
                                if not result.l1_hit:
                                    line_ready_at = result.complete_at
                                break
                        elif ctrl == _CTRL_JUMP:
                            jump_next_pc = next_pc_arr[idx]
                            fetch_line = (
                                jump_next_pc * INST_BYTES
                            ) >> line_shift
                            result = inst_fetch(jump_next_pc * INST_BYTES, now)
                            if not result.l1_hit:
                                line_ready_at = result.complete_at
                            break
                    if fetched:
                        fetched_any = True
        if fetched_any:
            active = True

        if now > safety_limit:
            raise ExecutionError(
                f"simulation exceeded {safety_limit} cycles "
                f"({committed}/{n_main} committed)"
            )

        if committed >= n_main:
            attribute_cycles(1, ncommitted)
            now += 1
            break

        if active or ready:
            # attribute_cycles(1, ncommitted), inlined: this is the
            # every-cycle path and the closure's nonlocal stores are the
            # single hottest call in IPC-bound runs.
            r = ncommitted if ncommitted < width else width
            sl_retire += r
            slots = width - r
            if not rob_len:
                bd_fetch += 1
                if pending_redirect is not None:
                    sl_branch += slots
                else:
                    sl_fetch += slots
            else:
                head = rob[0]
                t = completion[head]
                if t != _NOT_DONE and t <= now:
                    bd_commit += 1
                    sl_exec += slots
                elif kind_arr[head] == _LOAD and (
                    (lk := load_kind_get(head)) == "mem" or lk == "l2"
                ):
                    if lk == "mem":
                        bd_mem += 1
                    else:
                        bd_l2 += 1
                    sl_load += slots
                elif rob_len >= rob_capacity:
                    bd_exec += 1
                    sl_rob += slots
                elif rs_used_pth and rs_used_main + rs_used_pth >= rs_capacity:
                    bd_exec += 1
                    sl_pth += slots
                elif rs_used_main >= main_rs_cap:
                    bd_exec += 1
                    sl_rs += slots
                else:
                    bd_exec += 1
                    sl_exec += slots
            now += 1
            continue

        # Nothing can happen until the next event: jump.  The reference
        # keeps *stale* candidates (a frontend-pipe head whose ready time
        # has already passed but which is blocked on ROB/RS/registers),
        # which pin its jump to ``now + 1`` and degrade miss-bound
        # phases to single-cycle stepping.  A structurally-blocked stage
        # can only unblock through commit or issue, and with ``ready``
        # empty both first require a completion event -- so when no load
        # is MSHR-deferred the engine jumps straight to the earliest
        # *future* event and attributes the skipped cycles identically
        # (the attribution inputs are all frozen until that event).
        #
        # With ``deferred`` non-empty the fall-through mirrors the
        # reference cycle for cycle: a store-allocated MSHR expires at a
        # fill time that has no completion event, so a deferred load's
        # per-cycle retry can succeed between events and the far jump
        # would skip it.
        if not deferred:
            candidates: List[int] = []
            if completion_events:
                candidates.append(completion_events[0][0])
            if fp_len and frontend_pipe[0] > now:
                candidates.append(frontend_pipe[0])
            if pth_pipe and pth_pipe[0][0] > now:
                candidates.append(pth_pipe[0][0])
            if (
                pending_redirect is not None
                and redirect_clear_at is not None
                and redirect_clear_at + 1 > now
            ):
                candidates.append(redirect_clear_at + 1)
            if line_ready_at > now:
                candidates.append(line_ready_at)
            if fetch_hold_until > now:
                candidates.append(fetch_hold_until)
            for ctx in fetch_active:
                if ctx.next_fetch > now:
                    candidates.append(ctx.next_fetch)
            if candidates:
                target = min(candidates)
                attribute_cycles(target - now)
                now = target
                continue
            # Only stale candidates (if any) remain: fall through to the
            # reference's single-cycle step / deadlock decision.
        candidates = []
        if completion_events:
            candidates.append(completion_events[0][0])
        if fp_len:
            candidates.append(frontend_pipe[0])
        if pth_pipe:
            candidates.append(pth_pipe[0][0])
        if pending_redirect is not None and redirect_clear_at is not None:
            candidates.append(redirect_clear_at + 1)
        if line_ready_at > now:
            candidates.append(line_ready_at)
        if fetch_hold_until > now:
            candidates.append(fetch_hold_until)
        for ctx in fetch_active:
            candidates.append(ctx.next_fetch)
        if not candidates:
            raise _deadlock_error(
                now, committed, n_main, rob, pc_arr, kind_arr,
                completion, fetch_active,
            )
        target = max(now + 1, min(candidates))
        attribute_cycles(target - now)
        now = target

    stats.cycles = now
    stats.committed = committed
    act.cycles = now
    stats.branches = st_branches
    stats.mispredictions = st_mispredictions
    stats.btb_misses = st_btb_misses
    stats.demand_l2_misses = st_demand_l2
    stats.pthread_l2_misses = st_pthread_l2
    stats.covered_misses_full = st_covered_full
    stats.covered_misses_partial = st_covered_partial
    stats.useful_prefetches = st_useful
    stats.branch_hints_used = st_hints_used
    stats.pinsts_fetched = st_pinsts_fetched
    stats.pinsts_executed = st_pinsts_executed
    stats.spawns_attempted = st_spawns_attempted
    stats.spawns_started = st_spawns_started
    stats.spawns_dropped_no_context = st_spawns_dropped
    act.committed_main = ac_committed
    act.dispatched_main = ac_dispatched_main
    act.dispatched_pth = ac_dispatched_pth
    act.fetch_blocks_main = ac_fetch_main
    act.fetch_blocks_pth = ac_fetch_pth
    act.bpred_accesses = ac_bpred
    act.dmem_accesses_main = ac_dmem_main
    act.dmem_accesses_pth = ac_dmem_pth
    act.l2_accesses_main = ac_l2_main
    act.l2_accesses_pth = ac_l2_pth
    act.alu_ops_main = ac_alu_main
    act.alu_ops_pth = ac_alu_pth
    breakdown = stats.breakdown
    breakdown.mem += bd_mem
    breakdown.l2 += bd_l2
    breakdown.exec += bd_exec
    breakdown.commit += bd_commit
    breakdown.fetch += bd_fetch
    stalls = stats.stalls
    stalls.retiring += sl_retire
    stalls.fetch_starved += sl_fetch
    stalls.branch_recovery += sl_branch
    stalls.load_miss += sl_load
    stalls.rob_full += sl_rob
    stalls.rs_full += sl_rs
    stalls.pthread_contention += sl_pth
    stalls.exec += sl_exec

    wall_s = time.perf_counter() - wall_start
    _ref._SIM_RUNS.add()
    _ref._SIM_CYCLES.add(now)
    _ref._SIM_RETIRED.add(committed)
    if wall_s > 0:
        _ref._SIM_RETIRE_RATE.set(round(committed / wall_s))
        _ref._SIM_CYCLE_RATE.set(round(now / wall_s))
    if obs.is_enabled("info"):
        obs.log_event(
            "sim.done",
            cycles=now,
            committed=committed,
            ipc=round(stats.ipc, 4),
            spawns=stats.spawns_started,
            pinsts=stats.pinsts_executed,
            stall_slots=stalls.as_dict(),
            wall_s=round(wall_s, 6),
            cycles_per_sec=round(now / wall_s) if wall_s else 0,
            retired_per_sec=round(committed / wall_s) if wall_s else 0,
        )
    return stats


def simulate_batch(
    trace: Trace,
    configs: List[MachineConfig],
    pthreads: Optional[PThreadProgram] = None,
    warm: bool = True,
    vector: bool = False,
    native: bool = False,
) -> List[SimStats]:
    """Advance one sealed trace through N machine configurations.

    The lock-step batch pass behind :mod:`repro.harness.batchplan`: every
    member shares the pipeline view, the branch-predictor outcome and
    BTB redirect columns, the fetch line ids, and (geometry permitting)
    the warmed cache image, while each config's ``SimStats`` --
    breakdowns, stall slots, energy activity -- is accumulated fully
    independently.  Results are positionally aligned with ``configs``.
    """
    return [
        simulate_fast(
            trace, config, pthreads, warm=warm, vector=vector, native=native
        )
        for config in configs
    ]
