/* C transliteration of repro/cpu/_kernel.py (the `native` backend).
 *
 * Operates on the same marshaled form: the C_* config block, flat
 * per-instruction columns, packed cache sets, and the flattened
 * p-thread program.  Produces the same O_* counter block plus the
 * ordered missed/misspc uid streams and (on deadlock) the fetch-state
 * snapshot.  Built opportunistically by repro/cpu/nativebuild.py and
 * loaded through ctypes; every constant below must stay value-identical
 * to _kernel.py (KERNEL_ABI is checked at load time).
 *
 * Data-structure substitutions vs the Python kernel, all order-proven
 * there (see its module docstring):
 *  - wakeup dict-of-lists  -> per-producer FIFO linked lists in a pool;
 *  - completion heap       -> binary heap on (t, uid) lexicographic;
 *  - MSHR insertion dict   -> insertion-ordered parallel arrays;
 *  - prefetched/partial sets -> open-addressing int64 hash sets;
 *  - live BTB OrderedDict  -> chained hash + doubly-linked LRU list;
 *  - rob/frontend/pth deques -> fixed-capacity rings.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define KERNEL_ABI 1
#define NOT_DONE (-1LL)
#define NO_FILL (1LL << 62)

enum { K_ALU, K_MUL, K_LOAD, K_STORE, K_BRANCH, K_NOP };
enum { CTRL_NONE, CTRL_BRANCH, CTRL_JUMP };
enum { STATUS_OK, STATUS_DEADLOCK, STATUS_SAFETY };

enum {
    F_RETRY = 1, F_L1_HIT = 2, F_L2_ACC = 4, F_MEM_ACC = 8,
    F_MERGED = 16, F_MERGED_PF = 32, F_PF_HIT = 64,
};

/* cfg block indices -- order matches _kernel.py exactly. */
enum {
    C_N_MAIN, C_WIDTH, C_COMMIT_WIDTH, C_FRONTEND_DEPTH, C_RS_CAPACITY,
    C_ROB_CAPACITY, C_PHYS_BUDGET, C_PIPE_CAPACITY, C_PTH_BLOCK_INTERVAL,
    C_INT_ALUS, C_LOAD_PORTS, C_STORE_PORTS, C_MUL_LATENCY,
    C_ISSUE_POOL_LIMIT, C_MAIN_RS_CAP, C_FREE_CONTEXTS, C_SAFETY_LIMIT,
    C_INST_BYTES, C_LINE_SHIFT, C_L2_LINE_SHIFT, C_HAS_SPAWNS,
    C_HAS_HINTS, C_USE_BTB_COL, C_BTB_ENTRIES, C_PTHREAD_FILL_L1,
    C_NO_PRODUCER, C_DO_WARM,
    C_IC_OFFSET_BITS, C_IC_INDEX_BITS, C_IC_INDEX_MASK, C_IC_ASSOC,
    C_IC_NSETS, C_IC_HIT_LAT,
    C_DC_OFFSET_BITS, C_DC_INDEX_BITS, C_DC_INDEX_MASK, C_DC_ASSOC,
    C_DC_NSETS, C_DC_HIT_LAT,
    C_L2_OFFSET_BITS, C_L2_INDEX_BITS, C_L2_INDEX_MASK, C_L2_ASSOC,
    C_L2_NSETS, C_L2_HIT_LAT,
    C_ITLB_ENTRIES, C_DTLB_ENTRIES, C_PAGE_SHIFT, C_TLB_MISS_LAT,
    C_MSHR_ENTRIES, C_MEMORY_LATENCY,
    C_L2BUS_CYC_DLINE, C_L2BUS_CYC_ILINE, C_MEMBUS_CYC_L2LINE,
    C_N_SPAWNS, C_N_PINSTS, C_DEP_LEN, C_LIVE_LEN,
    C_LEN,
};

/* out block indices -- order matches _kernel.py exactly. */
enum {
    O_CYCLES, O_COMMITTED, O_BRANCHES, O_MISPREDICTIONS, O_BTB_MISSES,
    O_DEMAND_L2, O_PTHREAD_L2, O_COVERED_FULL, O_COVERED_PARTIAL,
    O_USEFUL, O_HINTS_USED, O_PINSTS_FETCHED, O_PINSTS_EXECUTED,
    O_SPAWNS_ATTEMPTED, O_SPAWNS_STARTED, O_SPAWNS_DROPPED,
    O_AC_COMMITTED, O_AC_DISP_MAIN, O_AC_DISP_PTH, O_AC_FETCH_MAIN,
    O_AC_FETCH_PTH, O_AC_BPRED, O_AC_DMEM_MAIN, O_AC_DMEM_PTH,
    O_AC_L2_MAIN, O_AC_L2_PTH, O_AC_ALU_MAIN, O_AC_ALU_PTH,
    O_BD_MEM, O_BD_L2, O_BD_EXEC, O_BD_COMMIT, O_BD_FETCH,
    O_SL_RETIRE, O_SL_FETCH, O_SL_BRANCH, O_SL_LOAD, O_SL_ROB,
    O_SL_RS, O_SL_PTH, O_SL_EXEC,
    O_STATUS, O_DEAD_ROB_LEN, O_DEAD_HEAD_SEQ, O_DEAD_HEAD_DONE,
    O_N_MISSED, O_N_MISSPC, O_N_FA,
    O_LEN,
};

/* int64 input-pointer table -- order matches kerneldriver._run_native. */
enum {
    I_PC, I_ADDR, I_SRC1, I_SRC2, I_NEXT_PC, I_LINE,
    I_SP_TRIGGER, I_SP_STATIC, I_SP_INST_LO, I_SP_INST_HI,
    I_PI_ADDR, I_PI_HINT_SEQ, I_PI_DEP_LO, I_PI_DEP_HI, I_DEP_FLAT,
    I_PI_LIVE_LO, I_PI_LIVE_HI, I_LIVE_FLAT,
    I_WARM_IC_WAYS, I_WARM_IC_OCC, I_WARM_DC_WAYS, I_WARM_DC_OCC,
    I_WARM_L2_WAYS, I_WARM_L2_OCC,
    I_LEN,
};

/* uint8 input-pointer table. */
enum {
    B_KIND, B_CTRL, B_WRITES, B_TAKEN, B_PRED, B_BTB,
    B_PI_KIND, B_PI_HINT_TAKEN,
    B_LEN,
};

/* ---------------------------------------------------------------- */
/* Caches: flat ways[set*assoc + i] packed tag<<1|dirty, LRU-first.  */

typedef struct {
    int64_t *ways;
    int64_t *occ;
    int64_t ob, ib, im, assoc;
} Cache;

static int cache_access(Cache *c, int64_t addr, int64_t wbit) {
    int64_t line = addr >> c->ob;
    int64_t tag2 = (line >> c->ib) << 1;
    int64_t *w = c->ways + (line & c->im) * c->assoc;
    int64_t n = c->occ[line & c->im];
    for (int64_t i = 0; i < n; i++) {
        int64_t e = w[i];
        if ((e & ~1LL) == tag2) {
            memmove(w + i, w + i + 1, (size_t)(n - 1 - i) * sizeof(int64_t));
            w[n - 1] = e | wbit;
            return 1;
        }
    }
    return 0;
}

static int64_t cache_fill(Cache *c, int64_t addr, int64_t wbit) {
    int64_t line = addr >> c->ob;
    int64_t index = line & c->im;
    int64_t tag2 = (line >> c->ib) << 1;
    int64_t *w = c->ways + index * c->assoc;
    int64_t n = c->occ[index];
    for (int64_t i = 0; i < n; i++) {
        int64_t e = w[i];
        if ((e & ~1LL) == tag2) { /* already present (racing fills) */
            memmove(w + i, w + i + 1, (size_t)(n - 1 - i) * sizeof(int64_t));
            w[n - 1] = e | wbit;
            return -1;
        }
    }
    int64_t victim_line = -1;
    if (n >= c->assoc) {
        int64_t v = w[0];
        memmove(w, w + 1, (size_t)(n - 1) * sizeof(int64_t));
        n -= 1;
        if (v & 1)
            victim_line = (((v >> 1) << c->ib) | index) << c->ob;
    }
    w[n] = tag2 | wbit;
    c->occ[index] = n + 1;
    return victim_line;
}

/* ---------------------------------------------------------------- */
/* TLBs: LRU-first page array.                                      */

typedef struct {
    int64_t *pages;
    int64_t len, entries;
} Tlb;

static int64_t tlb_access(Tlb *t, int64_t page, int64_t miss_lat) {
    int64_t n = t->len;
    for (int64_t i = 0; i < n; i++) {
        if (t->pages[i] == page) {
            memmove(t->pages + i, t->pages + i + 1,
                    (size_t)(n - 1 - i) * sizeof(int64_t));
            t->pages[n - 1] = page;
            return 0;
        }
    }
    if (n >= t->entries) {
        memmove(t->pages, t->pages + 1, (size_t)(n - 1) * sizeof(int64_t));
        n -= 1;
    }
    t->pages[n] = page;
    t->len = n + 1;
    return miss_lat;
}

/* ---------------------------------------------------------------- */
/* Open-addressing int64 hash set (linear probe, tombstones).       */

#define HS_EMPTY INT64_MIN
#define HS_TOMB (INT64_MIN + 1)

typedef struct {
    int64_t *keys;
    uint64_t mask;
} HSet;

static uint64_t hs_hash(int64_t x) {
    uint64_t h = (uint64_t)x * 0x9E3779B97F4A7C15ULL;
    return h ^ (h >> 32);
}

static int hs_contains(HSet *s, int64_t key) {
    uint64_t i = hs_hash(key) & s->mask;
    for (;;) {
        int64_t k = s->keys[i];
        if (k == key) return 1;
        if (k == HS_EMPTY) return 0;
        i = (i + 1) & s->mask;
    }
}

static void hs_add(HSet *s, int64_t key) {
    uint64_t i = hs_hash(key) & s->mask;
    uint64_t slot = (uint64_t)-1;
    for (;;) {
        int64_t k = s->keys[i];
        if (k == key) return;
        if (k == HS_TOMB && slot == (uint64_t)-1) slot = i;
        if (k == HS_EMPTY) {
            s->keys[slot == (uint64_t)-1 ? i : slot] = key;
            return;
        }
        i = (i + 1) & s->mask;
    }
}

static void hs_discard(HSet *s, int64_t key) {
    uint64_t i = hs_hash(key) & s->mask;
    for (;;) {
        int64_t k = s->keys[i];
        if (k == key) { s->keys[i] = HS_TOMB; return; }
        if (k == HS_EMPTY) return;
        i = (i + 1) & s->mask;
    }
}

/* ---------------------------------------------------------------- */
/* Live BTB: chained hash map + doubly-linked LRU (OrderedDict).    */

typedef struct {
    int64_t *pc, *target;
    int32_t *prev, *next;   /* LRU links: head oldest, tail newest */
    int32_t *hnext;         /* hash-chain links */
    int32_t *bucket;        /* bucket heads */
    uint64_t bmask;
    int32_t head, tail, count, cap;
} Btb;

static int32_t btb_find(Btb *b, int64_t pc) {
    int32_t n = b->bucket[hs_hash(pc) & b->bmask];
    while (n != -1) {
        if (b->pc[n] == pc) return n;
        n = b->hnext[n];
    }
    return -1;
}

static void btb_lru_unlink(Btb *b, int32_t n) {
    int32_t p = b->prev[n], q = b->next[n];
    if (p != -1) b->next[p] = q; else b->head = q;
    if (q != -1) b->prev[q] = p; else b->tail = p;
}

static void btb_lru_push_tail(Btb *b, int32_t n) {
    b->prev[n] = b->tail;
    b->next[n] = -1;
    if (b->tail != -1) b->next[b->tail] = n; else b->head = n;
    b->tail = n;
}

static void btb_chain_remove(Btb *b, int32_t n) {
    uint64_t i = hs_hash(b->pc[n]) & b->bmask;
    int32_t cur = b->bucket[i], prev = -1;
    while (cur != -1) {
        if (cur == n) {
            if (prev == -1) b->bucket[i] = b->hnext[cur];
            else b->hnext[prev] = b->hnext[cur];
            return;
        }
        prev = cur;
        cur = b->hnext[cur];
    }
}

static int64_t btb_lookup(Btb *b, int64_t pc) {
    int32_t n = btb_find(b, pc);
    if (n == -1) return -1;
    btb_lru_unlink(b, n);        /* move_to_end */
    btb_lru_push_tail(b, n);
    return b->target[n];
}

static void btb_update(Btb *b, int64_t pc, int64_t target) {
    int32_t n = btb_find(b, pc);
    if (n != -1) {
        b->target[n] = target;
        btb_lru_unlink(b, n);
        btb_lru_push_tail(b, n);
        return;
    }
    if (b->count >= b->cap) {    /* evict LRU head */
        n = b->head;
        btb_lru_unlink(b, n);
        btb_chain_remove(b, n);
    } else {
        n = b->count++;
    }
    b->pc[n] = pc;
    b->target[n] = target;
    uint64_t i = hs_hash(pc) & b->bmask;
    b->hnext[n] = b->bucket[i];
    b->bucket[i] = (int32_t)n;
    btb_lru_push_tail(b, n);
}

/* ---------------------------------------------------------------- */
/* Binary min-heap on (t, uid) lexicographic.                       */

typedef struct { int64_t t, uid; } Ev;

static void heap_push(Ev *h, int64_t *n, int64_t t, int64_t uid) {
    int64_t i = (*n)++;
    h[i].t = t;
    h[i].uid = uid;
    while (i > 0) {
        int64_t p = (i - 1) >> 1;
        if (h[p].t < t || (h[p].t == t && h[p].uid <= uid)) break;
        h[i] = h[p];
        h[p].t = t; h[p].uid = uid;
        i = p;
    }
}

static Ev heap_pop(Ev *h, int64_t *n) {
    Ev top = h[0];
    int64_t m = --(*n);
    Ev last = h[m];
    int64_t i = 0;
    for (;;) {
        int64_t l = 2 * i + 1, r = l + 1, s = i;
        int64_t st = last.t, su = last.uid;
        if (l < m && (h[l].t < st || (h[l].t == st && h[l].uid < su))) {
            s = l; st = h[l].t; su = h[l].uid;
        }
        if (r < m && (h[r].t < st || (h[r].t == st && h[r].uid < su))) {
            s = r;
        }
        if (s == i) break;
        h[i] = h[s];
        i = s;
    }
    h[i] = last;
    return top;
}

static void isort64(int64_t *a, int64_t n) {
    for (int64_t i = 1; i < n; i++) {
        int64_t v = a[i], j = i - 1;
        while (j >= 0 && a[j] > v) { a[j + 1] = a[j]; j--; }
        a[j + 1] = v;
    }
}

static uint64_t pow2_at_least(uint64_t n) {
    uint64_t p = 16;
    while (p < n) p <<= 1;
    return p;
}

/* ---------------------------------------------------------------- */
/* MSHR + memory-access state shared by the access helpers.         */

typedef struct {
    Cache ic, dc, l2;
    Tlb itlb, dtlb;
    int64_t *m_line, *m_ent;        /* insertion-ordered MSHR entries */
    int64_t mshr_n, mshr_entries, mshr_next_fill;
    int64_t l2bus_free, membus_free;
    HSet prefetched;
    int64_t dc_hitlat, ic_hitlat, l2_hitlat;
    int64_t memory_latency, tlb_miss_lat, page_shift;
    int64_t l2bus_cyc_dline, l2bus_cyc_iline, membus_cyc_l2line;
    int64_t pthread_fill_l1;
} Mem;

static void mshr_sync(Mem *m, int64_t t) {
    if (t < m->mshr_next_fill) return;
    int64_t n = m->mshr_n, j = 0, next = NO_FILL;
    for (int64_t i = 0; i < n; i++) {
        int64_t e = m->m_ent[i];
        int64_t ft = e >> 3;
        if (ft <= t) {
            int64_t line = m->m_line[i];
            int64_t victim = cache_fill(&m->l2, line, 0);
            if (victim != -1) {
                int64_t start = ft > m->membus_free ? ft : m->membus_free;
                m->membus_free = start + m->membus_cyc_l2line;
            }
            if (e & 2) cache_fill(&m->dc, line, e & 1);
            if (e & 4) hs_add(&m->prefetched, line);
            else hs_discard(&m->prefetched, line);
        } else {
            m->m_line[j] = m->m_line[i];
            m->m_ent[j] = e;
            if (ft < next) next = ft;
            j++;
        }
    }
    m->mshr_n = j;
    m->mshr_next_fill = next;
}

static int64_t data_access(Mem *m, int64_t addr, int64_t now,
                           int is_write, int is_pth) {
    int64_t t = now + tlb_access(&m->dtlb, addr >> m->page_shift,
                                 m->tlb_miss_lat);
    int fill_l1 = !is_pth || m->pthread_fill_l1;
    mshr_sync(m, t);
    int64_t wbit = is_write ? 1 : 0;
    if (cache_access(&m->dc, addr, wbit))
        return ((t + m->dc_hitlat) << 8) | F_L1_HIT;
    t += m->dc_hitlat;
    int64_t line = (addr >> m->l2.ob) << m->l2.ob;
    mshr_sync(m, t);
    for (int64_t i = 0; i < m->mshr_n; i++) {
        if (m->m_line[i] == line) {
            int64_t e = m->m_ent[i];
            int64_t flags = F_MERGED;
            if (!is_pth && (e & 4)) flags |= F_MERGED_PF;
            m->m_ent[i] = e | (fill_l1 ? 2 : 0) | wbit;
            int64_t floor_t = t + m->l2_hitlat;
            int64_t outstanding = e >> 3;
            int64_t complete = outstanding > floor_t ? outstanding : floor_t;
            return (complete << 8) | flags;
        }
    }
    if (cache_access(&m->l2, addr, 0)) {
        int64_t req = t + m->l2_hitlat;
        int64_t start = req > m->l2bus_free ? req : m->l2bus_free;
        int64_t done = start + m->l2bus_cyc_dline;
        m->l2bus_free = done;
        if (fill_l1) cache_fill(&m->dc, addr, wbit);
        int64_t flags = F_L2_ACC;
        if (!is_pth && hs_contains(&m->prefetched, line)) {
            hs_discard(&m->prefetched, line);
            flags |= F_PF_HIT;
        }
        return (done << 8) | flags;
    }
    if (m->mshr_n >= m->mshr_entries)
        return (t << 8) | F_RETRY;
    int64_t mem_done = t + m->l2_hitlat + m->memory_latency;
    int64_t start = mem_done > m->membus_free ? mem_done : m->membus_free;
    int64_t fill_time = start + m->membus_cyc_l2line;
    m->membus_free = fill_time;
    m->m_line[m->mshr_n] = line;
    m->m_ent[m->mshr_n] =
        (fill_time << 3) | (is_pth ? 4 : 0) | (fill_l1 ? 2 : 0) | wbit;
    m->mshr_n++;
    if (fill_time < m->mshr_next_fill) m->mshr_next_fill = fill_time;
    return (fill_time << 8) | F_L2_ACC | F_MEM_ACC;
}

static int64_t inst_fetch(Mem *m, int64_t addr, int64_t now) {
    int64_t t = now + tlb_access(&m->itlb, addr >> m->page_shift,
                                 m->tlb_miss_lat);
    if (cache_access(&m->ic, addr, 0))
        return ((t + m->ic_hitlat) << 8) | F_L1_HIT;
    t += m->ic_hitlat;
    if (cache_access(&m->l2, addr, 0)) {
        int64_t req = t + m->l2_hitlat;
        int64_t start = req > m->l2bus_free ? req : m->l2bus_free;
        int64_t done = start + m->l2bus_cyc_iline;
        m->l2bus_free = done;
        cache_fill(&m->ic, addr, 0);
        return (done << 8) | F_L2_ACC;
    }
    int64_t mem_done = t + m->l2_hitlat + m->memory_latency;
    int64_t start = mem_done > m->membus_free ? mem_done : m->membus_free;
    int64_t fill_time = start + m->membus_cyc_l2line;
    m->membus_free = fill_time;
    cache_fill(&m->l2, addr, 0);
    cache_fill(&m->ic, addr, 0);
    return (fill_time << 8) | F_L2_ACC | F_MEM_ACC;
}

/* ---------------------------------------------------------------- */

int64_t repro_kernel_abi(void) { return KERNEL_ABI; }

#define MAX_ALLOCS 64

typedef struct {
    void *ptrs[MAX_ALLOCS];
    int n;
} Arena;

static void *arena_alloc(Arena *a, size_t bytes) {
    if (a->n >= MAX_ALLOCS) return NULL;
    void *p = malloc(bytes ? bytes : 1);
    if (p) a->ptrs[a->n++] = p;
    return p;
}

static void arena_free(Arena *a) {
    for (int i = 0; i < a->n; i++) free(a->ptrs[i]);
}

int repro_kernel_run(
    int64_t *cfg,
    int64_t **I,
    uint8_t **B,
    int64_t *out,
    int64_t *missed_out,
    int64_t *misspc_out,
    int64_t *fa_out
) {
    Arena ar = { {0}, 0 };
#define ALLOC64(var, count) \
    int64_t *var = (int64_t *)arena_alloc(&ar, (size_t)(count) * 8); \
    if (!var) { arena_free(&ar); return 1; }
#define ALLOC32(var, count) \
    int32_t *var = (int32_t *)arena_alloc(&ar, (size_t)(count) * 4); \
    if (!var) { arena_free(&ar); return 1; }
#define ALLOC8(var, count) \
    uint8_t *var = (uint8_t *)arena_alloc(&ar, (size_t)(count)); \
    if (!var) { arena_free(&ar); return 1; }

    const int64_t n_main = cfg[C_N_MAIN];
    const int64_t width = cfg[C_WIDTH];
    const int64_t commit_width = cfg[C_COMMIT_WIDTH];
    const int64_t frontend_depth = cfg[C_FRONTEND_DEPTH];
    const int64_t rs_capacity = cfg[C_RS_CAPACITY];
    const int64_t rob_capacity = cfg[C_ROB_CAPACITY];
    const int64_t phys_budget = cfg[C_PHYS_BUDGET];
    const int64_t pipe_capacity = cfg[C_PIPE_CAPACITY];
    const int64_t pth_block_interval = cfg[C_PTH_BLOCK_INTERVAL];
    const int64_t int_alus = cfg[C_INT_ALUS];
    const int64_t load_ports = cfg[C_LOAD_PORTS];
    const int64_t store_ports = cfg[C_STORE_PORTS];
    const int64_t mul_latency = cfg[C_MUL_LATENCY];
    const int64_t issue_pool_limit = cfg[C_ISSUE_POOL_LIMIT];
    const int64_t main_rs_cap = cfg[C_MAIN_RS_CAP];
    const int64_t safety_limit = cfg[C_SAFETY_LIMIT];
    const int64_t inst_bytes = cfg[C_INST_BYTES];
    const int64_t line_shift = cfg[C_LINE_SHIFT];
    const int64_t l2_line_shift = cfg[C_L2_LINE_SHIFT];
    const int64_t has_spawns = cfg[C_HAS_SPAWNS];
    const int64_t has_hints = cfg[C_HAS_HINTS];
    const int64_t use_btb_col = cfg[C_USE_BTB_COL];
    const int64_t btb_entries = cfg[C_BTB_ENTRIES];
    const int64_t no_producer = cfg[C_NO_PRODUCER];
    const int64_t n_spawns = cfg[C_N_SPAWNS];
    const int64_t n_pinsts = cfg[C_N_PINSTS];
    int64_t free_contexts = cfg[C_FREE_CONTEXTS];

    const int64_t *pc_arr = I[I_PC];
    const int64_t *addr_arr = I[I_ADDR];
    const int64_t *src1_arr = I[I_SRC1];
    const int64_t *src2_arr = I[I_SRC2];
    const int64_t *next_pc_arr = I[I_NEXT_PC];
    const int64_t *line_arr = I[I_LINE];
    const int64_t *sp_trigger = I[I_SP_TRIGGER];
    const int64_t *sp_static = I[I_SP_STATIC];
    const int64_t *sp_inst_lo = I[I_SP_INST_LO];
    const int64_t *sp_inst_hi = I[I_SP_INST_HI];
    const int64_t *pi_addr = I[I_PI_ADDR];
    const int64_t *pi_hint_seq = I[I_PI_HINT_SEQ];
    const int64_t *pi_dep_lo = I[I_PI_DEP_LO];
    const int64_t *pi_dep_hi = I[I_PI_DEP_HI];
    const int64_t *dep_flat = I[I_DEP_FLAT];
    const int64_t *pi_live_lo = I[I_PI_LIVE_LO];
    const int64_t *pi_live_hi = I[I_PI_LIVE_HI];
    const int64_t *live_flat = I[I_LIVE_FLAT];
    const uint8_t *kind_arr = B[B_KIND];
    const uint8_t *ctrl_arr = B[B_CTRL];
    const uint8_t *writes_arr = B[B_WRITES];
    const uint8_t *taken_arr = B[B_TAKEN];
    const uint8_t *pred_arr = B[B_PRED];
    const uint8_t *btb_col = B[B_BTB];
    const uint8_t *pi_kind = B[B_PI_KIND];
    const uint8_t *pi_hint_taken = B[B_PI_HINT_TAKEN];

    /* ---- memory subsystem -------------------------------------- */
    Mem mem;
    memset(&mem, 0, sizeof(mem));
    mem.ic.ob = cfg[C_IC_OFFSET_BITS]; mem.ic.ib = cfg[C_IC_INDEX_BITS];
    mem.ic.im = cfg[C_IC_INDEX_MASK]; mem.ic.assoc = cfg[C_IC_ASSOC];
    mem.dc.ob = cfg[C_DC_OFFSET_BITS]; mem.dc.ib = cfg[C_DC_INDEX_BITS];
    mem.dc.im = cfg[C_DC_INDEX_MASK]; mem.dc.assoc = cfg[C_DC_ASSOC];
    mem.l2.ob = cfg[C_L2_OFFSET_BITS]; mem.l2.ib = cfg[C_L2_INDEX_BITS];
    mem.l2.im = cfg[C_L2_INDEX_MASK]; mem.l2.assoc = cfg[C_L2_ASSOC];
    const int64_t ic_nsets = cfg[C_IC_NSETS];
    const int64_t dc_nsets = cfg[C_DC_NSETS];
    const int64_t l2_nsets = cfg[C_L2_NSETS];
    ALLOC64(ic_ways, ic_nsets * mem.ic.assoc);
    ALLOC64(ic_occ, ic_nsets);
    ALLOC64(dc_ways, dc_nsets * mem.dc.assoc);
    ALLOC64(dc_occ, dc_nsets);
    ALLOC64(l2_ways, l2_nsets * mem.l2.assoc);
    ALLOC64(l2_occ, l2_nsets);
    mem.ic.ways = ic_ways; mem.ic.occ = ic_occ;
    mem.dc.ways = dc_ways; mem.dc.occ = dc_occ;
    mem.l2.ways = l2_ways; mem.l2.occ = l2_occ;
    if (cfg[C_DO_WARM]) {
        memcpy(ic_ways, I[I_WARM_IC_WAYS],
               (size_t)(ic_nsets * mem.ic.assoc) * 8);
        memcpy(ic_occ, I[I_WARM_IC_OCC], (size_t)ic_nsets * 8);
        memcpy(dc_ways, I[I_WARM_DC_WAYS],
               (size_t)(dc_nsets * mem.dc.assoc) * 8);
        memcpy(dc_occ, I[I_WARM_DC_OCC], (size_t)dc_nsets * 8);
        memcpy(l2_ways, I[I_WARM_L2_WAYS],
               (size_t)(l2_nsets * mem.l2.assoc) * 8);
        memcpy(l2_occ, I[I_WARM_L2_OCC], (size_t)l2_nsets * 8);
    } else {
        memset(ic_occ, 0, (size_t)ic_nsets * 8);
        memset(dc_occ, 0, (size_t)dc_nsets * 8);
        memset(l2_occ, 0, (size_t)l2_nsets * 8);
    }
    ALLOC64(itlb_pages, cfg[C_ITLB_ENTRIES]);
    ALLOC64(dtlb_pages, cfg[C_DTLB_ENTRIES]);
    mem.itlb.pages = itlb_pages; mem.itlb.entries = cfg[C_ITLB_ENTRIES];
    mem.dtlb.pages = dtlb_pages; mem.dtlb.entries = cfg[C_DTLB_ENTRIES];
    mem.mshr_entries = cfg[C_MSHR_ENTRIES];
    ALLOC64(m_line, mem.mshr_entries);
    ALLOC64(m_ent, mem.mshr_entries);
    mem.m_line = m_line; mem.m_ent = m_ent;
    mem.mshr_next_fill = NO_FILL;
    {
        uint64_t pcap = pow2_at_least((uint64_t)(4 * (n_pinsts + 16)));
        ALLOC64(pf_keys, (int64_t)pcap);
        for (uint64_t i = 0; i < pcap; i++) pf_keys[i] = HS_EMPTY;
        mem.prefetched.keys = pf_keys;
        mem.prefetched.mask = pcap - 1;
    }
    mem.dc_hitlat = cfg[C_DC_HIT_LAT];
    mem.ic_hitlat = cfg[C_IC_HIT_LAT];
    mem.l2_hitlat = cfg[C_L2_HIT_LAT];
    mem.memory_latency = cfg[C_MEMORY_LATENCY];
    mem.tlb_miss_lat = cfg[C_TLB_MISS_LAT];
    mem.page_shift = cfg[C_PAGE_SHIFT];
    mem.l2bus_cyc_dline = cfg[C_L2BUS_CYC_DLINE];
    mem.l2bus_cyc_iline = cfg[C_L2BUS_CYC_ILINE];
    mem.membus_cyc_l2line = cfg[C_MEMBUS_CYC_L2LINE];
    mem.pthread_fill_l1 = cfg[C_PTHREAD_FILL_L1];

    /* ---- live BTB (branch-hint mode only) ---------------------- */
    Btb btb;
    memset(&btb, 0, sizeof(btb));
    btb.head = btb.tail = -1;
    if (!use_btb_col && n_main) {
        uint64_t nb = pow2_at_least((uint64_t)(2 * btb_entries + 2));
        ALLOC64(btb_pc, btb_entries);
        ALLOC64(btb_target, btb_entries);
        ALLOC32(btb_prev, btb_entries);
        ALLOC32(btb_next, btb_entries);
        ALLOC32(btb_hnext, btb_entries);
        ALLOC32(btb_bucket, (int64_t)nb);
        for (uint64_t i = 0; i < nb; i++) btb_bucket[i] = -1;
        btb.pc = btb_pc; btb.target = btb_target;
        btb.prev = btb_prev; btb.next = btb_next;
        btb.hnext = btb_hnext; btb.bucket = btb_bucket;
        btb.bmask = nb - 1;
        btb.cap = (int32_t)btb_entries;
    }

    /* ---- scheduler state --------------------------------------- */
    const int64_t uid_space = n_main + n_pinsts;
    ALLOC64(completion, n_main);
    memset(completion, 0xFF, (size_t)n_main * 8);       /* NOT_DONE */
    ALLOC64(pending_main, n_main);
    memset(pending_main, 0, (size_t)n_main * 8);
    ALLOC64(p_completion, n_pinsts);
    ALLOC64(p_pending, n_pinsts);
    ALLOC64(p_addr_dyn, n_pinsts);
    ALLOC64(p_ctx, n_pinsts);
    ALLOC64(p_spec, n_pinsts);
    ALLOC8(p_kind_dyn, n_pinsts);
    int64_t p_len = 0;

    /* wakeup: per-producer FIFO linked lists over a node pool */
    const int64_t wk_pool_cap =
        2 * n_main + cfg[C_DEP_LEN] + cfg[C_LIVE_LEN] + 8;
    ALLOC32(wk_head, uid_space + 1);
    ALLOC32(wk_tail, uid_space + 1);
    memset(wk_head, 0xFF, (size_t)(uid_space + 1) * 4);  /* -1 */
    memset(wk_tail, 0xFF, (size_t)(uid_space + 1) * 4);
    ALLOC64(wk_uid, wk_pool_cap);
    ALLOC32(wk_next, wk_pool_cap);
    int64_t wk_n = 0;

    const int64_t ready_cap = main_rs_cap + rs_capacity + 16;
    ALLOC64(ready, ready_cap);
    int64_t n_ready = 0;
    ALLOC64(deferred, issue_pool_limit + 8);
    int64_t n_deferred = 0;
    ALLOC64(pool, issue_pool_limit + 8);
    ALLOC64(retry, issue_pool_limit + 8);

    const int64_t heap_cap =
        rob_capacity + n_pinsts + issue_pool_limit + 64;
    Ev *cheap = (Ev *)arena_alloc(&ar, (size_t)heap_cap * sizeof(Ev));
    if (!cheap) { arena_free(&ar); return 1; }
    int64_t n_heap = 0;
    ALLOC64(events_t1, issue_pool_limit + 8);
    int64_t n_events_t1 = 0;

    ALLOC64(rob, rob_capacity);
    int64_t rob_head_i = 0, rob_len = 0;
    ALLOC64(frontend_pipe, pipe_capacity + 1);
    const int64_t fp_cap = pipe_capacity + 1;
    int64_t fp_head_i = 0, fp_len = 0, fp_tail_i = 0, fp_head = 0;
    const int64_t pp_cap = pipe_capacity + width + 1;
    ALLOC64(pp_at, pp_cap);
    ALLOC32(pp_ci, pp_cap);
    ALLOC32(pp_idx, pp_cap);
    int64_t pp_head_i = 0, pp_len = 0, pp_tail_i = 0;

    int64_t rs_used_main = 0, rs_used_pth = 0, phys_used = 0;
    int64_t next_seq = 0, fetch_line = -1;
    int64_t line_ready_at = 0, fetch_hold_until = 0;
    int64_t pending_redirect = -1, redirect_clear_at = NOT_DONE;

    ALLOC8(load_kind, n_main);
    memset(load_kind, 0, (size_t)n_main);
    HSet partial;
    {
        uint64_t pcap = pow2_at_least((uint64_t)(2 * (n_main + 16)));
        ALLOC64(pt_keys, (int64_t)pcap);
        for (uint64_t i = 0; i < pcap; i++) pt_keys[i] = HS_EMPTY;
        partial.keys = pt_keys;
        partial.mask = pcap - 1;
    }
    int64_t *hint_time = NULL;
    uint8_t *hint_dir = NULL;
    if (has_hints) {
        ALLOC64(ht, n_main);
        memset(ht, 0xFF, (size_t)n_main * 8);            /* NOT_DONE */
        ALLOC8(hd, n_main);
        memset(hd, 0, (size_t)n_main);
        hint_time = ht;
        hint_dir = hd;
    }

    ALLOC64(ctx_spawn, n_spawns + 1);
    ALLOC64(ctx_uid_base, n_spawns + 1);
    ALLOC64(ctx_fetch_idx, n_spawns + 1);
    ALLOC64(ctx_next_fetch, n_spawns + 1);
    ALLOC64(ctx_in_flight, n_spawns + 1);
    ALLOC64(ctx_fetched_all, n_spawns + 1);
    ALLOC64(fetch_active, n_spawns + 1);
    int64_t n_ctx = 0, n_fetch_active = 0, sp_next = 0;

    int64_t next_uid = n_main;
    int64_t now = 0, committed = 0;

    int64_t st_branches = 0, st_mispredictions = 0, st_btb_misses = 0;
    int64_t st_demand_l2 = 0, st_pthread_l2 = 0;
    int64_t st_covered_full = 0, st_covered_partial = 0, st_useful = 0;
    int64_t st_hints_used = 0;
    int64_t st_pinsts_fetched = 0, st_pinsts_executed = 0;
    int64_t st_spawns_attempted = 0, st_spawns_started = 0;
    int64_t st_spawns_dropped = 0;
    int64_t ac_committed = 0, ac_dispatched_main = 0, ac_dispatched_pth = 0;
    int64_t ac_fetch_main = 0, ac_fetch_pth = 0, ac_bpred = 0;
    int64_t ac_dmem_main = 0, ac_dmem_pth = 0;
    int64_t ac_l2_main = 0, ac_l2_pth = 0;
    int64_t ac_alu_main = 0, ac_alu_pth = 0;
    int64_t bd_mem = 0, bd_l2 = 0, bd_exec = 0, bd_commit = 0, bd_fetch = 0;
    int64_t sl_retire = 0, sl_fetch = 0, sl_branch = 0, sl_load = 0;
    int64_t sl_rob = 0, sl_rs = 0, sl_pth = 0, sl_exec = 0;

    int64_t n_missed = 0, n_misspc = 0;
    int64_t status = STATUS_OK, n_fa = 0;

    /* attribute_cycles(n, retired) -- written as a macro so the stall
     * classification reads the live loop locals, exactly like the
     * Python closure. */
#define ATTRIBUTE_CYCLES(n_cyc, retired) do {                            \
        int64_t r_ = (retired) < width ? (retired) : width;              \
        sl_retire += r_;                                                 \
        int64_t slots_ = width * (n_cyc) - r_;                           \
        if (!rob_len) {                                                  \
            bd_fetch += (n_cyc);                                         \
            if (pending_redirect != -1) sl_branch += slots_;             \
            else sl_fetch += slots_;                                     \
        } else {                                                         \
            int64_t head_ = rob[rob_head_i];                             \
            int64_t t_ = completion[head_];                              \
            if (t_ != NOT_DONE && t_ <= now) {                           \
                bd_commit += (n_cyc);                                    \
                sl_exec += slots_;                                       \
            } else if (kind_arr[head_] == K_LOAD && load_kind[head_]) {  \
                if (load_kind[head_] == 1) bd_mem += (n_cyc);            \
                else bd_l2 += (n_cyc);                                   \
                sl_load += slots_;                                       \
            } else {                                                     \
                bd_exec += (n_cyc);                                      \
                if (rob_len >= rob_capacity) sl_rob += slots_;           \
                else if (rs_used_pth &&                                  \
                         rs_used_main + rs_used_pth >= rs_capacity)      \
                    sl_pth += slots_;                                    \
                else if (rs_used_main >= main_rs_cap) sl_rs += slots_;   \
                else sl_exec += slots_;                                  \
            }                                                            \
        }                                                                \
    } while (0)

#define WAKE_ALL(producer_) do {                                         \
        int32_t node_ = wk_head[producer_];                              \
        if (node_ != -1) {                                               \
            wk_head[producer_] = -1;                                     \
            wk_tail[producer_] = -1;                                     \
            while (node_ != -1) {                                        \
                int64_t w_ = wk_uid[node_];                              \
                int64_t p_;                                              \
                if (w_ < n_main) {                                       \
                    p_ = --pending_main[w_];                             \
                } else {                                                 \
                    p_ = --p_pending[w_ - n_main];                       \
                }                                                        \
                if (p_ == 0) ready[n_ready++] = w_;                      \
                node_ = wk_next[node_];                                  \
            }                                                            \
        }                                                                \
    } while (0)

#define WAKE_REGISTER(producer_, waiter_) do {                           \
        int32_t nn_ = (int32_t)wk_n++;                                   \
        wk_uid[nn_] = (waiter_);                                         \
        wk_next[nn_] = -1;                                               \
        if (wk_tail[producer_] == -1) {                                  \
            wk_head[producer_] = nn_;                                    \
        } else {                                                         \
            wk_next[wk_tail[producer_]] = nn_;                           \
        }                                                                \
        wk_tail[producer_] = nn_;                                        \
    } while (0)

    while (committed < n_main) {
        /* ---- wakeup ------------------------------------------- */
        if (n_events_t1) {
            for (int64_t i = 0; i < n_events_t1; i++) {
                int64_t uid = events_t1[i];
                WAKE_ALL(uid);
            }
            n_events_t1 = 0;
        }
        while (n_heap && cheap[0].t <= now) {
            Ev ev = heap_pop(cheap, &n_heap);
            WAKE_ALL(ev.uid);
        }

        /* ---- commit ------------------------------------------- */
        int64_t ncommitted = 0;
        while (ncommitted < commit_width && rob_len) {
            int64_t head = rob[rob_head_i];
            int64_t t = completion[head];
            if (t == NOT_DONE || t > now) break;
            rob_head_i = rob_head_i + 1 == rob_capacity ? 0 : rob_head_i + 1;
            rob_len -= 1;
            if (writes_arr[head]) phys_used -= 1;
            committed += 1;
            ncommitted += 1;
        }
        if (ncommitted) ac_committed += ncommitted;
        int active = ncommitted > 0;

        /* ---- issue -------------------------------------------- */
        if (n_ready || n_deferred) {
            int64_t now1 = now + 1;
            int64_t alu_slots = int_alus;
            int64_t load_slots = load_ports;
            int64_t store_slots = store_ports;
            int64_t issued = 0;
            int64_t n_retry = 0;
            int64_t n_pool = n_deferred;
            memcpy(pool, deferred, (size_t)n_deferred * 8);
            n_deferred = 0;
            if (n_ready) {
                isort64(ready, n_ready);
                int64_t k = issue_pool_limit - n_pool;
                if (k > 0) {
                    if (k > n_ready) k = n_ready;
                    memcpy(pool + n_pool, ready, (size_t)k * 8);
                    n_pool += k;
                    n_ready -= k;
                    memmove(ready, ready + k, (size_t)n_ready * 8);
                }
            }
            for (int64_t pi = 0; pi < n_pool; pi++) {
                int64_t uid = pool[pi];
                if (uid < n_main) {
                    int64_t kind = kind_arr[uid];
                    if (kind == K_LOAD) {
                        if (load_slots <= 0 || issued >= width) {
                            retry[n_retry++] = uid;
                            continue;
                        }
                        int64_t r = data_access(&mem, addr_arr[uid], now,
                                                0, 0);
                        int64_t flags = r & 0xFF;
                        if (flags & F_RETRY) {
                            retry[n_retry++] = uid;
                            continue;
                        }
                        ac_dmem_main += 1;
                        if (flags & (F_L2_ACC | F_MEM_ACC)) ac_l2_main += 1;
                        if (flags & F_MEM_ACC) {
                            st_demand_l2 += 1;
                            missed_out[n_missed++] = uid;
                            misspc_out[n_misspc++] = uid;
                            load_kind[uid] = 1;
                        } else if (flags & F_MERGED) {
                            load_kind[uid] = 1;
                            if (flags & F_MERGED_PF) {
                                int64_t line = addr_arr[uid] >> l2_line_shift;
                                if (!hs_contains(&partial, line)) {
                                    hs_add(&partial, line);
                                    st_covered_partial += 1;
                                    st_useful += 1;
                                }
                                missed_out[n_missed++] = uid;
                            }
                        } else if (flags & F_L2_ACC) {
                            load_kind[uid] = 2;
                        }
                        if (flags & F_PF_HIT) {
                            st_covered_full += 1;
                            st_useful += 1;
                        }
                        int64_t t = r >> 8;
                        completion[uid] = t;
                        if (t == now1) events_t1[n_events_t1++] = uid;
                        else heap_push(cheap, &n_heap, t, uid);
                        load_slots -= 1;
                    } else if (kind == K_STORE) {
                        if (store_slots <= 0 || issued >= width) {
                            retry[n_retry++] = uid;
                            continue;
                        }
                        int64_t r = data_access(&mem, addr_arr[uid], now,
                                                1, 0);
                        int64_t flags = r & 0xFF;
                        if (flags & F_RETRY) {
                            retry[n_retry++] = uid;
                            continue;
                        }
                        ac_dmem_main += 1;
                        if (flags & (F_L2_ACC | F_MEM_ACC)) ac_l2_main += 1;
                        completion[uid] = now1;
                        events_t1[n_events_t1++] = uid;
                        store_slots -= 1;
                    } else {
                        if (alu_slots <= 0 || issued >= width) {
                            retry[n_retry++] = uid;
                            continue;
                        }
                        if (kind == K_MUL) {
                            int64_t t = now + mul_latency;
                            completion[uid] = t;
                            if (t == now1) events_t1[n_events_t1++] = uid;
                            else heap_push(cheap, &n_heap, t, uid);
                        } else {
                            if (kind == K_BRANCH && uid == pending_redirect)
                                redirect_clear_at = now1;
                            completion[uid] = now1;
                            events_t1[n_events_t1++] = uid;
                        }
                        ac_alu_main += 1;
                        alu_slots -= 1;
                    }
                    rs_used_main -= 1;
                } else {
                    int64_t pu = uid - n_main;
                    int64_t kind = p_kind_dyn[pu];
                    int64_t t;
                    if (kind == K_LOAD) {
                        if (load_slots <= 0 || issued >= width) {
                            retry[n_retry++] = uid;
                            continue;
                        }
                        int64_t r = data_access(&mem, p_addr_dyn[pu], now,
                                                0, 1);
                        int64_t flags = r & 0xFF;
                        if (flags & F_RETRY) {
                            retry[n_retry++] = uid;
                            continue;
                        }
                        ac_dmem_pth += 1;
                        if (flags & (F_L2_ACC | F_MEM_ACC)) ac_l2_pth += 1;
                        if (flags & F_MEM_ACC) st_pthread_l2 += 1;
                        t = r >> 8;
                        p_completion[pu] = t;
                        if (t == now1) events_t1[n_events_t1++] = uid;
                        else heap_push(cheap, &n_heap, t, uid);
                        load_slots -= 1;
                    } else {
                        if (alu_slots <= 0 || issued >= width) {
                            retry[n_retry++] = uid;
                            continue;
                        }
                        t = kind == K_MUL ? now + mul_latency : now1;
                        p_completion[pu] = t;
                        if (t == now1) events_t1[n_events_t1++] = uid;
                        else heap_push(cheap, &n_heap, t, uid);
                        ac_alu_pth += 1;
                        alu_slots -= 1;
                    }
                    st_pinsts_executed += 1;
                    int64_t j = p_spec[pu];
                    int64_t hs = pi_hint_seq[j];
                    if (hs >= 0) {
                        hint_time[hs] = t;
                        hint_dir[hs] = pi_hint_taken[j];
                    }
                    int64_t ci = p_ctx[pu];
                    ctx_in_flight[ci] -= 1;
                    if (ctx_fetched_all[ci] && ctx_in_flight[ci] == 0) {
                        int64_t s = ctx_spawn[ci];
                        phys_used -= sp_inst_hi[s] - sp_inst_lo[s];
                        free_contexts += 1;
                    }
                    rs_used_pth -= 1;
                }
                issued += 1;
            }
            memcpy(deferred + n_deferred, retry, (size_t)n_retry * 8);
            n_deferred += n_retry;
            if (issued) active = 1;
        }

        /* ---- dispatch ----------------------------------------- */
        int64_t n = 0;
        while (n < width && fp_len) {
            if (frontend_pipe[fp_head_i] > now) break;
            int64_t seq = fp_head;
            int64_t kind = kind_arr[seq];
            if (rob_len >= rob_capacity) break;
            int needs_rs = kind != K_NOP;
            if (needs_rs && rs_used_main >= main_rs_cap) break;
            int64_t writes = writes_arr[seq];
            if (writes && phys_used >= phys_budget) break;
            fp_head_i = fp_head_i + 1 == fp_cap ? 0 : fp_head_i + 1;
            fp_len -= 1;
            fp_head += 1;
            rob[(rob_head_i + rob_len) % rob_capacity] = seq;
            rob_len += 1;
            ac_dispatched_main += 1;
            if (writes) phys_used += 1;
            if (needs_rs) {
                rs_used_main += 1;
                int64_t pending = 0;
                int64_t producer = src1_arr[seq];
                if (producer != no_producer) {
                    int64_t t = completion[producer];
                    if (t == NOT_DONE || t > now) {
                        WAKE_REGISTER(producer, seq);
                        pending += 1;
                    }
                }
                producer = src2_arr[seq];
                if (producer != no_producer) {
                    int64_t t = completion[producer];
                    if (t == NOT_DONE || t > now) {
                        WAKE_REGISTER(producer, seq);
                        pending += 1;
                    }
                }
                if (pending) pending_main[seq] = pending;
                else ready[n_ready++] = seq;
            } else {
                /* NOPs complete instantly; never have waiters. */
                completion[seq] = now;
            }
            if (has_spawns) {
                while (sp_next < n_spawns && sp_trigger[sp_next] <= seq) {
                    if (sp_trigger[sp_next] < seq) {
                        sp_next += 1;
                        continue;
                    }
                    int64_t s = sp_next;
                    sp_next += 1;
                    st_spawns_attempted += 1;
                    if (free_contexts <= 0) {
                        st_spawns_dropped += 1;
                        continue;
                    }
                    int64_t k = sp_inst_hi[s] - sp_inst_lo[s];
                    if (phys_used + k > phys_budget) {
                        st_spawns_dropped += 1;
                        continue;
                    }
                    free_contexts -= 1;
                    phys_used += k;
                    int64_t ci = n_ctx++;
                    ctx_spawn[ci] = s;
                    ctx_uid_base[ci] = next_uid;
                    ctx_fetch_idx[ci] = 0;
                    ctx_next_fetch[ci] = now + 1;
                    ctx_in_flight[ci] = 0;
                    ctx_fetched_all[ci] = 0;
                    fetch_active[n_fetch_active++] = ci;
                    next_uid += k;
                    for (int64_t j = sp_inst_lo[s]; j < sp_inst_hi[s]; j++) {
                        p_kind_dyn[p_len] = pi_kind[j];
                        p_addr_dyn[p_len] = pi_addr[j];
                        p_ctx[p_len] = ci;
                        p_spec[p_len] = j;
                        p_completion[p_len] = NOT_DONE;
                        p_pending[p_len] = 0;
                        p_len += 1;
                    }
                    st_spawns_started += 1;
                }
            }
            n += 1;
        }
        while (n < width && pp_len) {
            int64_t ready_at = pp_at[pp_head_i];
            if (ready_at > now) break;
            if (rs_used_main + rs_used_pth >= rs_capacity) break;
            int64_t ci = pp_ci[pp_head_i];
            int64_t idx = pp_idx[pp_head_i];
            pp_head_i = pp_head_i + 1 == pp_cap ? 0 : pp_head_i + 1;
            pp_len -= 1;
            rs_used_pth += 1;
            ac_dispatched_pth += 1;
            int64_t s = ctx_spawn[ci];
            int64_t j = sp_inst_lo[s] + idx;
            int64_t uid_base = ctx_uid_base[ci];
            int64_t uid = uid_base + idx;
            int64_t pending = 0;
            int64_t base_off = uid_base - n_main;
            for (int64_t di = pi_dep_lo[j]; di < pi_dep_hi[j]; di++) {
                int64_t d = dep_flat[di];
                int64_t t = p_completion[base_off + d];
                if (t == NOT_DONE || t > now) {
                    int64_t producer = uid_base + d;
                    WAKE_REGISTER(producer, uid);
                    pending += 1;
                }
            }
            for (int64_t li = pi_live_lo[j]; li < pi_live_hi[j]; li++) {
                int64_t producer = live_flat[li];
                int64_t t = producer < n_main
                    ? completion[producer]
                    : p_completion[producer - n_main];
                if (t == NOT_DONE || t > now) {
                    WAKE_REGISTER(producer, uid);
                    pending += 1;
                }
            }
            if (pending) p_pending[uid - n_main] = pending;
            else ready[n_ready++] = uid;
            n += 1;
        }
        if (n) active = 1;

        /* ---- fetch -------------------------------------------- */
        int fetched_any = 0;
        if (n_fetch_active && pp_len < pipe_capacity) {
            for (int64_t pos = 0; pos < n_fetch_active; pos++) {
                int64_t ci = fetch_active[pos];
                if (ctx_next_fetch[ci] > now) continue;
                int64_t s = ctx_spawn[ci];
                int64_t body_len = sp_inst_hi[s] - sp_inst_lo[s];
                int64_t block_start = ctx_fetch_idx[ci];
                int64_t block_end = block_start + width;
                if (block_end > body_len) block_end = body_len;
                for (int64_t idx = block_start; idx < block_end; idx++) {
                    pp_at[pp_tail_i] = now + frontend_depth;
                    pp_ci[pp_tail_i] = (int32_t)ci;
                    pp_idx[pp_tail_i] = (int32_t)idx;
                    pp_tail_i = pp_tail_i + 1 == pp_cap ? 0 : pp_tail_i + 1;
                    pp_len += 1;
                    ctx_in_flight[ci] += 1;
                    st_pinsts_fetched += 1;
                }
                ctx_fetch_idx[ci] = block_end;
                ctx_next_fetch[ci] = now + pth_block_interval;
                if (block_end >= body_len) {
                    ctx_fetched_all[ci] = 1;
                    memmove(fetch_active + pos, fetch_active + pos + 1,
                            (size_t)(n_fetch_active - 1 - pos) * 8);
                    n_fetch_active -= 1;
                }
                ac_fetch_pth += 1;
                fetched_any = 1;
                break;
            }
        }
        if (!fetched_any && fp_len < pipe_capacity) {
            int fetch_ok = 1;
            if (pending_redirect != -1) {
                if (redirect_clear_at == NOT_DONE
                    || now <= redirect_clear_at) {
                    fetch_ok = 0;
                } else {
                    pending_redirect = -1;
                    redirect_clear_at = NOT_DONE;
                    fetch_line = -1;     /* refetch the target line */
                }
            }
            if (fetch_ok && now >= fetch_hold_until && next_seq < n_main) {
                int64_t line = line_arr[next_seq];
                int line_miss = 0;
                if (line != fetch_line) {
                    int64_t r = inst_fetch(&mem, pc_arr[next_seq]
                                           * inst_bytes, now);
                    fetch_line = line;
                    if (!(r & F_L1_HIT)) {
                        line_ready_at = r >> 8;
                        /* The fetch slot is consumed by the miss. */
                        line_miss = 1;
                        fetched_any = 1;
                    } else {
                        line_ready_at = now;
                    }
                }
                if (!line_miss && now >= line_ready_at) {
                    ac_fetch_main += 1;
                    int64_t fetched = 0;
                    int64_t dispatch_at = now + frontend_depth;
                    while (fetched < width && next_seq < n_main
                           && fp_len < pipe_capacity) {
                        int64_t idx = next_seq;
                        if (line_arr[idx] != fetch_line) break;
                        frontend_pipe[fp_tail_i] = dispatch_at;
                        fp_tail_i = fp_tail_i + 1 == fp_cap
                            ? 0 : fp_tail_i + 1;
                        fp_len += 1;
                        next_seq += 1;
                        fetched += 1;
                        int64_t ctrl = ctrl_arr[idx];
                        if (ctrl == CTRL_BRANCH) {
                            int64_t taken = taken_arr[idx];
                            st_branches += 1;
                            ac_bpred += 1;
                            int64_t predicted = pred_arr[idx];
                            if (has_hints) {
                                int64_t ht = hint_time[idx];
                                if (ht != NOT_DONE && ht <= now) {
                                    st_hints_used += 1;
                                    predicted = hint_dir[idx];
                                }
                            }
                            if (predicted != taken) {
                                st_mispredictions += 1;
                                pending_redirect = idx;
                                redirect_clear_at = NOT_DONE;
                                break;
                            }
                            if (taken) {
                                int64_t branch_next_pc = next_pc_arr[idx];
                                if (use_btb_col) {
                                    if (btb_col[idx]) {
                                        st_btb_misses += 1;
                                        fetch_hold_until = now + 2;
                                    }
                                } else {
                                    int64_t pc = pc_arr[idx];
                                    int64_t target = btb_lookup(&btb, pc);
                                    if (target != branch_next_pc) {
                                        st_btb_misses += 1;
                                        btb_update(&btb, pc, branch_next_pc);
                                        fetch_hold_until = now + 2;
                                    }
                                }
                                fetch_line = (branch_next_pc * inst_bytes)
                                    >> line_shift;
                                int64_t r = inst_fetch(
                                    &mem, branch_next_pc * inst_bytes, now);
                                if (!(r & F_L1_HIT))
                                    line_ready_at = r >> 8;
                                break;
                            }
                        } else if (ctrl == CTRL_JUMP) {
                            int64_t jump_next_pc = next_pc_arr[idx];
                            fetch_line = (jump_next_pc * inst_bytes)
                                >> line_shift;
                            int64_t r = inst_fetch(
                                &mem, jump_next_pc * inst_bytes, now);
                            if (!(r & F_L1_HIT))
                                line_ready_at = r >> 8;
                            break;
                        }
                    }
                    if (fetched) fetched_any = 1;
                }
            }
        }
        if (fetched_any) active = 1;

        if (now > safety_limit) {
            status = STATUS_SAFETY;
            break;
        }

        if (committed >= n_main) {
            ATTRIBUTE_CYCLES(1, ncommitted);
            now += 1;
            break;
        }

        if (active || n_ready) {
            ATTRIBUTE_CYCLES(1, ncommitted);
            now += 1;
            continue;
        }

        /* Nothing can happen until the next event: jump. */
        int64_t cand[8];
        int n_cand;
        if (!n_deferred) {
            n_cand = 0;
            if (n_heap) cand[n_cand++] = cheap[0].t;
            if (fp_len && frontend_pipe[fp_head_i] > now)
                cand[n_cand++] = frontend_pipe[fp_head_i];
            if (pp_len && pp_at[pp_head_i] > now)
                cand[n_cand++] = pp_at[pp_head_i];
            if (pending_redirect != -1 && redirect_clear_at != NOT_DONE
                && redirect_clear_at + 1 > now)
                cand[n_cand++] = redirect_clear_at + 1;
            if (line_ready_at > now) cand[n_cand++] = line_ready_at;
            if (fetch_hold_until > now) cand[n_cand++] = fetch_hold_until;
            int64_t ctx_min = NO_FILL;
            for (int64_t i = 0; i < n_fetch_active; i++) {
                int64_t nf = ctx_next_fetch[fetch_active[i]];
                if (nf > now && nf < ctx_min) ctx_min = nf;
            }
            if (ctx_min != NO_FILL) cand[n_cand++] = ctx_min;
            if (n_cand) {
                int64_t target = cand[0];
                for (int i = 1; i < n_cand; i++)
                    if (cand[i] < target) target = cand[i];
                ATTRIBUTE_CYCLES(target - now, 0);
                now = target;
                continue;
            }
            /* Only stale candidates (if any) remain: fall through. */
        }
        n_cand = 0;
        if (n_heap) cand[n_cand++] = cheap[0].t;
        if (fp_len) cand[n_cand++] = frontend_pipe[fp_head_i];
        if (pp_len) cand[n_cand++] = pp_at[pp_head_i];
        if (pending_redirect != -1 && redirect_clear_at != NOT_DONE)
            cand[n_cand++] = redirect_clear_at + 1;
        if (line_ready_at > now) cand[n_cand++] = line_ready_at;
        if (fetch_hold_until > now) cand[n_cand++] = fetch_hold_until;
        int64_t ctx_min = NO_FILL;
        for (int64_t i = 0; i < n_fetch_active; i++) {
            int64_t nf = ctx_next_fetch[fetch_active[i]];
            if (nf < ctx_min) ctx_min = nf;
        }
        if (ctx_min != NO_FILL) cand[n_cand++] = ctx_min;
        if (!n_cand) {
            status = STATUS_DEADLOCK;
            for (int64_t i = 0; i < n_fetch_active; i++) {
                int64_t ci = fetch_active[i];
                int64_t s = ctx_spawn[ci];
                fa_out[6 * n_fa] = sp_static[s];
                fa_out[6 * n_fa + 1] = sp_trigger[s];
                fa_out[6 * n_fa + 2] = ctx_fetch_idx[ci];
                fa_out[6 * n_fa + 3] = ctx_next_fetch[ci];
                fa_out[6 * n_fa + 4] = ctx_in_flight[ci];
                fa_out[6 * n_fa + 5] = ctx_fetched_all[ci];
                n_fa += 1;
            }
            break;
        }
        int64_t target = cand[0];
        for (int i = 1; i < n_cand; i++)
            if (cand[i] < target) target = cand[i];
        if (target < now + 1) target = now + 1;
        ATTRIBUTE_CYCLES(target - now, 0);
        now = target;
    }

    memset(out, 0, O_LEN * 8);
    out[O_CYCLES] = now;
    out[O_COMMITTED] = committed;
    out[O_BRANCHES] = st_branches;
    out[O_MISPREDICTIONS] = st_mispredictions;
    out[O_BTB_MISSES] = st_btb_misses;
    out[O_DEMAND_L2] = st_demand_l2;
    out[O_PTHREAD_L2] = st_pthread_l2;
    out[O_COVERED_FULL] = st_covered_full;
    out[O_COVERED_PARTIAL] = st_covered_partial;
    out[O_USEFUL] = st_useful;
    out[O_HINTS_USED] = st_hints_used;
    out[O_PINSTS_FETCHED] = st_pinsts_fetched;
    out[O_PINSTS_EXECUTED] = st_pinsts_executed;
    out[O_SPAWNS_ATTEMPTED] = st_spawns_attempted;
    out[O_SPAWNS_STARTED] = st_spawns_started;
    out[O_SPAWNS_DROPPED] = st_spawns_dropped;
    out[O_AC_COMMITTED] = ac_committed;
    out[O_AC_DISP_MAIN] = ac_dispatched_main;
    out[O_AC_DISP_PTH] = ac_dispatched_pth;
    out[O_AC_FETCH_MAIN] = ac_fetch_main;
    out[O_AC_FETCH_PTH] = ac_fetch_pth;
    out[O_AC_BPRED] = ac_bpred;
    out[O_AC_DMEM_MAIN] = ac_dmem_main;
    out[O_AC_DMEM_PTH] = ac_dmem_pth;
    out[O_AC_L2_MAIN] = ac_l2_main;
    out[O_AC_L2_PTH] = ac_l2_pth;
    out[O_AC_ALU_MAIN] = ac_alu_main;
    out[O_AC_ALU_PTH] = ac_alu_pth;
    out[O_BD_MEM] = bd_mem;
    out[O_BD_L2] = bd_l2;
    out[O_BD_EXEC] = bd_exec;
    out[O_BD_COMMIT] = bd_commit;
    out[O_BD_FETCH] = bd_fetch;
    out[O_SL_RETIRE] = sl_retire;
    out[O_SL_FETCH] = sl_fetch;
    out[O_SL_BRANCH] = sl_branch;
    out[O_SL_LOAD] = sl_load;
    out[O_SL_ROB] = sl_rob;
    out[O_SL_RS] = sl_rs;
    out[O_SL_PTH] = sl_pth;
    out[O_SL_EXEC] = sl_exec;
    out[O_STATUS] = status;
    out[O_DEAD_ROB_LEN] = rob_len;
    out[O_DEAD_HEAD_SEQ] = rob_len ? rob[rob_head_i] : -1;
    out[O_DEAD_HEAD_DONE] = rob_len ? completion[rob[rob_head_i]] : NOT_DONE;
    out[O_N_MISSED] = n_missed;
    out[O_N_MISSPC] = n_misspc;
    out[O_N_FA] = n_fa;

    arena_free(&ar);
    return 0;
}
