"""Cycle-engine backend selection.

Three interchangeable engines run a timing simulation:

- ``reference`` -- the original :class:`repro.cpu.pipeline.Pipeline`
  per-cycle stage closures, retained verbatim as the oracle every other
  backend is gated against (and the only engine with microarchitectural
  tracing hooks);
- ``batched``   -- the merged-loop engine in :mod:`repro.cpu.batch`:
  identical machine semantics with the per-cycle interpreter overhead
  stripped out, plus per-trace shared precomputes (branch-predictor
  outcome column, BTB redirect column, fetch-line ids, warmed cache
  images) reused across every machine configuration simulated over the
  same trace;
- ``numpy``     -- the batched engine with the precompute passes
  vectorized over the sealed trace columns (requires numpy).

The backend is selected by the ``REPRO_SIM_BACKEND`` environment
variable or programmatically via :func:`set_sim_backend` (the
``--sim-backend`` CLI flag and the golden bit-identity tests), default
``batched``.  Nothing numeric may depend on the backend: all three must
produce bit-identical :class:`~repro.cpu.stats.SimStats`, selected
p-threads, and figure rows (``tests/cpu/test_golden_sim_backends.py``).

This module intentionally imports no simulator code: the dispatch in
:func:`repro.cpu.pipeline.simulate` lazy-imports the batch engine, so
backend *resolution* stays import-cycle-free and costs nothing when the
reference engine is forced.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import ConfigError

try:  # optional backend; batched/reference need no third party
    import numpy as _np
except ImportError:  # pragma: no cover - exercised where numpy is absent
    _np = None

#: Every selectable engine, in documentation order.
SIM_BACKENDS = ("reference", "batched", "numpy")

_backend: Optional[str] = None


def _resolve_from_env() -> str:
    env = os.environ.get("REPRO_SIM_BACKEND", "").strip().lower()
    if not env:
        return "batched"
    if env not in SIM_BACKENDS:
        raise ConfigError(
            f"REPRO_SIM_BACKEND={env!r} is not a simulation backend; "
            f"legal: {', '.join(SIM_BACKENDS)}"
        )
    if env == "numpy" and _np is None:
        raise ConfigError(
            "REPRO_SIM_BACKEND=numpy requires numpy, which is not importable"
        )
    return env


def available_backends() -> tuple:
    """Backends selectable in this environment (numpy needs numpy)."""
    return tuple(
        name
        for name in SIM_BACKENDS
        if name != "numpy" or _np is not None
    )


def backend() -> str:
    """The active cycle-engine backend name."""
    global _backend
    if _backend is None:
        _backend = _resolve_from_env()
    return _backend


def set_sim_backend(name: Optional[str]) -> None:
    """Force a backend, or ``None`` to re-resolve from the environment."""
    global _backend
    if name is None:
        _backend = None
        return
    if name not in SIM_BACKENDS:
        raise ConfigError(
            f"unknown simulation backend: {name!r}; "
            f"legal: {', '.join(SIM_BACKENDS)}"
        )
    if name == "numpy" and _np is None:
        raise ConfigError(
            "numpy simulation backend requested but numpy is not importable"
        )
    _backend = name
