"""Cycle-engine backend selection.

Four interchangeable engines run a timing simulation:

- ``reference`` -- the original :class:`repro.cpu.pipeline.Pipeline`
  per-cycle stage closures, retained verbatim as the oracle every other
  backend is gated against (and the only engine with microarchitectural
  tracing hooks);
- ``batched``   -- the merged-loop engine in :mod:`repro.cpu.batch`:
  identical machine semantics with the per-cycle interpreter overhead
  stripped out, plus per-trace shared precomputes (branch-predictor
  outcome column, BTB redirect column, fetch-line ids, warmed cache
  images) reused across every machine configuration simulated over the
  same trace;
- ``numpy``     -- the batched engine with the precompute passes
  vectorized over the sealed trace columns (requires numpy);
- ``native``    -- the merged loop extracted into a flat-array kernel
  (:mod:`repro.cpu._kernel`) and compiled as a C shared library
  (:mod:`repro.cpu.nativebuild`), driven via ctypes by
  :mod:`repro.cpu.kerneldriver`; requires a C compiler (or a previously
  built artifact) and is otherwise reported unavailable.

The backend is selected by the ``REPRO_SIM_BACKEND`` environment
variable or programmatically via :func:`set_sim_backend` (the
``--sim-backend`` CLI flag and the golden bit-identity tests), default
``batched``.  Nothing numeric may depend on the backend: all four must
produce bit-identical :class:`~repro.cpu.stats.SimStats`, selected
p-threads, and figure rows (``tests/cpu/test_golden_sim_backends.py``).

Requesting a backend whose prerequisite is missing raises
:class:`~repro.errors.ConfigError` naming the backend and the remedy;
:func:`available_backends` is the selectable subset and is what
``repro bench`` iterates for per-backend walls.

This module intentionally imports no simulator code at import time: the
dispatch in :func:`repro.cpu.pipeline.simulate` lazy-imports the batch
engine, and the native-artifact probe lazy-imports
:mod:`repro.cpu.nativebuild`, so backend *resolution* stays
import-cycle-free and costs nothing when the reference engine is
forced.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import ConfigError

try:  # optional backend; batched/reference need no third party
    import numpy as _np
except ImportError:  # pragma: no cover - exercised where numpy is absent
    _np = None

#: Every selectable engine, in documentation order.
SIM_BACKENDS = ("reference", "batched", "numpy", "native")

_backend: Optional[str] = None


def _native_probe():
    """(available, reason) for the compiled kernel, building if needed."""
    from repro.cpu import nativebuild

    if nativebuild.native_available():
        return True, None
    return False, nativebuild.native_error() or "artifact not present"


def _check_requirements(name: str, context: str) -> None:
    """Raise ConfigError when ``name``'s prerequisite is missing."""
    if name == "numpy" and _np is None:
        raise ConfigError(
            f"{context} requires numpy, which is not importable; "
            "install numpy to enable the numpy backend"
        )
    if name == "native":
        ok, reason = _native_probe()
        if not ok:
            raise ConfigError(
                f"{context} requires the compiled cycle kernel, which is "
                f"unavailable ({reason}); build it with "
                "`python -m repro.cpu.nativebuild` (needs a C compiler "
                "on PATH, or set REPRO_NATIVE_CC)"
            )


def _resolve_from_env() -> str:
    env = os.environ.get("REPRO_SIM_BACKEND", "").strip().lower()
    if not env:
        return "batched"
    if env not in SIM_BACKENDS:
        raise ConfigError(
            f"REPRO_SIM_BACKEND={env!r} is not a simulation backend; "
            f"legal: {', '.join(SIM_BACKENDS)}"
        )
    _check_requirements(env, f"REPRO_SIM_BACKEND={env}")
    return env


def available_backends() -> tuple:
    """Backends selectable in this environment.

    ``numpy`` needs numpy importable; ``native`` needs the compiled
    kernel artifact to load (the probe builds it opportunistically when
    a C compiler is on PATH, and memoizes either outcome).  This is the
    exact set ``repro bench`` iterates for per-backend walls.
    """
    names = []
    for name in SIM_BACKENDS:
        if name == "numpy" and _np is None:
            continue
        if name == "native" and not _native_probe()[0]:
            continue
        names.append(name)
    return tuple(names)


def backend() -> str:
    """The active cycle-engine backend name."""
    global _backend
    if _backend is None:
        _backend = _resolve_from_env()
    return _backend


def set_sim_backend(name: Optional[str]) -> None:
    """Force a backend, or ``None`` to re-resolve from the environment."""
    global _backend
    if name is None:
        _backend = None
        return
    if name not in SIM_BACKENDS:
        raise ConfigError(
            f"unknown simulation backend: {name!r}; "
            f"legal: {', '.join(SIM_BACKENDS)}"
        )
    _check_requirements(name, f"simulation backend {name!r}")
    _backend = name
