"""The cycle-level out-of-order pipeline.

Trace-driven timing model of the paper's default machine (Section 3.1).
Each cycle runs commit, wakeup, issue, dispatch, and fetch in reverse
pipeline order.  When no stage can make progress the simulator jumps
directly to the next scheduled event (a completion, an I-cache fill, a
redirect resolution, or a p-thread fetch slot), charging the skipped
cycles to the latency-breakdown category of the stalled state -- so
miss-dominated programs simulate in time proportional to events, not
cycles.

Main-thread instructions flow fetch -> frontend pipe (``frontend_depth``
cycles) -> dispatch (ROB + reservation station + physical register) ->
issue -> complete -> commit.  P-instructions follow DDMT lightweight
execution: they are fetched in width-sized blocks at one instruction per
cycle per context, dispatch into reservation stations and physical
registers only (no ROB/LSQ), and never retire.
"""

from __future__ import annotations

import heapq
import os
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro import faults, obs
from repro.obs import utrace
from repro.branch.btb import BTB
from repro.branch.predictors import HybridPredictor
from repro.config import MachineConfig
from repro.cpu.pthreads import PInstClass, PThreadProgram, SpawnSpec
from repro.cpu.stats import SimStats
from repro.errors import ExecutionError, PipelineDeadlockError
from repro.frontend.trace import NO_PRODUCER, Trace
from repro.isa.opcodes import CLASS_BY_CODE, OpClass, WRITES_BY_CODE
from repro.memory.hierarchy import MemoryHierarchy

#: Bytes per instruction when mapping PCs into the I-cache address space.
INST_BYTES = 4

#: Simulated-cycle interval between progress heartbeat events (emitted
#: only when debug-level telemetry is enabled, so the hot loop pays one
#: boolean test otherwise).
HEARTBEAT_CYCLES = 250_000

_SIM_RUNS = obs.counters.counter("cpu.pipeline.simulations")
_SIM_CYCLES = obs.counters.counter("cpu.pipeline.cycles_total")
_SIM_RETIRED = obs.counters.counter("cpu.pipeline.retired_total")
_SIM_RETIRE_RATE = obs.counters.gauge("cpu.pipeline.retired_per_sec")
_SIM_CYCLE_RATE = obs.counters.gauge("cpu.pipeline.cycles_per_sec")

_NOT_DONE = -1

# Entry kinds.
_ALU, _MUL, _LOAD, _STORE, _BRANCH, _NOP = range(6)

_CLASS_TO_KIND = {
    OpClass.ALU: _ALU,
    OpClass.MUL: _MUL,
    OpClass.LOAD: _LOAD,
    OpClass.STORE: _STORE,
    OpClass.BRANCH: _BRANCH,
    OpClass.JUMP: _NOP,
    OpClass.NOP: _NOP,
    OpClass.HALT: _NOP,
}

_PCLASS_TO_KIND = {
    PInstClass.ALU: _ALU,
    PInstClass.MUL: _MUL,
    PInstClass.LOAD: _LOAD,
}

# Control classes on the fetch path.
_CTRL_NONE, _CTRL_BRANCH, _CTRL_JUMP = range(3)

# Per-dense-opcode hot-loop tables: code -> entry kind / control class.
_KIND_BY_CODE = tuple(_CLASS_TO_KIND[cls] for cls in CLASS_BY_CODE)
_CTRL_BY_CODE = tuple(
    _CTRL_BRANCH if cls is OpClass.BRANCH
    else _CTRL_JUMP if cls is OpClass.JUMP
    else _CTRL_NONE
    for cls in CLASS_BY_CODE
)


def _pipeline_view(trace: Trace) -> Tuple[List, ...]:
    """Flat per-instruction arrays for the hot loop, memoized on the trace.

    The per-cycle closures index plain lists instead of chasing
    ``DynInst -> Op -> OpClass`` attribute/property/enum-hash chains.  The
    kind/ctrl/writes columns are one table-lookup sweep over the trace's
    dense opcode column; the value columns are the trace's own shared
    lists, borrowed read-only.  Sequence numbers equal trace indices, so
    no seq column is needed.  A trace is simulated many times across an
    experiment grid (baseline + profile + per-target augmented runs, and
    -- with the trace memo -- many cells), so the one-time sweep
    amortizes immediately.
    """
    view = trace.derived.get("pipeline")
    if view is None:
        L = trace.as_lists()
        kinds = _KIND_BY_CODE
        ctrls = _CTRL_BY_CODE
        writes = WRITES_BY_CODE
        codes = L.op_code
        view = (
            [kinds[c] for c in codes],           # kind
            [ctrls[c] for c in codes],           # ctrl
            [writes[c] for c in codes],          # writes_register
            L.pc,
            L.addr,
            L.src1,
            L.src2,
            [t != 0 for t in L.taken],
            L.next_pc,
        )
        trace.derived["pipeline"] = view
    return view


class _Entry:
    """One instruction in the out-of-order window."""

    __slots__ = (
        "uid",
        "kind",
        "seq",
        "pc",
        "addr",
        "pending",
        "is_pth",
        "is_target",
        "ctx",
        "hint_seq",
        "hint_taken",
    )

    def __init__(self, uid: int, kind: int, seq: int, pc: int, addr: int,
                 is_pth: bool = False, is_target: bool = False,
                 ctx: Optional["_Context"] = None, hint_seq: int = -1,
                 hint_taken: bool = False) -> None:
        self.uid = uid
        self.kind = kind
        self.seq = seq
        self.pc = pc
        self.addr = addr
        self.pending = 0
        self.is_pth = is_pth
        self.is_target = is_target
        self.ctx = ctx
        self.hint_seq = hint_seq
        self.hint_taken = hint_taken


class _Context:
    """A hardware thread context running one p-thread spawn."""

    __slots__ = ("spawn", "uid_base", "fetch_idx", "next_fetch", "in_flight",
                 "fetched_all")

    def __init__(self, spawn: SpawnSpec, uid_base: int, now: int) -> None:
        self.spawn = spawn
        self.uid_base = uid_base
        self.fetch_idx = 0
        self.next_fetch = now + 1
        self.in_flight = 0
        self.fetched_all = False


def _deadlock_error(
    now: int,
    committed: int,
    n_main: int,
    rob: "Deque[int]",
    pc_arr: List[int],
    kind_arr: List[int],
    completion: List[int],
    fetch_active: List[_Context],
) -> PipelineDeadlockError:
    """Build the diagnostic error for a wedged pipeline.

    Raised when no stage is active and no future event exists to jump to.
    This should be unreachable; if a scheduling bug ever introduces it,
    the error must carry enough machine state to debug from a failure row
    alone: the stall cycle, commit progress, the ROB head op, and every
    live p-thread fetch context.
    """
    rob_head: Optional[Dict[str, object]] = None
    if rob:
        head = rob[0]
        done_at = completion[head] if head < len(completion) else _NOT_DONE
        rob_head = {
            "seq": head,
            "pc": pc_arr[head] if head < len(pc_arr) else None,
            "kind": kind_arr[head] if head < len(kind_arr) else None,
            "done_at": None if done_at == _NOT_DONE else done_at,
        }
    fetch_state = [
        {
            "static_id": ctx.spawn.static_id,
            "trigger_seq": ctx.spawn.trigger_seq,
            "fetch_idx": ctx.fetch_idx,
            "next_fetch": ctx.next_fetch,
            "in_flight": ctx.in_flight,
            "fetched_all": ctx.fetched_all,
        }
        for ctx in fetch_active
    ]
    return PipelineDeadlockError(
        f"pipeline deadlock at cycle {now}: "
        f"{committed}/{n_main} committed, rob={len(rob)}",
        cycle=now,
        committed=committed,
        total=n_main,
        rob_size=len(rob),
        rob_head=rob_head,
        fetch_state=fetch_state,
    )


class Pipeline:
    """One timing simulation of a trace, optionally with p-threads."""

    def __init__(
        self,
        trace: Trace,
        config: Optional[MachineConfig] = None,
        pthreads: Optional[PThreadProgram] = None,
        warm: bool = True,
    ) -> None:
        self.trace = trace
        self.config = config or MachineConfig()
        self.pthreads = pthreads or PThreadProgram()
        self.hierarchy = MemoryHierarchy(self.config)
        self.predictor = HybridPredictor(self.config.bpred_entries)
        self.btb = BTB(self.config.btb_entries)
        self.stats = SimStats()
        self.warm = warm
        self._ran = False
        #: Artifact records written by utrace when tracing is enabled.
        self.trace_artifacts: List[Dict[str, object]] = []

    def _warm_caches(self) -> None:
        """Functional warm-up pass, mirroring the paper's sampled-run cache
        warm-up: touch every data access and fetch line once so the timed
        run measures steady-state (capacity) misses, not cold misses."""
        hierarchy = self.hierarchy
        line_insts = self.config.icache.line_bytes // INST_BYTES
        seen_lines = set()
        L = self.trace.as_lists()
        for pc, addr in zip(L.pc, L.addr):
            line = pc // line_insts
            if line not in seen_lines:
                seen_lines.add(line)
                hierarchy.warm_inst(pc * INST_BYTES)
            if addr >= 0:
                hierarchy.warm_data(addr)

    # ------------------------------------------------------------------ #

    def run(self) -> SimStats:
        """Simulate to completion and return the statistics."""
        if self._ran:
            raise ExecutionError("a Pipeline instance can only run once")
        self._ran = True
        if self.warm:
            self._warm_caches()

        cfg = self.config
        trace = self.trace
        n_main = len(trace)
        stats = self.stats
        act = stats.activity
        hierarchy = self.hierarchy

        # Hot-loop locals: per-trace flat arrays plus bound methods, so the
        # per-cycle closures never resolve attributes, properties, or
        # enum-keyed dicts on the critical path.
        (kind_arr, ctrl_arr, writes_arr, pc_arr, addr_arr, src1_arr,
         src2_arr, taken_arr, next_pc_arr) = _pipeline_view(trace)
        heappush = heapq.heappush
        heappop = heapq.heappop
        data_access = hierarchy.data_access
        inst_fetch = hierarchy.inst_fetch
        predict_and_update = self.predictor.predict_and_update
        btb_lookup = self.btb.lookup
        btb_update = self.btb.update
        spawns_by_trigger = self.pthreads.spawns_by_trigger
        has_spawns = bool(spawns_by_trigger)

        width = cfg.width
        commit_width = cfg.commit_width
        frontend_depth = cfg.frontend_depth
        rs_capacity = cfg.rs_entries
        rob_capacity = cfg.rob_entries
        phys_budget = cfg.physical_registers - 32  # main arch state
        pipe_capacity = width * frontend_depth
        line_shift = cfg.icache.line_bytes.bit_length() - 1
        pth_block_interval = max(1, int(round(width / cfg.pthread_fetch_ipc)))
        int_alus = cfg.int_alus
        load_ports = cfg.load_ports
        store_ports = cfg.store_ports
        mul_latency = cfg.mul_latency
        issue_pool_limit = width + 8

        # Completion times: list for main instructions, dict for p-insts.
        completion: List[int] = [_NOT_DONE] * n_main
        p_completion: Dict[int, int] = {}

        # Wakeup machinery.
        wakeup: Dict[int, List[_Entry]] = {}
        ready: List[Tuple[int, _Entry]] = []  # heap keyed by age (uid)
        deferred: List[_Entry] = []  # ready but port/MSHR limited this cycle
        completion_events: List[Tuple[int, int]] = []  # (time, uid)

        # Window state.  P-instructions flow through their own frontend
        # pipe (DDMT's separate sequencers), so a stalled main-thread
        # dispatch never blocks them head-of-line and vice versa.  The
        # main thread may not occupy the last `pthread_rs_reserve`
        # reservation stations.
        rob: Deque[int] = deque()
        frontend_pipe: Deque[Tuple[int, int]] = deque()  # (ready_at, seq)
        pth_pipe: Deque[Tuple[int, "_Context", int]] = deque()
        rs_used_main = 0
        rs_used_pth = 0
        main_rs_cap = max(cfg.width, rs_capacity - cfg.pthread_rs_reserve)
        phys_used = 0

        # Fetch state.
        next_seq = 0
        fetch_line = -1
        line_ready_at = 0
        fetch_hold_until = 0
        pending_redirect: Optional[int] = None  # seq of unresolved mispredict
        redirect_clear_at: Optional[int] = None

        # Load classification for breakdown attribution.
        load_kind: Dict[int, str] = {}
        # Lines whose in-flight prefetch already got partial-cover credit
        # (several demand accesses can merge with one prefetched line; the
        # paper's coverage bars count misses, not accesses).
        partial_counted: set = set()
        l2_line_shift = cfg.l2.line_bytes.bit_length() - 1

        # Branch pre-execution hints: branch seq -> (ready time, taken).
        branch_hints: Dict[int, Tuple[int, bool]] = {}

        # P-thread state.  Only contexts that still have instructions to
        # fetch live in fetch_active; finished ones are dropped so the
        # fetch stage never scans dead contexts.
        fetch_active: List[_Context] = []
        free_contexts = cfg.thread_contexts - 1  # context 0 is the main thread
        next_uid = n_main

        now = 0
        committed = 0

        # Microarchitectural tracing (repro.obs.utrace): one collector
        # per traced run.  The disabled fast path is a single hoisted
        # boolean -- every hook below hides behind ``if trace_on``, the
        # same pattern as the debug heartbeat, so an untraced simulation
        # pays one local load per guarded site and no calls.
        tracer = utrace.collector_for(cfg)
        trace_on = tracer is not None
        if trace_on:
            tr_fetch_main = tracer.fetch_main
            tr_fetch_pth = tracer.fetch_pth
            tr_fetch_block = tracer.fetch_block
            tr_bpred = tracer.bpred
            tr_dispatch = tracer.dispatch
            tr_issue = tracer.issue
            tr_alu = tracer.alu
            tr_mem = tracer.mem
            tr_retire = tracer.retire
            tr_commit = tracer.committed
            tr_replay = tracer.replay
            tr_redirect = tracer.redirect
            tr_spawn = tracer.spawn
            tr_idle = tracer.idle

        # -------------------------------------------------------------- #
        # Helpers (closures over the hot state).
        # -------------------------------------------------------------- #

        def schedule_completion(uid: int, time: int) -> None:
            if uid < n_main:
                completion[uid] = time
            else:
                p_completion[uid] = time
            heappush(completion_events, (time, uid))

        def register_deps(entry: _Entry, producers: Tuple[int, ...]) -> bool:
            """Register wakeups; return True if already ready."""
            pending = 0
            for producer in producers:
                if producer == NO_PRODUCER:
                    continue
                # done_at(), inlined for the hot path.
                if producer < n_main:
                    t = completion[producer]
                else:
                    t = p_completion.get(producer, _NOT_DONE)
                if t == _NOT_DONE or t > now:
                    wakeup.setdefault(producer, []).append(entry)
                    pending += 1
            entry.pending = pending
            if pending == 0:
                heappush(ready, (entry.uid, entry))
                return True
            return False

        def finish_context(ctx: _Context) -> None:
            nonlocal free_contexts, phys_used
            phys_used -= len(ctx.spawn.insts)
            free_contexts += 1

        def attempt_spawns(trigger_seq: int) -> None:
            nonlocal free_contexts, next_uid, phys_used
            for spawn in spawns_by_trigger.get(trigger_seq, ()):
                stats.spawns_attempted += 1
                if free_contexts <= 0:
                    stats.spawns_dropped_no_context += 1
                    continue
                if phys_used + len(spawn.insts) > phys_budget:
                    stats.spawns_dropped_no_context += 1
                    continue
                free_contexts -= 1
                phys_used += len(spawn.insts)
                fetch_active.append(_Context(spawn, next_uid, now))
                next_uid += len(spawn.insts)
                stats.spawns_started += 1
                if trace_on:
                    tr_spawn(now, spawn.static_id, trigger_seq)

        # -------------------------------------------------------------- #
        # Pipeline stages.
        # -------------------------------------------------------------- #

        def do_commit() -> int:
            """Retire up to ``commit_width`` ready heads; returns the
            retire count (the cycle's ``retiring`` slots for top-down
            attribution)."""
            nonlocal committed, phys_used
            n = 0
            while n < commit_width and rob:
                head = rob[0]
                t = completion[head]
                if t == _NOT_DONE or t > now:
                    break
                rob.popleft()
                if writes_arr[head]:
                    phys_used -= 1
                committed += 1
                n += 1
                if trace_on:
                    tr_retire(now, head)
            if n:
                act.committed_main += n
                if trace_on:
                    tr_commit(n)
            return n

        def process_completions() -> bool:
            fired = False
            while completion_events and completion_events[0][0] <= now:
                _, uid = heappop(completion_events)
                fired = True
                for waiter in wakeup.pop(uid, ()):
                    waiter.pending -= 1
                    if waiter.pending == 0:
                        heappush(ready, (waiter.uid, waiter))
            return fired

        def issue_one(entry: _Entry) -> bool:
            """Execute an entry; returns False if it must retry (MSHR full)."""
            nonlocal redirect_clear_at
            kind = entry.kind
            if kind == _LOAD:
                result = data_access(
                    entry.addr, now, is_write=False, is_pthread=entry.is_pth
                )
                if result.retry:
                    return False
                if trace_on:
                    tr_mem(
                        entry.is_pth,
                        result.l2_accessed or result.mem_access,
                    )
                if entry.is_pth:
                    act.dmem_accesses_pth += 1
                    if result.l2_accessed or result.mem_access:
                        act.l2_accesses_pth += 1
                    if result.mem_access:
                        stats.pthread_l2_misses += 1
                else:
                    act.dmem_accesses_main += 1
                    if result.l2_accessed or result.mem_access:
                        act.l2_accesses_main += 1
                    if result.mem_access:
                        stats.demand_l2_misses += 1
                        stats.missed_load_seqs.add(entry.seq)
                        stats.l2_misses_by_pc[entry.pc] = (
                            stats.l2_misses_by_pc.get(entry.pc, 0) + 1
                        )
                        load_kind[entry.seq] = "mem"
                    elif result.mshr_merged:
                        load_kind[entry.seq] = "mem"
                        if result.merged_with_prefetch:
                            line = entry.addr >> l2_line_shift
                            if line not in partial_counted:
                                partial_counted.add(line)
                                stats.covered_misses_partial += 1
                                stats.useful_prefetches += 1
                            stats.missed_load_seqs.add(entry.seq)
                    elif result.l2_accessed:
                        load_kind[entry.seq] = "l2"
                    if result.prefetched_hit:
                        stats.covered_misses_full += 1
                        stats.useful_prefetches += 1
                schedule_completion(entry.uid, result.complete_at)
                if trace_on:
                    tr_issue(now, entry.uid, result.complete_at)
            elif kind == _STORE:
                result = data_access(entry.addr, now, is_write=True)
                if result.retry:
                    return False
                act.dmem_accesses_main += 1
                if result.l2_accessed or result.mem_access:
                    act.l2_accesses_main += 1
                if trace_on:
                    tr_mem(False, result.l2_accessed or result.mem_access)
                    tr_issue(now, entry.uid, now + 1)
                # Stores drain through the store buffer off the critical path.
                schedule_completion(entry.uid, now + 1)
            elif kind == _MUL:
                schedule_completion(entry.uid, now + mul_latency)
                if trace_on:
                    tr_issue(now, entry.uid, now + mul_latency)
            else:  # ALU or BRANCH
                schedule_completion(entry.uid, now + 1)
                if trace_on:
                    tr_issue(now, entry.uid, now + 1)
                if kind == _BRANCH and entry.seq == pending_redirect:
                    redirect_clear_at = now + 1
            if entry.is_pth:
                stats.pinsts_executed += 1
                if kind in (_ALU, _MUL):
                    act.alu_ops_pth += 1
                    if trace_on:
                        tr_alu(True)
                if entry.hint_seq >= 0:
                    done = (
                        p_completion.get(entry.uid)
                        if entry.uid >= n_main
                        else completion[entry.uid]
                    )
                    branch_hints[entry.hint_seq] = (done, entry.hint_taken)
                ctx = entry.ctx
                ctx.in_flight -= 1
                if ctx.fetched_all and ctx.in_flight == 0:
                    finish_context(ctx)
            else:
                if kind in (_ALU, _MUL, _BRANCH):
                    act.alu_ops_main += 1
                    if trace_on:
                        tr_alu(False)
            return True

        def do_issue() -> bool:
            nonlocal rs_used_main, rs_used_pth
            if not ready and not deferred:
                return False
            alu_slots = int_alus
            load_slots = load_ports
            store_slots = store_ports
            issued = 0
            retry: List[_Entry] = []
            pool: List[_Entry] = deferred[:]
            deferred.clear()
            while ready and len(pool) < issue_pool_limit:
                pool.append(heappop(ready)[1])
            for entry in pool:
                kind = entry.kind
                if kind == _LOAD:
                    can = load_slots > 0
                elif kind == _STORE:
                    can = store_slots > 0
                else:
                    can = alu_slots > 0
                if not can or issued >= width:
                    retry.append(entry)
                    continue
                if issue_one(entry):
                    if kind == _LOAD:
                        load_slots -= 1
                    elif kind == _STORE:
                        store_slots -= 1
                    else:
                        alu_slots -= 1
                    if entry.is_pth:
                        rs_used_pth -= 1
                    else:
                        rs_used_main -= 1
                    issued += 1
                else:
                    # MSHR-blocked: the access will replay next chance.
                    if trace_on:
                        tr_replay(now, entry.uid)
                    retry.append(entry)
            deferred.extend(retry)
            return issued > 0

        def do_dispatch() -> bool:
            nonlocal rs_used_main, rs_used_pth, phys_used
            n = 0
            while n < width and frontend_pipe:
                ready_at, seq = frontend_pipe[0]
                if ready_at > now:
                    break
                kind = kind_arr[seq]
                if len(rob) >= rob_capacity:
                    break
                needs_rs = kind != _NOP
                if needs_rs and rs_used_main >= main_rs_cap:
                    break
                writes = writes_arr[seq]
                if writes and phys_used >= phys_budget:
                    break
                frontend_pipe.popleft()
                rob.append(seq)
                act.dispatched_main += 1
                if trace_on:
                    tr_dispatch(now, seq, False)
                if writes:
                    phys_used += 1
                if needs_rs:
                    rs_used_main += 1
                    entry = _Entry(seq, kind, seq, pc_arr[seq],
                                   addr_arr[seq])
                    register_deps(entry, (src1_arr[seq], src2_arr[seq]))
                else:
                    schedule_completion(seq, now)
                if has_spawns:
                    attempt_spawns(seq)
                n += 1
            while n < width and pth_pipe:
                ready_at, ctx, idx = pth_pipe[0]
                if ready_at > now:
                    break
                if rs_used_main + rs_used_pth >= rs_capacity:
                    break
                pth_pipe.popleft()
                rs_used_pth += 1
                act.dispatched_pth += 1
                spec = ctx.spawn.insts[idx]
                uid = ctx.uid_base + idx
                if trace_on:
                    tr_dispatch(now, uid, True)
                entry = _Entry(
                    uid,
                    _PCLASS_TO_KIND[spec.klass],
                    -1,
                    -1,
                    spec.addr,
                    is_pth=True,
                    is_target=spec.is_target,
                    ctx=ctx,
                    hint_seq=spec.hint_branch_seq,
                    hint_taken=spec.hint_taken,
                )
                producers = tuple(
                    ctx.uid_base + d for d in spec.body_deps
                ) + spec.livein_seqs
                register_deps(entry, producers)
                n += 1
            return n > 0

        def do_fetch() -> bool:
            nonlocal next_seq, fetch_line, line_ready_at, fetch_hold_until
            nonlocal pending_redirect, redirect_clear_at

            # P-thread contexts fetch width-sized blocks on their slots.
            if len(pth_pipe) < pipe_capacity:
                for ctx in fetch_active:
                    if ctx.next_fetch > now:
                        continue
                    body = ctx.spawn.insts
                    block_start = ctx.fetch_idx
                    block_end = min(block_start + width, len(body))
                    for idx in range(block_start, block_end):
                        pth_pipe.append((now + frontend_depth, ctx, idx))
                        ctx.in_flight += 1
                        stats.pinsts_fetched += 1
                    ctx.fetch_idx = block_end
                    ctx.next_fetch = now + pth_block_interval
                    if ctx.fetch_idx >= len(body):
                        ctx.fetched_all = True
                        fetch_active.remove(ctx)
                    act.fetch_blocks_pth += 1
                    if trace_on:
                        tr_fetch_block(True)
                        sid = ctx.spawn.static_id
                        for idx in range(block_start, block_end):
                            tr_fetch_pth(now, ctx.uid_base + idx, sid)
                    return True

            # Main thread.
            if len(frontend_pipe) >= pipe_capacity:
                return False
            if pending_redirect is not None:
                if redirect_clear_at is None or now <= redirect_clear_at:
                    return False
                pending_redirect = None
                redirect_clear_at = None
                fetch_line = -1  # refetch the target line
            if now < fetch_hold_until:
                return False
            if next_seq >= n_main:
                return False

            pc = pc_arr[next_seq]
            line = (pc * INST_BYTES) >> line_shift
            if line != fetch_line:
                result = inst_fetch(pc * INST_BYTES, now)
                fetch_line = line
                if not result.l1_hit:
                    line_ready_at = result.complete_at
                    return True  # the fetch slot is consumed by the miss
                line_ready_at = now
            if now < line_ready_at:
                return False

            act.fetch_blocks_main += 1
            if trace_on:
                tr_fetch_block(False)
            fetched = 0
            while (
                fetched < width
                and next_seq < n_main
                and len(frontend_pipe) < pipe_capacity
            ):
                pc = pc_arr[next_seq]
                if (pc * INST_BYTES) >> line_shift != fetch_line:
                    break
                idx = next_seq
                frontend_pipe.append((now + frontend_depth, idx))
                next_seq += 1
                fetched += 1
                if trace_on:
                    tr_fetch_main(now, idx, pc)
                ctrl = ctrl_arr[idx]
                if ctrl == _CTRL_BRANCH:
                    taken = taken_arr[idx]
                    stats.branches += 1
                    act.bpred_accesses += 1
                    if trace_on:
                        tr_bpred()
                    predicted = predict_and_update(pc, taken)
                    hint = branch_hints.get(idx)
                    if hint is not None and hint[0] <= now:
                        # A branch p-thread pre-computed this outcome in
                        # time: fetch follows the hint instead of the
                        # predictor (a wrong hint still mispredicts).
                        stats.branch_hints_used += 1
                        predicted = hint[1]
                    if predicted != taken:
                        stats.mispredictions += 1
                        pending_redirect = idx
                        redirect_clear_at = None
                        if trace_on:
                            tr_redirect(now, idx)
                        break
                    if taken:
                        branch_next_pc = next_pc_arr[idx]
                        target = btb_lookup(pc)
                        if target != branch_next_pc:
                            stats.btb_misses += 1
                            btb_update(pc, branch_next_pc)
                            fetch_hold_until = now + 2
                        fetch_line = (
                            branch_next_pc * INST_BYTES
                        ) >> line_shift
                        result = inst_fetch(branch_next_pc * INST_BYTES, now)
                        if not result.l1_hit:
                            line_ready_at = result.complete_at
                        break
                elif ctrl == _CTRL_JUMP:
                    jump_next_pc = next_pc_arr[idx]
                    fetch_line = (jump_next_pc * INST_BYTES) >> line_shift
                    result = inst_fetch(jump_next_pc * INST_BYTES, now)
                    if not result.l1_hit:
                        line_ready_at = result.complete_at
                    break
            return fetched > 0

        # Cycle attribution accumulates into plain integers and is flushed
        # into ``stats.breakdown`` once after the loop: the per-cycle
        # getattr/setattr of ``LatencyBreakdown.add`` was a top cost.
        # The same applies to the top-down issue-slot attribution
        # (``stats.stalls``): eight plain-int slot counters, flushed once.
        bd_mem = bd_l2 = bd_exec = bd_commit = bd_fetch = 0
        sl_retire = sl_fetch = sl_branch = sl_load = 0
        sl_rob = sl_rs = sl_pth = sl_exec = 0
        load_kind_get = load_kind.get

        def attribute_cycles(n: int, retired: int = 0) -> None:
            """Charge ``n`` cycles to a latency category and all
            ``width * n`` issue slots to top-down causes.

            ``retired`` slots (capped at ``width``) go to ``retiring``;
            the remainder is charged to exactly one cause read off the
            machine state, so the attributed slots sum to
            ``width * cycles`` by construction (StallBreakdown.verify).
            """
            nonlocal bd_mem, bd_l2, bd_exec, bd_commit, bd_fetch
            nonlocal sl_retire, sl_fetch, sl_branch, sl_load
            nonlocal sl_rob, sl_rs, sl_pth, sl_exec
            if trace_on:
                tr_idle(n)
            r = retired if retired < width else width
            sl_retire += r
            slots = width * n - r
            if not rob:
                bd_fetch += n
                # Empty window: the frontend is the bottleneck -- either
                # recovering from a mispredicted branch or starved by
                # I-cache misses / fetch bandwidth.
                if pending_redirect is not None:
                    sl_branch += slots
                else:
                    sl_fetch += slots
                return
            head = rob[0]
            t = completion[head]
            if t != _NOT_DONE and t <= now:
                bd_commit += n
                # Head is done but commit bandwidth limits drain: no
                # structural hazard, pure bandwidth.
                sl_exec += slots
                return
            if kind_arr[head] == _LOAD:
                kind = load_kind_get(head)
                if kind == "mem":
                    bd_mem += n
                    sl_load += slots
                    return
                if kind == "l2":
                    bd_l2 += n
                    sl_load += slots
                    return
            bd_exec += n
            # Execution-bound: charge the structural hazard if one is
            # live (window full, stations exhausted -- distinguishing
            # p-thread reservation-station contention), else pure
            # execution latency.
            if len(rob) >= rob_capacity:
                sl_rob += slots
            elif rs_used_pth and rs_used_main + rs_used_pth >= rs_capacity:
                sl_pth += slots
            elif rs_used_main >= main_rs_cap:
                sl_rs += slots
            else:
                sl_exec += slots

        # -------------------------------------------------------------- #
        # Main loop.
        # -------------------------------------------------------------- #

        safety_limit = 400 * n_main + 10_000_000
        _debug_iter = 0
        _debug = bool(os.environ.get("REPRO_DEBUG_PIPELINE"))
        wall_start = time.perf_counter()
        # Progress heartbeats: only when debug telemetry is on (and not
        # silenced by --quiet), so the disabled fast path costs one
        # boolean test per iteration.
        heartbeat = (
            obs.is_enabled("debug") or obs.has_taps()
        ) and not obs.is_quiet()
        heartbeat_next = HEARTBEAT_CYCLES
        hb_last_wall = wall_start
        hb_last_cycles = 0
        hb_last_committed = 0
        # The ``pipeline.step`` fault site costs one hoisted boolean test
        # per iteration when inactive; when armed it is sampled once at
        # simulation start and then at heartbeat-sized cycle intervals.
        fault_step = faults.site_active("pipeline.step")
        fault_next = 0
        while committed < n_main:
            if fault_step and now >= fault_next:
                fault_next = now + HEARTBEAT_CYCLES
                faults.raise_if("pipeline.step", key=f"cycle:{now}")
            if _debug:
                _debug_iter += 1
                if _debug_iter % 200_000 == 0:
                    print(
                        f"[dbg] iter={_debug_iter} now={now} committed={committed} "
                        f"rob={len(rob)} rs={rs_used_main + rs_used_pth} "
                        f"ready={len(ready)} "
                        f"deferred={len(deferred)} pipe={len(frontend_pipe)} "
                        f"next_seq={next_seq} redirect={pending_redirect} "
                        f"phys={phys_used} freectx={free_contexts}",
                        flush=True,
                    )
            if heartbeat and now >= heartbeat_next:
                wall_now = time.perf_counter()
                wall_s = wall_now - wall_start
                # Interval rates (since the previous heartbeat) drive the
                # ETA: committed instructions are monotone toward n_main,
                # so the retired-rate projection converges even when the
                # cycle rate swings between miss-bound and compute-bound
                # program phases.
                dt = wall_now - hb_last_wall
                retired_rate = (
                    (committed - hb_last_committed) / dt if dt > 0 else 0.0
                )
                eta_s = (
                    (n_main - committed) / retired_rate
                    if retired_rate > 0
                    else None
                )
                obs.log_event(
                    "sim_heartbeat",
                    level="debug",
                    cycles=now,
                    committed=committed,
                    progress_pct=round(100.0 * committed / n_main, 2)
                    if n_main
                    else 100.0,
                    spawns=stats.spawns_started,
                    wall_s=round(wall_s, 3),
                    cycles_per_sec=round(now / wall_s) if wall_s else 0,
                    interval_cycles_per_sec=round((now - hb_last_cycles) / dt)
                    if dt > 0
                    else 0,
                    interval_retired_per_sec=round(retired_rate),
                    eta_s=round(eta_s, 1) if eta_s is not None else None,
                )
                hb_last_wall = wall_now
                hb_last_cycles = now
                hb_last_committed = committed
                heartbeat_next = now + HEARTBEAT_CYCLES
            if completion_events and completion_events[0][0] <= now:
                process_completions()
            ncommitted = do_commit()
            active = ncommitted > 0
            active |= do_issue()
            active |= do_dispatch()
            active |= do_fetch()

            if now > safety_limit:
                raise ExecutionError(
                    f"simulation exceeded {safety_limit} cycles "
                    f"({committed}/{n_main} committed)"
                )

            if committed >= n_main:
                attribute_cycles(1, ncommitted)
                now += 1
                break

            if active or ready:
                attribute_cycles(1, ncommitted)
                now += 1
                continue

            # Entries still in `deferred` with no stage active this cycle
            # can only be MSHR-blocked loads (a port-limited entry implies
            # something else issued, i.e. active).  MSHRs free exactly at
            # load completion events, so jumping to the next completion is
            # safe -- and essential for miss-saturated programs like mcf.

            # Nothing can happen until the next event: jump.
            candidates: List[int] = []
            if completion_events:
                candidates.append(completion_events[0][0])
            if frontend_pipe:
                candidates.append(frontend_pipe[0][0])
            if pth_pipe:
                candidates.append(pth_pipe[0][0])
            if pending_redirect is not None and redirect_clear_at is not None:
                candidates.append(redirect_clear_at + 1)
            if line_ready_at > now:
                candidates.append(line_ready_at)
            if fetch_hold_until > now:
                candidates.append(fetch_hold_until)
            for ctx in fetch_active:
                candidates.append(ctx.next_fetch)
            if not candidates:
                raise _deadlock_error(
                    now, committed, n_main, rob, pc_arr, kind_arr,
                    completion, fetch_active,
                )
            target = max(now + 1, min(candidates))
            attribute_cycles(target - now)
            now = target

        stats.cycles = now
        stats.committed = committed
        act.cycles = now
        breakdown = stats.breakdown
        breakdown.mem += bd_mem
        breakdown.l2 += bd_l2
        breakdown.exec += bd_exec
        breakdown.commit += bd_commit
        breakdown.fetch += bd_fetch
        stalls = stats.stalls
        stalls.retiring += sl_retire
        stalls.fetch_starved += sl_fetch
        stalls.branch_recovery += sl_branch
        stalls.load_miss += sl_load
        stalls.rob_full += sl_rob
        stalls.rs_full += sl_rs
        stalls.pthread_contention += sl_pth
        stalls.exec += sl_exec

        if trace_on:
            # Traced runs self-check the slot invariant, then audit the
            # per-event energy and export the trace artifacts -- all loud
            # on failure.
            stalls.verify(width, now)
            self.trace_artifacts = tracer.finalize(stats)

        wall_s = time.perf_counter() - wall_start
        _SIM_RUNS.add()
        _SIM_CYCLES.add(now)
        _SIM_RETIRED.add(committed)
        if wall_s > 0:
            _SIM_RETIRE_RATE.set(round(committed / wall_s))
            _SIM_CYCLE_RATE.set(round(now / wall_s))
        if obs.is_enabled("info"):
            obs.log_event(
                "sim.done",
                cycles=now,
                committed=committed,
                ipc=round(stats.ipc, 4),
                spawns=stats.spawns_started,
                pinsts=stats.pinsts_executed,
                stall_slots=stalls.as_dict(),
                wall_s=round(wall_s, 6),
                cycles_per_sec=round(now / wall_s) if wall_s else 0,
                retired_per_sec=round(committed / wall_s) if wall_s else 0,
            )
        return stats


def simulate(
    trace: Trace,
    config: Optional[MachineConfig] = None,
    pthreads: Optional[PThreadProgram] = None,
    warm: bool = True,
) -> SimStats:
    """Run one timing simulation on the selected cycle-engine backend.

    Dispatches to the merged-loop engine (:mod:`repro.cpu.batch`) unless
    the ``reference`` backend is selected or microarchitectural tracing
    is active -- the utrace hooks live only in :class:`Pipeline`.  All
    backends are bit-identical (``tests/cpu/test_golden_sim_backends``),
    so nothing downstream can observe the dispatch.
    """
    from repro.cpu import engine

    name = engine.backend()
    if name != "reference" and not utrace.enabled():
        from repro.cpu import batch

        return batch.simulate_fast(
            trace,
            config,
            pthreads,
            warm=warm,
            vector=name == "numpy",
            native=name == "native",
        )
    return Pipeline(trace, config, pthreads, warm=warm).run()
