"""The self-contained cycle kernel: flat arrays and scalars only.

This module is the extraction target of the ``native`` backend work: the
merged event-driven loop of :mod:`repro.cpu.batch` rewritten to operate
on nothing but integers -- flat per-instruction columns, packed cache
sets, scalar bus/TLB/MSHR state.  No ``Trace``, ``MachineConfig``,
``PThreadProgram`` or hierarchy objects appear inside the loop; the
driver (:mod:`repro.cpu.kerneldriver`) marshals them into the arrays
below and unmarshals the counter block back into ``SimStats``.

Two interchangeable implementations exist:

- this file, pure CPython -- the ``batched``/``numpy`` engines run it,
  and it is the fallback for ``native`` when no compiled artifact can be
  built;
- ``_kernel.c``, a direct C transliteration loaded through ``ctypes``
  (:mod:`repro.cpu.nativebuild`) -- the ``native`` engine.

Both consume the same marshaled form (the ``C_*`` config block and the
flat columns) and produce the same ``O_*`` counter block plus ordered
event streams, and both are gated on bit-identical ``SimStats`` by
``tests/cpu/test_golden_sim_backends.py``.  The ABI version below is
embedded in the compiled artifact and checked at load time.

Semantics notes carried over from ``cpu/batch.py`` (see its docstrings
for the derivations):

- wakeup waiter order is free: each wakeup independently decrements a
  pending counter and the ready list is sorted before issue;
- the ``events_t1`` side list bypasses the completion heap for
  ``now + 1`` completions, which are always drained before any jump
  logic can observe the heap;
- MSHR expiry installs fills in insertion order (the dict preserves it
  here; the C mirror keeps its entry array insertion-ordered);
- ``l2_misses_by_pc`` insertion order is preserved by returning demand
  miss uids as an ordered stream the driver replays.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import List, Optional, Tuple

#: Bumped whenever the marshaled layout (C_*/O_* blocks, array meanings,
#: packing) changes; the compiled artifact must report the same value.
KERNEL_ABI = 1

NOT_DONE = -1

# Entry kinds / control classes -- value-identical to repro.cpu.pipeline
# (asserted by the driver at import, so the kernel stays import-free).
K_ALU, K_MUL, K_LOAD, K_STORE, K_BRANCH, K_NOP = range(6)
CTRL_NONE, CTRL_BRANCH, CTRL_JUMP = range(3)

# ------------------------------------------------------------------ #
# cfg block indices.
# ------------------------------------------------------------------ #
(
    C_N_MAIN,
    C_WIDTH,
    C_COMMIT_WIDTH,
    C_FRONTEND_DEPTH,
    C_RS_CAPACITY,
    C_ROB_CAPACITY,
    C_PHYS_BUDGET,
    C_PIPE_CAPACITY,
    C_PTH_BLOCK_INTERVAL,
    C_INT_ALUS,
    C_LOAD_PORTS,
    C_STORE_PORTS,
    C_MUL_LATENCY,
    C_ISSUE_POOL_LIMIT,
    C_MAIN_RS_CAP,
    C_FREE_CONTEXTS,
    C_SAFETY_LIMIT,
    C_INST_BYTES,
    C_LINE_SHIFT,
    C_L2_LINE_SHIFT,
    C_HAS_SPAWNS,
    C_HAS_HINTS,
    C_USE_BTB_COL,
    C_BTB_ENTRIES,
    C_PTHREAD_FILL_L1,
    C_NO_PRODUCER,
    C_DO_WARM,
    # memory hierarchy geometry/timing
    C_IC_OFFSET_BITS,
    C_IC_INDEX_BITS,
    C_IC_INDEX_MASK,
    C_IC_ASSOC,
    C_IC_NSETS,
    C_IC_HIT_LAT,
    C_DC_OFFSET_BITS,
    C_DC_INDEX_BITS,
    C_DC_INDEX_MASK,
    C_DC_ASSOC,
    C_DC_NSETS,
    C_DC_HIT_LAT,
    C_L2_OFFSET_BITS,
    C_L2_INDEX_BITS,
    C_L2_INDEX_MASK,
    C_L2_ASSOC,
    C_L2_NSETS,
    C_L2_HIT_LAT,
    C_ITLB_ENTRIES,
    C_DTLB_ENTRIES,
    C_PAGE_SHIFT,
    C_TLB_MISS_LAT,
    C_MSHR_ENTRIES,
    C_MEMORY_LATENCY,
    C_L2BUS_CYC_DLINE,
    C_L2BUS_CYC_ILINE,
    C_MEMBUS_CYC_L2LINE,
    # p-thread program shape
    C_N_SPAWNS,
    C_N_PINSTS,
    C_DEP_LEN,
    C_LIVE_LEN,
    C_LEN,
) = range(59)

# ------------------------------------------------------------------ #
# out block indices.
# ------------------------------------------------------------------ #
(
    O_CYCLES,
    O_COMMITTED,
    O_BRANCHES,
    O_MISPREDICTIONS,
    O_BTB_MISSES,
    O_DEMAND_L2,
    O_PTHREAD_L2,
    O_COVERED_FULL,
    O_COVERED_PARTIAL,
    O_USEFUL,
    O_HINTS_USED,
    O_PINSTS_FETCHED,
    O_PINSTS_EXECUTED,
    O_SPAWNS_ATTEMPTED,
    O_SPAWNS_STARTED,
    O_SPAWNS_DROPPED,
    O_AC_COMMITTED,
    O_AC_DISP_MAIN,
    O_AC_DISP_PTH,
    O_AC_FETCH_MAIN,
    O_AC_FETCH_PTH,
    O_AC_BPRED,
    O_AC_DMEM_MAIN,
    O_AC_DMEM_PTH,
    O_AC_L2_MAIN,
    O_AC_L2_PTH,
    O_AC_ALU_MAIN,
    O_AC_ALU_PTH,
    O_BD_MEM,
    O_BD_L2,
    O_BD_EXEC,
    O_BD_COMMIT,
    O_BD_FETCH,
    O_SL_RETIRE,
    O_SL_FETCH,
    O_SL_BRANCH,
    O_SL_LOAD,
    O_SL_ROB,
    O_SL_RS,
    O_SL_PTH,
    O_SL_EXEC,
    O_STATUS,
    O_DEAD_ROB_LEN,
    O_DEAD_HEAD_SEQ,
    O_DEAD_HEAD_DONE,
    O_N_MISSED,
    O_N_MISSPC,
    O_N_FA,
    O_LEN,
) = range(49)

#: O_STATUS values.
STATUS_OK, STATUS_DEADLOCK, STATUS_SAFETY = range(3)

#: Access-result flag bits (packed as ``complete_at << 8 | flags``).
F_RETRY, F_L1_HIT, F_L2_ACC, F_MEM_ACC, F_MERGED, F_MERGED_PF, F_PF_HIT = (
    1, 2, 4, 8, 16, 32, 64,
)

#: MSHR cached-minimum sentinel (mirrors MSHRFile._NO_FILL).
NO_FILL = 1 << 62


def run(
    cfg: List[int],
    # pipeline view columns (length n_main)
    kind_arr,
    ctrl_arr,
    writes_arr,
    pc_arr,
    addr_arr,
    src1_arr,
    src2_arr,
    taken_arr,
    next_pc_arr,
    # shared precompute columns
    line_arr,
    pred_arr,
    btb_col,          # redirect flags, or None when C_USE_BTB_COL == 0
    # warmed cache image: per-cache list-of-sets of packed (tag << 1 | dirty)
    warm_ic,
    warm_dc,
    warm_l2,
    # flattened p-thread program, spawns sorted by trigger_seq (stable)
    sp_trigger,
    sp_static,
    sp_inst_lo,
    sp_inst_hi,
    pi_kind,
    pi_addr,
    pi_hint_seq,
    pi_hint_taken,
    pi_dep_lo,
    pi_dep_hi,
    dep_flat,
    pi_live_lo,
    pi_live_hi,
    live_flat,
) -> Tuple[List[int], List[int], List[int], List[Tuple[int, ...]]]:
    """Run one timing simulation over the marshaled flat state.

    Returns ``(out, missed, misspc, fetch_state)``: the ``O_*`` counter
    block, the ordered missed-load seq stream (``missed_load_seqs``),
    the ordered demand-miss uid stream (``l2_misses_by_pc`` replay), and
    -- only on ``STATUS_DEADLOCK`` -- the live fetch-context snapshot as
    ``(static_id, trigger_seq, fetch_idx, next_fetch, in_flight,
    fetched_all)`` tuples.
    """
    n_main = cfg[C_N_MAIN]
    width = cfg[C_WIDTH]
    commit_width = cfg[C_COMMIT_WIDTH]
    frontend_depth = cfg[C_FRONTEND_DEPTH]
    rs_capacity = cfg[C_RS_CAPACITY]
    rob_capacity = cfg[C_ROB_CAPACITY]
    phys_budget = cfg[C_PHYS_BUDGET]
    pipe_capacity = cfg[C_PIPE_CAPACITY]
    pth_block_interval = cfg[C_PTH_BLOCK_INTERVAL]
    int_alus = cfg[C_INT_ALUS]
    load_ports = cfg[C_LOAD_PORTS]
    store_ports = cfg[C_STORE_PORTS]
    mul_latency = cfg[C_MUL_LATENCY]
    issue_pool_limit = cfg[C_ISSUE_POOL_LIMIT]
    main_rs_cap = cfg[C_MAIN_RS_CAP]
    free_contexts = cfg[C_FREE_CONTEXTS]
    safety_limit = cfg[C_SAFETY_LIMIT]
    inst_bytes = cfg[C_INST_BYTES]
    line_shift = cfg[C_LINE_SHIFT]
    l2_line_shift = cfg[C_L2_LINE_SHIFT]
    has_spawns = cfg[C_HAS_SPAWNS]
    has_hints = cfg[C_HAS_HINTS]
    use_btb_col = cfg[C_USE_BTB_COL]
    btb_entries = cfg[C_BTB_ENTRIES]
    pthread_fill_l1 = cfg[C_PTHREAD_FILL_L1]
    no_producer = cfg[C_NO_PRODUCER]

    # ---- memory subsystem state (flat) --------------------------- #
    ic_ob = cfg[C_IC_OFFSET_BITS]
    ic_ib = cfg[C_IC_INDEX_BITS]
    ic_im = cfg[C_IC_INDEX_MASK]
    ic_assoc = cfg[C_IC_ASSOC]
    ic_hitlat = cfg[C_IC_HIT_LAT]
    dc_ob = cfg[C_DC_OFFSET_BITS]
    dc_ib = cfg[C_DC_INDEX_BITS]
    dc_im = cfg[C_DC_INDEX_MASK]
    dc_assoc = cfg[C_DC_ASSOC]
    dc_hitlat = cfg[C_DC_HIT_LAT]
    l2_ob = cfg[C_L2_OFFSET_BITS]
    l2_ib = cfg[C_L2_INDEX_BITS]
    l2_im = cfg[C_L2_INDEX_MASK]
    l2_assoc = cfg[C_L2_ASSOC]
    l2_hitlat = cfg[C_L2_HIT_LAT]
    itlb_entries = cfg[C_ITLB_ENTRIES]
    dtlb_entries = cfg[C_DTLB_ENTRIES]
    page_shift = cfg[C_PAGE_SHIFT]
    tlb_miss_lat = cfg[C_TLB_MISS_LAT]
    mshr_entries = cfg[C_MSHR_ENTRIES]
    memory_latency = cfg[C_MEMORY_LATENCY]
    l2bus_cyc_dline = cfg[C_L2BUS_CYC_DLINE]
    l2bus_cyc_iline = cfg[C_L2BUS_CYC_ILINE]
    membus_cyc_l2line = cfg[C_MEMBUS_CYC_L2LINE]

    if cfg[C_DO_WARM]:
        ic_sets = [list(w) for w in warm_ic]
        dc_sets = [list(w) for w in warm_dc]
        l2_sets = [list(w) for w in warm_l2]
    else:
        ic_sets = [[] for _ in range(cfg[C_IC_NSETS])]
        dc_sets = [[] for _ in range(cfg[C_DC_NSETS])]
        l2_sets = [[] for _ in range(cfg[C_L2_NSETS])]
    itlb_pages: List[int] = []     # LRU first
    dtlb_pages: List[int] = []
    mshr = {}                      # line -> fill_time << 3 | pth<<2|l1<<1|dirty
    mshr_next_fill = NO_FILL
    l2bus_free = 0
    membus_free = 0
    prefetched: set = set()

    def cache_access(sets, ob, ib, im, addr, wbit):
        line = addr >> ob
        tag2 = (line >> ib) << 1
        ways = sets[line & im]
        for i in range(len(ways)):
            e = ways[i]
            if e & -2 == tag2:
                del ways[i]
                ways.append(e | wbit)
                return True
        return False

    def cache_fill(sets, ob, ib, im, assoc, addr, wbit):
        line = addr >> ob
        index = line & im
        tag2 = (line >> ib) << 1
        ways = sets[index]
        for i in range(len(ways)):
            e = ways[i]
            if e & -2 == tag2:  # already present (e.g. racing fills)
                del ways[i]
                ways.append(e | wbit)
                return -1
        victim_line = -1
        if len(ways) >= assoc:
            v = ways.pop(0)
            if v & 1:
                victim_line = ((v >> 1) << ib | index) << ob
        ways.append(tag2 | wbit)
        return victim_line

    def tlb_access(pages, entries, addr):
        page = addr >> page_shift
        if page in pages:
            pages.remove(page)
            pages.append(page)
            return 0
        if len(pages) >= entries:
            del pages[0]
        pages.append(page)
        return tlb_miss_lat

    def mshr_sync(t):
        # Retires expired entries in insertion order (dict order), each
        # installing its line -- the MemoryHierarchy._install hook inlined.
        nonlocal mshr_next_fill, membus_free
        if t < mshr_next_fill:
            return
        done = [line for line, e in mshr.items() if e >> 3 <= t]
        for line in done:
            e = mshr.pop(line)
            fill_time = e >> 3
            victim = cache_fill(l2_sets, l2_ob, l2_ib, l2_im, l2_assoc,
                                line, 0)
            if victim != -1:
                start = fill_time if fill_time > membus_free else membus_free
                membus_free = start + membus_cyc_l2line
            if e & 2:
                cache_fill(dc_sets, dc_ob, dc_ib, dc_im, dc_assoc,
                           line, e & 1)
            if e & 4:
                prefetched.add(line)
            else:
                prefetched.discard(line)
        mshr_next_fill = min(
            (e >> 3 for e in mshr.values()), default=NO_FILL
        )

    def data_access(addr, now, is_write, is_pth):
        # MemoryHierarchy.data_access inlined; returns complete_at<<8|flags.
        nonlocal mshr_next_fill, l2bus_free, membus_free
        t = now + tlb_access(dtlb_pages, dtlb_entries, addr)
        fill_l1 = (not is_pth) or pthread_fill_l1
        mshr_sync(t)
        wbit = 1 if is_write else 0
        if cache_access(dc_sets, dc_ob, dc_ib, dc_im, addr, wbit):
            return (t + dc_hitlat) << 8 | F_L1_HIT
        t += dc_hitlat
        line = (addr >> l2_ob) << l2_ob
        mshr_sync(t)
        e = mshr.get(line)
        if e is not None:
            flags = F_MERGED
            if not is_pth and e & 4:
                flags |= F_MERGED_PF
            mshr[line] = e | (2 if fill_l1 else 0) | wbit
            floor = t + l2_hitlat
            outstanding = e >> 3
            complete = outstanding if outstanding > floor else floor
            return complete << 8 | flags
        if cache_access(l2_sets, l2_ob, l2_ib, l2_im, addr, 0):
            req = t + l2_hitlat
            start = req if req > l2bus_free else l2bus_free
            done = start + l2bus_cyc_dline
            l2bus_free = done
            if fill_l1:
                cache_fill(dc_sets, dc_ob, dc_ib, dc_im, dc_assoc,
                           addr, wbit)
            flags = F_L2_ACC
            if not is_pth and line in prefetched:
                prefetched.discard(line)
                flags |= F_PF_HIT
            return done << 8 | flags
        if not (line in mshr or len(mshr) < mshr_entries):
            return t << 8 | F_RETRY
        mem_done = t + l2_hitlat + memory_latency
        start = mem_done if mem_done > membus_free else membus_free
        fill_time = start + membus_cyc_l2line
        membus_free = fill_time
        mshr[line] = (
            fill_time << 3
            | (4 if is_pth else 0)
            | (2 if fill_l1 else 0)
            | wbit
        )
        if fill_time < mshr_next_fill:
            mshr_next_fill = fill_time
        return fill_time << 8 | F_L2_ACC | F_MEM_ACC

    def inst_fetch(addr, now):
        # MemoryHierarchy.inst_fetch inlined (no MSHRs on the I-side).
        nonlocal l2bus_free, membus_free
        t = now + tlb_access(itlb_pages, itlb_entries, addr)
        if cache_access(ic_sets, ic_ob, ic_ib, ic_im, addr, 0):
            return (t + ic_hitlat) << 8 | F_L1_HIT
        t += ic_hitlat
        if cache_access(l2_sets, l2_ob, l2_ib, l2_im, addr, 0):
            req = t + l2_hitlat
            start = req if req > l2bus_free else l2bus_free
            done = start + l2bus_cyc_iline
            l2bus_free = done
            cache_fill(ic_sets, ic_ob, ic_ib, ic_im, ic_assoc, addr, 0)
            return done << 8 | F_L2_ACC
        mem_done = t + l2_hitlat + memory_latency
        start = mem_done if mem_done > membus_free else membus_free
        fill_time = start + membus_cyc_l2line
        membus_free = fill_time
        cache_fill(l2_sets, l2_ob, l2_ib, l2_im, l2_assoc, addr, 0)
        cache_fill(ic_sets, ic_ob, ic_ib, ic_im, ic_assoc, addr, 0)
        return fill_time << 8 | F_L2_ACC | F_MEM_ACC

    # Live BTB (branch-hint mode only): LRU-ordered pc -> target.
    live_btb: dict = {}

    # ---- scheduler state ----------------------------------------- #
    completion: List[int] = [NOT_DONE] * n_main
    pending_main: List[int] = [0] * n_main
    p_completion: List[int] = []
    p_pending: List[int] = []
    p_kind: List[int] = []
    p_addr: List[int] = []
    p_ctx: List[int] = []
    p_spec: List[int] = []

    wakeup: dict = {}
    ready: List[int] = []
    ready_append = ready.append
    deferred: List[int] = []
    completion_events: List[Tuple[int, int]] = []
    events_t1: List[int] = []

    rob: List[int] = []            # ring semantics via head index
    rob_head_i = 0
    frontend_pipe: List[int] = []
    fp_head_i = 0
    fp_head = 0
    pth_pipe: List[Tuple[int, int, int]] = []
    pp_head_i = 0
    rob_len = 0
    fp_len = 0
    pp_len = 0
    rs_used_main = 0
    rs_used_pth = 0
    phys_used = 0

    next_seq = 0
    fetch_line = -1
    line_ready_at = 0
    fetch_hold_until = 0
    pending_redirect = -1          # sentinel for None
    redirect_clear_at = NOT_DONE   # sentinel for None

    load_kind = bytearray(n_main)  # 0 none / 1 "mem" / 2 "l2"
    partial_counted: set = set()
    if has_hints:
        hint_time = [NOT_DONE] * n_main
        hint_dir = bytearray(n_main)
    else:
        hint_time = []
        hint_dir = bytearray()

    # Per-context state, indexed by creation order (mirrors _Context).
    ctx_spawn: List[int] = []
    ctx_uid_base: List[int] = []
    ctx_fetch_idx: List[int] = []
    ctx_next_fetch: List[int] = []
    ctx_in_flight: List[int] = []
    ctx_fetched_all: List[int] = []
    fetch_active: List[int] = []
    sp_next = 0
    n_spawns = cfg[C_N_SPAWNS]

    next_uid = n_main
    now = 0
    committed = 0

    st_branches = st_mispredictions = st_btb_misses = 0
    st_demand_l2 = st_pthread_l2 = 0
    st_covered_full = st_covered_partial = st_useful = 0
    st_hints_used = 0
    st_pinsts_fetched = st_pinsts_executed = 0
    st_spawns_attempted = st_spawns_started = st_spawns_dropped = 0
    ac_committed = ac_dispatched_main = ac_dispatched_pth = 0
    ac_fetch_main = ac_fetch_pth = ac_bpred = 0
    ac_dmem_main = ac_dmem_pth = ac_l2_main = ac_l2_pth = 0
    ac_alu_main = ac_alu_pth = 0

    bd_mem = bd_l2 = bd_exec = bd_commit = bd_fetch = 0
    sl_retire = sl_fetch = sl_branch = sl_load = 0
    sl_rob = sl_rs = sl_pth = sl_exec = 0

    missed: List[int] = []
    missed_append = missed.append
    misspc: List[int] = []
    misspc_append = misspc.append

    status = STATUS_OK
    dead_fa: List[Tuple[int, ...]] = []

    def attribute_cycles(n, retired=0):
        # Identical charging rules to the reference (see Pipeline.run).
        nonlocal bd_mem, bd_l2, bd_exec, bd_commit, bd_fetch
        nonlocal sl_retire, sl_fetch, sl_branch, sl_load
        nonlocal sl_rob, sl_rs, sl_pth, sl_exec
        r = retired if retired < width else width
        sl_retire += r
        slots = width * n - r
        if not rob_len:
            bd_fetch += n
            if pending_redirect != -1:
                sl_branch += slots
            else:
                sl_fetch += slots
            return
        head = rob[rob_head_i]
        t = completion[head]
        if t != NOT_DONE and t <= now:
            bd_commit += n
            sl_exec += slots
            return
        if kind_arr[head] == K_LOAD:
            lk = load_kind[head]
            if lk == 1:
                bd_mem += n
                sl_load += slots
                return
            if lk == 2:
                bd_l2 += n
                sl_load += slots
                return
        bd_exec += n
        if rob_len >= rob_capacity:
            sl_rob += slots
        elif rs_used_pth and rs_used_main + rs_used_pth >= rs_capacity:
            sl_pth += slots
        elif rs_used_main >= main_rs_cap:
            sl_rs += slots
        else:
            sl_exec += slots

    while committed < n_main:
        # ---- wakeup ---------------------------------------------- #
        if events_t1:
            for uid in events_t1:
                waiters = wakeup.pop(uid, None)
                if waiters:
                    for w in waiters:
                        if w < n_main:
                            p = pending_main[w] - 1
                            pending_main[w] = p
                        else:
                            wi = w - n_main
                            p = p_pending[wi] - 1
                            p_pending[wi] = p
                        if p == 0:
                            ready_append(w)
            events_t1 = []
        if completion_events and completion_events[0][0] <= now:
            while completion_events and completion_events[0][0] <= now:
                _, uid = heappop(completion_events)
                waiters = wakeup.pop(uid, None)
                if waiters:
                    for w in waiters:
                        if w < n_main:
                            p = pending_main[w] - 1
                            pending_main[w] = p
                        else:
                            wi = w - n_main
                            p = p_pending[wi] - 1
                            p_pending[wi] = p
                        if p == 0:
                            ready_append(w)

        # ---- commit ---------------------------------------------- #
        ncommitted = 0
        while ncommitted < commit_width and rob_len:
            head = rob[rob_head_i]
            t = completion[head]
            if t == NOT_DONE or t > now:
                break
            rob_head_i += 1
            rob_len -= 1
            if writes_arr[head]:
                phys_used -= 1
            committed += 1
            ncommitted += 1
        if ncommitted:
            ac_committed += ncommitted
            if rob_head_i > 4096 and not rob_len:
                del rob[:rob_head_i]
                rob_head_i = 0
        active = ncommitted > 0

        # ---- issue ----------------------------------------------- #
        if ready or deferred:
            now1 = now + 1
            alu_slots = int_alus
            load_slots = load_ports
            store_slots = store_ports
            issued = 0
            retry: List[int] = []
            pool: List[int] = deferred[:]
            deferred.clear()
            if ready:
                ready.sort()
                k = issue_pool_limit - len(pool)
                if k > 0:
                    pool += ready[:k]
                    del ready[:k]
            for uid in pool:
                if uid < n_main:
                    kind = kind_arr[uid]
                    if kind == K_LOAD:
                        if load_slots <= 0 or issued >= width:
                            retry.append(uid)
                            continue
                        r = data_access(addr_arr[uid], now, False, False)
                        flags = r & 0xFF
                        if flags & F_RETRY:
                            retry.append(uid)
                            continue
                        ac_dmem_main += 1
                        if flags & (F_L2_ACC | F_MEM_ACC):
                            ac_l2_main += 1
                        if flags & F_MEM_ACC:
                            st_demand_l2 += 1
                            missed_append(uid)
                            misspc_append(uid)
                            load_kind[uid] = 1
                        elif flags & F_MERGED:
                            load_kind[uid] = 1
                            if flags & F_MERGED_PF:
                                line = addr_arr[uid] >> l2_line_shift
                                if line not in partial_counted:
                                    partial_counted.add(line)
                                    st_covered_partial += 1
                                    st_useful += 1
                                missed_append(uid)
                        elif flags & F_L2_ACC:
                            load_kind[uid] = 2
                        if flags & F_PF_HIT:
                            st_covered_full += 1
                            st_useful += 1
                        t = r >> 8
                        completion[uid] = t
                        if t == now1:
                            events_t1.append(uid)
                        else:
                            heappush(completion_events, (t, uid))
                        load_slots -= 1
                    elif kind == K_STORE:
                        if store_slots <= 0 or issued >= width:
                            retry.append(uid)
                            continue
                        r = data_access(addr_arr[uid], now, True, False)
                        flags = r & 0xFF
                        if flags & F_RETRY:
                            retry.append(uid)
                            continue
                        ac_dmem_main += 1
                        if flags & (F_L2_ACC | F_MEM_ACC):
                            ac_l2_main += 1
                        completion[uid] = now1
                        events_t1.append(uid)
                        store_slots -= 1
                    else:
                        if alu_slots <= 0 or issued >= width:
                            retry.append(uid)
                            continue
                        if kind == K_MUL:
                            t = now + mul_latency
                            completion[uid] = t
                            if t == now1:
                                events_t1.append(uid)
                            else:
                                heappush(completion_events, (t, uid))
                        else:
                            if kind == K_BRANCH and uid == pending_redirect:
                                redirect_clear_at = now1
                            completion[uid] = now1
                            events_t1.append(uid)
                        ac_alu_main += 1
                        alu_slots -= 1
                    rs_used_main -= 1
                else:
                    pu = uid - n_main
                    kind = p_kind[pu]
                    if kind == K_LOAD:
                        if load_slots <= 0 or issued >= width:
                            retry.append(uid)
                            continue
                        r = data_access(p_addr[pu], now, False, True)
                        flags = r & 0xFF
                        if flags & F_RETRY:
                            retry.append(uid)
                            continue
                        ac_dmem_pth += 1
                        if flags & (F_L2_ACC | F_MEM_ACC):
                            ac_l2_pth += 1
                        if flags & F_MEM_ACC:
                            st_pthread_l2 += 1
                        t = r >> 8
                        p_completion[pu] = t
                        if t == now1:
                            events_t1.append(uid)
                        else:
                            heappush(completion_events, (t, uid))
                        load_slots -= 1
                    else:
                        if alu_slots <= 0 or issued >= width:
                            retry.append(uid)
                            continue
                        t = now + mul_latency if kind == K_MUL else now1
                        p_completion[pu] = t
                        if t == now1:
                            events_t1.append(uid)
                        else:
                            heappush(completion_events, (t, uid))
                        ac_alu_pth += 1
                        alu_slots -= 1
                    st_pinsts_executed += 1
                    j = p_spec[pu]
                    hs = pi_hint_seq[j]
                    if hs >= 0:
                        hint_time[hs] = t
                        hint_dir[hs] = pi_hint_taken[j]
                    ci = p_ctx[pu]
                    ctx_in_flight[ci] -= 1
                    if ctx_fetched_all[ci] and ctx_in_flight[ci] == 0:
                        s = ctx_spawn[ci]
                        phys_used -= sp_inst_hi[s] - sp_inst_lo[s]
                        free_contexts += 1
                    rs_used_pth -= 1
                issued += 1
            deferred.extend(retry)
            if issued:
                active = True

        # ---- dispatch -------------------------------------------- #
        n = 0
        while n < width and fp_len:
            if frontend_pipe[fp_head_i] > now:
                break
            seq = fp_head
            kind = kind_arr[seq]
            if rob_len >= rob_capacity:
                break
            needs_rs = kind != K_NOP
            if needs_rs and rs_used_main >= main_rs_cap:
                break
            writes = writes_arr[seq]
            if writes and phys_used >= phys_budget:
                break
            fp_head_i += 1
            fp_len -= 1
            if not fp_len:
                del frontend_pipe[:]
                fp_head_i = 0
            fp_head += 1
            rob.append(seq)
            rob_len += 1
            ac_dispatched_main += 1
            if writes:
                phys_used += 1
            if needs_rs:
                rs_used_main += 1
                pending = 0
                producer = src1_arr[seq]
                if producer != no_producer:
                    t = completion[producer]
                    if t == NOT_DONE or t > now:
                        w = wakeup.get(producer)
                        if w is None:
                            wakeup[producer] = [seq]
                        else:
                            w.append(seq)
                        pending += 1
                producer = src2_arr[seq]
                if producer != no_producer:
                    t = completion[producer]
                    if t == NOT_DONE or t > now:
                        w = wakeup.get(producer)
                        if w is None:
                            wakeup[producer] = [seq]
                        else:
                            w.append(seq)
                        pending += 1
                if pending:
                    pending_main[seq] = pending
                else:
                    ready_append(seq)
            else:
                # NOPs complete instantly and can never have waiters
                # (dispatch is in-order; see cpu/batch.py).
                completion[seq] = now
            if has_spawns:
                while sp_next < n_spawns and sp_trigger[sp_next] <= seq:
                    if sp_trigger[sp_next] < seq:
                        sp_next += 1
                        continue
                    s = sp_next
                    sp_next += 1
                    st_spawns_attempted += 1
                    if free_contexts <= 0:
                        st_spawns_dropped += 1
                        continue
                    k = sp_inst_hi[s] - sp_inst_lo[s]
                    if phys_used + k > phys_budget:
                        st_spawns_dropped += 1
                        continue
                    free_contexts -= 1
                    phys_used += k
                    ci = len(ctx_spawn)
                    ctx_spawn.append(s)
                    ctx_uid_base.append(next_uid)
                    ctx_fetch_idx.append(0)
                    ctx_next_fetch.append(now + 1)
                    ctx_in_flight.append(0)
                    ctx_fetched_all.append(0)
                    fetch_active.append(ci)
                    next_uid += k
                    for j in range(sp_inst_lo[s], sp_inst_hi[s]):
                        p_kind.append(pi_kind[j])
                        p_addr.append(pi_addr[j])
                        p_ctx.append(ci)
                        p_spec.append(j)
                    p_completion.extend([NOT_DONE] * k)
                    p_pending.extend([0] * k)
                    st_spawns_started += 1
            n += 1
        while n < width and pp_len:
            ready_at, ci, idx = pth_pipe[pp_head_i]
            if ready_at > now:
                break
            if rs_used_main + rs_used_pth >= rs_capacity:
                break
            pp_head_i += 1
            pp_len -= 1
            if not pp_len:
                del pth_pipe[:]
                pp_head_i = 0
            rs_used_pth += 1
            ac_dispatched_pth += 1
            s = ctx_spawn[ci]
            j = sp_inst_lo[s] + idx
            uid_base = ctx_uid_base[ci]
            uid = uid_base + idx
            pending = 0
            base_off = uid_base - n_main
            for di in range(pi_dep_lo[j], pi_dep_hi[j]):
                d = dep_flat[di]
                t = p_completion[base_off + d]
                if t == NOT_DONE or t > now:
                    producer = uid_base + d
                    w = wakeup.get(producer)
                    if w is None:
                        wakeup[producer] = [uid]
                    else:
                        w.append(uid)
                    pending += 1
            for li in range(pi_live_lo[j], pi_live_hi[j]):
                producer = live_flat[li]
                if producer < n_main:
                    t = completion[producer]
                else:
                    t = p_completion[producer - n_main]
                if t == NOT_DONE or t > now:
                    w = wakeup.get(producer)
                    if w is None:
                        wakeup[producer] = [uid]
                    else:
                        w.append(uid)
                    pending += 1
            if pending:
                p_pending[uid - n_main] = pending
            else:
                ready_append(uid)
            n += 1
        if n:
            active = True

        # ---- fetch ----------------------------------------------- #
        fetched_any = False
        if fetch_active and pp_len < pipe_capacity:
            for pos in range(len(fetch_active)):
                ci = fetch_active[pos]
                if ctx_next_fetch[ci] > now:
                    continue
                s = ctx_spawn[ci]
                body_len = sp_inst_hi[s] - sp_inst_lo[s]
                block_start = ctx_fetch_idx[ci]
                block_end = block_start + width
                if block_end > body_len:
                    block_end = body_len
                for idx in range(block_start, block_end):
                    pth_pipe.append((now + frontend_depth, ci, idx))
                    pp_len += 1
                    ctx_in_flight[ci] += 1
                    st_pinsts_fetched += 1
                ctx_fetch_idx[ci] = block_end
                ctx_next_fetch[ci] = now + pth_block_interval
                if block_end >= body_len:
                    ctx_fetched_all[ci] = 1
                    del fetch_active[pos]
                ac_fetch_pth += 1
                fetched_any = True
                break
        if not fetched_any and fp_len < pipe_capacity:
            fetch_ok = True
            if pending_redirect != -1:
                if redirect_clear_at == NOT_DONE or now <= redirect_clear_at:
                    fetch_ok = False
                else:
                    pending_redirect = -1
                    redirect_clear_at = NOT_DONE
                    fetch_line = -1  # refetch the target line
            if fetch_ok and now >= fetch_hold_until and next_seq < n_main:
                line = line_arr[next_seq]
                line_miss = False
                if line != fetch_line:
                    r = inst_fetch(pc_arr[next_seq] * inst_bytes, now)
                    fetch_line = line
                    if not r & F_L1_HIT:
                        line_ready_at = r >> 8
                        # The fetch slot is consumed by the miss.
                        line_miss = True
                        fetched_any = True
                    else:
                        line_ready_at = now
                if not line_miss and now >= line_ready_at:
                    ac_fetch_main += 1
                    fetched = 0
                    dispatch_at = now + frontend_depth
                    while (
                        fetched < width
                        and next_seq < n_main
                        and fp_len < pipe_capacity
                    ):
                        idx = next_seq
                        if line_arr[idx] != fetch_line:
                            break
                        frontend_pipe.append(dispatch_at)
                        fp_len += 1
                        next_seq += 1
                        fetched += 1
                        ctrl = ctrl_arr[idx]
                        if ctrl == CTRL_BRANCH:
                            taken = taken_arr[idx]
                            st_branches += 1
                            ac_bpred += 1
                            predicted = pred_arr[idx]
                            if has_hints:
                                ht = hint_time[idx]
                                if ht != NOT_DONE and ht <= now:
                                    st_hints_used += 1
                                    predicted = hint_dir[idx]
                            if predicted != taken:
                                st_mispredictions += 1
                                pending_redirect = idx
                                redirect_clear_at = NOT_DONE
                                break
                            if taken:
                                branch_next_pc = next_pc_arr[idx]
                                if use_btb_col:
                                    if btb_col[idx]:
                                        st_btb_misses += 1
                                        fetch_hold_until = now + 2
                                else:
                                    # Live BTB: LRU dict, mirrors
                                    # repro.branch.btb.BTB op for op.
                                    pc = pc_arr[idx]
                                    target = live_btb.get(pc, -1)
                                    if target != -1:
                                        del live_btb[pc]
                                        live_btb[pc] = target
                                    if target != branch_next_pc:
                                        st_btb_misses += 1
                                        if pc in live_btb:
                                            del live_btb[pc]
                                        elif len(live_btb) >= btb_entries:
                                            del live_btb[
                                                next(iter(live_btb))
                                            ]
                                        live_btb[pc] = branch_next_pc
                                        fetch_hold_until = now + 2
                                fetch_line = (
                                    branch_next_pc * inst_bytes
                                ) >> line_shift
                                r = inst_fetch(
                                    branch_next_pc * inst_bytes, now
                                )
                                if not r & F_L1_HIT:
                                    line_ready_at = r >> 8
                                break
                        elif ctrl == CTRL_JUMP:
                            jump_next_pc = next_pc_arr[idx]
                            fetch_line = (
                                jump_next_pc * inst_bytes
                            ) >> line_shift
                            r = inst_fetch(jump_next_pc * inst_bytes, now)
                            if not r & F_L1_HIT:
                                line_ready_at = r >> 8
                            break
                    if fetched:
                        fetched_any = True
        if fetched_any:
            active = True

        if now > safety_limit:
            status = STATUS_SAFETY
            break

        if committed >= n_main:
            attribute_cycles(1, ncommitted)
            now += 1
            break

        if active or ready:
            # attribute_cycles(1, ncommitted), inlined (hottest path).
            r = ncommitted if ncommitted < width else width
            sl_retire += r
            slots = width - r
            if not rob_len:
                bd_fetch += 1
                if pending_redirect != -1:
                    sl_branch += slots
                else:
                    sl_fetch += slots
            else:
                head = rob[rob_head_i]
                t = completion[head]
                if t != NOT_DONE and t <= now:
                    bd_commit += 1
                    sl_exec += slots
                elif kind_arr[head] == K_LOAD and (
                    (lk := load_kind[head]) == 1 or lk == 2
                ):
                    if lk == 1:
                        bd_mem += 1
                    else:
                        bd_l2 += 1
                    sl_load += slots
                elif rob_len >= rob_capacity:
                    bd_exec += 1
                    sl_rob += slots
                elif rs_used_pth and rs_used_main + rs_used_pth >= rs_capacity:
                    bd_exec += 1
                    sl_pth += slots
                elif rs_used_main >= main_rs_cap:
                    bd_exec += 1
                    sl_rs += slots
                else:
                    bd_exec += 1
                    sl_exec += slots
            now += 1
            continue

        # Nothing can happen until the next event: jump (see
        # cpu/batch.py for the stale-candidate derivation).
        if not deferred:
            candidates: List[int] = []
            if completion_events:
                candidates.append(completion_events[0][0])
            if fp_len and frontend_pipe[fp_head_i] > now:
                candidates.append(frontend_pipe[fp_head_i])
            if pp_len and pth_pipe[pp_head_i][0] > now:
                candidates.append(pth_pipe[pp_head_i][0])
            if (
                pending_redirect != -1
                and redirect_clear_at != NOT_DONE
                and redirect_clear_at + 1 > now
            ):
                candidates.append(redirect_clear_at + 1)
            if line_ready_at > now:
                candidates.append(line_ready_at)
            if fetch_hold_until > now:
                candidates.append(fetch_hold_until)
            for ci in fetch_active:
                if ctx_next_fetch[ci] > now:
                    candidates.append(ctx_next_fetch[ci])
            if candidates:
                target = min(candidates)
                attribute_cycles(target - now)
                now = target
                continue
            # Only stale candidates (if any) remain: fall through to the
            # reference's single-cycle step / deadlock decision.
        candidates = []
        if completion_events:
            candidates.append(completion_events[0][0])
        if fp_len:
            candidates.append(frontend_pipe[fp_head_i])
        if pp_len:
            candidates.append(pth_pipe[pp_head_i][0])
        if pending_redirect != -1 and redirect_clear_at != NOT_DONE:
            candidates.append(redirect_clear_at + 1)
        if line_ready_at > now:
            candidates.append(line_ready_at)
        if fetch_hold_until > now:
            candidates.append(fetch_hold_until)
        for ci in fetch_active:
            candidates.append(ctx_next_fetch[ci])
        if not candidates:
            status = STATUS_DEADLOCK
            dead_fa = [
                (
                    sp_static[ctx_spawn[ci]],
                    sp_trigger[ctx_spawn[ci]],
                    ctx_fetch_idx[ci],
                    ctx_next_fetch[ci],
                    ctx_in_flight[ci],
                    ctx_fetched_all[ci],
                )
                for ci in fetch_active
            ]
            break
        target = max(now + 1, min(candidates))
        attribute_cycles(target - now)
        now = target

    out = [0] * O_LEN
    out[O_CYCLES] = now
    out[O_COMMITTED] = committed
    out[O_BRANCHES] = st_branches
    out[O_MISPREDICTIONS] = st_mispredictions
    out[O_BTB_MISSES] = st_btb_misses
    out[O_DEMAND_L2] = st_demand_l2
    out[O_PTHREAD_L2] = st_pthread_l2
    out[O_COVERED_FULL] = st_covered_full
    out[O_COVERED_PARTIAL] = st_covered_partial
    out[O_USEFUL] = st_useful
    out[O_HINTS_USED] = st_hints_used
    out[O_PINSTS_FETCHED] = st_pinsts_fetched
    out[O_PINSTS_EXECUTED] = st_pinsts_executed
    out[O_SPAWNS_ATTEMPTED] = st_spawns_attempted
    out[O_SPAWNS_STARTED] = st_spawns_started
    out[O_SPAWNS_DROPPED] = st_spawns_dropped
    out[O_AC_COMMITTED] = ac_committed
    out[O_AC_DISP_MAIN] = ac_dispatched_main
    out[O_AC_DISP_PTH] = ac_dispatched_pth
    out[O_AC_FETCH_MAIN] = ac_fetch_main
    out[O_AC_FETCH_PTH] = ac_fetch_pth
    out[O_AC_BPRED] = ac_bpred
    out[O_AC_DMEM_MAIN] = ac_dmem_main
    out[O_AC_DMEM_PTH] = ac_dmem_pth
    out[O_AC_L2_MAIN] = ac_l2_main
    out[O_AC_L2_PTH] = ac_l2_pth
    out[O_AC_ALU_MAIN] = ac_alu_main
    out[O_AC_ALU_PTH] = ac_alu_pth
    out[O_BD_MEM] = bd_mem
    out[O_BD_L2] = bd_l2
    out[O_BD_EXEC] = bd_exec
    out[O_BD_COMMIT] = bd_commit
    out[O_BD_FETCH] = bd_fetch
    out[O_SL_RETIRE] = sl_retire
    out[O_SL_FETCH] = sl_fetch
    out[O_SL_BRANCH] = sl_branch
    out[O_SL_LOAD] = sl_load
    out[O_SL_ROB] = sl_rob
    out[O_SL_RS] = sl_rs
    out[O_SL_PTH] = sl_pth
    out[O_SL_EXEC] = sl_exec
    out[O_STATUS] = status
    out[O_DEAD_ROB_LEN] = rob_len
    out[O_DEAD_HEAD_SEQ] = rob[rob_head_i] if rob_len else -1
    out[O_DEAD_HEAD_DONE] = (
        completion[rob[rob_head_i]] if rob_len else NOT_DONE
    )
    out[O_N_MISSED] = len(missed)
    out[O_N_MISSPC] = len(misspc)
    out[O_N_FA] = len(dead_fa)
    return out, missed, misspc, dead_fa
