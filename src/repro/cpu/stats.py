"""Simulation statistics: activity counts and the latency breakdown."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set


#: Latency breakdown categories, bottom-to-top as the paper stacks them
#: (Figure 2, left): memory latency, L2 latency, execution latency, commit
#: bandwidth, fetch bandwidth/latency (incl. mispredictions and window
#: stalls charged to fetch).
BREAKDOWN_CATEGORIES = ("mem", "l2", "exec", "commit", "fetch")


@dataclass
class LatencyBreakdown:
    """Cycle attribution into the paper's five critical-path categories."""

    mem: int = 0
    l2: int = 0
    exec: int = 0
    commit: int = 0
    fetch: int = 0

    def add(self, category: str, cycles: int = 1) -> None:
        setattr(self, category, getattr(self, category) + cycles)

    @property
    def total(self) -> int:
        return self.mem + self.l2 + self.exec + self.commit + self.fetch

    def as_dict(self) -> Dict[str, int]:
        return {c: getattr(self, c) for c in BREAKDOWN_CATEGORIES}

    def fractions(self) -> Dict[str, float]:
        total = self.total or 1
        return {c: getattr(self, c) / total for c in BREAKDOWN_CATEGORIES}


@dataclass
class ActivityCounts:
    """Per-structure access counts, split main thread vs p-thread.

    These are the knobs the Wattch-style energy model converts to joules.
    """

    cycles: int = 0
    # Fetch.
    fetch_blocks_main: int = 0
    fetch_blocks_pth: int = 0
    bpred_accesses: int = 0
    # Rename/window/execute (per instruction entering the OOO core).
    dispatched_main: int = 0
    dispatched_pth: int = 0
    alu_ops_main: int = 0
    alu_ops_pth: int = 0
    # Data memory.
    dmem_accesses_main: int = 0
    dmem_accesses_pth: int = 0
    l2_accesses_main: int = 0
    l2_accesses_pth: int = 0
    # Retirement (main thread only; p-instructions do not retire).
    committed_main: int = 0


@dataclass
class SimStats:
    """Everything one timing run reports."""

    cycles: int = 0
    committed: int = 0
    breakdown: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    activity: ActivityCounts = field(default_factory=ActivityCounts)

    # Branch behavior.
    branches: int = 0
    mispredictions: int = 0
    btb_misses: int = 0
    #: Branch pre-execution: fetches steered by a timely p-thread hint.
    branch_hints_used: int = 0

    # Memory behavior.
    l2_misses_by_pc: Dict[int, int] = field(default_factory=dict)
    missed_load_seqs: Set[int] = field(default_factory=set)
    demand_l2_misses: int = 0

    # Pre-execution behavior.
    spawns_attempted: int = 0
    spawns_started: int = 0
    spawns_dropped_no_context: int = 0
    pinsts_fetched: int = 0
    pinsts_executed: int = 0
    pthread_l2_misses: int = 0
    useful_prefetches: int = 0
    covered_misses_full: int = 0
    covered_misses_partial: int = 0

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.branches if self.branches else 0.0

    @property
    def pinst_increase(self) -> float:
        """Executed p-instructions as a fraction of committed instructions."""
        return self.pinsts_executed / self.committed if self.committed else 0.0

    @property
    def usefulness(self) -> float:
        """Fraction of spawned p-threads whose prefetch was consumed.

        Multiple demand accesses can consume one prefetched line, so the
        ratio is capped at 1.
        """
        if not self.spawns_started:
            return 0.0
        return min(1.0, self.useful_prefetches / self.spawns_started)

    def summary(self) -> Dict[str, float]:
        """One flat row per timing run.

        Keys are aligned with ``ExperimentResult.summary_row()`` (the
        ``*_pct`` diagnostics) so JSONL result rows built from either
        source stay consistent, and every ratio is guarded against
        zero-commit / zero-spawn runs.
        """
        committed = self.committed
        return {
            "cycles": self.cycles,
            "committed": committed,
            "ipc": round(self.ipc, 4),
            "branch_mpki": round(
                1000.0 * self.mispredictions / committed, 2
            )
            if committed
            else 0.0,
            "branch_hints_used": self.branch_hints_used,
            "demand_l2_misses": self.demand_l2_misses,
            "covered_misses_full": self.covered_misses_full,
            "covered_misses_partial": self.covered_misses_partial,
            "spawns": self.spawns_started,
            "pinsts": self.pinsts_executed,
            "pinst_increase_pct": round(100.0 * self.pinst_increase, 2),
            "usefulness_pct": round(100.0 * self.usefulness, 2),
        }
