"""Simulation statistics: activity counts and the latency breakdown."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set


#: Latency breakdown categories, bottom-to-top as the paper stacks them
#: (Figure 2, left): memory latency, L2 latency, execution latency, commit
#: bandwidth, fetch bandwidth/latency (incl. mispredictions and window
#: stalls charged to fetch).
BREAKDOWN_CATEGORIES = ("mem", "l2", "exec", "commit", "fetch")

#: Top-down slot attribution categories.  Every issue slot of every cycle
#: (``width * cycles`` slots total) is charged to exactly one of these:
#: ``retiring`` for slots consumed by committing instructions, the six
#: stall causes for the rest, and ``exec`` for slots waiting purely on
#: execution/commit bandwidth with no structural hazard.
STALL_CATEGORIES = (
    "retiring",
    "fetch_starved",
    "branch_recovery",
    "load_miss",
    "rob_full",
    "rs_full",
    "pthread_contention",
    "exec",
)


@dataclass
class LatencyBreakdown:
    """Cycle attribution into the paper's five critical-path categories."""

    mem: int = 0
    l2: int = 0
    exec: int = 0
    commit: int = 0
    fetch: int = 0

    def add(self, category: str, cycles: int = 1) -> None:
        setattr(self, category, getattr(self, category) + cycles)

    @property
    def total(self) -> int:
        return self.mem + self.l2 + self.exec + self.commit + self.fetch

    def as_dict(self) -> Dict[str, int]:
        return {c: getattr(self, c) for c in BREAKDOWN_CATEGORIES}

    def fractions(self) -> Dict[str, float]:
        """Per-category share of the total; all-zero for an empty run
        (a zero-cycle simulation must not divide by zero)."""
        total = self.total
        if not total:
            return {c: 0.0 for c in BREAKDOWN_CATEGORIES}
        return {c: getattr(self, c) / total for c in BREAKDOWN_CATEGORIES}


@dataclass
class StallBreakdown:
    """Top-down issue-slot attribution.

    The pipeline has ``width`` issue slots per cycle.  Each cycle, slots
    consumed by retiring instructions are ``retiring``; every remaining
    slot is charged to exactly one stall cause determined from the
    machine state (the ROB-head's condition, structural occupancy, and
    the fetch/redirect state).  The accounting is exhaustive and
    exclusive by construction:

        ``total == width * cycles``

    which :meth:`verify` asserts and the stall-attribution tests check
    across benchmarks and configurations.
    """

    retiring: int = 0
    fetch_starved: int = 0
    branch_recovery: int = 0
    load_miss: int = 0
    rob_full: int = 0
    rs_full: int = 0
    pthread_contention: int = 0
    exec: int = 0

    @property
    def total(self) -> int:
        return (
            self.retiring
            + self.fetch_starved
            + self.branch_recovery
            + self.load_miss
            + self.rob_full
            + self.rs_full
            + self.pthread_contention
            + self.exec
        )

    def as_dict(self) -> Dict[str, int]:
        return {c: getattr(self, c) for c in STALL_CATEGORIES}

    def fractions(self) -> Dict[str, float]:
        """Per-category share of all slots; all-zero for an empty run."""
        total = self.total
        if not total:
            return {c: 0.0 for c in STALL_CATEGORIES}
        return {c: getattr(self, c) / total for c in STALL_CATEGORIES}

    def verify(self, width: int, cycles: int) -> None:
        """Assert the sum-to-slots invariant; raises ``ValueError`` with
        the full breakdown on violation."""
        expected = width * cycles
        if self.total != expected:
            raise ValueError(
                f"stall attribution violates the slot invariant: "
                f"attributed {self.total} slots, expected width*cycles = "
                f"{width}*{cycles} = {expected} ({self.as_dict()})"
            )


@dataclass
class ActivityCounts:
    """Per-structure access counts, split main thread vs p-thread.

    These are the knobs the Wattch-style energy model converts to joules.
    """

    cycles: int = 0
    # Fetch.
    fetch_blocks_main: int = 0
    fetch_blocks_pth: int = 0
    bpred_accesses: int = 0
    # Rename/window/execute (per instruction entering the OOO core).
    dispatched_main: int = 0
    dispatched_pth: int = 0
    alu_ops_main: int = 0
    alu_ops_pth: int = 0
    # Data memory.
    dmem_accesses_main: int = 0
    dmem_accesses_pth: int = 0
    l2_accesses_main: int = 0
    l2_accesses_pth: int = 0
    # Retirement (main thread only; p-instructions do not retire).
    committed_main: int = 0


@dataclass
class SimStats:
    """Everything one timing run reports."""

    cycles: int = 0
    committed: int = 0
    breakdown: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    #: Top-down issue-slot attribution (always on; sums to width*cycles).
    stalls: StallBreakdown = field(default_factory=StallBreakdown)
    activity: ActivityCounts = field(default_factory=ActivityCounts)

    # Branch behavior.
    branches: int = 0
    mispredictions: int = 0
    btb_misses: int = 0
    #: Branch pre-execution: fetches steered by a timely p-thread hint.
    branch_hints_used: int = 0

    # Memory behavior.
    l2_misses_by_pc: Dict[int, int] = field(default_factory=dict)
    missed_load_seqs: Set[int] = field(default_factory=set)
    demand_l2_misses: int = 0

    # Pre-execution behavior.
    spawns_attempted: int = 0
    spawns_started: int = 0
    spawns_dropped_no_context: int = 0
    pinsts_fetched: int = 0
    pinsts_executed: int = 0
    pthread_l2_misses: int = 0
    useful_prefetches: int = 0
    covered_misses_full: int = 0
    covered_misses_partial: int = 0

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.branches if self.branches else 0.0

    @property
    def pinst_increase(self) -> float:
        """Executed p-instructions as a fraction of committed instructions."""
        return self.pinsts_executed / self.committed if self.committed else 0.0

    @property
    def usefulness(self) -> float:
        """Fraction of spawned p-threads whose prefetch was consumed.

        Multiple demand accesses can consume one prefetched line, so the
        ratio is capped at 1.
        """
        if not self.spawns_started:
            return 0.0
        return min(1.0, self.useful_prefetches / self.spawns_started)

    def summary(self) -> Dict[str, float]:
        """One flat row per timing run.

        Keys are aligned with ``ExperimentResult.summary_row()`` (the
        ``*_pct`` diagnostics) so JSONL result rows built from either
        source stay consistent, and every ratio is guarded against
        zero-commit / zero-spawn runs.
        """
        committed = self.committed
        return {
            "cycles": self.cycles,
            "committed": committed,
            "ipc": round(self.ipc, 4),
            "branch_mpki": round(
                1000.0 * self.mispredictions / committed, 2
            )
            if committed
            else 0.0,
            "branch_hints_used": self.branch_hints_used,
            "demand_l2_misses": self.demand_l2_misses,
            "covered_misses_full": self.covered_misses_full,
            "covered_misses_partial": self.covered_misses_partial,
            "spawns": self.spawns_started,
            "pinsts": self.pinsts_executed,
            "pinst_increase_pct": round(100.0 * self.pinst_increase, 2),
            "usefulness_pct": round(100.0 * self.usefulness, 2),
        }
