"""Synthetic SPEC2000-integer-like workloads.

The paper evaluates on the SPEC2000 integer benchmarks that suffer from L2
misses: bzip2, gap, gcc, mcf, parser, twolf, vortex, and vpr (place and
route).  We cannot run Alpha binaries, so each benchmark here is a
synthetic program built from the memory-access idioms that cause those
programs' L2 misses -- indexed gathers, pointer chases, hash walks -- with
compute filler calibrated so the memory share of execution time spans the
paper's range (25% for gcc up to ~90% for mcf).

What matters for reproducing the paper is not the programs' semantics but
their *slice structure*: how expensive it is to hoist a problem load's
backward slice.  Three hoisting-cost classes appear across the suite:

- *cheap*: array walks whose induction (``i += 8``) merges under unrolling
  (the paper's ``i += 2`` idiom) -- bzip2, gap;
- *medium*: per-iteration ALU recurrences (LCG address generators) that
  must be replicated per unrolled level -- twolf, vpr.place;
- *expensive*: pointer chases where every unrolled level adds another
  cache-missing load -- mcf, vpr.route.
"""

from repro.workloads.inputs import WorkloadInput, input_set
from repro.workloads.registry import (
    BENCHMARK_NAMES,
    benchmark_names,
    get_program,
)

__all__ = [
    "BENCHMARK_NAMES",
    "WorkloadInput",
    "benchmark_names",
    "get_program",
    "input_set",
]
