"""Reusable kernel emitters and data initializers for workload programs.

Each emitter appends instructions to a :class:`~repro.isa.builder.
ProgramBuilder`.  Conventions: every kernel allocates its registers from a
shared :class:`RegAlloc` so kernels compose without clobbering each other;
loop bounds and constants live in registers initialized before entry
(as compiled code would keep them).
"""

from __future__ import annotations

import random
from typing import List

from repro.errors import WorkloadError
from repro.isa.builder import ProgramBuilder, WORD_BYTES
from repro.isa.registers import NUM_ARCH_REGS

#: 64-bit LCG constants (Knuth's MMIX multiplier).
LCG_MULT = 6364136223846793005
LCG_ADD = 1442695040888963407


class RegAlloc:
    """Hands out architectural registers; r0 and r31 are reserved."""

    def __init__(self) -> None:
        self._next = 1

    def take(self, n: int = 1) -> List[int]:
        regs = list(range(self._next, self._next + n))
        self._next += n
        if self._next > NUM_ARCH_REGS - 1:  # r31 is the branch-imm scratch
            raise WorkloadError("register allocator exhausted")
        return regs

    def one(self) -> int:
        return self.take(1)[0]


# --------------------------------------------------------------------- #
# Data initializers.
# --------------------------------------------------------------------- #


def init_random_words(builder: ProgramBuilder, name: str, n_words: int,
                      rng: random.Random, bits: int = 32) -> int:
    """Allocate ``name`` and fill it with random non-negative words."""
    base = builder.data.alloc(name, n_words)
    image = builder.data.image
    limit = (1 << bits) - 1
    for i in range(n_words):
        image[base + i * WORD_BYTES] = rng.randint(0, limit)
    return base


def init_index_array(builder: ProgramBuilder, name: str, n_entries: int,
                     index_range: int, rng: random.Random) -> int:
    """Allocate ``name`` and fill it with random word indices."""
    base = builder.data.alloc(name, n_entries)
    image = builder.data.image
    for i in range(n_entries):
        image[base + i * WORD_BYTES] = rng.randrange(index_range)
    return base


def init_pointer_ring(builder: ProgramBuilder, name: str, n_nodes: int,
                      node_words: int, rng: random.Random) -> int:
    """Allocate a node pool linked into one random Hamiltonian cycle.

    Word 0 of each node is the byte address of the next node; word 1 is a
    random payload.  Returns the address of the cycle's first node.
    """
    if node_words < 2:
        raise WorkloadError("pointer-ring nodes need at least 2 words")
    base = builder.data.alloc(name, n_nodes * node_words)
    image = builder.data.image
    order = list(range(n_nodes))
    rng.shuffle(order)
    stride = node_words * WORD_BYTES
    for position, node in enumerate(order):
        successor = order[(position + 1) % n_nodes]
        node_addr = base + node * stride
        image[node_addr] = base + successor * stride
        image[node_addr + WORD_BYTES] = rng.randint(0, (1 << 30) - 1)
    return base + order[0] * stride


def init_record_array(builder: ProgramBuilder, name: str, n_records: int,
                      record_words: int, field_ranges: List[int],
                      rng: random.Random) -> int:
    """Allocate an array of fixed-size records with random integer fields.

    ``field_ranges[k]`` bounds the value of word ``k`` of each record;
    remaining words are zero.
    """
    base = builder.data.alloc(name, n_records * record_words)
    image = builder.data.image
    stride = record_words * WORD_BYTES
    for i in range(n_records):
        for k, bound in enumerate(field_ranges):
            if k >= record_words:
                raise WorkloadError("more field ranges than record words")
            image[base + i * stride + k * WORD_BYTES] = rng.randrange(bound)
    return base


# --------------------------------------------------------------------- #
# Code emitters.
# --------------------------------------------------------------------- #


def emit_lcg_advance(builder: ProgramBuilder, seed_reg: int, mult_reg: int,
                     annotation: str = "lcg") -> None:
    """Advance ``seed = seed * LCG_MULT + LCG_ADD`` (2 instructions).

    This is the "medium" hoisting-cost recurrence: unrolling a p-thread one
    more iteration ahead replicates both instructions.
    """
    builder.mul(seed_reg, seed_reg, mult_reg, annotation=annotation)
    builder.addi(seed_reg, seed_reg, LCG_ADD, annotation=annotation)


def emit_lcg_index(builder: ProgramBuilder, seed_reg: int, out_reg: int,
                   index_bits: int, annotation: str = "lcg-index") -> None:
    """Extract a ``index_bits``-wide byte offset from the LCG state."""
    builder.shri(out_reg, seed_reg, 33, annotation=annotation)
    builder.andi(out_reg, out_reg, (1 << index_bits) - 1, annotation=annotation)
    builder.shli(out_reg, out_reg, 3, annotation=annotation)


def emit_compute_chain(builder: ProgramBuilder, regs: List[int], n_ops: int,
                       dependent: bool = True,
                       annotation: str = "filler") -> None:
    """Emit ``n_ops`` ALU filler instructions over scratch registers.

    ``dependent=True`` builds one serial dependence chain on ``regs[0]``
    (execution-latency bound); ``dependent=False`` round-robins immediate
    ops across all of ``regs``, yielding ``len(regs)`` independent chains
    (ILP-rich, fetch/commit bound).  Used to calibrate each benchmark's
    memory share of execution time.
    """
    if not regs:
        raise WorkloadError("compute chain needs at least one register")
    if dependent:
        operand = regs[1] if len(regs) > 1 else regs[0]
        ops = ["add", "xor", "sub", "or_"]
        for k in range(n_ops):
            getattr(builder, ops[k % len(ops)])(
                regs[0], regs[0], operand, annotation=annotation
            )
    else:
        for k in range(n_ops):
            reg = regs[k % len(regs)]
            if k % 2 == 0:
                builder.addi(reg, reg, k + 1, annotation=annotation)
            else:
                builder.shri(reg, reg, 1, annotation=annotation)


def emit_predictable_branches(builder: ProgramBuilder, counter_reg: int,
                              n_branches: int, skip_label_prefix: str) -> None:
    """Emit ``n_branches`` almost-always-not-taken compare-and-skip pairs.

    These model the well-predicted control flow that dilutes mispredictions
    in compute-heavy benchmarks such as gcc and vortex.
    """
    for k in range(n_branches):
        label = f"{skip_label_prefix}_{k}"
        builder.blt(counter_reg, 0, label, rhs_is_imm=True)
        builder.label(label)


def loop_header(builder: ProgramBuilder, name: str) -> str:
    """Open a counted loop; returns the label to close with ``loop_footer``."""
    label = f"{name}_top"
    builder.label(label)
    return label


def loop_footer(builder: ProgramBuilder, label: str, counter_reg: int,
                bound_reg: int, step: int = 1,
                annotation: str = "induction") -> None:
    """Close a counted loop: ``counter += step; if counter < bound goto top``.

    The induction ``addi`` is the canonical p-thread trigger: unrolled
    copies of it merge into a single larger ``addi`` (the paper's ``i+=2``
    optimization), making lookahead nearly free for array-walk slices.
    """
    builder.addi(counter_reg, counter_reg, step, annotation=annotation)
    builder.blt(counter_reg, bound_reg, label, annotation="loop-branch")
