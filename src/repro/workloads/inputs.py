"""Workload input sets.

Mirrors the paper's methodology: p-threads are selected from profiles of
one input ("train") and, in the Figure 4 study, evaluated on another
("ref").  Input sets differ in RNG seed, dataset size, and -- for bzip2,
where the paper observes that ref is *less* memory-critical than train --
in table scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError

INPUT_SETS = ("train", "ref")


@dataclass(frozen=True)
class WorkloadInput:
    """Parameters that vary between input sets of one benchmark."""

    name: str
    seed: int
    #: Multiplier on the benchmark's iteration count.
    iterations_scale: float = 1.0
    #: Multiplier on log2 of the benchmark's big-table size (added levels).
    table_shift: int = 0

    def scale_iterations(self, base: int) -> int:
        return max(1, int(base * self.iterations_scale))


def input_set(name: str, benchmark: str = "") -> WorkloadInput:
    """Return the named input set, specialized per benchmark where needed."""
    if name == "train":
        return WorkloadInput(name="train", seed=0x5EED_1)
    if name == "ref":
        # Ref runs use a different seed and slightly different scale.  For
        # bzip2 the ref input is less memory-critical than train (the
        # paper's Section 5.3 observation): shrink its table one level.
        table_shift = -1 if benchmark == "bzip2" else 0
        return WorkloadInput(
            name="ref",
            seed=0x5EED_2,
            iterations_scale=1.0,
            table_shift=table_shift,
        )
    raise WorkloadError(f"unknown input set {name!r}; expected one of {INPUT_SETS}")
