"""Benchmark registry: name -> program builder."""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.errors import WorkloadError
from repro.isa.instruction import Program
from repro.workloads import spec
from repro.workloads.inputs import WorkloadInput, input_set

Builder = Callable[[WorkloadInput], Program]

_BUILDERS: Dict[str, Builder] = {
    "bzip2": spec.build_bzip2,
    "gap": spec.build_gap,
    "gcc": spec.build_gcc,
    "mcf": spec.build_mcf,
    "parser": spec.build_parser,
    "twolf": spec.build_twolf,
    "vortex": spec.build_vortex,
    "vpr.place": spec.build_vpr_place,
    "vpr.route": spec.build_vpr_route,
}

#: The paper's benchmark order (its figures list vpr.place before vpr.route).
BENCHMARK_NAMES: Tuple[str, ...] = (
    "bzip2",
    "gap",
    "gcc",
    "mcf",
    "parser",
    "twolf",
    "vortex",
    "vpr.place",
    "vpr.route",
)


def benchmark_names() -> Tuple[str, ...]:
    """All benchmark names, in the paper's presentation order."""
    return BENCHMARK_NAMES


def get_program(name: str, input_name: str = "train") -> Program:
    """Build benchmark ``name`` with the given input set ("train"/"ref")."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown benchmark {name!r}; known: {', '.join(BENCHMARK_NAMES)}"
        ) from None
    return builder(input_set(input_name, benchmark=name))
