"""Benchmark registry: name -> program builder."""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.errors import WorkloadError
from repro.isa.instruction import Program
from repro.workloads import spec
from repro.workloads.inputs import WorkloadInput, input_set

Builder = Callable[[WorkloadInput], Program]

_BUILDERS: Dict[str, Builder] = {
    "bzip2": spec.build_bzip2,
    "gap": spec.build_gap,
    "gcc": spec.build_gcc,
    "mcf": spec.build_mcf,
    "parser": spec.build_parser,
    "twolf": spec.build_twolf,
    "vortex": spec.build_vortex,
    "vpr.place": spec.build_vpr_place,
    "vpr.route": spec.build_vpr_route,
}

#: The paper's benchmark order (its figures list vpr.place before vpr.route).
BENCHMARK_NAMES: Tuple[str, ...] = (
    "bzip2",
    "gap",
    "gcc",
    "mcf",
    "parser",
    "twolf",
    "vortex",
    "vpr.place",
    "vpr.route",
)


def benchmark_names() -> Tuple[str, ...]:
    """All benchmark names, in the paper's presentation order."""
    return BENCHMARK_NAMES


# Programs are deterministic functions of (builder, input) and immutable
# once built (isa.instruction docstring), but building one is not cheap:
# the generators synthesize code and seed data structures.  A figure grid
# asks for the same program dozens of times (baseline, augment, and every
# sweep cell), so the registry memoizes instances.  Keyed by the builder
# *function* and the resolved input parameters, not the benchmark name,
# so re-registering a name (tests swap builders to prove
# content-addressed caching) naturally misses.  Bounded by the
# builder x input cross product, so no eviction is needed.
_PROGRAM_MEMO: Dict[Tuple[object, object], Program] = {}


def clear_program_memo() -> None:
    """Drop memoized programs."""
    _PROGRAM_MEMO.clear()


def get_program(name: str, input_name: str = "train") -> Program:
    """Build benchmark ``name`` with the given input set ("train"/"ref")."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown benchmark {name!r}; known: {', '.join(BENCHMARK_NAMES)}"
        ) from None
    winput = input_set(input_name, benchmark=name)
    memo_key = (builder, winput)
    program = _PROGRAM_MEMO.get(memo_key)
    if program is not None:
        return program
    program = builder(winput)
    _PROGRAM_MEMO[memo_key] = program
    return program
