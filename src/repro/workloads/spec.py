"""The nine benchmark programs of the paper's evaluation suite.

Each builder returns a :class:`~repro.isa.instruction.Program` whose
problem loads exhibit the slice structure and memory-boundedness of the
SPEC2000 integer benchmark it stands in for (see the package docstring
and DESIGN.md for the substitution argument).  All programs are counted
loops that halt on their own; dynamic instruction counts land between
roughly 100K and 200K so full (unsampled) cycle-level simulation stays
affordable.

Problem loads are annotated (``annotation`` field) so tests and reports
can refer to them; the selection pipeline itself discovers them from miss
profiles, not from annotations.
"""

from __future__ import annotations

import random

from repro.isa.builder import ProgramBuilder
from repro.isa.instruction import Program
from repro.workloads.generators import (
    LCG_MULT,
    RegAlloc,
    emit_compute_chain,
    emit_lcg_advance,
    emit_lcg_index,
    emit_predictable_branches,
    init_index_array,
    init_pointer_ring,
    init_random_words,
    loop_footer,
    loop_header,
)
from repro.workloads.inputs import WorkloadInput


def _rng(inp: WorkloadInput, salt: int) -> random.Random:
    return random.Random((inp.seed << 8) ^ salt)


def build_bzip2(inp: WorkloadInput) -> Program:
    """Indexed gather with a cheap (mergeable-induction) slice.

    Models bzip2's block-sort phase: a sequential walk of an index array
    followed by a data-dependent gather from a large block.  The slice of
    the problem load is [induction, idx load, shift, gather], so induction
    unrolling is nearly free -- which is why PTHSEL unrolls aggressively
    here and the paper sees a 44-48% p-instruction increase.
    """
    b = ProgramBuilder(f"bzip2.{inp.name}")
    rng = _rng(inp, 0xB21)
    ra = RegAlloc()
    iters = inp.scale_iterations(7000)
    table_bits = 16 + inp.table_shift  # 2^16 words = 512KB (train)

    init_random_words(b, "block", 1 << table_bits, rng)
    init_index_array(b, "idx", iters, 1 << table_bits, rng)
    b.data.alloc("out", 512)

    r_i, r_bound, r_off, r_val, r_acc, r_aux, r_tmp = ra.take(7)
    b.set_reg(r_i, 0)
    b.set_reg(r_bound, iters * 8)
    b.set_reg(r_acc, 0)
    b.set_reg(r_aux, 0x9E3779B9)

    top = loop_header(b, "sort")
    b.load(r_tmp, r_i, base_symbol="idx", annotation="idx-load")
    b.shli(r_off, r_tmp, 3, annotation="idx-scale")
    b.load(r_val, r_off, base_symbol="block", annotation="problem:bzip2-gather")
    # Data-dependent, poorly predictable branch on the gathered value.
    b.andi(r_tmp, r_val, 7, annotation="rank-bit")
    b.bne(r_tmp, 0, "sort_skip", rhs_is_imm=True, annotation="data-branch")
    b.add(r_acc, r_acc, r_val, annotation="rank-acc")
    b.xor(r_acc, r_acc, r_aux)
    b.label("sort_skip")
    emit_compute_chain(b, [r_acc, r_aux], 3, dependent=True)
    emit_compute_chain(b, [r_acc, r_aux, r_val], 6, dependent=False)
    b.andi(r_tmp, r_i, 511 * 8)
    b.store(r_acc, r_tmp, base_symbol="out", annotation="out-store")
    loop_footer(b, top, r_i, r_bound, step=8)
    b.halt()
    return b.build()


def build_gap(inp: WorkloadInput) -> Program:
    """Short-slice gather: group-theory bag access via a permutation array.

    Like bzip2 but with a shorter slice, less control, and a table sized
    for a ~60% miss rate; gap's p-threads in the paper are the shortest
    (3.6-4.4 instructions).
    """
    b = ProgramBuilder(f"gap.{inp.name}")
    rng = _rng(inp, 0x6A9)
    ra = RegAlloc()
    iters = inp.scale_iterations(7500)
    table_bits = 16 + inp.table_shift  # 512KB

    init_random_words(b, "bag", 1 << table_bits, rng)
    init_index_array(b, "perm", iters, 1 << table_bits, rng)
    b.data.alloc("res", 256)

    r_i, r_bound, r_off, r_val, r_acc, r_aux = ra.take(6)
    b.set_reg(r_i, 0)
    b.set_reg(r_bound, iters * 8)
    b.set_reg(r_aux, 17)

    top = loop_header(b, "bagloop")
    b.load(r_off, r_i, base_symbol="perm", annotation="perm-load")
    b.shli(r_off, r_off, 3, annotation="perm-scale")
    b.load(r_val, r_off, base_symbol="bag", annotation="problem:gap-bag")
    b.add(r_acc, r_acc, r_val)
    emit_compute_chain(b, [r_acc, r_aux, r_val], 12, dependent=False)
    b.andi(r_off, r_i, 255 * 8)
    b.store(r_acc, r_off, base_symbol="res")
    loop_footer(b, top, r_i, r_bound, step=8)
    b.halt()
    return b.build()


def build_gcc(inp: WorkloadInput) -> Program:
    """Compute-dominated with occasional misses (memory ~25% of runtime).

    Models gcc's RTL walks: long well-predicted ALU stretches punctuated
    by a gather from a table with a moderate miss rate.
    """
    b = ProgramBuilder(f"gcc.{inp.name}")
    rng = _rng(inp, 0x6CC)
    ra = RegAlloc()
    iters = inp.scale_iterations(3600)
    table_bits = 15 + inp.table_shift  # 256KB: competes with the L2

    init_random_words(b, "rtl", 1 << table_bits, rng)
    init_index_array(b, "worklist", iters, 1 << table_bits, rng)
    b.data.alloc("flow", 256)

    r_i, r_bound, r_off, r_val, r_acc, r_aux, r_tmp = ra.take(7)
    b.set_reg(r_i, 0)
    b.set_reg(r_bound, iters * 8)
    b.set_reg(r_aux, 0x51F1)

    top = loop_header(b, "pass")
    emit_compute_chain(b, [r_acc, r_aux, r_tmp], 20, dependent=False, annotation="fold")
    emit_predictable_branches(b, r_i, 2, "pass_chk")
    b.load(r_off, r_i, base_symbol="worklist", annotation="worklist-load")
    b.shli(r_off, r_off, 3)
    b.load(r_val, r_off, base_symbol="rtl", annotation="problem:gcc-rtl")
    b.add(r_acc, r_acc, r_val)
    emit_compute_chain(b, [r_acc, r_aux, r_val], 20, dependent=False, annotation="cse")
    b.andi(r_tmp, r_i, 255 * 8)
    b.store(r_acc, r_tmp, base_symbol="flow")
    loop_footer(b, top, r_i, r_bound, step=8)
    b.halt()
    return b.build()


def build_mcf(inp: WorkloadInput) -> Program:
    """Pointer chase plus arc-array gathers: the miss-dominated extreme.

    Models mcf's network simplex: a serial chase through the node list (a
    dependence chain pre-execution cannot shorten, which keeps memory at
    ~90%+ of the critical path and wedges the ROB) interleaved with two
    gathers from a large arc array whose indices are induction-derived --
    the loads the paper's mcf p-threads actually target.  The arc
    gathers' misses are contemporaneous with the chase misses, so their
    individual criticality is low: the flat-cost model (O) wildly
    overestimates their value and floods the machine with p-instructions
    (the paper's mcf slowdown), while the criticality model throttles.
    """
    b = ProgramBuilder(f"mcf.{inp.name}")
    rng = _rng(inp, 0x3CF)
    ra = RegAlloc()
    iters = inp.scale_iterations(7000)
    n_nodes = 1 << (12 + inp.table_shift)  # 4K nodes x 64B = 256KB
    arc_bits = 17 + inp.table_shift  # 2^17 words = 1MB of arcs

    head = init_pointer_ring(b, "nodes", n_nodes, 8, rng)
    init_random_words(b, "arcs", 1 << arc_bits, rng)

    (r_i, r_bound, r_p, r_cost, r_s, r_mult, r_o1, r_o2, r_a1, r_a2,
     r_acc) = ra.take(11)
    b.set_reg(r_i, 0)
    b.set_reg(r_bound, iters)
    b.set_reg(r_p, head)
    b.set_reg(r_s, rng.getrandbits(63))
    b.set_reg(r_mult, LCG_MULT)

    top = loop_header(b, "simplex")
    b.load(r_cost, r_p, imm=8, annotation="node-cost")
    b.load(r_p, r_p, imm=0, annotation="problem:mcf-chase")
    # Arc scan: two induction-derived gathers from the arc array.
    emit_lcg_advance(b, r_s, r_mult, annotation="basket-lcg")
    emit_lcg_index(b, r_s, r_o1, arc_bits, annotation="arc-index-1")
    b.load(r_a1, r_o1, base_symbol="arcs", annotation="problem:mcf-arc-1")
    b.shri(r_o2, r_s, 17, annotation="arc-index-2")
    b.andi(r_o2, r_o2, (1 << arc_bits) - 1, annotation="arc-mask-2")
    b.shli(r_o2, r_o2, 3, annotation="arc-byte-2")
    b.load(r_a2, r_o2, base_symbol="arcs", annotation="problem:mcf-arc-2")
    b.add(r_acc, r_acc, r_cost)
    b.sub(r_acc, r_acc, r_a1)
    b.add(r_acc, r_acc, r_a2)
    loop_footer(b, top, r_i, r_bound)
    b.halt()
    return b.build()


def build_parser(inp: WorkloadInput) -> Program:
    """Hash-table probe: a word stream hashed into a half-resident table.

    Models parser's dictionary lookups; the slice includes a multiply, so
    unrolling is moderately priced.
    """
    b = ProgramBuilder(f"parser.{inp.name}")
    rng = _rng(inp, 0x9A5)
    ra = RegAlloc()
    iters = inp.scale_iterations(6000)
    table_bits = 16 + inp.table_shift

    init_random_words(b, "dict", 1 << table_bits, rng)
    init_random_words(b, "words", 4096, rng)
    b.data.alloc("links", 256)

    r_i, r_bound, r_w, r_h, r_val, r_acc, r_mult, r_tmp = ra.take(8)
    b.set_reg(r_i, 0)
    b.set_reg(r_bound, iters * 8)
    b.set_reg(r_mult, LCG_MULT)

    top = loop_header(b, "parse")
    b.andi(r_tmp, r_i, 4095 * 8, annotation="stream-wrap")
    b.load(r_w, r_tmp, base_symbol="words", annotation="word-load")
    b.mul(r_h, r_w, r_mult, annotation="hash-mul")
    b.shri(r_h, r_h, 33, annotation="hash-shift")
    b.andi(r_h, r_h, (1 << table_bits) - 1, annotation="hash-mask")
    b.shli(r_h, r_h, 3, annotation="hash-byte")
    b.load(r_val, r_h, base_symbol="dict", annotation="problem:parser-dict")
    b.andi(r_tmp, r_val, 7, annotation="match-bits")
    b.bne(r_tmp, 0, "parse_miss", rhs_is_imm=True, annotation="match-branch")
    b.add(r_acc, r_acc, r_val)
    b.label("parse_miss")
    emit_compute_chain(b, [r_acc, r_w], 2, dependent=True, annotation="link")
    emit_compute_chain(b, [r_acc, r_w, r_h], 6, dependent=False, annotation="link2")
    b.andi(r_tmp, r_i, 255 * 8)
    b.store(r_acc, r_tmp, base_symbol="links")
    loop_footer(b, top, r_i, r_bound, step=8)
    b.halt()
    return b.build()


def build_twolf(inp: WorkloadInput) -> Program:
    """Two LCG-driven gathers per iteration: interacting misses.

    Models twolf's cell-swap cost evaluation: two independent random
    gathers in the same iteration produce contemporaneous L2 misses, the
    case the paper's interaction-cost averaging (Section 4.1) targets.
    LCG slices must be replicated per unrolled level (medium cost).
    """
    b = ProgramBuilder(f"twolf.{inp.name}")
    rng = _rng(inp, 0x720F)
    ra = RegAlloc()
    iters = inp.scale_iterations(5200)
    table_bits = 16 + inp.table_shift  # 512KB per array

    init_random_words(b, "cells_x", 1 << table_bits, rng)
    init_random_words(b, "cells_y", 1 << table_bits, rng)
    b.data.alloc("cost", 256)

    (r_i, r_bound, r_s1, r_s2, r_mult, r_o1, r_o2, r_v1, r_v2,
     r_acc, r_tmp) = ra.take(11)
    b.set_reg(r_i, 0)
    b.set_reg(r_bound, iters)
    b.set_reg(r_s1, rng.getrandbits(63))
    b.set_reg(r_s2, rng.getrandbits(63))
    b.set_reg(r_mult, LCG_MULT)

    top = loop_header(b, "anneal")
    emit_lcg_advance(b, r_s1, r_mult, annotation="lcg-x")
    emit_lcg_index(b, r_s1, r_o1, table_bits, annotation="lcg-x-index")
    b.load(r_v1, r_o1, base_symbol="cells_x", annotation="problem:twolf-x")
    emit_lcg_advance(b, r_s2, r_mult, annotation="lcg-y")
    emit_lcg_index(b, r_s2, r_o2, table_bits, annotation="lcg-y-index")
    b.load(r_v2, r_o2, base_symbol="cells_y", annotation="problem:twolf-y")
    b.sub(r_acc, r_acc, r_v2, annotation="delta-cost")
    b.andi(r_tmp, r_v1, 7, annotation="accept-bits")
    b.bne(r_tmp, 0, "anneal_rej", rhs_is_imm=True, annotation="accept-branch")
    b.add(r_acc, r_acc, r_tmp)
    b.label("anneal_rej")
    emit_compute_chain(b, [r_acc, r_v1], 2, dependent=True, annotation="update")
    emit_compute_chain(b, [r_acc, r_v1, r_v2], 6, dependent=False, annotation="update2")
    b.andi(r_tmp, r_i, 255)
    b.shli(r_tmp, r_tmp, 3)
    b.store(r_acc, r_tmp, base_symbol="cost")
    loop_footer(b, top, r_i, r_bound)
    b.halt()
    return b.build()


def build_vortex(inp: WorkloadInput) -> Program:
    """Long-slice object lookup: directory load feeding an object gather.

    Models vortex's OO database traversal: the problem load's address goes
    through a directory load plus several ALU stages, so selected p-threads
    are long (~13 instructions in the paper) even at shallow unrolling.
    """
    b = ProgramBuilder(f"vortex.{inp.name}")
    rng = _rng(inp, 0x70E)
    ra = RegAlloc()
    iters = inp.scale_iterations(4600)
    table_bits = 15 + inp.table_shift  # 256KB object pool

    init_random_words(b, "objects", 1 << table_bits, rng)
    init_index_array(b, "directory", 8192, 1 << (table_bits - 2), rng)
    b.data.alloc("fields", 256)

    r_i, r_bound, r_d, r_off, r_val, r_acc, r_aux, r_tmp = ra.take(8)
    b.set_reg(r_i, 0)
    b.set_reg(r_bound, iters * 8)
    b.set_reg(r_aux, 0x2545F491)

    top = loop_header(b, "lookup")
    b.andi(r_tmp, r_i, 8191 * 8, annotation="dir-wrap")
    b.load(r_d, r_tmp, base_symbol="directory", annotation="dir-load")
    # Several dependent address-generation stages (chunk + offset math).
    b.shli(r_off, r_d, 2, annotation="chunk-scale")
    b.add(r_off, r_off, r_d, annotation="chunk-add")
    b.andi(r_off, r_off, (1 << table_bits) - 1, annotation="chunk-mask")
    b.shli(r_off, r_off, 3, annotation="chunk-byte")
    b.load(r_val, r_off, base_symbol="objects", annotation="problem:vortex-obj")
    emit_predictable_branches(b, r_i, 2, "lookup_chk")
    b.add(r_acc, r_acc, r_val)
    emit_compute_chain(b, [r_acc, r_aux, r_val], 12, dependent=False, annotation="valid")
    b.andi(r_tmp, r_i, 255 * 8)
    b.store(r_acc, r_tmp, base_symbol="fields")
    loop_footer(b, top, r_i, r_bound, step=8)
    b.halt()
    return b.build()


def build_vpr_place(inp: WorkloadInput) -> Program:
    """Simulated-annealing placement: paired grid gathers with a swap.

    Like twolf but with a data-dependent store (the accepted swap) and a
    slightly cheaper slice; in the paper vpr.place is where E-p-threads'
    energy prediction is most optimistic.
    """
    b = ProgramBuilder(f"vpr.place.{inp.name}")
    rng = _rng(inp, 0x59C1)
    ra = RegAlloc()
    iters = inp.scale_iterations(5600)
    table_bits = 16 + inp.table_shift  # 512KB grid

    init_random_words(b, "grid", 1 << table_bits, rng)
    b.data.alloc("trace_buf", 256)

    r_i, r_bound, r_s, r_mult, r_o1, r_o2, r_v1, r_v2, r_acc, r_tmp = ra.take(10)
    b.set_reg(r_i, 0)
    b.set_reg(r_bound, iters)
    b.set_reg(r_s, rng.getrandbits(63))
    b.set_reg(r_mult, LCG_MULT)

    top = loop_header(b, "place")
    emit_lcg_advance(b, r_s, r_mult, annotation="lcg-s")
    emit_lcg_index(b, r_s, r_o1, table_bits, annotation="lcg-o1")
    b.load(r_v1, r_o1, base_symbol="grid", annotation="problem:vpr-place-a")
    b.shri(r_o2, r_s, 13, annotation="second-index")
    b.andi(r_o2, r_o2, (1 << table_bits) - 1, annotation="second-mask")
    b.shli(r_o2, r_o2, 3, annotation="second-byte")
    b.load(r_v2, r_o2, base_symbol="grid", annotation="problem:vpr-place-b")
    b.sub(r_acc, r_acc, r_v2, annotation="swap-delta")
    b.andi(r_tmp, r_v1, 7, annotation="swap-bits")
    b.bne(r_tmp, 0, "place_rej", rhs_is_imm=True, annotation="swap-branch")
    b.store(r_v2, r_o1, base_symbol="grid", annotation="swap-store-a")
    b.store(r_v1, r_o2, base_symbol="grid", annotation="swap-store-b")
    b.label("place_rej")
    b.add(r_acc, r_acc, r_v1)
    emit_compute_chain(b, [r_acc, r_v1], 2, dependent=True, annotation="temp")
    emit_compute_chain(b, [r_acc, r_v1, r_v2], 4, dependent=False, annotation="temp2")
    b.andi(r_tmp, r_i, 255)
    b.shli(r_tmp, r_tmp, 3)
    b.store(r_acc, r_tmp, base_symbol="trace_buf")
    loop_footer(b, top, r_i, r_bound)
    b.halt()
    return b.build()


def build_vpr_route(inp: WorkloadInput) -> Program:
    """Routing-graph walk: a serial chase plus prefetchable cost lookups.

    Models vpr's maze router expanding nodes along a wavefront: the
    routing-resource chase is a dependence chain pre-execution cannot
    shorten, but each expansion also probes a large congestion-cost table
    via a wavefront recurrence -- those gathers are what p-threads can
    cover, at a medium per-level (LCG) hoisting cost.
    """
    b = ProgramBuilder(f"vpr.route.{inp.name}")
    rng = _rng(inp, 0x59C2)
    ra = RegAlloc()
    iters = inp.scale_iterations(6500)
    n_nodes = 1 << (15 + inp.table_shift)

    head = init_pointer_ring(b, "rr_nodes", n_nodes, 8, rng)
    cost_bits = 16  # 512KB of per-segment congestion costs
    init_random_words(b, "costs", 1 << cost_bits, rng)
    b.data.alloc("path", 256)

    (r_i, r_bound, r_p, r_pay, r_off, r_c, r_acc, r_tmp, r_s,
     r_mult) = ra.take(10)
    b.set_reg(r_i, 0)
    b.set_reg(r_bound, iters)
    b.set_reg(r_p, head)
    b.set_reg(r_s, rng.getrandbits(63))
    b.set_reg(r_mult, LCG_MULT)

    top = loop_header(b, "route")
    b.load(r_pay, r_p, imm=8, annotation="node-payload")
    b.load(r_p, r_p, imm=0, annotation="problem:vpr-route-chase")
    # Congestion-cost lookup for the expanded segment: the index derives
    # from the wavefront recurrence (not the chase), so it is prefetchable
    # even though the chase itself is not.
    emit_lcg_advance(b, r_s, r_mult, annotation="wave-lcg")
    emit_lcg_index(b, r_s, r_off, cost_bits, annotation="wave-index")
    b.load(r_c, r_off, base_symbol="costs",
           annotation="problem:vpr-route-cost")
    b.add(r_acc, r_acc, r_c, annotation="path-cost")
    b.andi(r_tmp, r_pay, 7, annotation="fanout-bits")
    b.bne(r_tmp, 0, "route_leaf", rhs_is_imm=True, annotation="fanout-branch")
    b.xor(r_acc, r_acc, r_pay)
    b.label("route_leaf")
    emit_compute_chain(b, [r_acc, r_pay], 2, dependent=True, annotation="pq")
    emit_compute_chain(b, [r_acc, r_pay, r_c], 8, dependent=False, annotation="pq2")
    b.andi(r_tmp, r_i, 255)
    b.shli(r_tmp, r_tmp, 3)
    b.store(r_acc, r_tmp, base_symbol="path")
    loop_footer(b, top, r_i, r_bound)
    b.halt()
    return b.build()
