"""Self-contained HTML run reports (``repro report``).

Renders a single ``report.html`` from the machine-readable artifacts an
evaluation command left in its ``--out`` directory:

- ``manifest.json``      -- provenance header (command, argv, versions,
  configuration fingerprints, wall time);
- ``results.jsonl``      -- the per-(benchmark, target) result table and
  the phase-timing stacks;
- ``utrace/*.summary.json`` -- top-down stall-attribution stacks and the
  per-event energy-audit stacks of every traced simulation;
- ``spans.jsonl``           -- distributed-trace spans, rendered as a
  per-request waterfall (client HTTP span, server admission and
  queue-wait, pool-worker trace/analysis/sim phases).

The output is deliberately dependency-free: inline CSS, no JavaScript,
no external fonts or images, so the file can be archived as a CI
artifact and opened anywhere (including the GitHub artifact viewer).
"""

from __future__ import annotations

import glob
import html
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro import obs
from repro.errors import ConfigError
from repro.obs.manifest import MANIFEST_NAME, RESULTS_NAME

REPORT_NAME = "report.html"

#: Fixed colors per top-down stall category (order = stacking order).
STALL_COLORS = (
    ("retiring", "#4caf50"),
    ("fetch_starved", "#90caf9"),
    ("branch_recovery", "#ff7043"),
    ("load_miss", "#ef5350"),
    ("rob_full", "#ab47bc"),
    ("rs_full", "#7e57c2"),
    ("pthread_contention", "#ffb300"),
    ("exec", "#78909c"),
)

#: Fixed colors per energy category (main structures, then p-thread).
ENERGY_COLORS = (
    ("imem_main", "#1e88e5"),
    ("dmem_main", "#43a047"),
    ("l2_main", "#00897b"),
    ("ooo_main", "#8e24aa"),
    ("rob_bpred", "#f4511e"),
    ("idle", "#bdbdbd"),
    ("imem_pth", "#90caf9"),
    ("dmem_pth", "#a5d6a7"),
    ("l2_pth", "#80cbc4"),
    ("ooo_pth", "#ce93d8"),
)

#: Phase-timing palette (cycled over whatever ``t_*`` columns exist).
PHASE_PALETTE = (
    "#1e88e5", "#43a047", "#fb8c00", "#8e24aa", "#00897b",
    "#e53935", "#6d4c41", "#3949ab",
)

#: Result columns shown first, in this order, when present.
LEAD_COLUMNS = (
    "benchmark", "target", "n_pthreads", "speedup_pct",
    "energy_save_pct", "ed_save_pct", "ed2_save_pct",
    "avg_pthread_length", "spawns", "full_coverage_pct",
    "partial_coverage_pct", "usefulness_pct",
)


@dataclass
class RunData:
    """Everything ``render_report`` reads from a run directory."""

    run_dir: str
    manifest: Optional[Dict[str, Any]] = None
    rows: List[Dict[str, Any]] = field(default_factory=list)
    summaries: List[Dict[str, Any]] = field(default_factory=list)
    spans: List[Dict[str, Any]] = field(default_factory=list)


def load_run(run_dir: str) -> RunData:
    """Read manifest/results/utrace summaries; loud when nothing exists.

    A directory holding neither a manifest nor results is almost always
    a typo'd path, so that raises :class:`~repro.errors.ConfigError`;
    any one artifact missing on its own just leaves its section out.
    """
    data = RunData(run_dir=run_dir)
    manifest_path = os.path.join(run_dir, MANIFEST_NAME)
    if os.path.exists(manifest_path):
        with open(manifest_path, "r", encoding="utf-8") as fh:
            data.manifest = json.load(fh)
    results_path = os.path.join(run_dir, RESULTS_NAME)
    if os.path.exists(results_path):
        with open(results_path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    data.rows.append(json.loads(line))
    pattern = os.path.join(run_dir, "utrace", "*.summary.json")
    for path in sorted(glob.glob(pattern)):
        # A corrupt or half-written summary must not take the whole
        # report down; the trace sections simply lose that entry.
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data.summaries.append(json.load(fh))
        except (OSError, ValueError):
            obs.log_event(
                "report_summary_unreadable", level="warning", path=path
            )
    spans_path = os.path.join(run_dir, "spans.jsonl")
    if os.path.exists(spans_path):
        try:
            with open(spans_path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        span = json.loads(line)
                    except ValueError:
                        continue  # torn tail / damaged line
                    if isinstance(span, dict):
                        data.spans.append(span)
        except OSError:
            obs.log_event(
                "report_spans_unreadable", level="warning",
                path=spans_path,
            )
    if data.manifest is None and not data.rows:
        raise ConfigError(
            f"no run artifacts in {run_dir!r}: expected "
            f"{MANIFEST_NAME} and/or {RESULTS_NAME} "
            "(was this directory written with --out?)"
        )
    return data


# --------------------------------------------------------------------- #
# HTML building blocks.
# --------------------------------------------------------------------- #


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:,.4g}"
    return _esc(value)


def _stack_bar(
    parts: Sequence[Any],
    title: str = "",
) -> str:
    """A horizontal 100%-stacked bar from ``(name, fraction, color)``."""
    cells = []
    for name, frac, color in parts:
        pct = 100.0 * frac
        if pct <= 0.0:
            continue
        cells.append(
            f'<span class="seg" style="width:{pct:.3f}%;'
            f'background:{color}" title="{_esc(name)}: {pct:.2f}%">'
            "</span>"
        )
    return (
        f'<div class="stack" title="{_esc(title)}">' + "".join(cells)
        + "</div>"
    )


def _legend(items: Sequence[Any]) -> str:
    chips = "".join(
        f'<span class="chip"><span class="swatch" '
        f'style="background:{color}"></span>{_esc(name)}</span>'
        for name, color in items
    )
    return f'<div class="legend">{chips}</div>'


def _table(rows: List[Dict[str, Any]], columns: Sequence[str]) -> str:
    head = "".join(f"<th>{_esc(c)}</th>" for c in columns)
    body = []
    for row in rows:
        cells = "".join(
            f"<td>{_fmt(row[c]) if c in row else ''}</td>" for c in columns
        )
        cls = ' class="failed"' if row.get("failed") else ""
        body.append(f"<tr{cls}>{cells}</tr>")
    return (
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{''.join(body)}</tbody></table>"
    )


def _row_label(row: Dict[str, Any]) -> str:
    bench = row.get("benchmark", "?")
    target = row.get("target")
    return f"{bench}.{target}" if target else str(bench)


# --------------------------------------------------------------------- #
# Sections.
# --------------------------------------------------------------------- #


def _header_section(data: RunData) -> str:
    man = data.manifest
    if man is None:
        return "<p class='muted'>no manifest.json in this directory</p>"
    try:
        wall = f"{float(man.get('wall_s', 0)):.2f} s"
    except (TypeError, ValueError):
        wall = str(man.get("wall_s"))
    facts = [
        ("command", man.get("command")),
        ("run id", man.get("run_id")),
        ("commit", man.get("git_commit")),
        ("started", man.get("started")),
        ("finished", man.get("finished")),
        ("wall", wall),
        ("rows", man.get("n_rows")),
        ("version", f"repro {man.get('version')} / "
                    f"python {man.get('python')}"),
        ("argv", " ".join(man.get("argv") or [])),
    ]
    if man.get("degraded"):
        facts.append(("degraded", "true (some cells failed)"))
    if man.get("interrupted"):
        facts.append(("interrupted", "true"))
    dl = "".join(
        f"<dt>{_esc(k)}</dt><dd>{_esc(v)}</dd>"
        for k, v in facts if v not in (None, "")
    )
    fps = ", ".join(
        f"{name}={cfg.get('fingerprint')}"
        for name, cfg in sorted((man.get("configs") or {}).items())
    )
    if fps:
        dl += f"<dt>config fingerprints</dt><dd>{_esc(fps)}</dd>"
    return f"<dl class='facts'>{dl}</dl>"


def _results_section(data: RunData) -> str:
    # Load-test rows (identified by throughput_rps) render in their own
    # section; keep the experiment-results table for experiment rows.
    experiment_rows = [
        r for r in data.rows if "throughput_rps" not in r
    ]
    rows = [r for r in experiment_rows if not r.get("failed")]
    failed = [r for r in experiment_rows if r.get("failed")]
    if not experiment_rows:
        return "<p class='muted'>no results.jsonl rows</p>"
    seen = {k for row in experiment_rows for k in row}
    columns = [c for c in LEAD_COLUMNS if c in seen]
    columns += sorted(
        k for k in seen
        if k not in columns and not k.startswith("t_")
        and k not in ("failed", "error", "detail")
    )
    out = _table(rows, columns)
    if failed:
        out += (
            f"<h3>{len(failed)} failed cell(s)</h3>"
            + _table(failed, ["benchmark", "target", "error", "detail"])
        )
    return out


def _phases_section(data: RunData) -> str:
    timed = [
        row for row in data.rows
        if any(k.startswith("t_") for k in row)
    ]
    if not timed:
        return "<p class='muted'>no phase timings recorded</p>"
    phases = sorted({k for row in timed for k in row if k.startswith("t_")})
    colors = {
        p: PHASE_PALETTE[i % len(PHASE_PALETTE)]
        for i, p in enumerate(phases)
    }
    bars = []
    for row in timed:
        total = sum(float(row.get(p) or 0.0) for p in phases)
        if total <= 0:
            continue
        parts = [
            (p[2:], float(row.get(p) or 0.0) / total, colors[p])
            for p in phases
        ]
        bars.append(
            f"<div class='barrow'><span class='barlabel'>"
            f"{_esc(_row_label(row))} ({total:.2f}s)</span>"
            + _stack_bar(parts, title=_row_label(row)) + "</div>"
        )
    legend = _legend([(p[2:], colors[p]) for p in phases])
    return legend + "".join(bars)


def _stalls_section(data: RunData) -> str:
    if not data.summaries:
        return (
            "<p class='muted'>(untraced run) -- no utrace summaries; "
            "run with <code>repro trace</code> or "
            "<code>--trace-window</code> to collect stall "
            "attribution</p>"
        )
    colors = dict(STALL_COLORS)
    bars = []
    for s in data.summaries:
        fractions = s.get("stall_fractions") or {}
        parts = [
            (name, float(fractions.get(name, 0.0)), color)
            for name, color in STALL_COLORS
        ]
        ipc = s.get("ipc")
        bars.append(
            f"<div class='barrow'><span class='barlabel'>"
            f"{_esc(s.get('label'))} (ipc {ipc})</span>"
            + _stack_bar(parts, title=str(s.get("label"))) + "</div>"
        )
    legend = _legend(
        [(name, colors[name]) for name, _ in STALL_COLORS]
    )
    note = (
        "<p class='muted'>every issue slot of every cycle charged to "
        "exactly one cause (slots = width &times; cycles)</p>"
    )
    return note + legend + "".join(bars)


def _energy_section(data: RunData) -> str:
    audited = [s for s in data.summaries if s.get("energy_audit")]
    if not audited:
        return (
            "<p class='muted'>(untraced run) -- no energy audits; "
            "traced runs with the audit disabled, or no traces at "
            "all</p>"
        )
    colors = dict(ENERGY_COLORS)
    bars = []
    for s in audited:
        audit = s["energy_audit"]
        per_cat = audit.get("per_category") or {}
        joules = {
            name: float((per_cat.get(name) or {}).get("event", 0.0))
            for name, _ in ENERGY_COLORS
        }
        total = sum(joules.values()) or 1.0
        parts = [
            (name, joules[name] / total, color)
            for name, color in ENERGY_COLORS
        ]
        badge = (
            "<span class='ok'>audit ok</span>"
            if audit.get("ok")
            else "<span class='bad'>audit FAILED</span>"
        )
        err = audit.get("max_rel_error", 0.0)
        bars.append(
            f"<div class='barrow'><span class='barlabel'>"
            f"{_esc(s.get('label'))} ({total:.3f} J) {badge} "
            f"<span class='muted'>max rel err {err:.2e}</span></span>"
            + _stack_bar(parts, title=str(s.get("label"))) + "</div>"
        )
    legend = _legend([(n, colors[n]) for n, _ in ENERGY_COLORS])
    note = (
        "<p class='muted'>per-event accumulated energy, cross-checked "
        "against the closed-form E1&ndash;E8 model</p>"
    )
    return note + legend + "".join(bars)


#: Load-test columns shown first, in this order, when present.
LOADTEST_LEAD_COLUMNS = (
    "mode", "benchmark", "requests", "ok", "shed", "dropped", "failed",
    "throughput_rps", "p50_latency_ms", "p95_latency_ms",
    "failure_rate", "shed_rate",
)


def _loadtest_section(data: RunData) -> str:
    rows = [r for r in data.rows if "throughput_rps" in r]
    if not rows:
        return (
            "<p class='muted'>no load-test rows -- run "
            "<code>repro loadtest</code> into this directory</p>"
        )
    seen = {k for row in rows for k in row}
    columns = [c for c in LOADTEST_LEAD_COLUMNS if c in seen]
    columns += sorted(
        k for k in seen
        if k not in columns
        and k not in ("schema", "latency_budget_s",
                      "max_concurrent_in_budget", "target")
    )
    out = _table(rows, columns)
    # The latency-budget arithmetic: how many concurrent clients the
    # observed tail latency supports inside a fixed response budget.
    budgets = [
        r for r in rows
        if r.get("latency_budget_s") and r.get("p95_latency_ms")
    ]
    for row in budgets:
        budget = float(row["latency_budget_s"])
        p95_s = float(row["p95_latency_ms"]) / 1000.0
        fit = row.get(
            "max_concurrent_in_budget",
            int(budget / p95_s) if p95_s > 0 else 0,
        )
        out += (
            "<p class='muted'>latency budget: with p95 = "
            f"{p95_s:.2f}s per request, a {budget:.0f}s budget "
            f"sustains <b>{fit}</b> concurrent request(s) "
            "(max_concurrent = budget / p95)</p>"
        )
    return out


#: Cap on rendered request waterfalls (a loadtest can record hundreds).
MAX_WATERFALLS = 8


def _waterfall_section(data: RunData) -> str:
    """Per-request span waterfall: one block per ``trace_id``, each
    span a bar offset/scaled against the trace's own wall window."""
    valid = [
        s for s in data.spans
        if isinstance(s.get("start_s"), (int, float))
        and isinstance(s.get("end_s"), (int, float))
        and s.get("trace_id")
    ]
    if not valid:
        return (
            "<p class='muted'>no trace spans -- run with "
            "<code>--out DIR</code> (spans land in "
            "<code>spans.jsonl</code>); server-side spans need the "
            "request to go through <code>repro serve</code></p>"
        )
    processes = sorted({str(s.get("process", "")) for s in valid})
    colors = {
        p: PHASE_PALETTE[i % len(PHASE_PALETTE)]
        for i, p in enumerate(processes)
    }
    by_trace: Dict[str, List[Dict[str, Any]]] = {}
    for span in valid:
        by_trace.setdefault(str(span["trace_id"]), []).append(span)
    traces = sorted(
        by_trace.items(),
        key=lambda item: min(s["start_s"] for s in item[1]),
    )
    blocks = []
    for trace_id, spans in traces[:MAX_WATERFALLS]:
        t0 = min(s["start_s"] for s in spans)
        t1 = max(s["end_s"] for s in spans)
        window = max(t1 - t0, 1e-9)
        rows = []
        for span in sorted(spans, key=lambda s: (s["start_s"], s["end_s"])):
            left = 100.0 * (span["start_s"] - t0) / window
            width = max(
                100.0 * (span["end_s"] - span["start_s"]) / window, 0.15
            )
            width = min(width, 100.0 - left)
            process = str(span.get("process", ""))
            dur_ms = 1000.0 * (span["end_s"] - span["start_s"])
            label = (
                f"{span.get('name', '?')} [{process}] {dur_ms:.1f}ms"
            )
            rows.append(
                "<div class='wfrow'>"
                f"<span class='wflabel'>{_esc(label)}</span>"
                "<div class='stack wftrack'>"
                f"<span class='seg' style='margin-left:{left:.3f}%;"
                f"width:{width:.3f}%;background:{colors[process]}'"
                f" title='{_esc(label)}'></span></div></div>"
            )
        blocks.append(
            f"<h3>trace <code>{_esc(trace_id)}</code> "
            f"({window * 1000.0:.1f}ms, {len(spans)} spans)</h3>"
            + "".join(rows)
        )
    skipped = len(traces) - min(len(traces), MAX_WATERFALLS)
    legend = _legend([(p or "(unknown)", colors[p]) for p in processes])
    note = (
        "<p class='muted'>one block per trace_id; bar offset/width are "
        "the span's share of that request's wall window, color = "
        "recording process</p>"
    )
    if skipped:
        note += (
            f"<p class='muted'>{skipped} more trace(s) not shown</p>"
        )
    return note + legend + "".join(blocks)


def _traces_section(data: RunData) -> str:
    if not data.summaries:
        return ""
    rows = []
    for s in data.summaries:
        window = s.get("window")
        if not (isinstance(window, (list, tuple)) and len(window) == 2):
            window = ("?", "?")
        rows.append({
            "label": s.get("label"),
            "window": "{}..{}".format(*window),
            "cycles": s.get("cycles"),
            "committed": s.get("committed"),
            "insts_recorded": s.get("insts_recorded"),
            "insts_dropped": s.get("insts_dropped"),
            "events": s.get("events"),
            "replays": s.get("replays"),
            "redirects": s.get("redirects"),
            "spawns": s.get("spawns"),
        })
    columns = list(rows[0].keys())
    return "<h2>Trace inventory</h2>" + _table(rows, columns)


_CSS = """
body { font: 14px/1.5 -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 72em; padding: 0 1em; color: #222; }
h1 { border-bottom: 2px solid #1e88e5; padding-bottom: .3em; }
h2 { margin-top: 2em; border-bottom: 1px solid #ddd; }
table { border-collapse: collapse; margin: 1em 0; font-size: 13px; }
th, td { border: 1px solid #ddd; padding: .35em .6em; text-align: right; }
th:first-child, td:first-child { text-align: left; }
th { background: #f5f5f5; }
tr.failed td { background: #ffebee; }
.stack { display: flex; height: 1.4em; width: 100%;
         border: 1px solid #bbb; border-radius: 3px; overflow: hidden; }
.seg { display: inline-block; height: 100%; }
.barrow { margin: .6em 0; }
.barlabel { display: block; font-size: 12px; color: #444;
            margin-bottom: .15em; font-family: monospace; }
.legend { margin: .5em 0 1em; }
.chip { margin-right: 1em; font-size: 12px; white-space: nowrap; }
.swatch { display: inline-block; width: .9em; height: .9em;
          margin-right: .3em; border: 1px solid #999;
          vertical-align: -0.1em; }
.facts dt { float: left; clear: left; width: 11em; font-weight: 600; }
.facts dd { margin-left: 12em; font-family: monospace;
            word-break: break-all; }
.muted { color: #888; }
.wfrow { margin: .25em 0; }
.wflabel { display: block; font-size: 11px; color: #555;
           font-family: monospace; }
.wftrack { height: .9em; background: #fafafa; }
.ok { color: #2e7d32; font-weight: 600; }
.bad { color: #c62828; font-weight: 700; }
code { background: #f5f5f5; padding: .1em .3em; border-radius: 3px; }
"""


def _timeline_section(store_dir: Optional[str]) -> str:
    """Cross-run regression timeline fed by the analytics store.

    Renders only when a store with ingested segments is reachable (an
    explicit ``--store``, ``REPRO_ANALYTICS_DIR``, or the default
    location); an empty or unreadable store degrades to a hint, never
    an error -- the per-run sections must render regardless.
    """
    from repro.analytics import RunStore, build_timeline
    from repro.analytics.timeline import timeline_section_html

    store = RunStore(store_dir)
    try:
        if not store.segment_paths():
            return (
                "<p class='muted'>no analytics store at "
                f"<code>{_esc(store.root)}</code> -- ingest runs with "
                "<code>repro analytics ingest</code> to track "
                "cross-run trends</p>"
            )
        report = build_timeline(store)
    except Exception as exc:  # never fail the per-run report
        obs.log_event(
            "report_timeline_failed",
            level="warning",
            store=store.root,
            error=type(exc).__name__,
            detail=str(exc),
        )
        return (
            f"<p class='muted'>timeline unavailable: {_esc(exc)}</p>"
        )
    return timeline_section_html(report)


def render_html(data: RunData, store_dir: Optional[str] = None) -> str:
    """The full report document (pure aside from the store read)."""
    title = "repro run report"
    if data.manifest:
        title += f" -- {data.manifest.get('command', '')}"
    sections = [
        ("Run", _header_section(data)),
        ("Results", _results_section(data)),
        ("Phase timings", _phases_section(data)),
        ("Top-down stall attribution", _stalls_section(data)),
        ("Energy audit", _energy_section(data)),
        ("Load test", _loadtest_section(data)),
        ("Request waterfall", _waterfall_section(data)),
        ("Timeline", _timeline_section(store_dir)),
    ]
    body = "".join(
        f"<h2>{_esc(name)}</h2>{content}" for name, content in sections
    )
    body += _traces_section(data)
    return (
        "<!DOCTYPE html>\n<html lang='en'><head>"
        "<meta charset='utf-8'>"
        f"<title>{_esc(title)}</title>"
        f"<style>{_CSS}</style></head><body>"
        f"<h1>{_esc(title)}</h1>{body}"
        "</body></html>\n"
    )


def render_report(
    run_dir: str,
    output: Optional[str] = None,
    store_dir: Optional[str] = None,
) -> str:
    """Load a run directory and write its ``report.html``; returns the
    output path."""
    data = load_run(run_dir)
    path = output or os.path.join(run_dir, REPORT_NAME)
    doc = render_html(data, store_dir=store_dir)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(doc)
    return path
