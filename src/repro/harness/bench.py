"""Throughput benchmarking: the repo's performance trajectory.

Two measurements matter for the "as fast as the hardware allows" goal:

- **Simulator throughput** -- single-thread ``cycles/sec`` through
  :func:`repro.cpu.pipeline.simulate` per benchmark, the number the
  hot-loop optimization work targets.  The trace is interpreted (and its
  flat per-instruction arrays built) outside the timed region, matching
  how the harness amortizes those costs across a figure grid.
- **Figure-grid wall time** -- end-to-end seconds for a representative
  sweep (``figure5_memory_latency``), measured three ways: sequential
  with the simulation cache disabled (the seed baseline's behavior),
  then with ``--jobs N`` + cache on a first (cold) and second (warm)
  pass.

:func:`run_bench` collects both into one JSON-serializable payload and
:func:`write_bench` writes it as ``BENCH_<yyyymmdd>.json``, seeding the
perf history the CI smoke job uploads per PR.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Dict, List, Optional, Sequence

from repro import __version__, obs
from repro.config import MachineConfig, SimulationConfig
from repro.cpu.pipeline import simulate
from repro.frontend import columns, tracestore
from repro.frontend.interpreter import interpret
from repro.cpu import engine as sim_engine
from repro.harness import batchplan, experiment, figures, simcache
from repro.pthsel.targets import Target
from repro.workloads import benchmark_names
from repro.workloads.registry import get_program

#: Benchmarks the quick (CI smoke) mode times.
QUICK_BENCHMARKS = ("gcc", "twolf")


def bench_simulator(
    benchmarks: Optional[Sequence[str]] = None,
    input_name: str = "train",
) -> List[Dict[str, object]]:
    """Single-thread simulator throughput rows, one per benchmark."""
    if benchmarks is None:
        benchmarks = benchmark_names()
    sim = SimulationConfig()
    machine = MachineConfig()
    rows: List[Dict[str, object]] = []
    for benchmark in benchmarks:
        t0 = time.perf_counter()
        trace = interpret(
            get_program(benchmark, input_name),
            max_instructions=sim.max_instructions,
        )
        t_trace = time.perf_counter() - t0
        with obs.span("bench_simulate", benchmark=benchmark):
            t0 = time.perf_counter()
            stats = simulate(trace, machine)
            wall = time.perf_counter() - t0
        rows.append(
            {
                "benchmark": benchmark,
                "cycles": stats.cycles,
                "committed": stats.committed,
                "wall_s": round(wall, 4),
                "t_trace": round(t_trace, 4),
                "cycles_per_sec": round(stats.cycles / wall) if wall else 0,
            }
        )
    return rows


def _grid_kwargs(quick: bool) -> Dict[str, object]:
    if quick:
        return {
            "benchmarks": ("gcc",),
            "latencies": (100, 200),
            "targets": (Target.LATENCY,),
        }
    return {}


def bench_grid(
    jobs: Optional[int] = None,
    quick: bool = False,
    compare_sequential: bool = True,
    backend_walls: Optional[bool] = None,
) -> Dict[str, object]:
    """Wall-clock three ways through ``figure5_memory_latency``.

    ``backend_walls`` forces (True) or suppresses (False) the
    per-backend sequential-wall sweep; the default (None) measures it
    in quick mode only, where re-running the grid per engine is cheap.
    """
    kwargs = _grid_kwargs(quick)
    measure_walls = quick if backend_walls is None else backend_walls
    out: Dict[str, object] = {
        "grid": "figure5_memory_latency",
        "quick": quick,
        "jobs": jobs,
    }

    if compare_sequential:
        # An honest cold pass: nothing carried over from earlier phases
        # of this process (in-process baseline LRU, trace memo), only the
        # sharing the sequential grid itself builds up.
        experiment.clear_baseline_cache()
        tracestore.clear()
        with simcache.disabled():
            t0 = time.perf_counter()
            rows = figures.figure5_memory_latency(jobs=1, **kwargs)
            out["sequential_uncached_wall_s"] = round(
                time.perf_counter() - t0, 3
            )
        out["rows"] = len(rows)
        # Per-row cold phase breakdown (trace/analysis/sim walls) plus
        # totals, so the bench JSON shows where the cold path spends.
        # Rows whose layers were all served from in-process memos (e.g.
        # a second target selecting an already-simulated p-thread set)
        # built nothing and would silently dilute the breakdown: they
        # are counted, not listed.  Each listed row carries its cache
        # provenance (src_*) so "cheap" rows are explainable.
        phase_keys = ("t_trace", "t_analysis", "t_sim")
        cold_rows = []
        cached_rows = 0
        for row in rows:
            if sum(float(row.get(k, 0.0)) for k in phase_keys) <= 0.0:
                cached_rows += 1
                continue
            cold_rows.append(
                {
                    k: row[k]
                    for k in ("benchmark", "target", *phase_keys)
                    if k in row
                }
                | {
                    k: v
                    for k, v in row.items()
                    if k.startswith("src_")
                }
            )
        out["cold_phase_rows"] = cold_rows
        out["cached_rows"] = cached_rows
        out["cold_phase_totals_s"] = {
            k[2:]: round(sum(float(r.get(k, 0.0)) for r in rows), 3)
            for k in phase_keys
        }
        out["batch_prewarm"] = batchplan.last_prewarm_stats()
        out["tracestore"] = tracestore.stats()

        # Per-backend walls over the same sequential uncached grid, so
        # the committed baseline pins every engine's speed -- a change
        # that only slows the engine nobody selected by default would
        # otherwise sail through.  Quick mode by default: re-running the
        # full grid under the reference engine multiplies bench time, so
        # full-grid walls are opt-in (``repro bench --backend-walls``,
        # used for the published BENCH_*.json speedup figures).
        if measure_walls:
            active = sim_engine.backend()
            walls = {active: out["sequential_uncached_wall_s"]}
            for name in sim_engine.available_backends():
                if name == active:
                    continue
                experiment.clear_baseline_cache()
                tracestore.clear()
                sim_engine.set_sim_backend(name)
                try:
                    with simcache.disabled():
                        t0 = time.perf_counter()
                        figures.figure5_memory_latency(jobs=1, **kwargs)
                        walls[name] = round(time.perf_counter() - t0, 3)
                finally:
                    sim_engine.set_sim_backend(active)
            out["backend_walls_s"] = walls

    t0 = time.perf_counter()
    rows = figures.figure5_memory_latency(jobs=jobs, **kwargs)
    out["cold_wall_s"] = round(time.perf_counter() - t0, 3)
    out["rows"] = len(rows)

    t0 = time.perf_counter()
    figures.figure5_memory_latency(jobs=jobs, **kwargs)
    out["warm_wall_s"] = round(time.perf_counter() - t0, 3)

    seq = out.get("sequential_uncached_wall_s")
    if seq:
        out["warm_speedup"] = round(seq / max(out["warm_wall_s"], 1e-9), 2)
    return out


def run_bench(
    quick: bool = False,
    jobs: Optional[int] = None,
    with_grid: bool = True,
    compare_sequential: Optional[bool] = None,
    backend_walls: Optional[bool] = None,
) -> Dict[str, object]:
    """Collect the full benchmark payload (simulator + grid timings)."""
    if compare_sequential is None:
        compare_sequential = True
    payload: Dict[str, object] = {
        "date": time.strftime("%Y-%m-%d"),
        "version": __version__,
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "quick": quick,
        "trace_backend": columns.backend(),
        "sim_backend": sim_engine.backend(),
        "simulator": bench_simulator(
            QUICK_BENCHMARKS if quick else None
        ),
    }
    if with_grid:
        payload["figure_grid"] = bench_grid(
            jobs=jobs,
            quick=quick,
            compare_sequential=compare_sequential,
            backend_walls=backend_walls,
        )
    cache = simcache.get_cache()
    if cache is not None:
        payload["simcache"] = cache.stats()
    # Recovery accounting rides along so throughput regressions caused
    # by retries/rebuilds are visible in the payload itself.
    snapshot = obs.counters.snapshot()
    payload["resilience"] = {
        name.split("harness.parallel.", 1)[1]: int(value)
        for name, value in snapshot.items()
        if name.startswith("harness.parallel.")
        and name.split(".")[-1]
        in ("retries", "recoveries", "failures", "timeouts",
            "pool_rebuilds", "cells_resumed")
    }
    injected = {
        name.split("faults.injected.", 1)[1]: int(value)
        for name, value in snapshot.items()
        if name.startswith("faults.injected.")
    }
    if injected:
        payload["resilience"]["injected"] = injected
    # Server-side counters (admission sheds, breaker trips, recovered
    # jobs) join the same section when a server ran in this process.
    # Histograms store dict-valued state in the same registry; only the
    # scalar counters belong in this summary.
    server = {
        name.split("server.", 1)[1]: int(value)
        for name, value in snapshot.items()
        if name.startswith("server.") and not isinstance(value, dict)
    }
    if server:
        payload["resilience"]["server"] = server
    return payload


def hotspot_table(profile, limit: int = 25) -> str:
    """Render a cProfile run as a top-``limit`` cumulative-time table.

    ``profile`` is a :class:`cProfile.Profile` that has finished
    collecting (the CLI's ``bench --profile`` wraps :func:`run_bench`
    in one).  Returned as text so it can be printed or written next to
    the bench payload as a ``*.profile.txt`` artifact.
    """
    import io
    import pstats

    buffer = io.StringIO()
    stats = pstats.Stats(profile, stream=buffer)
    stats.sort_stats("cumulative").print_stats(limit)
    return buffer.getvalue()


def write_bench(
    payload: Dict[str, object], path: Optional[str] = None
) -> str:
    """Write ``payload`` to ``path`` (default ``BENCH_<yyyymmdd>.json``
    in the current directory) and return the path written."""
    if path is None:
        path = f"BENCH_{time.strftime('%Y%m%d')}.json"
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path
