"""Experiment harness: end-to-end runs and per-figure regenerators."""

from repro.harness.experiment import (
    ExperimentResult,
    RunMeasurement,
    run_baseline,
    run_experiment,
)

__all__ = [
    "ExperimentResult",
    "RunMeasurement",
    "run_baseline",
    "run_experiment",
]
