"""Persistent, content-addressed simulation result cache.

Every cell of a paper figure is a deterministic function of (workload
content, machine/energy/selection/simulation configuration, simulator
code).  The cache stores those results on disk so sweeps and repeat CLI
invocations never re-simulate work they have already done:

- **Keys** are SHA-256 digests of a canonical JSON rendering of the
  caller's key material plus the cache schema version and a fingerprint
  of the simulator source files.  Editing the simulator or bumping the
  schema silently invalidates every old entry (their keys can no longer
  be produced), so stale results cannot leak across code versions.
- **Entries** are pickle envelopes carrying the versions and key digest
  they were written under; both are re-checked on load, so a reused
  cache directory never returns a payload written by different code.
- **Writes** go to a temporary file in the same directory followed by
  :func:`os.replace`, making concurrent writers (the process-pool
  workers of :mod:`repro.harness.parallel`) safe: readers only ever see
  complete entries, and the last writer of identical content wins.
- **Corruption tolerance**: a truncated or garbage entry is a miss (and
  is evicted), never an exception.
- **I/O degradation**: a full disk, a read-only cache directory, or any
  other persistent ``OSError`` degrades the cache to a no-op with a
  single ``simcache_degraded`` warning event -- a failing cache must
  never abort the grid whose results it was merely accelerating.
  (:func:`get_cache` returns ``None`` once degraded, so callers skip
  key hashing too.)

The ``simcache.read`` / ``simcache.write`` fault-injection sites
(:mod:`repro.faults`) raise ``OSError`` inside the normal I/O paths, so
chaos runs exercise exactly the handlers real ENOSPC/EACCES would hit.

The default location is ``~/.cache/repro-sim`` (override with
``REPRO_CACHE_DIR`` or the CLI ``--cache-dir``); ``REPRO_CACHE=0``
disables caching process-wide.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pickle
import tempfile
from typing import Any, Dict, Iterator, Optional

from repro import faults, obs
from repro.errors import CacheCorruptionError
from repro.obs.manifest import stable_json

#: Bump when the envelope layout or the meaning of cached payloads changes.
SCHEMA_VERSION = 1

#: Source files whose content defines the simulation semantics.  Editing
#: any of them changes :func:`code_version` and invalidates the cache.
_CODE_VERSION_MODULES = (
    "repro.cpu.pipeline",
    "repro.cpu.stats",
    "repro.cpu.pthreads",
    "repro.memory.hierarchy",
    "repro.memory.cache",
    "repro.memory.mshr",
    "repro.branch.predictors",
    "repro.branch.btb",
    "repro.energy.wattch",
    "repro.frontend.interpreter",
    "repro.ddmt.augment",
    "repro.pthsel.framework",
    "repro.harness.experiment",
)

_ENTRY_SUFFIX = ".pkl"

_HITS = obs.counters.counter("harness.simcache.hits")
_MISSES = obs.counters.counter("harness.simcache.misses")
_WRITES = obs.counters.counter("harness.simcache.writes")
_EVICTIONS = obs.counters.counter("harness.simcache.evictions")
_CORRUPT = obs.counters.counter("harness.simcache.corrupt_entries")
_DEGRADATIONS = obs.counters.counter("harness.simcache.degradations")

_code_version_cache: Optional[str] = None


def code_version() -> str:
    """A short fingerprint of the simulator's source code.

    Hashes the bytes of the modules in :data:`_CODE_VERSION_MODULES` plus
    the package version, so cached results survive only as long as the
    code that produced them.
    """
    global _code_version_cache
    if _code_version_cache is None:
        import importlib

        from repro import __version__

        digest = hashlib.sha256(__version__.encode())
        for name in _CODE_VERSION_MODULES:
            module = importlib.import_module(name)
            path = getattr(module, "__file__", None)
            if path and os.path.exists(path):
                with open(path, "rb") as fh:
                    digest.update(fh.read())
        _code_version_cache = digest.hexdigest()[:16]
    return _code_version_cache


def default_cache_dir() -> str:
    """``REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-sim``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(
        os.environ.get("XDG_CACHE_HOME")
        or os.path.join(os.path.expanduser("~"), ".cache"),
        "repro-sim",
    )


def cache_enabled() -> bool:
    """Caching is on unless ``REPRO_CACHE`` is ``0``/``off``/``false``."""
    return os.environ.get("REPRO_CACHE", "1").lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


class SimCache:
    """One on-disk cache rooted at ``root`` (created lazily on first put)."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root or default_cache_dir()
        #: Set on the first persistent I/O error; a degraded cache
        #: misses on every get and drops every put.
        self.degraded = False

    def _degrade(self, op: str, exc: OSError) -> None:
        """Turn the cache off for this process after an I/O failure
        (ENOSPC, EACCES, read-only mount, ...), warning exactly once."""
        if self.degraded:
            return
        self.degraded = True
        _DEGRADATIONS.add()
        obs.log_event(
            "simcache_degraded",
            level="warning",
            dir=self.root,
            op=op,
            error=type(exc).__name__,
            detail=str(exc),
        )

    # ----------------------------------------------------------------- #

    def key(self, material: Any) -> str:
        """Content-addressed key: SHA-256 over canonical JSON of the key
        material, the schema version, and the simulator code version."""
        payload = stable_json(
            {
                "schema": SCHEMA_VERSION,
                "code": code_version(),
                "material": material,
            }
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + _ENTRY_SUFFIX)

    # ----------------------------------------------------------------- #

    def get(self, material: Any) -> Optional[Any]:
        """The cached payload for ``material``, or ``None`` on a miss.

        Any failure to read or validate the entry -- truncation, garbage,
        an envelope written under other versions -- counts as a miss; the
        bad entry is evicted so it cannot fail again.
        """
        if self.degraded:
            _MISSES.add()
            return None
        key = self.key(material)
        path = self._path(key)
        try:
            faults.raise_os_if("simcache.read", key=key)
            with open(path, "rb") as fh:
                envelope = pickle.load(fh)
            if (
                not isinstance(envelope, dict)
                or envelope.get("schema") != SCHEMA_VERSION
                or envelope.get("code") != code_version()
                or envelope.get("key") != key
            ):
                raise ValueError("stale or foreign cache envelope")
            payload = envelope["payload"]
        except FileNotFoundError:
            _MISSES.add()
            return None
        except OSError as exc:
            # EACCES / EIO / injected read fault: stop using the cache.
            self._degrade("read", exc)
            _MISSES.add()
            return None
        except Exception as exc:
            # Corrupt, truncated, or version-skewed entry: drop it.
            corruption = CacheCorruptionError(
                f"unreadable cache entry {path}: {exc}",
                path=path,
                reason=str(exc),
            )
            _CORRUPT.add()
            obs.log_event(
                "simcache_corrupt_entry",
                level="warning",
                error=type(corruption).__name__,
                **corruption.context,
            )
            self._evict(path)
            _MISSES.add()
            return None
        _HITS.add()
        return payload

    def contains(self, material: Any) -> bool:
        """Whether an entry for ``material`` exists on disk.

        A pure existence probe (no read, no validation, no counter
        traffic): the batch planner uses it to decide which members of
        a shared-trace group still need simulating, and a stale entry
        discovered later simply degrades to an ordinary ``get`` miss.
        """
        if self.degraded:
            return False
        try:
            return os.path.exists(self._path(self.key(material)))
        except OSError:
            return False

    def put(self, material: Any, payload: Any) -> str:
        """Store ``payload`` under ``material``'s key; returns the key.

        Written atomically (temp file + ``os.replace``) so concurrent
        writers and crashing processes can never publish a torn entry.
        A write that fails with ``OSError`` (full disk, read-only cache
        directory, injected fault) degrades the cache instead of
        raising: the computed payload is still returned to the caller's
        pipeline, it just is not persisted.
        """
        key = self.key(material)
        if self.degraded:
            return key
        path = self._path(key)
        directory = os.path.dirname(path)
        tmp_path: Optional[str] = None
        try:
            faults.raise_os_if("simcache.write", key=key)
            os.makedirs(directory, exist_ok=True)
            envelope = {
                "schema": SCHEMA_VERSION,
                "code": code_version(),
                "key": key,
                "payload": payload,
            }
            fd, tmp_path = tempfile.mkstemp(
                dir=directory, prefix=".tmp-", suffix=_ENTRY_SUFFIX
            )
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(envelope, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)
        except OSError as exc:
            if tmp_path is not None:
                with contextlib.suppress(OSError):
                    os.unlink(tmp_path)
            self._degrade("write", exc)
            return key
        except BaseException:
            if tmp_path is not None:
                with contextlib.suppress(OSError):
                    os.unlink(tmp_path)
            raise
        _WRITES.add()
        return key

    # ----------------------------------------------------------------- #

    def _evict(self, path: str) -> None:
        try:
            os.unlink(path)
            _EVICTIONS.add()
        except OSError:
            pass

    def _entry_paths(self) -> Iterator[str]:
        if not os.path.isdir(self.root):
            return
        for dirpath, _, filenames in os.walk(self.root):
            for name in filenames:
                if name.endswith(_ENTRY_SUFFIX) and not name.startswith(
                    ".tmp-"
                ):
                    yield os.path.join(dirpath, name)

    def stats(self) -> Dict[str, object]:
        """Occupancy of the directory plus this process's hit/miss/evict
        counts."""
        entries = 0
        total_bytes = 0
        for path in self._entry_paths():
            entries += 1
            try:
                total_bytes += os.path.getsize(path)
            except OSError:
                pass
        return {
            "dir": self.root,
            "entries": entries,
            "bytes": total_bytes,
            "schema_version": SCHEMA_VERSION,
            "code_version": code_version(),
            "degraded": self.degraded,
            "hits": _HITS.value,
            "misses": _MISSES.value,
            "writes": _WRITES.value,
            "evictions": _EVICTIONS.value,
            "corrupt_entries": _CORRUPT.value,
            "degradations": _DEGRADATIONS.value,
        }

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in list(self._entry_paths()):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        _EVICTIONS.add(removed)
        return removed


# --------------------------------------------------------------------- #
# The process-wide cache the harness consults.  ``configure`` swaps the
# directory (CLI --cache-dir) or disables caching entirely; ``None``
# means "enabled at the default location" unless REPRO_CACHE says no.
# --------------------------------------------------------------------- #

_active: Optional[SimCache] = None
_enabled_override: Optional[bool] = None


def configure(
    cache_dir: Optional[str] = None, enabled: Optional[bool] = None
) -> None:
    """Set the process-wide cache directory and/or enabled state.

    An explicit ``cache_dir`` implies ``enabled=True`` unless overridden;
    an explicit ``enabled`` beats the ``REPRO_CACHE`` environment switch.
    """
    global _active, _enabled_override
    if cache_dir is not None:
        _active = SimCache(cache_dir)
        if enabled is None:
            enabled = True
    if enabled is not None:
        _enabled_override = enabled


def reset() -> None:
    """Back to defaults: environment-controlled, default directory."""
    global _active, _enabled_override
    _active = None
    _enabled_override = None


@contextlib.contextmanager
def disabled() -> Iterator[None]:
    """Temporarily disable caching (the bench harness measures the
    uncached path this way)."""
    global _enabled_override
    previous = _enabled_override
    _enabled_override = False
    try:
        yield
    finally:
        _enabled_override = previous


def get_cache() -> Optional[SimCache]:
    """The active cache, or ``None`` when caching is disabled or the
    active cache has degraded after an I/O failure."""
    global _active
    enabled = (
        _enabled_override
        if _enabled_override is not None
        else cache_enabled()
    )
    if not enabled:
        return None
    if _active is None:
        _active = SimCache()
    if _active.degraded:
        return None
    return _active
