"""Chaos harness: prove the engine's recovery paths under injected faults.

:func:`run_chaos` runs one experiment grid twice -- once fault-free as a
reference, once under an active :mod:`repro.faults` plan -- and reports
whether the engine actually recovered:

- **zero aborted grids**: the faulted run must complete and return a row
  for every cell (graceful degradation turns exhausted cells into
  failure rows rather than exceptions);
- **bit-identical recovery**: every cell that completed under faults
  must produce exactly the reference row (modulo wall-clock ``t_*``
  phase timings) -- retries re-run a pure function, so any drift is an
  engine bug;
- **full fault accounting**: for ``worker.run`` (whose draw keys are
  computable in the parent), the report compares the *predicted* fault
  schedule against the injected-fault counters that came back from the
  workers; a mismatch means injections were dropped or double-counted.

The ``repro chaos`` CLI command wraps this and renders the report; the
``--quick`` smoke (used by CI) probes for a fault seed that injects at
least one fault into the small grid so the run always exercises a retry.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro import faults, obs
from repro.faults import FaultSpec, draw
from repro.harness import simcache
from repro.harness.figures import result_row
from repro.harness.parallel import (
    ExperimentJob,
    JobFailure,
    RetryPolicy,
    run_experiments,
)
from repro.pthsel.targets import Target
from repro.workloads.registry import BENCHMARK_NAMES

#: Default injection: crash jobs in their workers 30% of the time.
DEFAULT_SPEC = "worker.run:0.3"

#: Chaos runs retry harder than production sweeps: with p=0.3 and eight
#: attempts the per-cell permafail probability is 0.3^8 ~ 7e-5.
CHAOS_MAX_ATTEMPTS = 8

QUICK_BENCHMARKS = 2


def _comparable(row: Dict[str, object]) -> Dict[str, object]:
    """A result row minus its wall-clock and cache-provenance columns
    (the only legitimate run-to-run differences: retries and memo
    warmth change where a layer came from, never what it computed)."""
    return {
        k: v
        for k, v in row.items()
        if not str(k).startswith("t_") and not str(k).startswith("src_")
    }


def predict_worker_run_faults(
    grid: Sequence[ExperimentJob],
    spec: FaultSpec,
    max_attempts: int,
) -> Dict[str, int]:
    """Replay the ``worker.run`` fault schedule for ``grid`` in-process.

    The site's draw key is a pure function of (cell key, attempt) --
    exactly what the worker computes -- so the parent can predict how
    many faults will fire, how many cells retry, and how many exhaust
    every attempt, then check the workers' counters against it.
    """
    injections = retried = permafails = 0
    for job in grid:
        cell = job.cell_key()
        cell_injections = 0
        for attempt in range(1, max_attempts + 1):
            # _execute_job draws under faults.scoped("<cell>:<attempt>")
            # with key "run"; the plan mixes the scope into the key.
            if draw(spec, f"{cell}:{attempt}|run"):
                cell_injections += 1
            else:
                break
        injections += cell_injections
        if cell_injections:
            retried += 1
        if cell_injections >= max_attempts:
            permafails += 1
    return {
        "injections": injections,
        "cells_retried": retried,
        "permafails": permafails,
    }


def _pick_quick_seed(
    grid: Sequence[ExperimentJob], probability: float, max_attempts: int
) -> Tuple[FaultSpec, Dict[str, int]]:
    """A seed whose schedule injects at least one fault into ``grid``
    without permafailing any cell -- so the quick smoke always exercises
    the retry path and always recovers."""
    for seed in range(256):
        spec = FaultSpec("worker.run", probability, seed)
        predicted = predict_worker_run_faults(grid, spec, max_attempts)
        if predicted["injections"] >= 1 and predicted["permafails"] == 0:
            return spec, predicted
    # Unreachable for any sane probability; fall back to seed 0.
    spec = FaultSpec("worker.run", probability, 0)
    return spec, predict_worker_run_faults(grid, spec, max_attempts)


def run_chaos(
    benchmarks: Optional[Sequence[str]] = None,
    targets: Sequence[Target] = (Target.LATENCY,),
    specs: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    max_attempts: int = CHAOS_MAX_ATTEMPTS,
    timeout_s: Optional[float] = None,
    quick: bool = False,
) -> Dict[str, object]:
    """Run the chaos experiment and return the recovery report.

    Both runs disable the persistent cache: a cache hit would let the
    faulted run answer from the reference run's results, proving nothing
    about recovery.
    """
    if benchmarks is None:
        benchmarks = (
            BENCHMARK_NAMES[:QUICK_BENCHMARKS] if quick else BENCHMARK_NAMES
        )
    grid = [
        ExperimentJob(benchmark, target=target)
        for benchmark in benchmarks
        for target in targets
    ]

    predicted: Optional[Dict[str, int]] = None
    if specs is None:
        base = FaultSpec.parse(DEFAULT_SPEC)
        if quick:
            spec, predicted = _pick_quick_seed(
                grid, base.probability, max_attempts
            )
        else:
            spec = base
            predicted = predict_worker_run_faults(grid, spec, max_attempts)
        plan_specs: List[str] = [spec.encode()]
    else:
        plan_specs = list(specs)
        parsed = [FaultSpec.parse(s) for s in plan_specs]
        run_specs = [s for s in parsed if s.site == "worker.run"]
        if len(run_specs) == 1:
            predicted = predict_worker_run_faults(
                grid, run_specs[0], max_attempts
            )

    policy = RetryPolicy(
        max_attempts=max_attempts,
        base_delay_s=0.01,
        max_delay_s=0.25,
        timeout_s=timeout_s,
    )

    with simcache.disabled():
        started = time.monotonic()
        reference = run_experiments(
            grid, n_jobs=jobs, policy=RetryPolicy(max_attempts=1),
            journal=None, degrade=False,
        )
        reference_wall_s = time.monotonic() - started

        before = obs.counters.snapshot()
        started = time.monotonic()
        with faults.active(plan_specs):
            chaotic = run_experiments(
                grid, n_jobs=jobs, policy=policy, journal=None,
                degrade=True,
            )
        chaos_wall_s = time.monotonic() - started
        delta = obs.counters.delta_since(before)

    reference_rows = [_comparable(result_row(r)) for r in reference]
    chaos_rows = [_comparable(result_row(r)) for r in chaotic]

    identical = 0
    mismatched: List[Dict[str, object]] = []
    failures: List[Dict[str, object]] = []
    for job, ref_row, chaos_result, chaos_row in zip(
        grid, reference_rows, chaotic, chaos_rows
    ):
        if isinstance(chaos_result, JobFailure):
            failures.append(chaos_result.row())
            continue
        if chaos_row == ref_row:
            identical += 1
        else:
            mismatched.append(
                {
                    "benchmark": job.benchmark,
                    "target": job.target.label,
                    "reference": ref_row,
                    "chaos": chaos_row,
                }
            )

    injected = {
        name.split("faults.injected.", 1)[1]: int(value)
        for name, value in delta.items()
        if name.startswith("faults.injected.")
    }
    report: Dict[str, object] = {
        "specs": plan_specs,
        "cells": len(grid),
        "benchmarks": list(benchmarks),
        "targets": [t.label for t in targets],
        "max_attempts": max_attempts,
        "aborted_runs": 0,  # both run_experiments calls returned
        "completed_cells": len(grid) - len(failures),
        "failed_cells": failures,
        "identical_cells": identical,
        "mismatched_cells": mismatched,
        "injected": injected,
        "retries": int(delta.get("harness.parallel.retries", 0)),
        "recoveries": int(delta.get("harness.parallel.recoveries", 0)),
        "failures": int(delta.get("harness.parallel.failures", 0)),
        "timeouts": int(delta.get("harness.parallel.timeouts", 0)),
        "pool_rebuilds": int(
            delta.get("harness.parallel.pool_rebuilds", 0)
        ),
        "reference_wall_s": round(reference_wall_s, 3),
        "chaos_wall_s": round(chaos_wall_s, 3),
        "ok": not failures and not mismatched,
    }
    if predicted is not None:
        report["predicted_worker_run"] = predicted
        actual = injected.get("worker.run", 0)
        report["accounted"] = actual == predicted["injections"]
        report["ok"] = bool(report["ok"]) and bool(report["accounted"])
    obs.log_event(
        "chaos_report",
        level="info" if report["ok"] else "error",
        **{
            k: report[k]
            for k in (
                "cells",
                "identical_cells",
                "retries",
                "recoveries",
                "injected",
                "ok",
            )
        },
    )
    return report
