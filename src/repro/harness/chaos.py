"""Chaos harness: prove the engine's recovery paths under injected faults.

:func:`run_chaos` runs one experiment grid twice -- once fault-free as a
reference, once under an active :mod:`repro.faults` plan -- and reports
whether the engine actually recovered:

- **zero aborted grids**: the faulted run must complete and return a row
  for every cell (graceful degradation turns exhausted cells into
  failure rows rather than exceptions);
- **bit-identical recovery**: every cell that completed under faults
  must produce exactly the reference row (modulo wall-clock ``t_*``
  phase timings) -- retries re-run a pure function, so any drift is an
  engine bug;
- **full fault accounting**: for ``worker.run`` (whose draw keys are
  computable in the parent), the report compares the *predicted* fault
  schedule against the injected-fault counters that came back from the
  workers; a mismatch means injections were dropped or double-counted.

The ``repro chaos`` CLI command wraps this and renders the report; the
``--quick`` smoke (used by CI) probes for a fault seed that injects at
least one fault into the small grid so the run always exercises a retry.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import faults, obs
from repro.faults import FaultSpec, draw
from repro.harness import simcache
from repro.harness.figures import result_row
from repro.harness.parallel import (
    ExperimentJob,
    JobFailure,
    RetryPolicy,
    run_experiments,
)
from repro.pthsel.targets import Target
from repro.workloads.registry import BENCHMARK_NAMES

#: Default injection: crash jobs in their workers 30% of the time.
DEFAULT_SPEC = "worker.run:0.3"

#: Chaos runs retry harder than production sweeps: with p=0.3 and eight
#: attempts the per-cell permafail probability is 0.3^8 ~ 7e-5.
CHAOS_MAX_ATTEMPTS = 8

QUICK_BENCHMARKS = 2


def _comparable(row: Dict[str, object]) -> Dict[str, object]:
    """A result row minus its wall-clock and cache-provenance columns
    (the only legitimate run-to-run differences: retries and memo
    warmth change where a layer came from, never what it computed)."""
    return {
        k: v
        for k, v in row.items()
        if not str(k).startswith("t_") and not str(k).startswith("src_")
    }


def predict_worker_run_faults(
    grid: Sequence[ExperimentJob],
    spec: FaultSpec,
    max_attempts: int,
) -> Dict[str, int]:
    """Replay the ``worker.run`` fault schedule for ``grid`` in-process.

    The site's draw key is a pure function of (cell key, attempt) --
    exactly what the worker computes -- so the parent can predict how
    many faults will fire, how many cells retry, and how many exhaust
    every attempt, then check the workers' counters against it.
    """
    injections = retried = permafails = 0
    for job in grid:
        cell = job.cell_key()
        cell_injections = 0
        for attempt in range(1, max_attempts + 1):
            # _execute_job draws under faults.scoped("<cell>:<attempt>")
            # with key "run"; the plan mixes the scope into the key.
            if draw(spec, f"{cell}:{attempt}|run"):
                cell_injections += 1
            else:
                break
        injections += cell_injections
        if cell_injections:
            retried += 1
        if cell_injections >= max_attempts:
            permafails += 1
    return {
        "injections": injections,
        "cells_retried": retried,
        "permafails": permafails,
    }


def _pick_quick_seed(
    grid: Sequence[ExperimentJob], probability: float, max_attempts: int
) -> Tuple[FaultSpec, Dict[str, int]]:
    """A seed whose schedule injects at least one fault into ``grid``
    without permafailing any cell -- so the quick smoke always exercises
    the retry path and always recovers."""
    for seed in range(256):
        spec = FaultSpec("worker.run", probability, seed)
        predicted = predict_worker_run_faults(grid, spec, max_attempts)
        if predicted["injections"] >= 1 and predicted["permafails"] == 0:
            return spec, predicted
    # Unreachable for any sane probability; fall back to seed 0.
    spec = FaultSpec("worker.run", probability, 0)
    return spec, predict_worker_run_faults(grid, spec, max_attempts)


def run_chaos(
    benchmarks: Optional[Sequence[str]] = None,
    targets: Sequence[Target] = (Target.LATENCY,),
    specs: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    max_attempts: int = CHAOS_MAX_ATTEMPTS,
    timeout_s: Optional[float] = None,
    quick: bool = False,
) -> Dict[str, object]:
    """Run the chaos experiment and return the recovery report.

    Both runs disable the persistent cache: a cache hit would let the
    faulted run answer from the reference run's results, proving nothing
    about recovery.
    """
    if benchmarks is None:
        benchmarks = (
            BENCHMARK_NAMES[:QUICK_BENCHMARKS] if quick else BENCHMARK_NAMES
        )
    grid = [
        ExperimentJob(benchmark, target=target)
        for benchmark in benchmarks
        for target in targets
    ]

    predicted: Optional[Dict[str, int]] = None
    if specs is None:
        base = FaultSpec.parse(DEFAULT_SPEC)
        if quick:
            spec, predicted = _pick_quick_seed(
                grid, base.probability, max_attempts
            )
        else:
            spec = base
            predicted = predict_worker_run_faults(grid, spec, max_attempts)
        plan_specs: List[str] = [spec.encode()]
    else:
        plan_specs = list(specs)
        parsed = [FaultSpec.parse(s) for s in plan_specs]
        run_specs = [s for s in parsed if s.site == "worker.run"]
        if len(run_specs) == 1:
            predicted = predict_worker_run_faults(
                grid, run_specs[0], max_attempts
            )

    policy = RetryPolicy(
        max_attempts=max_attempts,
        base_delay_s=0.01,
        max_delay_s=0.25,
        timeout_s=timeout_s,
    )

    with simcache.disabled():
        started = time.monotonic()
        # faults.pristine(): the reference grid must be fault-free even
        # when the process carries an ambient plan (CLI --inject-fault,
        # REPRO_FAULTS, or a leaked test plan).
        with faults.pristine():
            reference = run_experiments(
                grid, n_jobs=jobs, policy=RetryPolicy(max_attempts=1),
                journal=None, degrade=False,
            )
        reference_wall_s = time.monotonic() - started

        before = obs.counters.snapshot()
        started = time.monotonic()
        with faults.active(plan_specs):
            chaotic = run_experiments(
                grid, n_jobs=jobs, policy=policy, journal=None,
                degrade=True,
            )
        chaos_wall_s = time.monotonic() - started
        delta = obs.counters.delta_since(before)

    reference_rows = [_comparable(result_row(r)) for r in reference]
    chaos_rows = [_comparable(result_row(r)) for r in chaotic]

    identical = 0
    mismatched: List[Dict[str, object]] = []
    failures: List[Dict[str, object]] = []
    for job, ref_row, chaos_result, chaos_row in zip(
        grid, reference_rows, chaotic, chaos_rows
    ):
        if isinstance(chaos_result, JobFailure):
            failures.append(chaos_result.row())
            continue
        if chaos_row == ref_row:
            identical += 1
        else:
            mismatched.append(
                {
                    "benchmark": job.benchmark,
                    "target": job.target.label,
                    "reference": ref_row,
                    "chaos": chaos_row,
                }
            )

    injected = {
        name.split("faults.injected.", 1)[1]: int(value)
        for name, value in delta.items()
        if name.startswith("faults.injected.")
    }
    report: Dict[str, object] = {
        "specs": plan_specs,
        "cells": len(grid),
        "benchmarks": list(benchmarks),
        "targets": [t.label for t in targets],
        "max_attempts": max_attempts,
        "aborted_runs": 0,  # both run_experiments calls returned
        "completed_cells": len(grid) - len(failures),
        "failed_cells": failures,
        "identical_cells": identical,
        "mismatched_cells": mismatched,
        "injected": injected,
        "retries": int(delta.get("harness.parallel.retries", 0)),
        "recoveries": int(delta.get("harness.parallel.recoveries", 0)),
        "failures": int(delta.get("harness.parallel.failures", 0)),
        "timeouts": int(delta.get("harness.parallel.timeouts", 0)),
        "pool_rebuilds": int(
            delta.get("harness.parallel.pool_rebuilds", 0)
        ),
        "reference_wall_s": round(reference_wall_s, 3),
        "chaos_wall_s": round(chaos_wall_s, 3),
        "ok": not failures and not mismatched,
    }
    if predicted is not None:
        report["predicted_worker_run"] = predicted
        actual = injected.get("worker.run", 0)
        report["accounted"] = actual == predicted["injections"]
        report["ok"] = bool(report["ok"]) and bool(report["accounted"])
    obs.log_event(
        "chaos_report",
        level="info" if report["ok"] else "error",
        **{
            k: report[k]
            for k in (
                "cells",
                "identical_cells",
                "retries",
                "recoveries",
                "injected",
                "ok",
            )
        },
    )
    return report


# --------------------------------------------------------------------- #
# Server drill: kill -9 a faulted server mid-grid, resume, verify.

#: Default server-side injection: drop connections before parse, fail
#: enqueues after admission, drop connections after accept.  Moderate
#: probabilities -- every site must fire sometimes, but the submit retry
#: loop must converge quickly.
DEFAULT_SERVER_SPECS = (
    "server.accept:0.2:1",
    "queue.enqueue:0.2:1",
    "server.respond:0.2:1",
)

_SERVE_URL_RE = re.compile(
    r"serving on (http://[^ ]+) \(.*resumed: (\d+)\)"
)


class _ServeProcess:
    """A ``repro serve`` subprocess plus its parsed bind URL."""

    def __init__(
        self,
        state_dir: str,
        specs: Sequence[str] = (),
        resume: bool = False,
        drain_s: float = 120.0,
    ) -> None:
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--state", state_dir,
            "--workers", "1",
            "--no-sim-cache",
            "--drain-timeout", str(drain_s),
        ]
        if resume:
            cmd.append("--resume")
        for spec in specs:
            cmd += ["--inject-fault", spec]
        env = dict(os.environ)
        # Exercise the batched-fsync completion journal: a completion
        # lost in the fsync window must recompute identically on resume.
        env.setdefault("REPRO_JOURNAL_FSYNC_MS", "50")
        self.proc = subprocess.Popen(
            cmd,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
            start_new_session=True,
        )
        assert self.proc.stdout is not None
        line = self.proc.stdout.readline()
        match = _SERVE_URL_RE.search(line)
        if not match:
            self.proc.kill()
            self.proc.wait()
            raise RuntimeError(
                f"repro serve did not announce its URL (got {line!r})"
            )
        self.url = match.group(1)
        self.resumed = int(match.group(2))

    def kill9(self) -> None:
        self.proc.kill()
        self.proc.wait()

    def terminate(self, timeout_s: float = 150.0) -> int:
        """SIGTERM and wait for the graceful-drain exit."""
        self.proc.terminate()
        try:
            return self.proc.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            return self.proc.wait()


def _submit_until_acked(
    client: Any,
    spec: Dict[str, Any],
    deadline: float,
) -> Tuple[Optional[str], int]:
    """Retry one submit through drops and sheds until a 202 lands.

    Returns ``(job_id, attempts)``; ``job_id`` is ``None`` only if the
    deadline expired first.  Resubmitting after an *ambiguous* drop
    (``server.respond`` fired after the accept was journaled) is safe by
    design: the content-addressed dedup attaches the retry to the
    already-accepted flight instead of re-running it.
    """
    attempts = 0
    while time.monotonic() < deadline:
        attempts += 1
        response = client.submit(spec)
        if response.status == 202:
            return str(response.body["job_id"]), attempts
        if response.status not in (0, 429, 503):
            raise RuntimeError(
                f"submit for {spec} got unexpected status "
                f"{response.status}: {response.body}"
            )
        time.sleep(0.05)
    return None, attempts


def _journal_duplicate_keys(state_dir: str) -> List[str]:
    """Cell keys journaled more than once -- exactly-once violations."""
    path = os.path.join(state_dir, "journal.jsonl")
    seen: Dict[str, int] = {}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = record["key"]
                except (ValueError, KeyError, TypeError):
                    continue
                seen[key] = seen.get(key, 0) + 1
    except OSError:
        return []
    return sorted(k for k, n in seen.items() if n > 1)


def run_server_chaos(
    benchmarks: Optional[Sequence[str]] = None,
    specs: Optional[Sequence[str]] = None,
    kill_after: int = 2,
    quick: bool = False,
    timeout_s: float = 420.0,
) -> Dict[str, object]:
    """The server resilience drill: prove the exactly-once contract.

    Phase 1 starts ``repro serve`` under connection-drop and enqueue
    faults, submits the grid through a retry loop until ``kill_after``
    jobs are acknowledged, then ``kill -9``\\ s the server.  Phase 2
    restarts it with ``--resume`` (fault-free) and verifies:

    - every phase-1 acknowledged job reaches DONE under its original ID
      (zero lost),
    - no cell key is journaled twice (zero duplicated completions),
    - every row is bit-identical to a fault-free in-process reference,
    - the restarted server drains cleanly on SIGTERM with exit 0.
    """
    from repro.server.client import ServerClient

    if benchmarks is None:
        count = QUICK_BENCHMARKS if quick else 3
        benchmarks = BENCHMARK_NAMES[:count]
    if specs is None:
        specs = DEFAULT_SERVER_SPECS
    submit_specs = [
        {"benchmark": benchmark, "target": Target.LATENCY.label}
        for benchmark in benchmarks
    ]
    kill_after = max(1, min(kill_after, len(submit_specs)))
    deadline = time.monotonic() + timeout_s

    # Fault-free reference rows, computed in this process.
    grid = [ExperimentJob(b, target=Target.LATENCY) for b in benchmarks]
    with simcache.disabled(), faults.pristine():
        reference = run_experiments(
            grid, policy=RetryPolicy(max_attempts=1), journal=None,
            degrade=False,
        )
    reference_rows = {
        spec["benchmark"]: _comparable(result_row(result))
        for spec, result in zip(submit_specs, reference)
    }

    state_dir = tempfile.mkdtemp(prefix="repro-server-chaos-")
    submit_attempts = 0

    # Phase 1: faulted server, ack kill_after jobs, kill -9.  Before the
    # kill, best-effort wait for the first job to complete, so the drill
    # covers both recovery paths: a journaled completion resolving
    # instantly post-resume, and an accepted-but-unfinished job
    # re-running.
    phase1 = _ServeProcess(state_dir, specs=specs)
    acked: Dict[str, Dict[str, Any]] = {}
    completed_before_kill = 0
    try:
        client = ServerClient(phase1.url, timeout_s=10.0)
        for spec in submit_specs[:kill_after]:
            job_id, attempts = _submit_until_acked(client, spec, deadline)
            submit_attempts += attempts
            if job_id is None:
                raise RuntimeError(
                    f"timed out acking {spec} under faults {specs}"
                )
            acked[job_id] = spec
        first = next(iter(acked))
        settle = min(deadline, time.monotonic() + 60.0)
        while time.monotonic() < settle:
            # Poll through the still-faulted server: drops and sheds
            # are retried, only a real terminal answer ends the wait.
            response = client.result(first)
            if response.status == 200:
                completed_before_kill = 1
                # Let the batched-fsync journal reach the disk before
                # the kill lands (REPRO_JOURNAL_FSYNC_MS=50).
                time.sleep(0.2)
                break
            if response.status not in (0, 202, 429, 503):
                break
            time.sleep(0.1)
    finally:
        phase1.kill9()

    # Phase 2: resume fault-free; every acked job must complete.
    phase2 = _ServeProcess(state_dir, resume=True)
    lost: List[str] = []
    mismatched: List[Dict[str, object]] = []
    failed: List[Dict[str, object]] = []
    identical = 0
    exit_code: Optional[int] = None
    try:
        client = ServerClient(phase2.url, timeout_s=10.0)
        for spec in submit_specs[kill_after:]:
            job_id, attempts = _submit_until_acked(client, spec, deadline)
            submit_attempts += attempts
            if job_id is None:
                raise RuntimeError(f"timed out acking {spec} post-resume")
            acked[job_id] = spec
        for job_id, spec in acked.items():
            remaining = max(1.0, deadline - time.monotonic())
            final = client.wait(job_id, timeout_s=remaining)
            if final.status == 404:
                lost.append(job_id)
                continue
            if final.status != 200:
                failed.append(
                    {"job_id": job_id, "status": final.status,
                     "body": final.body}
                )
                continue
            row = _comparable(dict(final.body["row"]))
            if row == reference_rows[spec["benchmark"]]:
                identical += 1
            else:
                mismatched.append(
                    {
                        "job_id": job_id,
                        "benchmark": spec["benchmark"],
                        "reference": reference_rows[spec["benchmark"]],
                        "server": row,
                    }
                )
    finally:
        exit_code = phase2.terminate()

    duplicates = _journal_duplicate_keys(state_dir)
    report: Dict[str, object] = {
        "specs": list(specs),
        "benchmarks": list(benchmarks),
        "cells": len(submit_specs),
        "kill_after": kill_after,
        "acked": len(acked),
        "completed_before_kill": completed_before_kill,
        "submit_attempts": submit_attempts,
        "resumed_jobs": phase2.resumed,
        "lost_jobs": lost,
        "failed_jobs": failed,
        "identical_rows": identical,
        "mismatched_rows": mismatched,
        "duplicate_completions": duplicates,
        "drain_exit_code": exit_code,
        "state_dir": state_dir,
        "ok": (
            not lost
            and not failed
            and not mismatched
            and not duplicates
            and identical == len(acked)
            and exit_code == 0
        ),
    }
    obs.log_event(
        "server_chaos_report",
        level="info" if report["ok"] else "error",
        **{
            k: report[k]
            for k in (
                "cells", "acked", "submit_attempts", "resumed_jobs",
                "identical_rows", "drain_exit_code", "ok",
            )
        },
    )
    return report
