"""Per-figure/table regenerators.

One function per experiment in the paper's evaluation:

- :func:`figure2`  -- latency and energy breakdowns, unoptimized (N) vs
  original-PTHSEL p-threads (O);
- :func:`figure3`  -- improvements, diagnostics, and breakdowns for the
  O/L/E/P targets across the suite;
- :func:`table3`   -- model validation: actual vs predicted latency,
  energy, and ED reductions;
- :func:`figure4`  -- realistic profiling: select on "ref", run "train";
- :func:`figure5_idle`, :func:`figure5_memory_latency`,
  :func:`figure5_l2_size` -- the three sensitivity studies.

Each returns plain data (lists of dict rows) so benchmarks, examples and
tests can render or assert on them; ``render_*`` helpers produce the
text tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import EnergyConfig, MachineConfig, SelectionConfig
from repro.cpu.stats import BREAKDOWN_CATEGORIES
from repro.harness.experiment import ExperimentResult
from repro.harness.parallel import (
    ExperimentJob,
    GridResult,
    JobFailure,
    run_experiments,
)
from repro.harness.report import (
    format_table,
    geometric_mean_pct,
    visible_columns,
)
from repro.pthsel.targets import Target
from repro.workloads.registry import BENCHMARK_NAMES

#: The three-benchmark subsets the paper's Figure 5 panels show.
FIG5_IDLE_BENCHMARKS = ("gap", "vortex", "vpr.route")
FIG5_MEMLAT_BENCHMARKS = ("gcc", "twolf", "vortex")
FIG5_L2_BENCHMARKS = ("mcf", "twolf", "vortex")
TABLE3_BENCHMARKS = ("gcc", "parser", "vortex", "vpr.place")


def _latency_stack(result: ExperimentResult, run: str) -> Dict[str, float]:
    """A latency breakdown normalized to the baseline run's 100%."""
    measurement = result.baseline if run == "baseline" else result.optimized
    baseline_cycles = result.baseline.cycles or 1
    return {
        c: 100.0 * getattr(measurement.stats.breakdown, c) / baseline_cycles
        for c in BREAKDOWN_CATEGORIES
    }


def _energy_stack(result: ExperimentResult, run: str) -> Dict[str, float]:
    """An energy breakdown normalized to the baseline run's 100%."""
    measurement = result.baseline if run == "baseline" else result.optimized
    return measurement.energy.breakdown.relative_to(result.baseline.joules)


def result_row(result: GridResult) -> Dict[str, object]:
    if isinstance(result, JobFailure):
        # Degraded grids interleave failure rows with result rows; the
        # renderers show them with gaps in the metric columns.
        return result.row()
    row: Dict[str, object] = {
        "benchmark": result.benchmark,
        "target": result.target.label,
        "n_pthreads": result.selection.n_pthreads,
    }
    row.update(result.summary_row())
    # Phase wall-clock timings ride along for machine-readable artifacts;
    # the text renderers filter the ``t_`` columns out.
    row.update(
        {f"t_{k}": round(v, 4) for k, v in result.phase_seconds.items()}
    )
    # Cache provenance (src_result/src_baseline/src_optimized): lets
    # consumers tell simulated rows from cache-served ones instead of
    # inferring it from zero phase walls.  getattr: results unpickled
    # from caches written before the field existed.
    row.update(
        {
            f"src_{layer}": src
            for layer, src in (
                getattr(result, "provenance", None) or {}
            ).items()
        }
    )
    # Distributed-trace lineage: joins this row to its client/server/
    # worker spans (loadtest and analytics queries key on it).
    trace_id = getattr(result, "trace_id", None)
    if trace_id:
        row["trace_id"] = trace_id
    return row


@dataclass
class FigureData:
    """Rows plus per-run breakdown stacks for one figure."""

    rows: List[Dict[str, object]] = field(default_factory=list)
    latency_stacks: List[Dict[str, object]] = field(default_factory=list)
    energy_stacks: List[Dict[str, object]] = field(default_factory=list)

    @property
    def failed_rows(self) -> List[Dict[str, object]]:
        """Failure rows from a degraded grid (empty when all cells ran)."""
        return [row for row in self.rows if row.get("failed")]

    def gmeans(self, metric: str = "speedup_pct") -> Dict[str, float]:
        """Geometric-mean improvement per target across benchmarks.

        Failure rows carry no metrics and are skipped: a degraded grid
        still summarizes, over the cells that completed.
        """
        by_target: Dict[str, List[float]] = {}
        for row in self.rows:
            if row.get("failed") or metric not in row:
                continue
            by_target.setdefault(str(row["target"]), []).append(
                float(row[metric])
            )
        return {t: geometric_mean_pct(v) for t, v in by_target.items()}

    def render(self) -> str:
        if not self.rows:
            return format_table(self.rows)
        return format_table(self.rows, columns=visible_columns(self.rows))


def _collect(
    benchmarks: Sequence[str],
    targets: Sequence[Target],
    profile_input: str = "train",
    machine: Optional[MachineConfig] = None,
    energy: Optional[EnergyConfig] = None,
    selection: Optional[SelectionConfig] = None,
    with_stacks: bool = True,
    jobs: Optional[int] = None,
) -> FigureData:
    grid = [
        ExperimentJob(
            benchmark,
            target=target,
            profile_input=profile_input,
            machine=machine,
            energy=energy,
            selection=selection,
        )
        for benchmark in benchmarks
        for target in targets
    ]
    results = run_experiments(grid, n_jobs=jobs)
    data = FigureData()
    by_benchmark: Dict[str, List[ExperimentResult]] = {}
    for job, result in zip(grid, results):
        data.rows.append(result_row(result))
        if isinstance(result, JobFailure):
            continue  # no stacks for a cell that never produced stats
        by_benchmark.setdefault(job.benchmark, []).append(result)
    if with_stacks:
        for benchmark in benchmarks:
            first = True
            for result in by_benchmark.get(benchmark, ()):
                if first:
                    data.latency_stacks.append(
                        {"benchmark": benchmark, "run": "N",
                         **_latency_stack(result, "baseline")}
                    )
                    data.energy_stacks.append(
                        {"benchmark": benchmark, "run": "N",
                         **_energy_stack(result, "baseline")}
                    )
                    first = False
                data.latency_stacks.append(
                    {"benchmark": benchmark, "run": result.target.label,
                     **_latency_stack(result, "optimized")}
                )
                data.energy_stacks.append(
                    {"benchmark": benchmark, "run": result.target.label,
                     **_energy_stack(result, "optimized")}
                )
    return data


# --------------------------------------------------------------------- #
# Figure 2: energy-blind pre-execution (N vs O).
# --------------------------------------------------------------------- #


def figure2(
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    machine: Optional[MachineConfig] = None,
    energy: Optional[EnergyConfig] = None,
    jobs: Optional[int] = None,
) -> FigureData:
    """Latency and energy breakdowns for unoptimized execution and
    original-PTHSEL (energy-blind, flat-cost) pre-execution."""
    return _collect(benchmarks, (Target.ORIGINAL,), machine=machine,
                    energy=energy, jobs=jobs)


# --------------------------------------------------------------------- #
# Figure 3: retargeting with PTHSEL+E.
# --------------------------------------------------------------------- #


def figure3(
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    targets: Sequence[Target] = (
        Target.ORIGINAL,
        Target.LATENCY,
        Target.ENERGY,
        Target.ED,
    ),
    machine: Optional[MachineConfig] = None,
    energy: Optional[EnergyConfig] = None,
    jobs: Optional[int] = None,
) -> FigureData:
    """The paper's central study: O/L/E/P p-threads across the suite."""
    return _collect(benchmarks, targets, machine=machine, energy=energy,
                    jobs=jobs)


# --------------------------------------------------------------------- #
# Figure 4: robustness to profiling data.
# --------------------------------------------------------------------- #


def figure4(
    benchmarks: Sequence[str] = BENCHMARK_NAMES,
    targets: Sequence[Target] = (Target.LATENCY, Target.ENERGY, Target.ED),
    jobs: Optional[int] = None,
) -> FigureData:
    """Realistic profiling: p-threads selected from "ref" profiles drive
    "train" runs."""
    return _collect(benchmarks, targets, profile_input="ref",
                    with_stacks=False, jobs=jobs)


# --------------------------------------------------------------------- #
# Table 3: model validation.
# --------------------------------------------------------------------- #


def table3(
    benchmarks: Sequence[str] = TABLE3_BENCHMARKS,
    target: Target = Target.LATENCY,
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Actual / predicted ratios for latency, energy, and ED reductions.

    Ratios near 1 mean the PTHSEL+E models predict the simulated effect
    well; below 1 means over-estimation (the paper reports 0.64-0.93 for
    latency with the criticality model).
    """
    grid = [
        ExperimentJob(benchmark, target=target) for benchmark in benchmarks
    ]
    results = run_experiments(grid, n_jobs=jobs)
    rows: List[Dict[str, object]] = []
    for benchmark, result in zip(benchmarks, results):
        if isinstance(result, JobFailure):
            rows.append(result.row())
            continue
        predicted = result.selection.predicted
        base = result.baseline
        opt = result.optimized

        actual_latency = float(base.cycles - opt.cycles)
        actual_energy = base.joules - opt.joules
        actual_ed = base.joules * base.cycles - opt.joules * opt.cycles

        ladv = predicted.get("ladv_agg", 0.0)
        eadv = predicted.get("eadv_agg", 0.0)
        # The predicted ED reduction follows from the additive LADV/EADV
        # totals (equation C3): predicted ED' = (L0-LADV)*(E0-EADV).
        l0, e0 = float(base.cycles), base.joules
        predicted_ed_reduction = l0 * e0 - max(l0 - ladv, 0.0) * max(
            e0 - eadv, 0.0
        )

        rows.append(
            {
                "benchmark": benchmark,
                "latency_ratio": (
                    actual_latency / ladv if ladv else float("nan")
                ),
                "energy_ratio": (
                    actual_energy / eadv if eadv else float("nan")
                ),
                "ed_ratio": (
                    actual_ed / predicted_ed_reduction
                    if predicted_ed_reduction
                    else float("nan")
                ),
            }
        )
    return rows


# --------------------------------------------------------------------- #
# Figure 5: sensitivity studies.
# --------------------------------------------------------------------- #


def _sweep(
    grid: List[ExperimentJob], jobs: Optional[int]
) -> List[Dict[str, object]]:
    """Run a tagged job grid and return rows with the tag columns."""
    rows: List[Dict[str, object]] = []
    for job, result in zip(grid, run_experiments(grid, n_jobs=jobs)):
        row = result_row(result)
        row.update(job.tag)  # failure rows already carry it; idempotent
        rows.append(row)
    return rows


def figure5_idle(
    benchmarks: Sequence[str] = FIG5_IDLE_BENCHMARKS,
    factors: Sequence[float] = (0.0, 0.05, 0.10),
    targets: Sequence[Target] = (Target.LATENCY, Target.ENERGY, Target.ED),
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Idle energy factor sweep (Figure 5 top)."""
    grid = [
        ExperimentJob(
            benchmark,
            target=target,
            energy=EnergyConfig().with_idle_factor(factor),
            tag={"idle_factor": factor},
        )
        for factor in factors
        for benchmark in benchmarks
        for target in targets
    ]
    return _sweep(grid, jobs)


def figure5_memory_latency(
    benchmarks: Sequence[str] = FIG5_MEMLAT_BENCHMARKS,
    latencies: Sequence[int] = (100, 200, 300),
    targets: Sequence[Target] = (Target.LATENCY, Target.ENERGY, Target.ED),
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Memory latency sweep (Figure 5 middle)."""
    grid = [
        ExperimentJob(
            benchmark,
            target=target,
            machine=MachineConfig().with_memory_latency(latency),
            tag={"memory_latency": latency},
        )
        for latency in latencies
        for benchmark in benchmarks
        for target in targets
    ]
    return _sweep(grid, jobs)


def figure5_l2_size(
    benchmarks: Sequence[str] = FIG5_L2_BENCHMARKS,
    sizes: Sequence[Tuple[int, int]] = (
        (128 * 1024, 10),
        (256 * 1024, 12),
        (512 * 1024, 15),
    ),
    targets: Sequence[Target] = (Target.LATENCY, Target.ENERGY, Target.ED),
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    """L2 size/latency sweep (Figure 5 bottom)."""
    grid = [
        ExperimentJob(
            benchmark,
            target=target,
            machine=MachineConfig().scaled_l2(size_bytes, hit_latency),
            tag={"l2_kb": size_bytes // 1024, "l2_latency": hit_latency},
        )
        for size_bytes, hit_latency in sizes
        for benchmark in benchmarks
        for target in targets
    ]
    return _sweep(grid, jobs)
