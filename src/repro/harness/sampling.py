"""Periodic-sampling simulation.

The paper simulates SPEC programs to completion using 2% periodic
sampling with cache/branch-predictor warm-up and 10M-instruction samples.
Our synthetic workloads are small enough to simulate in full (strictly
more accurate), but the sampling engine is provided -- and tested -- so
the harness scales to long workloads with the same methodology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import MachineConfig, SimulationConfig
from repro.cpu.pipeline import Pipeline
from repro.cpu.pthreads import PThreadProgram, SpawnSpec
from repro.cpu.stats import SimStats
from repro.errors import ConfigError
from repro.frontend.trace import Trace


@dataclass
class SampledEstimate:
    """Whole-run estimates extrapolated from measured samples."""

    estimated_cycles: float
    estimated_ipc: float
    measured_instructions: int
    total_instructions: int
    n_samples: int
    sample_stats: List[SimStats]

    @property
    def coverage(self) -> float:
        return self.measured_instructions / self.total_instructions


def _slice_pthreads(
    pthreads: Optional[PThreadProgram], start: int, end: int
) -> Optional[PThreadProgram]:
    if pthreads is None or pthreads.empty():
        return None
    spawns: List[SpawnSpec] = []
    for trigger_seq, group in pthreads.spawns_by_trigger.items():
        if start <= trigger_seq < end:
            for spawn in group:
                spawns.append(
                    SpawnSpec(
                        trigger_seq=spawn.trigger_seq - start,
                        static_id=spawn.static_id,
                        insts=spawn.insts,
                        on_correct_path=spawn.on_correct_path,
                    )
                )
    return PThreadProgram.from_spawns(spawns)


def sampled_simulate(
    trace: Trace,
    machine: Optional[MachineConfig] = None,
    pthreads: Optional[PThreadProgram] = None,
    sim: Optional[SimulationConfig] = None,
) -> SampledEstimate:
    """Estimate whole-run cycles by timing evenly spaced sample windows.

    Each sample is simulated with warm structures (the Pipeline's
    functional warm-up models the paper's warm-up intervals); cycles are
    extrapolated by the sampled instruction fraction.
    """
    machine = machine or MachineConfig()
    sim = sim or SimulationConfig()
    n = len(trace)
    if n == 0:
        raise ConfigError("cannot sample an empty trace")

    fraction = sim.sample_fraction
    sample_len = min(sim.sample_instructions, n)
    if fraction >= 1.0 or sample_len >= n:
        pipeline = Pipeline(trace, machine, pthreads)
        stats = pipeline.run()
        return SampledEstimate(
            estimated_cycles=float(stats.cycles),
            estimated_ipc=stats.ipc,
            measured_instructions=n,
            total_instructions=n,
            n_samples=1,
            sample_stats=[stats],
        )

    n_samples = max(1, int(round(n * fraction / sample_len)))
    stride = n // n_samples
    sample_stats: List[SimStats] = []
    measured = 0
    for k in range(n_samples):
        start = k * stride
        end = min(start + sample_len, n)
        window = Trace(trace.program, trace.insts[start:end])
        # Re-number producer links that point before the window: they are
        # simply "ready at start", which Pipeline treats any out-of-range
        # negative producer as.  Rather than rewriting the instructions,
        # shift sequence numbers via a lightweight copy.
        shifted = Trace(
            trace.program,
            [
                type(d)(
                    seq=d.seq - start,
                    pc=d.pc,
                    op=d.op,
                    src1_seq=d.src1_seq - start if d.src1_seq >= start else -1,
                    src2_seq=d.src2_seq - start if d.src2_seq >= start else -1,
                    addr=d.addr,
                    taken=d.taken,
                    next_pc=d.next_pc,
                )
                for d in window.insts
            ],
        )
        pipeline = Pipeline(
            shifted,
            machine,
            _slice_pthreads(pthreads, start, end),
            warm=False,
        )
        # Warm caches/TLBs with the *preceding* interval (the paper's
        # warm-up regions), not with the sample itself -- a short window's
        # own footprint fits the caches and would hide capacity misses.
        warm_len = max(sample_len, int(stride * sim.warmup_fraction))
        for dyn in trace.insts[max(0, start - warm_len):start]:
            if dyn.addr >= 0:
                pipeline.hierarchy.warm_data(dyn.addr)
        stats = pipeline.run()
        sample_stats.append(stats)
        measured += len(shifted)

    total_cycles = sum(s.cycles for s in sample_stats)
    ipc = measured / total_cycles if total_cycles else 0.0
    return SampledEstimate(
        estimated_cycles=n / ipc if ipc else float("inf"),
        estimated_ipc=ipc,
        measured_instructions=measured,
        total_instructions=n,
        n_samples=len(sample_stats),
        sample_stats=sample_stats,
    )
