"""Fault-tolerant parallel experiment engine.

Every paper figure is a grid of *independent* experiments -- benchmark x
target x sweep point -- so the harness fans them out over a
:class:`concurrent.futures.ProcessPoolExecutor`:

- ``jobs=1`` (or a single-job grid) preserves the in-process sequential
  path exactly: no pool, no pickling, byte-identical behavior to the
  pre-parallel harness.
- ``jobs=N`` dispatches whole experiments to worker processes.  The
  simulators are deterministic, so results are bit-identical to the
  sequential path regardless of worker count, completion order, or how
  many retries a cell needed (results are returned in submission order).
- Identical baseline simulations are **deduplicated before dispatch**:
  a sweep that reuses one baseline across many targets warms it exactly
  once (through :mod:`repro.harness.simcache`) instead of simulating it
  concurrently in several workers.
- Worker telemetry is not dropped: each job returns the
  :mod:`repro.obs` counter delta it produced -- *also on failure* -- and
  the parent merges it into its own registry, so run manifests account
  for all work done, including every injected fault.

Long sweeps must survive partial failure, so the engine layers four
recovery mechanisms on top of the fan-out:

- **Bounded retries with exponential backoff + deterministic jitter**
  (:class:`RetryPolicy`): transient job failures re-run up to
  ``max_attempts`` times; deterministic errors (:data:`NON_RETRYABLE`)
  fail fast.
- **Per-job wall-clock timeouts**: a hung worker cannot be cancelled,
  so the engine terminates the pool, rebuilds it, and re-submits every
  outstanding job (the timed-out cell with its attempt count bumped).
- **BrokenProcessPool recovery**: a crashed worker (or a failed worker
  initializer) breaks the whole pool; the engine rebuilds it -- at most
  ``max_pool_rebuilds`` times -- and re-submits outstanding jobs.
- **Graceful degradation**: with ``degrade=True``, a cell that exhausts
  its attempts yields a structured :class:`JobFailure` row (error
  class, attempts, elapsed) instead of aborting the grid.

A :class:`~repro.harness.journal.Journal` checkpoints each completed
cell as it finishes; an interrupted run resumed with the same journal
skips every finished cell.  ``KeyboardInterrupt``/``SIGTERM`` terminate
and join all workers (no orphans) before propagating, with the journal
already flushed per record.

The worker count resolves as: explicit argument > ``REPRO_JOBS``
environment variable > ``os.cpu_count()``.
"""

from __future__ import annotations

import contextlib
import hashlib
import heapq
import os
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import faults, obs
from repro.obs import utrace
from repro.config import (
    EnergyConfig,
    MachineConfig,
    SelectionConfig,
    SimulationConfig,
)
from repro.errors import (
    ReproError,
    SimulationTimeoutError,
    WorkerCrashError,
    is_retryable,
)
from repro.cpu import engine as sim_engine
from repro.frontend import columns
from repro.harness import simcache
from repro.harness.experiment import (
    ExperimentResult,
    run_experiment,
    warm_baseline,
)
from repro.harness.journal import Journal
from repro.pthsel.targets import Target

_JOBS_DISPATCHED = obs.counters.counter("harness.parallel.jobs_dispatched")
_BASELINES_DEDUPED = obs.counters.counter(
    "harness.parallel.baselines_deduped"
)
_POOLS_STARTED = obs.counters.counter("harness.parallel.pools_started")
_RETRIES = obs.counters.counter("harness.parallel.retries")
_RECOVERIES = obs.counters.counter("harness.parallel.recoveries")
_FAILURES = obs.counters.counter("harness.parallel.failures")
_TIMEOUTS = obs.counters.counter("harness.parallel.timeouts")
_POOL_REBUILDS = obs.counters.counter("harness.parallel.pool_rebuilds")
_INTERRUPTS = obs.counters.counter("harness.parallel.interrupts")
_CELLS_RESUMED = obs.counters.counter("harness.parallel.cells_resumed")

#: How long an injected ``worker.hang`` fault sleeps; far beyond any
#: sane per-job timeout, so the timeout path always fires first.
HANG_SECONDS = 600.0


@dataclass(frozen=True)
class RetryPolicy:
    """How the engine retries, backs off, and times out grid jobs."""

    #: Total tries per cell (1 = no retries).
    max_attempts: int = 3
    #: First backoff delay; doubles per attempt up to ``max_delay_s``.
    base_delay_s: float = 0.1
    max_delay_s: float = 2.0
    #: +/- fraction of the backoff applied as deterministic jitter.
    jitter: float = 0.25
    #: Per-job wall clock; ``None`` disables (and the in-process
    #: sequential path cannot enforce one either way).
    timeout_s: Optional[float] = None
    #: Pool rebuilds (worker crashes, hangs, failed initializers)
    #: tolerated before the whole grid is declared unrunnable.
    max_pool_rebuilds: int = 5

    def delay_for(self, attempt: int, key: str) -> float:
        """Backoff before retry number ``attempt`` (1-based), jittered
        deterministically from the ``cell:attempt`` key -- the same
        material :func:`repro.faults.scoped` mixes into fault draws --
        so a ``--resume`` (or any rerun of the same cell) replays an
        identical backoff schedule while a burst of failed cells still
        doesn't retry in lockstep."""
        base = min(
            self.base_delay_s * (2.0 ** max(0, attempt - 1)),
            self.max_delay_s,
        )
        sample = faults.unit(f"backoff|{key}:{attempt}")
        return max(0.0, base * (1.0 + self.jitter * (2.0 * sample - 1.0)))


@dataclass
class JobFailure:
    """A grid cell that exhausted its attempts, as a structured row.

    Under graceful degradation these take the failed cell's place in
    the results list, so a partial grid still renders -- with gaps --
    and the manifest records exactly what failed and why.
    """

    benchmark: str
    target: Target
    error: str
    message: str
    attempts: int
    elapsed_s: float
    cell_key: str = ""
    context: Dict[str, object] = field(default_factory=dict)
    tag: Dict[str, object] = field(default_factory=dict)

    #: Discriminates failure rows in ``results.jsonl``.
    failed: bool = True

    def row(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "benchmark": self.benchmark,
            "target": self.target.label,
            "failed": True,
            "error": self.error,
            "message": self.message,
            "attempts": self.attempts,
            "elapsed_s": round(self.elapsed_s, 3),
        }
        row.update(self.tag)
        return row


@dataclass
class ExperimentJob:
    """One unit of work for the engine: the arguments of
    :func:`repro.harness.experiment.run_experiment`, plus an arbitrary
    ``tag`` of extra row columns (e.g. the sweep point that produced it).
    """

    benchmark: str
    target: Target = Target.LATENCY
    profile_input: str = "train"
    run_input: str = "train"
    machine: Optional[MachineConfig] = None
    energy: Optional[EnergyConfig] = None
    selection: Optional[SelectionConfig] = None
    sim: Optional[SimulationConfig] = None
    include_branch_pthreads: bool = False
    tag: Dict[str, object] = field(default_factory=dict)

    def run(self) -> ExperimentResult:
        return run_experiment(
            self.benchmark,
            target=self.target,
            profile_input=self.profile_input,
            run_input=self.run_input,
            machine=self.machine,
            energy=self.energy,
            selection=self.selection,
            sim=self.sim,
            include_branch_pthreads=self.include_branch_pthreads,
        )

    def baseline_keys(
        self,
    ) -> List[Tuple[str, str, MachineConfig, SimulationConfig]]:
        """The baseline simulations this job will need (run + profile)."""
        machine = self.machine or MachineConfig()
        sim = self.sim or SimulationConfig()
        keys = [(self.benchmark, self.run_input, machine, sim)]
        if self.profile_input != self.run_input:
            keys.append((self.benchmark, self.profile_input, machine, sim))
        return keys

    def cell_key(self) -> str:
        """Content hash of the cell's full configuration.

        Used as the journal key and the fault/jitter draw key, so two
        jobs are the same cell iff every input that could change the
        result is the same.
        """
        from repro.obs.manifest import stable_json

        material = {
            "benchmark": self.benchmark,
            "target": self.target.label,
            "profile_input": self.profile_input,
            "run_input": self.run_input,
            "machine": (self.machine or MachineConfig()).fingerprint,
            "energy": (self.energy or EnergyConfig()).fingerprint,
            "selection": (self.selection or SelectionConfig()).fingerprint,
            "sim": (self.sim or SimulationConfig()).fingerprint,
            "branch_pthreads": self.include_branch_pthreads,
            "tag": self.tag,
        }
        return hashlib.sha256(
            stable_json(material).encode()
        ).hexdigest()[:20]


GridResult = Union[ExperimentResult, JobFailure]


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: argument > ``REPRO_JOBS`` > ``os.cpu_count()``."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be an integer, got {env!r}"
                ) from None
    if jobs is None:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


# --------------------------------------------------------------------- #
# Ambient engine options.  The CLI configures retry/journal/degradation
# once per invocation; figure helpers deep in the call tree then pick
# them up without threading kwargs through every signature.
# --------------------------------------------------------------------- #

_OPTIONS: Dict[str, object] = {
    "policy": None,
    "journal": None,
    "degrade": None,
}


@contextlib.contextmanager
def engine_options(
    policy: Optional[RetryPolicy] = None,
    journal: Optional[Journal] = None,
    degrade: Optional[bool] = None,
) -> Iterator[None]:
    """Scope default engine options for nested :func:`run_experiments`."""
    previous = dict(_OPTIONS)
    if policy is not None:
        _OPTIONS["policy"] = policy
    if journal is not None:
        _OPTIONS["journal"] = journal
    if degrade is not None:
        _OPTIONS["degrade"] = degrade
    try:
        yield
    finally:
        _OPTIONS.update(previous)


def _resolve_options(
    policy: Optional[RetryPolicy],
    journal: Optional[Journal],
    degrade: Optional[bool],
) -> Tuple[RetryPolicy, Optional[Journal], bool]:
    if policy is None:
        policy = _OPTIONS["policy"] or RetryPolicy()
    if journal is None:
        journal = _OPTIONS["journal"]
    if degrade is None:
        degrade = bool(_OPTIONS["degrade"])
    return policy, journal, degrade


# --------------------------------------------------------------------- #
# Worker side.  Module-level functions so they pickle under any start
# method; the initializer re-applies the parent's cache, log, and fault
# configuration (fork inherits it, spawn does not).
# --------------------------------------------------------------------- #


@dataclass
class _WorkerFailure:
    """A worker-side exception, shipped back as a value so the counter
    delta (including injected-fault counts) survives the failure."""

    error: str
    message: str
    context: Dict[str, object]
    retryable: bool


def _worker_init(
    cache_dir: Optional[str],
    cache_enabled: bool,
    log_level: str,
    fault_specs: Sequence[str],
    fail_start: bool,
    column_backend: Optional[str] = None,
    utrace_payload: Optional[Dict[str, object]] = None,
    cycle_backend: Optional[str] = None,
    quiet: bool = False,
) -> None:
    simcache.configure(cache_dir=cache_dir, enabled=cache_enabled)
    if log_level != "off":
        obs.configure(level=log_level)
    # --quiet must silence heartbeats in the workers too, and exported
    # spans should name the process that produced them.
    obs.set_quiet(quiet)
    obs.tracectx.set_process_label(f"pool-worker-{os.getpid()}")
    # Fork inherits the parent's trace-column backend (and memoized
    # traces); a spawn-started worker must re-apply any programmatic
    # override (--numpy) the environment variables don't carry.
    columns.set_backend(column_backend)
    # Same for the cycle-engine backend: a --sim-backend override lives
    # in process state, not the environment.
    if cycle_backend is not None:
        sim_engine.set_sim_backend(cycle_backend)
    # Microarchitectural tracing configuration must survive spawn too;
    # worker-side trace files land in the same --out directory and the
    # artifact records ride back on the ExperimentResult.
    utrace.apply_encoded(utrace_payload)
    faults.configure(fault_specs)
    if fail_start:
        # The parent drew the worker.start fault for this pool epoch
        # (and counted it); every worker in the epoch dies at birth,
        # breaking the pool -- the BrokenProcessPool recovery path.
        raise RuntimeError("injected fault at worker.start")


def _execute_job(
    job: ExperimentJob, cell_key: str, attempt: int
) -> ExperimentResult:
    """Run one job, honoring the worker.run / worker.hang fault sites.

    Draw keys include the attempt number, so a retried cell samples
    independently and recovery converges.  The whole job runs under a
    ``faults.scoped`` context for the same reason: sites deep inside the
    job (``pipeline.step``, ``simcache.*``) key their draws on replayed
    deterministic state, and only the mixed-in scope makes a retry a
    fresh sample instead of a permafail.
    """
    with faults.scoped(f"{cell_key}:{attempt}"):
        faults.raise_if("worker.run", key="run")
        if faults.site_active("worker.hang") and faults.should_fault(
            "worker.hang", key="hang"
        ):
            time.sleep(HANG_SECONDS)
        if utrace.enabled():
            # Distinct sweep cells can share a benchmark+target label;
            # the cell key disambiguates their trace file names.
            with utrace.scope(cell=cell_key[:12]):
                return job.run()
        return job.run()


def _describe_failure(exc: BaseException) -> _WorkerFailure:
    return _WorkerFailure(
        error=type(exc).__name__,
        message=str(exc),
        context=dict(getattr(exc, "context", {}) or {}),
        retryable=is_retryable(exc),
    )


def _worker_experiment(
    job: ExperimentJob,
    cell_key: str,
    attempt: int,
    trace: Optional[Dict[str, object]] = None,
) -> Tuple[
    Optional[ExperimentResult],
    Optional[_WorkerFailure],
    Dict[str, float],
    List[Dict[str, object]],
]:
    """Run one job in a pool worker; returns ``(result, failure,
    counter_delta, span_records)``.  ``trace`` is the submitting
    context's encoded :class:`~repro.obs.tracectx.TraceContext`; spans
    recorded under it ship home with the result exactly like counter
    deltas (the worker runs one job at a time, so draining here cannot
    steal another job's spans)."""
    before = obs.counters.snapshot()
    ctx = obs.tracectx.decode(trace)
    activation = (
        obs.tracectx.activate(ctx)
        if ctx is not None
        else contextlib.nullcontext()
    )
    result: Optional[ExperimentResult] = None
    failure: Optional[_WorkerFailure] = None
    with activation:
        try:
            result = _execute_job(job, cell_key, attempt)
        except Exception as exc:
            failure = _describe_failure(exc)
    spans = (
        [s.to_dict() for s in obs.tracectx.drain()]
        if ctx is not None
        else []
    )
    return result, failure, obs.counters.delta_since(before), spans


def _worker_warm(
    key: Tuple[str, str, MachineConfig, SimulationConfig],
) -> Dict[str, float]:
    benchmark, input_name, machine, sim = key
    before = obs.counters.snapshot()
    warm_baseline(benchmark, input_name, machine=machine, sim=sim)
    return obs.counters.delta_since(before)


# --------------------------------------------------------------------- #
# Parent side.
# --------------------------------------------------------------------- #


def _dedupe_baselines(
    jobs: Sequence[ExperimentJob],
) -> List[Tuple[str, str, MachineConfig, SimulationConfig]]:
    """Unique baseline sims the grid needs, in first-appearance order;
    only keys needed by more than one job are worth pre-warming."""
    counts: Dict[Tuple, int] = {}
    order: List[Tuple[str, str, MachineConfig, SimulationConfig]] = []
    for job in jobs:
        for key in job.baseline_keys():
            if key not in counts:
                order.append(key)
            counts[key] = counts.get(key, 0) + 1
    shared = [key for key in order if counts[key] > 1]
    if shared:
        _BASELINES_DEDUPED.add(
            sum(counts[key] - 1 for key in shared)
        )
    return shared


@dataclass
class _Flight:
    """One in-flight pool submission."""

    index: int
    job: ExperimentJob
    key: str
    attempt: int
    started: float
    deadline: Optional[float]


def _journal_record(
    journal: Optional[Journal],
    key: str,
    job: ExperimentJob,
    result: ExperimentResult,
    attempts: int,
    elapsed_s: float,
) -> None:
    if journal is not None:
        meta: Dict[str, object] = {
            "benchmark": job.benchmark,
            "target": job.target.label,
            "attempts": attempts,
            "elapsed_s": round(elapsed_s, 3),
        }
        arts = getattr(result, "trace_artifacts", None)
        if arts:
            # Resume treats a traced cell as complete only while its
            # trace files exist (Journal.result_for checks these paths).
            meta["trace_artifacts"] = [a["path"] for a in arts]
        trace_id = getattr(result, "trace_id", None)
        if trace_id:
            meta["trace_id"] = trace_id
        journal.record(key, result, **meta)


def _adopt_trace_artifacts(result: object) -> None:
    """Register trace artifacts produced outside this process's utrace
    registry (worker-side runs, journal-resumed cells) so the CLI's
    manifest drain sees every file of the grid."""
    arts = getattr(result, "trace_artifacts", None)
    if arts:
        utrace.register_artifacts(list(arts))


def _make_failure(
    job: ExperimentJob,
    key: str,
    failure: _WorkerFailure,
    attempts: int,
    elapsed_s: float,
) -> JobFailure:
    _FAILURES.add()
    obs.log_event(
        "job_failed",
        level="error",
        benchmark=job.benchmark,
        target=job.target.label,
        error=failure.error,
        message=failure.message,
        attempts=attempts,
        elapsed_s=round(elapsed_s, 3),
    )
    return JobFailure(
        benchmark=job.benchmark,
        target=job.target,
        error=failure.error,
        message=failure.message,
        attempts=attempts,
        elapsed_s=elapsed_s,
        cell_key=key,
        context=failure.context,
        tag=dict(job.tag),
    )


def _failure_exception(jf: JobFailure) -> ReproError:
    """The exception to raise for ``jf`` when degradation is off."""
    if jf.error == "SimulationTimeoutError":
        return SimulationTimeoutError(
            jf.message,
            benchmark=jf.benchmark,
            target=jf.target.label,
            attempt=jf.attempts,
            **jf.context,
        )
    if jf.error in ("WorkerCrashError", "BrokenProcessPool"):
        return WorkerCrashError(
            jf.message,
            benchmark=jf.benchmark,
            target=jf.target.label,
            attempt=jf.attempts,
            **jf.context,
        )
    return ReproError(
        f"{jf.benchmark}/{jf.target.label} failed after "
        f"{jf.attempts} attempt(s): {jf.error}: {jf.message}"
    )


def _log_retry(
    job: ExperimentJob, attempt: int, error: str, delay: float
) -> None:
    _RETRIES.add()
    obs.log_event(
        "job_retry",
        level="warning",
        benchmark=job.benchmark,
        target=job.target.label,
        attempt=attempt,
        error=error,
        backoff_s=round(delay, 3),
    )


def _log_recovery(job: ExperimentJob, attempts: int) -> None:
    _RECOVERIES.add()
    obs.log_event(
        "job_recovered",
        level="info",
        benchmark=job.benchmark,
        target=job.target.label,
        attempts=attempts,
    )


# --------------------------------------------------------------------- #
# Pool lifecycle.
# --------------------------------------------------------------------- #


def _new_pool(workers: int, epoch: int) -> ProcessPoolExecutor:
    cache = simcache.get_cache()
    fail_start = faults.should_fault("worker.start", key=f"epoch:{epoch}")
    pool = ProcessPoolExecutor(
        max_workers=workers,
        initializer=_worker_init,
        initargs=(
            cache.root if cache is not None else None,
            cache is not None,
            obs.current_level(),
            faults.encode_plan(),
            fail_start,
            columns.backend(),
            utrace.encode(),
            sim_engine.backend(),
            obs.is_quiet(),
        ),
    )
    _POOLS_STARTED.add()
    return pool


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Terminate and join every worker: used on rebuilds and interrupts
    so no orphan processes outlive the grid."""
    # Snapshot first: shutdown() drops the executor's reference to its
    # process table, and a hung worker never exits on its own.
    procs = list((getattr(pool, "_processes", None) or {}).values())
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    for proc in procs:
        try:
            proc.terminate()
        except Exception:
            pass
    for proc in procs:
        try:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5)
        except Exception:
            pass


# --------------------------------------------------------------------- #
# The engine.
# --------------------------------------------------------------------- #


def run_experiments(
    jobs: Sequence[ExperimentJob],
    n_jobs: Optional[int] = None,
    policy: Optional[RetryPolicy] = None,
    journal: Optional[Journal] = None,
    degrade: Optional[bool] = None,
) -> List[GridResult]:
    """Run a grid of experiments, in parallel when ``n_jobs > 1``.

    Results come back in submission order and are bit-identical to the
    sequential path (the grid cells are independent deterministic
    simulations; retries re-run the same pure function).  Worker counter
    deltas are merged into this process's :data:`repro.obs.counters`
    registry.

    ``policy``/``journal``/``degrade`` default to the ambient
    :func:`engine_options`.  With ``degrade=True``, cells that exhaust
    their retries come back as :class:`JobFailure` entries instead of
    raising.  With a ``journal``, completed cells are checkpointed as
    they finish and previously journaled cells are skipped.
    """
    jobs = list(jobs)
    policy, journal, degrade = _resolve_options(policy, journal, degrade)
    results: List[Optional[GridResult]] = [None] * len(jobs)

    # Resume: serve journaled cells without re-running them.
    to_run: List[Tuple[int, ExperimentJob, str]] = []
    for index, job in enumerate(jobs):
        key = job.cell_key()
        if journal is not None:
            # Only successful cells are journaled, so any payload that
            # unpickles is a completed result.
            cached = journal.result_for(key)
            if cached is not None:
                results[index] = cached
                if utrace.enabled():
                    _adopt_trace_artifacts(cached)
                _CELLS_RESUMED.add()
                obs.log_event(
                    "cell_resumed",
                    benchmark=job.benchmark,
                    target=job.target.label,
                )
                continue
        to_run.append((index, job, key))

    if to_run:
        _JOBS_DISPATCHED.add(len(to_run))
        n = min(resolve_jobs(n_jobs), max(1, len(to_run)))
        if n <= 1 or len(to_run) <= 1:
            # Sequential path: advance shared-trace cells' baselines in
            # lock-step batches first (no-op under the reference engine
            # or tracing); each cell then hits the baseline LRU.  The
            # pool path instead fans baselines out across workers below.
            from repro.harness import batchplan

            batchplan.maybe_prewarm([job for _, job, _ in to_run])
            _run_sequential(to_run, policy, journal, degrade, results)
        else:
            with obs.span("parallel_grid", jobs=len(to_run), workers=n):
                _run_pool(to_run, n, policy, journal, degrade, results)

    return list(results)  # type: ignore[arg-type]


def _run_sequential(
    to_run: Sequence[Tuple[int, ExperimentJob, str]],
    policy: RetryPolicy,
    journal: Optional[Journal],
    degrade: bool,
    results: List[Optional[GridResult]],
) -> None:
    """The in-process path: same retry semantics, no timeouts (a hung
    simulation in this process cannot be preempted)."""
    for index, job, key in to_run:
        started = time.monotonic()
        attempt = 1
        while True:
            try:
                result = _execute_job(job, key, attempt)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                failure = _describe_failure(exc)
                if failure.retryable and attempt < policy.max_attempts:
                    delay = policy.delay_for(attempt, key)
                    _log_retry(job, attempt, failure.error, delay)
                    time.sleep(delay)
                    attempt += 1
                    continue
                elapsed = time.monotonic() - started
                jf = _make_failure(job, key, failure, attempt, elapsed)
                if not degrade:
                    raise  # in-process: the original exception is best
                results[index] = jf
                break
            else:
                if attempt > 1:
                    _log_recovery(job, attempt)
                _journal_record(
                    journal, key, job, result, attempt,
                    time.monotonic() - started,
                )
                results[index] = result
                break


def _run_pool(
    to_run: Sequence[Tuple[int, ExperimentJob, str]],
    n: int,
    policy: RetryPolicy,
    journal: Optional[Journal],
    degrade: bool,
    results: List[Optional[GridResult]],
) -> None:
    pool = _new_pool(n, epoch=0)
    epoch = 0

    #: FIFO of (index, job, key, attempt) ready to submit.
    pending: Deque[Tuple[int, ExperimentJob, str, int]] = deque(
        (index, job, key, 1) for index, job, key in to_run
    )
    #: Min-heap of (due_monotonic, seq, index, job, key, attempt).
    backoff: List[Tuple[float, int, int, ExperimentJob, str, int]] = []
    backoff_seq = 0
    inflight: Dict[Future, _Flight] = {}
    started_at: Dict[int, float] = {}

    def rebuild(reason: str) -> None:
        nonlocal pool, epoch
        _kill_pool(pool)
        epoch += 1
        if epoch > policy.max_pool_rebuilds:
            raise WorkerCrashError(
                f"process pool broke {epoch} times (last: {reason}); "
                f"giving up on the grid",
                cause=reason,
                rebuilds=epoch - 1,
            )
        _POOL_REBUILDS.add()
        obs.log_event(
            "pool_rebuilt", level="warning", reason=reason, epoch=epoch
        )
        pool = _new_pool(n, epoch)

    def settle(
        index: int,
        job: ExperimentJob,
        key: str,
        attempt: int,
        failure: _WorkerFailure,
    ) -> None:
        """Retry a failed attempt, or finalize it as a JobFailure."""
        nonlocal backoff_seq
        if failure.retryable and attempt < policy.max_attempts:
            delay = policy.delay_for(attempt, key)
            _log_retry(job, attempt, failure.error, delay)
            backoff_seq += 1
            heapq.heappush(
                backoff,
                (
                    time.monotonic() + delay,
                    backoff_seq,
                    index,
                    job,
                    key,
                    attempt + 1,
                ),
            )
            return
        elapsed = time.monotonic() - started_at.get(index, time.monotonic())
        jf = _make_failure(job, key, failure, attempt, elapsed)
        if not degrade:
            raise _failure_exception(jf)
        results[index] = jf

    def warm_shared() -> None:
        """Pre-warm deduplicated baselines; purely an optimization, so
        any failure here just logs and moves on (a broken pool is
        rebuilt, everything else is retried implicitly by the jobs
        themselves)."""
        # Under tracing there is nothing to share: the stats caches are
        # bypassed so each traced cell must simulate its own baseline.
        if simcache.get_cache() is None or utrace.enabled():
            return
        shared = _dedupe_baselines([job for _, job, _ in to_run])
        if not shared:
            return
        try:
            futures = [pool.submit(_worker_warm, key) for key in shared]
            for future in futures:
                try:
                    obs.counters.merge(future.result())
                except BrokenProcessPool:
                    raise
                except Exception as exc:
                    obs.log_event(
                        "baseline_warm_failed",
                        level="warning",
                        error=type(exc).__name__,
                        detail=str(exc),
                    )
        except BrokenProcessPool:
            rebuild("broken_pool_during_warm")

    try:
        # Phase 1: warm shared baselines once each.  Without a
        # persistent cache there is no medium to share them through,
        # so skip straight to dispatch.
        warm_shared()

        # Phase 2: fan out the experiments with retry/timeout/rebuild.
        while pending or backoff or inflight:
            now = time.monotonic()
            while backoff and backoff[0][0] <= now:
                _, _, index, job, key, attempt = heapq.heappop(backoff)
                pending.append((index, job, key, attempt))

            broken = False
            while pending and len(inflight) < n:
                index, job, key, attempt = pending.popleft()
                started_at.setdefault(index, time.monotonic())
                try:
                    future = pool.submit(
                        _worker_experiment, job, key, attempt,
                        obs.tracectx.encode(obs.tracectx.current()),
                    )
                except (BrokenProcessPool, RuntimeError):
                    pending.appendleft((index, job, key, attempt))
                    broken = True
                    break
                deadline = (
                    time.monotonic() + policy.timeout_s
                    if policy.timeout_s
                    else None
                )
                inflight[future] = _Flight(
                    index, job, key, attempt, time.monotonic(), deadline
                )

            if broken:
                for future, flight in list(inflight.items()):
                    del inflight[future]
                    pending.append(
                        (flight.index, flight.job, flight.key,
                         flight.attempt)
                    )
                rebuild("broken_pool_on_submit")
                continue

            if not inflight:
                if backoff:
                    time.sleep(
                        max(0.0, backoff[0][0] - time.monotonic())
                    )
                continue

            # Wait for completions, bounded by the nearest job deadline
            # and the nearest backoff expiry.
            wait_s = 1.0
            now = time.monotonic()
            deadlines = [
                f.deadline for f in inflight.values() if f.deadline
            ]
            if deadlines:
                wait_s = min(wait_s, max(0.0, min(deadlines) - now))
            if backoff:
                wait_s = min(wait_s, max(0.0, backoff[0][0] - now))
            done, _ = wait(
                set(inflight),
                timeout=max(wait_s, 0.01),
                return_when=FIRST_COMPLETED,
            )

            for future in done:
                flight = inflight.pop(future)
                try:
                    result, failure, delta, spans = future.result()
                except BrokenProcessPool:
                    broken = True
                    crash = _WorkerFailure(
                        error="WorkerCrashError",
                        message="worker process pool broke mid-job",
                        context={"cause": "broken_pool"},
                        retryable=True,
                    )
                    settle(
                        flight.index, flight.job, flight.key,
                        flight.attempt, crash,
                    )
                    continue
                except Exception as exc:
                    # Harness-level failure (unpicklable result, ...):
                    # treat like a crashed attempt.
                    settle(
                        flight.index, flight.job, flight.key,
                        flight.attempt, _describe_failure(exc),
                    )
                    continue
                obs.counters.merge(delta)
                # Worker-side spans join the parent's recorder exactly
                # like counter deltas: one waterfall per grid.
                obs.tracectx.ingest(spans)
                if failure is not None:
                    settle(
                        flight.index, flight.job, flight.key,
                        flight.attempt, failure,
                    )
                    continue
                if flight.attempt > 1:
                    _log_recovery(flight.job, flight.attempt)
                _journal_record(
                    journal, flight.key, flight.job, result,
                    flight.attempt,
                    time.monotonic() - started_at[flight.index],
                )
                # Worker-side trace files are registered here in the
                # parent: the worker's registry dies with the process.
                _adopt_trace_artifacts(result)
                results[flight.index] = result

            if broken:
                for future, flight in list(inflight.items()):
                    del inflight[future]
                    pending.append(
                        (flight.index, flight.job, flight.key,
                         flight.attempt)
                    )
                rebuild("broken_pool")
                continue

            # Deadline sweep: a hung worker cannot be cancelled, so the
            # pool is torn down; innocent in-flight jobs re-submit at
            # the same attempt, the timed-out ones retry or fail.
            now = time.monotonic()
            expired = [
                (future, flight)
                for future, flight in inflight.items()
                if flight.deadline is not None
                and now > flight.deadline
                and not future.done()
            ]
            if expired:
                _TIMEOUTS.add(len(expired))
                expired_futures = {future for future, _ in expired}
                survivors = [
                    flight
                    for future, flight in inflight.items()
                    if future not in expired_futures
                ]
                inflight.clear()
                for _, flight in expired:
                    obs.log_event(
                        "job_timeout",
                        level="error",
                        benchmark=flight.job.benchmark,
                        target=flight.job.target.label,
                        attempt=flight.attempt,
                        timeout_s=policy.timeout_s,
                    )
                    timeout = _WorkerFailure(
                        error="SimulationTimeoutError",
                        message=(
                            f"job exceeded {policy.timeout_s}s "
                            f"wall-clock timeout"
                        ),
                        context={"timeout_s": policy.timeout_s},
                        retryable=True,
                    )
                    settle(
                        flight.index, flight.job, flight.key,
                        flight.attempt, timeout,
                    )
                for flight in survivors:
                    pending.append(
                        (flight.index, flight.job, flight.key,
                         flight.attempt)
                    )
                rebuild("job_timeout")
    except BaseException as exc:
        if isinstance(exc, KeyboardInterrupt):
            _INTERRUPTS.add()
            obs.log_event(
                "grid_interrupted",
                level="warning",
                completed=sum(1 for r in results if r is not None),
                total=len(results),
            )
        # No orphans: terminate and join every worker before the
        # exception propagates.  The journal is flushed per record, so
        # nothing completed is lost.
        _kill_pool(pool)
        raise
    else:
        pool.shutdown(wait=True)
