"""Parallel experiment engine.

Every paper figure is a grid of *independent* experiments -- benchmark x
target x sweep point -- so the harness fans them out over a
:class:`concurrent.futures.ProcessPoolExecutor`:

- ``jobs=1`` (or a single-job grid) preserves the in-process sequential
  path exactly: no pool, no pickling, byte-identical behavior to the
  pre-parallel harness.
- ``jobs=N`` dispatches whole experiments to worker processes.  The
  simulators are deterministic, so results are bit-identical to the
  sequential path regardless of worker count or completion order
  (results are returned in submission order).
- Identical baseline simulations are **deduplicated before dispatch**:
  a sweep that reuses one baseline across many targets warms it exactly
  once (through :mod:`repro.harness.simcache`) instead of simulating it
  concurrently in several workers.
- Worker telemetry is not dropped: each job returns the
  :mod:`repro.obs` counter delta it produced, which the parent merges
  into its own registry so run manifests account for all work done.

The worker count resolves as: explicit argument > ``REPRO_JOBS``
environment variable > ``os.cpu_count()``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.config import (
    EnergyConfig,
    MachineConfig,
    SelectionConfig,
    SimulationConfig,
)
from repro.harness import simcache
from repro.harness.experiment import (
    ExperimentResult,
    run_experiment,
    warm_baseline,
)
from repro.pthsel.targets import Target

_JOBS_DISPATCHED = obs.counters.counter("harness.parallel.jobs_dispatched")
_BASELINES_DEDUPED = obs.counters.counter(
    "harness.parallel.baselines_deduped"
)
_POOLS_STARTED = obs.counters.counter("harness.parallel.pools_started")


@dataclass
class ExperimentJob:
    """One unit of work for the engine: the arguments of
    :func:`repro.harness.experiment.run_experiment`, plus an arbitrary
    ``tag`` of extra row columns (e.g. the sweep point that produced it).
    """

    benchmark: str
    target: Target = Target.LATENCY
    profile_input: str = "train"
    run_input: str = "train"
    machine: Optional[MachineConfig] = None
    energy: Optional[EnergyConfig] = None
    selection: Optional[SelectionConfig] = None
    sim: Optional[SimulationConfig] = None
    include_branch_pthreads: bool = False
    tag: Dict[str, object] = field(default_factory=dict)

    def run(self) -> ExperimentResult:
        return run_experiment(
            self.benchmark,
            target=self.target,
            profile_input=self.profile_input,
            run_input=self.run_input,
            machine=self.machine,
            energy=self.energy,
            selection=self.selection,
            sim=self.sim,
            include_branch_pthreads=self.include_branch_pthreads,
        )

    def baseline_keys(
        self,
    ) -> List[Tuple[str, str, MachineConfig, SimulationConfig]]:
        """The baseline simulations this job will need (run + profile)."""
        machine = self.machine or MachineConfig()
        sim = self.sim or SimulationConfig()
        keys = [(self.benchmark, self.run_input, machine, sim)]
        if self.profile_input != self.run_input:
            keys.append((self.benchmark, self.profile_input, machine, sim))
        return keys


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: argument > ``REPRO_JOBS`` > ``os.cpu_count()``."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be an integer, got {env!r}"
                ) from None
    if jobs is None:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


# --------------------------------------------------------------------- #
# Worker side.  Module-level functions so they pickle under any start
# method; the initializer re-applies the parent's cache and log config
# (fork inherits it, spawn does not).
# --------------------------------------------------------------------- #


def _worker_init(cache_dir: Optional[str], cache_enabled: bool,
                 log_level: str) -> None:
    simcache.configure(cache_dir=cache_dir, enabled=cache_enabled)
    if log_level != "off":
        obs.configure(level=log_level)


def _worker_experiment(
    job: ExperimentJob,
) -> Tuple[ExperimentResult, Dict[str, float]]:
    before = obs.counters.snapshot()
    result = job.run()
    return result, obs.counters.delta_since(before)


def _worker_warm(
    key: Tuple[str, str, MachineConfig, SimulationConfig],
) -> Dict[str, float]:
    benchmark, input_name, machine, sim = key
    before = obs.counters.snapshot()
    warm_baseline(benchmark, input_name, machine=machine, sim=sim)
    return obs.counters.delta_since(before)


# --------------------------------------------------------------------- #
# Parent side.
# --------------------------------------------------------------------- #


def _dedupe_baselines(
    jobs: Sequence[ExperimentJob],
) -> List[Tuple[str, str, MachineConfig, SimulationConfig]]:
    """Unique baseline sims the grid needs, in first-appearance order;
    only keys needed by more than one job are worth pre-warming."""
    counts: Dict[Tuple, int] = {}
    order: List[Tuple[str, str, MachineConfig, SimulationConfig]] = []
    for job in jobs:
        for key in job.baseline_keys():
            if key not in counts:
                order.append(key)
            counts[key] = counts.get(key, 0) + 1
    shared = [key for key in order if counts[key] > 1]
    if shared:
        _BASELINES_DEDUPED.add(
            sum(counts[key] - 1 for key in shared)
        )
    return shared


def run_experiments(
    jobs: Sequence[ExperimentJob],
    n_jobs: Optional[int] = None,
) -> List[ExperimentResult]:
    """Run a grid of experiments, in parallel when ``n_jobs > 1``.

    Results come back in submission order and are bit-identical to the
    sequential path (the grid cells are independent deterministic
    simulations).  Worker counter deltas are merged into this process's
    :data:`repro.obs.counters` registry.
    """
    jobs = list(jobs)
    n = min(resolve_jobs(n_jobs), max(1, len(jobs)))
    if n <= 1 or len(jobs) <= 1:
        return [job.run() for job in jobs]

    cache = simcache.get_cache()
    _POOLS_STARTED.add()
    _JOBS_DISPATCHED.add(len(jobs))
    with obs.span("parallel_grid", jobs=len(jobs), workers=n):
        with ProcessPoolExecutor(
            max_workers=n,
            initializer=_worker_init,
            initargs=(
                cache.root if cache is not None else None,
                cache is not None,
                obs.current_level(),
            ),
        ) as pool:
            # Phase 1: warm shared baselines once each.  Without a
            # persistent cache there is no medium to share them through,
            # so skip straight to dispatch.
            if cache is not None:
                shared = _dedupe_baselines(jobs)
                if shared:
                    for delta in pool.map(_worker_warm, shared):
                        obs.counters.merge(delta)
            # Phase 2: fan out the experiments.
            results: List[ExperimentResult] = []
            for result, delta in pool.map(_worker_experiment, jobs):
                obs.counters.merge(delta)
                results.append(result)
    return results
