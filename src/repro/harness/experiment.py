"""End-to-end experiment runner.

One experiment is the paper's basic unit of evaluation: profile a
benchmark, select p-threads with PTHSEL(+E) under some target, augment
the program, run baseline and augmented timing+energy simulations, and
report relative latency/energy/ED metrics plus the pre-execution
diagnostics of Figure 3.
"""

from __future__ import annotations

import contextlib
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.obs import utrace
from repro.config import (
    EnergyConfig,
    MachineConfig,
    SelectionConfig,
    SimulationConfig,
)
from repro.cpu.pipeline import simulate
from repro.cpu.stats import SimStats
from repro.critpath.classify import analysis_memo_enabled
from repro.ddmt.augment import AugmentedProgram, expand_pthreads
from repro.energy.metrics import relative_metrics
from repro.energy.wattch import EnergyModel, EnergyResult
from repro.frontend import tracestore
from repro.frontend.trace import Trace
from repro.harness import simcache
from repro.pthsel.framework import (
    BaselineEstimates,
    SelectionResult,
    select_pthreads,
)
from repro.pthsel.targets import Target
from repro.workloads.registry import get_program


@dataclass
class RunMeasurement:
    """One timing + energy measurement."""

    stats: SimStats
    energy: EnergyResult

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def joules(self) -> float:
        return self.energy.total_joules


@dataclass
class ExperimentResult:
    """Everything one (benchmark, target) experiment produced."""

    benchmark: str
    target: Target
    baseline: RunMeasurement
    optimized: RunMeasurement
    selection: SelectionResult
    metrics: Dict[str, float]
    #: Wall-clock seconds per harness phase (profile/select/augment/...),
    #: collected by :func:`run_experiment` via ``obs.span``.
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: utrace artifact records (path/bytes/events/window per file) when
    #: the experiment ran with microarchitectural tracing enabled.  The
    #: list pickles across parallel-engine workers so the parent can
    #: register every worker-side trace file in the run manifest.
    trace_artifacts: List[Dict[str, object]] = field(default_factory=list)
    #: Where each layer of this result came from -- ``result``:
    #: computed|simcache, ``baseline``: simulated|memo|batch|simcache,
    #: ``optimized``: simulated|memo, ``trace``: interpreted|memo (did
    #: this run pay for interpretation, or was the trace served from the
    #: per-process :mod:`repro.frontend.tracestore`?).  Rows expose
    #: these as ``src_*`` columns so cached cells are distinguishable
    #: from simulated ones (the bench cold-phase report filters on
    #: them), and a ``t_trace`` of 0.0 is explainable.
    provenance: Dict[str, str] = field(default_factory=dict)
    #: Distributed-trace lineage: the ``trace_id`` active while this
    #: result was produced (or served from cache), joining the result
    #: row to its client/server/worker spans.  ``None`` when tracing
    #: was inactive.
    trace_id: Optional[str] = None

    @property
    def speedup_pct(self) -> float:
        return self.metrics["speedup_pct"]

    @property
    def energy_save_pct(self) -> float:
        return self.metrics["energy_save_pct"]

    @property
    def ed_save_pct(self) -> float:
        return self.metrics["ed_save_pct"]

    @property
    def ed2_save_pct(self) -> float:
        return self.metrics["ed2_save_pct"]

    def diagnostics(self) -> Dict[str, float]:
        """The Figure 3 second-panel quantities."""
        opt = self.optimized.stats
        base_misses = max(1, self.baseline.stats.demand_l2_misses)
        return {
            "full_coverage_pct": 100.0 * opt.covered_misses_full / base_misses,
            "partial_coverage_pct": 100.0
            * opt.covered_misses_partial
            / base_misses,
            "pinst_increase_pct": 100.0 * opt.pinst_increase,
            "usefulness_pct": 100.0 * opt.usefulness,
            "avg_pthread_length": self.selection.average_length,
            "spawns": float(opt.spawns_started),
        }

    def summary_row(self) -> Dict[str, float]:
        row = {
            "speedup_pct": round(self.speedup_pct, 2),
            "energy_save_pct": round(self.energy_save_pct, 2),
            "ed_save_pct": round(self.ed_save_pct, 2),
            "ed2_save_pct": round(self.ed2_save_pct, 2),
        }
        row.update({k: round(v, 2) for k, v in self.diagnostics().items()})
        return row


# --------------------------------------------------------------------- #
# Baseline caching: sensitivity sweeps re-simulate the same baseline for
# several targets.  Two layers:
#
# - an in-process LRU holding (trace, stats), keyed by the workload's
#   *content* fingerprint plus the machine configuration -- two programs
#   registered under the same benchmark name can never alias;
# - the persistent :mod:`repro.harness.simcache`, holding the SimStats
#   only (traces are cheap to re-interpret, expensive to store), shared
#   across processes and CLI invocations.
# --------------------------------------------------------------------- #

_BASELINE_CACHE: "OrderedDict[Tuple, Tuple[Trace, SimStats]]" = OrderedDict()
_BASELINE_CACHE_LIMIT = 24
#: Baseline-cache keys seeded by the batch prewarm pass
#: (:mod:`repro.harness.batchplan`) rather than a per-cell simulation;
#: rows served from these carry ``src_baseline == "batch"``.
_ADOPTED_KEYS: set = set()

_CACHE_HITS = obs.counters.counter("harness.experiment.baseline_cache.hits")
_CACHE_MISSES = obs.counters.counter(
    "harness.experiment.baseline_cache.misses"
)
_CACHE_EVICTIONS = obs.counters.counter(
    "harness.experiment.baseline_cache.evictions"
)


def _baseline_material(
    benchmark: str,
    input_name: str,
    program_fp: str,
    machine: MachineConfig,
    sim: SimulationConfig,
) -> Dict[str, object]:
    """Disk-cache key material for one baseline timing simulation."""
    return {
        "kind": "baseline_stats",
        "benchmark": benchmark,
        "input": input_name,
        "program": program_fp,
        "machine": machine.fingerprint,
        "max_instructions": sim.max_instructions,
    }


def _baseline_sim(
    benchmark: str,
    input_name: str,
    machine: MachineConfig,
    sim: SimulationConfig,
) -> Tuple[Trace, SimStats, Dict[str, float]]:
    """Trace + baseline stats + cold phase walls ({"trace": s, "sim": s}).

    The phase walls are 0.0 for work served from a cache (the LRU, the
    trace memo, or the persistent stats cache): they measure what *this
    call* built, which is what the bench cold-path breakdown wants.  The
    dict also carries ``src`` (where the *stats* came from) and
    ``src_trace`` (``"interpreted"`` when this call ran the interpreter,
    ``"memo"`` otherwise) so a zero wall is always explainable.
    """
    program = get_program(benchmark, input_name)
    program_fp = program.fingerprint()
    key = (program_fp, machine, sim.max_instructions)
    # Tracing bypasses every stats cache: a cached SimStats carries no
    # event stream, so serving it would silently produce no trace files.
    tracing = utrace.enabled()
    hit = None if tracing else _BASELINE_CACHE.get(key)
    if hit is not None:
        _BASELINE_CACHE.move_to_end(key)
        _CACHE_HITS.add()
        trace, stats = hit
        src = "batch" if key in _ADOPTED_KEYS else "memo"
        return trace, stats, {
            "trace": 0.0, "sim": 0.0, "src": src, "src_trace": "memo",
        }
    _CACHE_MISSES.add()
    disk = None if tracing else simcache.get_cache()
    material = _baseline_material(
        benchmark, input_name, program_fp, machine, sim
    )
    with obs.span("baseline_sim", benchmark=benchmark,
                  input=input_name) as sp:
        # The trace is machine-independent: the per-process memo shares it
        # across every (machine, target) cell of a sweep.
        trace, t_trace, trace_src = tracestore.get_trace_tagged(
            program, sim.max_instructions
        )
        t_sim = 0.0
        src = "simcache"
        stats: Optional[SimStats] = None
        if disk is not None:
            cached = disk.get(material)
            if isinstance(cached, SimStats):
                stats = cached
        if stats is None:
            src = "simulated"
            label_ctx = (
                utrace.scope(label=f"{benchmark}.{input_name}.baseline")
                if tracing
                else contextlib.nullcontext()
            )
            with label_ctx, obs.span("timing_sim") as sim_sp:
                stats = simulate(trace, machine)
            t_sim = sim_sp.wall_s
            if disk is not None:
                disk.put(material, stats)
        sp.annotate(cycles=stats.cycles, committed=stats.committed)
    while len(_BASELINE_CACHE) >= _BASELINE_CACHE_LIMIT:
        evicted, _ = _BASELINE_CACHE.popitem(last=False)
        _ADOPTED_KEYS.discard(evicted)
        _CACHE_EVICTIONS.add()
    _BASELINE_CACHE[key] = (trace, stats)
    return trace, stats, {
        "trace": t_trace, "sim": t_sim, "src": src, "src_trace": trace_src,
    }


def warm_baseline(
    benchmark: str,
    input_name: str = "train",
    machine: Optional[MachineConfig] = None,
    sim: Optional[SimulationConfig] = None,
) -> SimStats:
    """Ensure one baseline simulation is cached (LRU + disk); returns its
    stats.  The parallel engine fans these out before dispatching full
    experiments so identical baselines are simulated exactly once."""
    _, stats, _ = _baseline_sim(
        benchmark,
        input_name,
        (machine or MachineConfig()).validate(),
        (sim or SimulationConfig()).validate(),
    )
    return stats


_RESULT_HITS = obs.counters.counter("harness.experiment.result_cache.hits")
_RESULT_MISSES = obs.counters.counter(
    "harness.experiment.result_cache.misses"
)


def baseline_cache_stats() -> Dict[str, int]:
    """Current baseline-cache occupancy and hit/miss/eviction counts."""
    return {
        "entries": len(_BASELINE_CACHE),
        "limit": _BASELINE_CACHE_LIMIT,
        "hits": _CACHE_HITS.value,
        "misses": _CACHE_MISSES.value,
        "evictions": _CACHE_EVICTIONS.value,
    }


def clear_baseline_cache() -> None:
    """Drop memoized baseline simulations, augmented expansions, and
    optimized-run stats (tests and the cold-path bench use this)."""
    _BASELINE_CACHE.clear()
    _ADOPTED_KEYS.clear()
    _AUG_CACHE.clear()
    _OPT_CACHE.clear()


def baseline_cached(
    benchmark: str,
    input_name: str,
    machine: MachineConfig,
    sim: SimulationConfig,
) -> bool:
    """Whether a baseline simulation is already served without running.

    Probes the in-process LRU and the persistent cache (existence only,
    no deserialization).  The batch planner uses this to skip members of
    a shared-trace group that a previous run, journal resume, or earlier
    group already produced.
    """
    program_fp = get_program(benchmark, input_name).fingerprint()
    if (program_fp, machine, sim.max_instructions) in _BASELINE_CACHE:
        return True
    disk = simcache.get_cache()
    if disk is None:
        return False
    return disk.contains(
        _baseline_material(benchmark, input_name, program_fp, machine, sim)
    )


def adopt_baseline(
    benchmark: str,
    input_name: str,
    machine: MachineConfig,
    sim: SimulationConfig,
    trace: Trace,
    stats: SimStats,
) -> None:
    """Install a batch-prewarmed baseline simulation into the caches.

    The lock-step pass (:mod:`repro.harness.batchplan`) produces stats
    bit-identical to what :func:`_baseline_sim` would have computed for
    the same ``(trace, machine)``; adopting them seeds the LRU (and the
    persistent cache, when enabled) so per-cell experiments are cache
    hits.  Adopted keys are remembered for row provenance.
    """
    key = (
        get_program(benchmark, input_name).fingerprint(),
        machine,
        sim.max_instructions,
    )
    disk = simcache.get_cache()
    if disk is not None:
        disk.put(
            _baseline_material(benchmark, input_name, key[0], machine, sim),
            stats,
        )
    while len(_BASELINE_CACHE) >= _BASELINE_CACHE_LIMIT:
        evicted, _ = _BASELINE_CACHE.popitem(last=False)
        _ADOPTED_KEYS.discard(evicted)
        _CACHE_EVICTIONS.add()
    _BASELINE_CACHE[key] = (trace, stats)
    _ADOPTED_KEYS.add(key)


# --------------------------------------------------------------------- #
# Optimized-run sharing: a sweep frequently selects the *same* p-thread
# set in several cells (e.g. two targets agreeing at one latency, or one
# target agreeing across latencies).  The augmented expansion depends
# only on (program, p-threads, budget) -- not the machine -- and the
# optimized timing run additionally on the machine, so both are shared
# at exactly that granularity.  Keyed by p-thread *content*, never by
# how the set was selected.
# --------------------------------------------------------------------- #

# Sized for a full figure sweep: figure5's 9 benchmark x target cells
# select ~13 distinct p-thread signatures, which thrash an LRU of 8 --
# and a retained AugmentedProgram also keeps its trace's derived
# pipeline view and simulation precomputes alive across sweep cells.
_AUG_CACHE: "OrderedDict[Tuple, AugmentedProgram]" = OrderedDict()
_AUG_CACHE_LIMIT = 32
_OPT_CACHE: "OrderedDict[Tuple, SimStats]" = OrderedDict()
_OPT_CACHE_LIMIT = 64

_AUG_HITS = obs.counters.counter("harness.experiment.aug_cache.hits")
_OPT_HITS = obs.counters.counter("harness.experiment.opt_cache.hits")


def _pthread_signature(pthreads) -> Tuple:
    """Content signature of a selected p-thread set: everything the
    expansion and the timing simulation can observe."""
    return tuple(
        (
            p.pthread_id,
            p.trigger_pc,
            p.hint_offset,
            p.target_pcs,
            tuple(
                (i.pc, i.op.value, i.rd, i.rs1, i.rs2, i.imm, i.target)
                for i in p.body
            ),
        )
        for p in pthreads
    )


def run_baseline(
    benchmark: str,
    input_name: str = "train",
    machine: Optional[MachineConfig] = None,
    energy: Optional[EnergyConfig] = None,
    sim: Optional[SimulationConfig] = None,
) -> RunMeasurement:
    """Simulate a benchmark without pre-execution."""
    machine = (machine or MachineConfig()).validate()
    energy = (energy or EnergyConfig()).validate()
    sim = (sim or SimulationConfig()).validate()
    _, stats, _ = _baseline_sim(benchmark, input_name, machine, sim)
    model = EnergyModel(energy, machine)
    return RunMeasurement(stats=stats, energy=model.evaluate(stats.activity))


def run_experiment(
    benchmark: str,
    target: Target = Target.LATENCY,
    profile_input: str = "train",
    run_input: str = "train",
    machine: Optional[MachineConfig] = None,
    energy: Optional[EnergyConfig] = None,
    selection: Optional[SelectionConfig] = None,
    sim: Optional[SimulationConfig] = None,
    include_branch_pthreads: bool = False,
) -> ExperimentResult:
    """Profile, select, augment, and measure one benchmark.

    ``profile_input`` is the input set PTHSEL mines p-threads from;
    ``run_input`` is the input the augmented program runs on.  The paper's
    primary study uses ideal profiling (both "train"); the Figure 4
    robustness study profiles on "ref" and runs on "train".

    ``include_branch_pthreads`` additionally selects branch-outcome
    p-threads (the paper's Section 7 extension) alongside the load
    prefetching ones.
    """
    machine = (machine or MachineConfig()).validate()
    energy = (energy or EnergyConfig()).validate()
    selection = (selection or SelectionConfig()).validate()
    sim = (sim or SimulationConfig()).validate()

    # Whole-result persistent cache: an experiment is a deterministic
    # function of workload content + configuration, so a warm cache
    # answers repeat sweep cells without simulating anything.  Under
    # tracing the cache is bypassed end to end -- trace artifacts only
    # exist if the simulations actually run.
    tracing = utrace.enabled()
    trace_mark = utrace.artifact_mark() if tracing else 0
    disk = None if tracing else simcache.get_cache()
    material: Optional[Dict[str, object]] = None
    if disk is not None:
        run_fp = get_program(benchmark, run_input).fingerprint()
        profile_fp = (
            run_fp
            if profile_input == run_input
            else get_program(benchmark, profile_input).fingerprint()
        )
        material = {
            "kind": "experiment",
            "benchmark": benchmark,
            "target": target.label,
            "profile_input": profile_input,
            "run_input": run_input,
            "run_program": run_fp,
            "profile_program": profile_fp,
            "machine": machine.fingerprint,
            "energy": energy.fingerprint,
            "selection": selection.fingerprint,
            "simulation": sim.fingerprint,
            "branch_pthreads": include_branch_pthreads,
        }
        lookup_started = time.time()
        cached = disk.get(material)
        if isinstance(cached, ExperimentResult):
            _RESULT_HITS.add()
            obs.log_event(
                "experiment_cached",
                benchmark=benchmark,
                target=target.label,
            )
            # Re-stamp provenance: whatever the original run built, this
            # call served the whole result from the persistent cache.
            # (getattr: entries pickled before the field existed.)
            provenance = dict(getattr(cached, "provenance", None) or {})
            provenance["result"] = "simcache"
            cached.provenance = provenance
            # Lineage belongs to *this* request, not whoever populated
            # the cache: restamp alongside provenance.  The hit still
            # contributes a span, so the waterfall shows which process
            # answered (and how fast) even when nothing simulated.
            ctx = obs.tracectx.current()
            cached.trace_id = ctx.trace_id if ctx is not None else None
            if ctx is not None:
                obs.tracectx.record_span(
                    "experiment.cached",
                    ctx.child(),
                    lookup_started,
                    time.time(),
                    attrs={
                        "benchmark": benchmark,
                        "target": target.label,
                    },
                )
            return cached
        _RESULT_MISSES.add()

    model = EnergyModel(energy, machine)
    phase_seconds: Dict[str, float] = {}

    with obs.span("experiment", benchmark=benchmark,
                  target=target.label) as sp_total:
        # Baseline measurement on the run input.  The utrace energy
        # scope makes traced baselines audit against *this* experiment's
        # energy configuration (idle-factor sweeps vary it per cell).
        energy_ctx = (
            utrace.scope(energy=energy) if tracing
            else contextlib.nullcontext()
        )
        with energy_ctx, obs.span("baseline") as sp:
            run_trace, run_stats, base_phases = _baseline_sim(
                benchmark, run_input, machine, sim
            )
            baseline = RunMeasurement(
                stats=run_stats, energy=model.evaluate(run_stats.activity)
            )
        phase_seconds["baseline"] = sp.wall_s
        t_trace = base_phases["trace"]
        t_sim = base_phases["sim"]
        src_trace = base_phases.get("src_trace", "memo")

        # Profile (possibly a different input) supplies the selection inputs.
        with obs.span("profile", input=profile_input) as sp:
            if profile_input == run_input:
                profile_trace, profile_stats = run_trace, run_stats
            else:
                profile_ctx = (
                    utrace.scope(energy=energy) if tracing
                    else contextlib.nullcontext()
                )
                with profile_ctx:
                    profile_trace, profile_stats, profile_phases = (
                        _baseline_sim(benchmark, profile_input, machine, sim)
                    )
                t_trace += profile_phases["trace"]
                t_sim += profile_phases["sim"]
                if profile_phases.get("src_trace") == "interpreted":
                    # t_trace includes the profile interpretation: the
                    # row must not claim a pure memo hit.
                    src_trace = "interpreted"
            profile_energy = model.evaluate(profile_stats.activity)
            estimates = BaselineEstimates(
                ipc=profile_stats.ipc,
                l0=float(profile_stats.cycles),
                e0=profile_energy.total_joules,
            )
        phase_seconds["profile"] = sp.wall_s

        with obs.span("select") as sp:
            result = select_pthreads(
                profile_trace,
                estimates,
                target=target,
                machine=machine,
                energy=energy,
                selection=selection,
            )
            if include_branch_pthreads:
                from repro.pthsel.branches import select_branch_pthreads

                branch_result = select_branch_pthreads(
                    profile_trace,
                    estimates,
                    target=target,
                    machine=machine,
                    energy=energy,
                    selection=selection,
                    classification=result.classification,
                )
                result.pthreads = result.pthreads + branch_result.pthreads
                for key, value in branch_result.predicted.items():
                    result.predicted[key] = (
                        result.predicted.get(key, 0.0) + value
                    )
            sp.annotate(n_pthreads=result.n_pthreads)
        phase_seconds["select"] = sp.wall_s

        # Augment the run program and measure.  Both layers are shared
        # across sweep cells that selected an identical p-thread set:
        # the expansion machine-independently, the timing run per
        # machine.
        with obs.span("augment") as sp:
            program = get_program(benchmark, run_input)
            pth_sig = (
                _pthread_signature(result.pthreads)
                if analysis_memo_enabled()
                else None
            )
            aug_key = opt_key = None
            opt_stats: Optional[SimStats] = None
            augmented: Optional[AugmentedProgram] = None
            if pth_sig is not None:
                base = (program.fingerprint(), sim.max_instructions, pth_sig)
                aug_key = ("augment",) + base
                # The augmented *expansion* is cache-safe under tracing
                # (it is program transformation, not simulation); the
                # optimized-stats cache is not.
                if not tracing:
                    opt_key = ("optimized", machine.fingerprint) + base
                    opt_stats = _OPT_CACHE.get(opt_key)
            if opt_stats is not None:
                _OPT_CACHE.move_to_end(opt_key)
                _OPT_HITS.add()
            else:
                if aug_key is not None:
                    augmented = _AUG_CACHE.get(aug_key)
                if augmented is not None:
                    _AUG_CACHE.move_to_end(aug_key)
                    _AUG_HITS.add()
                else:
                    augmented = expand_pthreads(
                        program,
                        result.pthreads,
                        max_instructions=sim.max_instructions,
                        reference_trace=(
                            run_trace if run_input == profile_input else None
                        ),
                    )
                    if aug_key is not None:
                        while len(_AUG_CACHE) >= _AUG_CACHE_LIMIT:
                            _AUG_CACHE.popitem(last=False)
                        _AUG_CACHE[aug_key] = augmented
        phase_seconds["augment"] = 0.0 if opt_stats is not None else sp.wall_s
        opt_cached = opt_stats is not None

        with obs.span("simulate") as sp:
            if opt_stats is None:
                opt_ctx = (
                    utrace.scope(
                        label=f"{benchmark}.{target.label}.optimized",
                        energy=energy,
                    )
                    if tracing
                    else contextlib.nullcontext()
                )
                with opt_ctx:
                    opt_stats = simulate(
                        augmented.trace, machine, augmented.pthreads
                    )
                if opt_key is not None:
                    while len(_OPT_CACHE) >= _OPT_CACHE_LIMIT:
                        _OPT_CACHE.popitem(last=False)
                    _OPT_CACHE[opt_key] = opt_stats
            optimized = RunMeasurement(
                stats=opt_stats, energy=model.evaluate(opt_stats.activity)
            )
            sp.annotate(cycles=opt_stats.cycles,
                        committed=opt_stats.committed)
        phase_seconds["simulate"] = 0.0 if opt_cached else sp.wall_s
        # Cold-path breakdown: what this run actually built (0.0 when a
        # layer was served from cache).  "trace" is interpretation,
        # "analysis" the PTHSEL selection pass, "sim" the timing runs.
        phase_seconds["trace"] = t_trace
        phase_seconds["analysis"] = phase_seconds["select"]
        phase_seconds["sim"] = t_sim + phase_seconds["simulate"]

        metrics = relative_metrics(
            base_delay=float(baseline.cycles),
            base_energy=baseline.joules,
            new_delay=float(optimized.cycles),
            new_energy=optimized.joules,
        )
        sp_total.annotate(
            cycles=opt_stats.cycles,
            speedup_pct=round(metrics["speedup_pct"], 2),
            cache=baseline_cache_stats(),
        )
    phase_seconds["total"] = sp_total.wall_s
    for phase in ("trace", "analysis", "sim", "total"):
        obs.counters.histogram(f"harness.phase.{phase}_seconds").observe(
            phase_seconds[phase]
        )
    ctx = obs.tracectx.current()
    experiment = ExperimentResult(
        benchmark=benchmark,
        target=target,
        baseline=baseline,
        optimized=optimized,
        selection=result,
        metrics=metrics,
        phase_seconds=phase_seconds,
        provenance={
            "result": "computed",
            "baseline": base_phases.get("src", "simulated"),
            "optimized": "memo" if opt_cached else "simulated",
            "trace": src_trace,
        },
        trace_id=ctx.trace_id if ctx is not None else None,
    )
    if tracing:
        experiment.trace_artifacts = utrace.artifacts_since(trace_mark)
    if disk is not None and material is not None:
        disk.put(material, experiment)
    return experiment
