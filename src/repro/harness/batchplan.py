"""Lock-step batching of grid cells that share a sealed trace.

A figure sweep frequently contains many cells that simulate the *same*
workload trace under *different* machine configurations (a latency or
L2-size axis).  The per-cell path discovers that sharing incidentally --
each :func:`~repro.harness.experiment.run_experiment` re-enters the
baseline path with its own machine config, interleaved with selection
and augmented runs for other cells.  This module makes the sharing
explicit:

- :func:`plan_batches` groups a job grid's baseline simulations by
  ``(benchmark, input, program fingerprint, max_instructions)`` -- i.e.
  by sealed trace content -- collecting the distinct machine
  configurations each group needs;
- :func:`prewarm` advances each multi-config group through
  :func:`repro.cpu.batch.simulate_batch` in one lock-step pass over the
  shared pipeline view (per-config ``SimStats`` fully independent), and
  hands every result to :func:`repro.harness.experiment.adopt_baseline`
  so the subsequent per-cell experiments are served from the baseline
  LRU and the results fan back out as ordinary per-cell rows.

Members whose baseline is already cached (LRU or the persistent
simulation cache) are skipped, so re-runs and journal resumes do not
re-simulate.  The engine only invokes the pass on the sequential path
with a non-reference cycle engine and microarchitectural tracing off
(the reference engine is the tracing oracle and must observe every
simulation itself); everything here is bit-identical to the per-cell
path because :func:`simulate_batch` runs the same engine on the same
memoized trace objects.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro import obs
from repro.config import MachineConfig, SimulationConfig
from repro.cpu import engine
from repro.frontend import tracestore
from repro.harness import experiment
from repro.obs import utrace
from repro.workloads.registry import get_program

_GROUPS_PLANNED = obs.counters.counter("harness.batchplan.groups")
_MEMBERS_SIMULATED = obs.counters.counter("harness.batchplan.simulated")
_MEMBERS_CACHED = obs.counters.counter("harness.batchplan.cached")


@dataclass(frozen=True)
class BatchMember:
    """One baseline simulation a job grid needs."""

    benchmark: str
    input_name: str
    machine: MachineConfig
    sim: SimulationConfig


@dataclass
class BatchGroup:
    """All distinct machine configs wanted for one sealed trace."""

    benchmark: str
    input_name: str
    program_fp: str
    max_instructions: int
    members: List[BatchMember] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.members)


def plan_batches(jobs: Iterable) -> List[BatchGroup]:
    """Group a grid's baseline needs by shared trace content.

    ``jobs`` is any iterable of objects with ``baseline_keys()`` (the
    :class:`~repro.harness.parallel.ExperimentJob` protocol).  Within a
    group, machine configurations are deduplicated by fingerprint while
    preserving first-appearance order, so the lock-step pass simulates
    each distinct machine exactly once.
    """
    groups: Dict[Tuple, BatchGroup] = {}
    seen: Dict[Tuple, set] = {}
    for job in jobs:
        for benchmark, input_name, machine, sim in job.baseline_keys():
            machine = machine.validate()
            sim = sim.validate()
            program_fp = get_program(benchmark, input_name).fingerprint()
            gkey = (benchmark, input_name, program_fp, sim.max_instructions)
            group = groups.get(gkey)
            if group is None:
                group = BatchGroup(
                    benchmark=benchmark,
                    input_name=input_name,
                    program_fp=program_fp,
                    max_instructions=sim.max_instructions,
                )
                groups[gkey] = group
                seen[gkey] = set()
            if machine.fingerprint in seen[gkey]:
                continue
            seen[gkey].add(machine.fingerprint)
            group.members.append(
                BatchMember(benchmark, input_name, machine, sim)
            )
    return list(groups.values())


#: Stats of the most recent :func:`prewarm` in this process, for the
#: bench payload ("how much did batching actually do").
_LAST_PREWARM: Dict[str, object] = {}


def last_prewarm_stats() -> Dict[str, object]:
    """A copy of the most recent prewarm's accounting (empty if none)."""
    return dict(_LAST_PREWARM)


def prewarm(jobs: Iterable) -> Dict[str, object]:
    """Batch-simulate every multi-config shared-trace group of ``jobs``.

    Returns (and records, see :func:`last_prewarm_stats`) an accounting
    dict.  Single-config groups are left to the per-cell path -- a batch
    of one is just a simulation with extra bookkeeping.
    """
    t0 = time.perf_counter()
    stats: Dict[str, object] = {
        "groups": 0,
        "members": 0,
        "simulated": 0,
        "cached": 0,
        "wall_s": 0.0,
    }
    backend_name = engine.backend()
    vector = backend_name == "numpy"
    native = backend_name == "native"
    from repro.cpu.batch import simulate_batch

    for group in plan_batches(jobs):
        if len(group) < 2:
            continue
        stats["groups"] += 1
        stats["members"] += len(group)
        _GROUPS_PLANNED.add()
        need: List[BatchMember] = []
        for member in group.members:
            if experiment.baseline_cached(
                member.benchmark, member.input_name, member.machine,
                member.sim,
            ):
                stats["cached"] += 1
                _MEMBERS_CACHED.add()
            else:
                need.append(member)
        if not need:
            continue
        program = get_program(group.benchmark, group.input_name)
        trace, _ = tracestore.get_trace(program, group.max_instructions)
        with obs.span(
            "batch_prewarm",
            benchmark=group.benchmark,
            input=group.input_name,
            configs=len(need),
        ):
            results = simulate_batch(
                trace,
                [member.machine for member in need],
                vector=vector,
                native=native,
            )
        for member, sim_stats in zip(need, results):
            experiment.adopt_baseline(
                member.benchmark,
                member.input_name,
                member.machine,
                member.sim,
                trace,
                sim_stats,
            )
        stats["simulated"] += len(need)
        _MEMBERS_SIMULATED.add(len(need))
    stats["wall_s"] = round(time.perf_counter() - t0, 3)
    _LAST_PREWARM.clear()
    _LAST_PREWARM.update(stats)
    return stats


def maybe_prewarm(jobs: List) -> Optional[Dict[str, object]]:
    """Gate and run :func:`prewarm` for the sequential engine path.

    Skipped when fewer than two jobs, when the reference engine is
    active (it is the tracing/debug oracle: every simulation must run
    through :class:`~repro.cpu.pipeline.Pipeline` itself), or when
    microarchitectural tracing is on (a prewarmed baseline would emit
    no trace artifacts).
    """
    if len(jobs) < 2:
        return None
    if engine.backend() == "reference":
        return None
    if utrace.enabled():
        return None
    return prewarm(jobs)
