"""Plain-text report formatting for experiment results.

The harness reports tables shaped like the paper's figures: one row per
(benchmark, target) with the latency/energy/ED improvements and the
pre-execution diagnostics, plus stacked-breakdown tables normalized to
the unoptimized run (the paper's 100% bars).
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def geometric_mean_pct(percent_gains: Iterable[float]) -> float:
    """Geometric mean of percentage *reductions* (the paper's GMean).

    Each gain g% corresponds to a ratio (1 - g/100); the result is the
    percentage reduction of the geometric mean ratio.  Ratios must be
    positive (a >=100% slowdown would be meaningless here).
    """
    ratios = [1.0 - g / 100.0 for g in percent_gains]
    if not ratios:
        return 0.0
    if any(r <= 0 for r in ratios):
        raise ValueError("cannot take the geometric mean through a 100% gain")
    log_sum = sum(math.log(r) for r in ratios)
    return 100.0 * (1.0 - math.exp(log_sum / len(ratios)))


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    float_digits: int = 2,
) -> str:
    """Render dict rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        # Union across rows (first-appearance order): degraded grids mix
        # result rows and failure rows of different shapes.
        seen = set()
        union: List[str] = []
        for row in rows:
            for c in row:
                if c not in seen:
                    seen.add(c)
                    union.append(c)
        columns = union

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{float_digits}f}"
        return str(value)

    rendered = [[cell(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in rendered))
        for i, c in enumerate(columns)
    ]
    header = "  ".join(c.rjust(w) for c, w in zip(columns, widths))
    divider = "-" * len(header)
    lines = [header, divider]
    lines.extend(
        "  ".join(v.rjust(w) for v, w in zip(r, widths)) for r in rendered
    )
    return "\n".join(lines)


def visible_columns(rows: Sequence[Mapping[str, object]]) -> List[str]:
    """Columns for human-facing tables: everything except the ``t_*``
    phase-timing columns that ride along for machine-readable artifacts.

    The union of all rows' keys, in first-appearance order: a degraded
    grid mixes result rows with failure rows of a different shape, and
    both must stay visible (gaps render as empty cells)."""
    columns: List[str] = []
    seen = set()
    for row in rows:
        for c in row:
            if c not in seen and not str(c).startswith("t_"):
                seen.add(c)
                columns.append(c)
    return columns


def render_json_lines(rows: Iterable[Mapping[str, object]]) -> str:
    """Rows as JSON lines (one object per line), for ``--json`` output."""
    return "\n".join(
        json.dumps(dict(row), default=str, sort_keys=False) for row in rows
    )


def format_breakdown_stack(
    label: str,
    categories: Sequence[str],
    percent_by_category: Mapping[str, float],
) -> str:
    """One normalized breakdown bar as text, e.g. ``mem=52.1 l2=3.0 ...``."""
    parts = [f"{c}={percent_by_category.get(c, 0.0):.1f}" for c in categories]
    return f"{label:16s} " + " ".join(parts)


def summarize(results: List[Dict[str, float]], key: str) -> Dict[str, float]:
    """Min/mean/gmean/max of one metric column across rows."""
    values = [float(r[key]) for r in results]
    return {
        "min": min(values),
        "mean": sum(values) / len(values),
        "gmean": geometric_mean_pct(values),
        "max": max(values),
    }
