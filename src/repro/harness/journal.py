"""Checkpoint/resume journal for experiment grids.

A grid run with an output directory appends one JSON line per completed
cell to ``<out>/journal.jsonl`` *as it finishes*, so an interrupted run
(crash, ^C, SIGTERM, power loss) can restart with ``--resume`` and skip
every cell that already completed:

- **Append-only**: each record is written and flushed in one call; a
  crash can tear at most the final line.  By default every record is
  also fsynced before :meth:`Journal.record` returns; at service
  request rates that per-record fsync is measurably hot, so an opt-in
  batched mode (``REPRO_JOURNAL_FSYNC_MS``, or the
  ``fsync_interval_ms`` constructor argument) keeps the file handle
  open, still flushes per record (a ``kill -9`` loses nothing that was
  flushed), and fsyncs at most once per interval plus once on
  :meth:`Journal.close` -- bounding *power-loss* exposure to the
  interval while keeping torn-tail tolerance unchanged.
- **Torn-tail tolerant**: :meth:`Journal.load` ignores a truncated or
  garbage trailing line (and counts damaged interior lines) instead of
  refusing to resume.
- **Self-describing**: records carry the cell key (a content hash of
  the job's full configuration, :meth:`ExperimentJob.cell_key`), a
  human-readable summary, and the pickled :class:`ExperimentResult`
  payload, so resumed cells are bit-identical to freshly computed ones.
- **Versioned**: records written by a different journal schema or
  simulator code version are ignored on load (the cell re-runs), never
  misinterpreted.

Only *successful* cells are journaled; failed cells re-run on resume.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import time
from typing import Any, Dict, Iterable, Optional

from repro import obs
from repro.errors import JournalError

#: Bump when the record layout changes.
JOURNAL_SCHEMA = 1

JOURNAL_NAME = "journal.jsonl"

#: Environment opt-in for batched fsync (milliseconds between syncs);
#: unset/empty/0 keeps the default fsync-per-record durability.
FSYNC_ENV_VAR = "REPRO_JOURNAL_FSYNC_MS"

_RECORDS = obs.counters.counter("harness.journal.records")
_RESUMED = obs.counters.counter("harness.journal.cells_resumed")
_DAMAGED = obs.counters.counter("harness.journal.damaged_lines")
_DEGRADED = obs.counters.counter("harness.journal.degradations")
_FSYNCS = obs.counters.counter("harness.journal.fsyncs")


def _env_fsync_interval_ms() -> Optional[float]:
    raw = os.environ.get(FSYNC_ENV_VAR, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


class Journal:
    """One append-only journal file of completed grid cells.

    ``fsync_interval_ms=None`` (the default) resolves the opt-in
    batched-fsync interval from ``REPRO_JOURNAL_FSYNC_MS``; pass ``0``
    to force fsync-per-record regardless of the environment, or a
    positive interval to batch explicitly (the experiment server does).
    """

    def __init__(
        self, path: str, fsync_interval_ms: Optional[float] = None
    ) -> None:
        self.path = path
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._degraded = False
        if fsync_interval_ms is None:
            fsync_interval_ms = _env_fsync_interval_ms()
        self.fsync_interval_s = (
            fsync_interval_ms / 1000.0
            if fsync_interval_ms and fsync_interval_ms > 0
            else 0.0
        )
        self._fh: Optional[Any] = None
        self._last_sync = 0.0

    @classmethod
    def for_run_dir(
        cls, out_dir: str, fsync_interval_ms: Optional[float] = None
    ) -> "Journal":
        return cls(
            os.path.join(out_dir, JOURNAL_NAME),
            fsync_interval_ms=fsync_interval_ms,
        )

    # ----------------------------------------------------------------- #

    def load(self) -> Dict[str, Dict[str, Any]]:
        """Parse the journal into ``{cell_key: record}``.

        A missing file is an empty journal.  A torn trailing line is
        ignored silently (the expected crash artifact); damaged interior
        lines are counted and skipped.  An unreadable file raises
        :class:`JournalError` -- the caller explicitly asked to resume
        from it, so silent loss would be worse than failing.
        """
        self._entries = {}
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except FileNotFoundError:
            return self._entries
        except OSError as exc:
            raise JournalError(
                f"cannot read journal {self.path}: {exc}",
                path=self.path,
                reason=str(exc),
            ) from exc
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("journal record is not an object")
                key = record["key"]
            except (ValueError, KeyError):
                if i == len(lines) - 1:
                    continue  # torn tail: the expected crash artifact
                _DAMAGED.add()
                obs.log_event(
                    "journal_damaged_line",
                    level="warning",
                    path=self.path,
                    line=i + 1,
                )
                continue
            if record.get("schema") != JOURNAL_SCHEMA:
                continue
            self._entries[key] = record
        return self._entries

    def completed_keys(self) -> Iterable[str]:
        return self._entries.keys()

    def result_for(self, key: str) -> Optional[Any]:
        """The journaled result payload for ``key``, or ``None``.

        A record whose payload no longer unpickles is treated as absent
        (the cell simply re-runs).  Likewise a record whose journaled
        ``trace_artifacts`` no longer exist on disk: a traced cell is
        only "done" if its trace files survived, so a wiped output
        directory re-traces instead of resuming to dangling manifest
        paths.
        """
        record = self._entries.get(key)
        if record is None:
            return None
        for path in record.get("trace_artifacts") or ():
            if not os.path.exists(path):
                obs.log_event(
                    "journal_trace_artifact_missing",
                    level="warning",
                    key=key,
                    path=path,
                )
                return None
        try:
            payload = pickle.loads(
                base64.b64decode(record["result_b64"])
            )
        except Exception:
            _DAMAGED.add()
            return None
        _RESUMED.add()
        return payload

    # ----------------------------------------------------------------- #

    def record(self, key: str, result: Any, **meta: Any) -> None:
        """Append one completed cell (write + flush [+ fsync]).

        Journal I/O failure (full disk, read-only dir) degrades to
        not-journaling with a single warning event: losing resumability
        must never abort the grid producing the results.
        """
        if self._degraded:
            return
        record: Dict[str, Any] = {
            "schema": JOURNAL_SCHEMA,
            "key": key,
            "result_b64": base64.b64encode(
                pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
            ).decode("ascii"),
        }
        record.update(meta)
        line = json.dumps(record, default=str, separators=(",", ":"))
        try:
            if self.fsync_interval_s > 0:
                self._append_batched(line)
            else:
                self._append_synced(line)
        except OSError as exc:
            self._degrade(exc)
            return
        self._entries[key] = record
        _RECORDS.add()

    def _append_synced(self, line: str) -> None:
        """The default durability discipline: one write+flush+fsync."""
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        _FSYNCS.add()

    def _append_batched(self, line: str) -> None:
        """Service-rate discipline: keep the handle open, flush per
        record, fsync at most once per interval.  A killed *process*
        loses nothing flushed; only power loss can cost up to one
        interval of records -- and the torn-tail tolerant loader makes
        that loss clean, never corrupting."""
        if self._fh is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
            self._last_sync = time.monotonic()
        self._fh.write(line + "\n")
        self._fh.flush()
        now = time.monotonic()
        if now - self._last_sync >= self.fsync_interval_s:
            os.fsync(self._fh.fileno())
            self._last_sync = now
            _FSYNCS.add()

    def _degrade(self, exc: OSError) -> None:
        self._degraded = True
        _DEGRADED.add()
        obs.log_event(
            "journal_degraded",
            level="warning",
            path=self.path,
            error=type(exc).__name__,
            detail=str(exc),
        )

    def sync(self) -> None:
        """Force any batched records down to disk now."""
        if self._fh is None:
            return
        try:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._last_sync = time.monotonic()
            _FSYNCS.add()
        except OSError as exc:
            self._degrade(exc)

    def close(self) -> None:
        """Sync and release the batched-mode file handle (idempotent;
        the journal can still record afterwards -- it reopens)."""
        if self._fh is None:
            return
        self.sync()
        try:
            self._fh.close()
        except OSError:
            pass
        self._fh = None

    def discard(self) -> None:
        """Delete the journal file (a fresh, non-resumed run starts clean
        so stale cells from an older grid cannot leak in)."""
        self._entries = {}
        self.close()
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass
        except OSError as exc:
            raise JournalError(
                f"cannot clear journal {self.path}: {exc}",
                path=self.path,
                reason=str(exc),
            ) from exc
