"""Trace exporters: Chrome trace-event JSON and Kanata pipeline logs.

Both formats are written from the same :class:`repro.obs.utrace.Collector`
lifecycle records (one ``[tid, pc, fetch, dispatch, issue, complete,
retire]`` row per recorded instruction, ``-1`` marking stages the
instruction never reached -- p-instructions have no retire, NOPs no
issue).

- **Chrome trace-event JSON** loads into Perfetto / ``chrome://tracing``.
  One simulated cycle maps to one microsecond of trace time.  Each
  instruction becomes a chain of async slices (``ph: "b"``/``"e"``,
  ``id`` = instruction uid) named after the pipeline stage occupied, so
  overlapping in-flight instructions render on parallel tracks; replays,
  redirects, and p-thread spawns are instant events.
- **Kanata** (version 0004) loads into the Konata pipeline visualizer.
  Stages are ``F``/``D``/``X``/``C``; retired instructions get ``R ...
  0``, never-retired p-instructions ``R ... 1`` (flushed).

Every Chrome export is validated against the trace-event schema before
it hits disk (:func:`validate_chrome_trace`); a failed validation raises
:class:`~repro.errors.TraceExportError` rather than producing a file
Perfetto would reject.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from repro.errors import TraceExportError

# Lifecycle record slots -- mirrors repro.obs.utrace (kept literal here
# so importing the exporter never pulls in the collector machinery).
_TID, _PC, _FETCH, _DISPATCH, _ISSUE, _COMPLETE, _RETIRE = range(7)

#: (chrome stage name, kanata stage name, record slot) in pipeline order.
STAGES = (
    ("fetch", "F", _FETCH),
    ("dispatch", "D", _DISPATCH),
    ("execute", "X", _ISSUE),
    ("commit", "C", _COMPLETE),
)

KANATA_VERSION = "0004"


def _stage_chain(rec: List[int]) -> List[Tuple[str, str, int]]:
    """The stages this instruction actually reached, in order."""
    return [
        (chrome, kanata, rec[slot])
        for chrome, kanata, slot in STAGES
        if rec[slot] >= 0
    ]


def _thread_name(tid: int) -> str:
    return "main thread" if tid == 0 else f"p-thread ctx {tid - 1}"


# --------------------------------------------------------------------- #
# Chrome trace-event JSON.
# --------------------------------------------------------------------- #


def build_chrome_trace(collector: Any, stats: Any) -> Dict[str, Any]:
    """Assemble the trace-event document (pure; no I/O)."""
    events: List[Dict[str, Any]] = []
    pid = 1
    tids_seen: Dict[int, None] = {}

    for uid in sorted(collector.insts):
        rec = collector.insts[uid]
        tid = rec[_TID]
        tids_seen.setdefault(tid, None)
        chain = _stage_chain(rec)
        if not chain:
            continue
        retire = rec[_RETIRE]
        args = {"uid": uid}
        if rec[_PC] >= 0:
            args["pc"] = f"0x{rec[_PC]:x}"
        for i, (name, _, start) in enumerate(chain):
            end = chain[i + 1][2] if i + 1 < len(chain) else (
                retire if retire >= 0 else start + 1
            )
            end = max(end, start)
            common = {
                "cat": "inst",
                "id": str(uid),
                "name": name,
                "pid": pid,
                "tid": tid,
            }
            events.append({"ph": "b", "ts": start, "args": args, **common})
            events.append({"ph": "e", "ts": end, **common})

    for cycle, uid in collector.replays:
        events.append({
            "ph": "i", "s": "t", "cat": "hazard", "name": "replay",
            "ts": cycle, "pid": pid, "tid": 0, "args": {"uid": uid},
        })
    for cycle, seq in collector.redirects:
        events.append({
            "ph": "i", "s": "p", "cat": "hazard", "name": "branch-redirect",
            "ts": cycle, "pid": pid, "tid": 0, "args": {"branch_seq": seq},
        })
    for cycle, static_id, trigger in collector.spawn_events:
        events.append({
            "ph": "i", "s": "p", "cat": "pthread", "name": "spawn",
            "ts": cycle, "pid": pid, "tid": 0,
            "args": {"static_id": static_id, "trigger_seq": trigger},
        })

    # Stable sort by timestamp only: per-instruction events are emitted
    # in b/e chain order, and stability keeps every same-cycle pair
    # (including zero-length spans) correctly begin-before-end.
    events.sort(key=lambda e: e["ts"])

    meta: List[Dict[str, Any]] = [{
        "ph": "M", "name": "process_name", "pid": pid, "ts": 0,
        "args": {"name": f"repro-sim {collector.label}"},
    }]
    for tid in sorted(tids_seen):
        meta.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "ts": 0, "args": {"name": _thread_name(tid)},
        })
        meta.append({
            "ph": "M", "name": "thread_sort_index", "pid": pid, "tid": tid,
            "ts": 0, "args": {"sort_index": tid},
        })

    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "label": collector.label,
            "cycles": stats.cycles,
            "committed": stats.committed,
            "clock": "1 cycle = 1us of trace time",
        },
    }


#: Required numeric/string fields per event phase (beyond "ph"/"name").
_PHASE_FIELDS = {
    "X": ("ts", "dur", "pid", "tid"),
    "B": ("ts", "pid", "tid"),
    "E": ("ts", "pid", "tid"),
    "b": ("ts", "pid", "tid", "id", "cat"),
    "e": ("ts", "pid", "tid", "id", "cat"),
    "i": ("ts", "pid", "tid"),
    "M": ("pid",),
    "C": ("ts", "pid", "tid"),
}


def validate_chrome_trace(doc: Any) -> List[str]:
    """Check a document against the trace-event schema (zero-dep).

    Returns a list of human-readable problems; empty means valid.  Checks
    the JSON-object-format envelope, per-event required fields by phase,
    numeric timestamps, and balanced async begin/end pairs.
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array 'traceEvents'"]
    async_depth: Dict[Tuple[str, str], int] = {}
    for i, ev in enumerate(events):
        if len(errors) >= 20:
            errors.append("... further errors suppressed")
            break
        if not isinstance(ev, dict):
            errors.append(f"event[{i}]: not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or not ph:
            errors.append(f"event[{i}]: missing 'ph'")
            continue
        if "name" not in ev:
            errors.append(f"event[{i}] ph={ph!r}: missing 'name'")
        for fld in _PHASE_FIELDS.get(ph, ("ts",)):
            if fld not in ev:
                errors.append(f"event[{i}] ph={ph!r}: missing {fld!r}")
            elif fld in ("ts", "dur", "pid", "tid") and not isinstance(
                ev[fld], (int, float)
            ):
                errors.append(
                    f"event[{i}] ph={ph!r}: {fld!r} must be numeric"
                )
        if ph in ("b", "e") and "id" in ev and "cat" in ev:
            key = (str(ev["cat"]), str(ev["id"]))
            depth = async_depth.get(key, 0) + (1 if ph == "b" else -1)
            if depth < 0:
                errors.append(
                    f"event[{i}]: async end without begin for id "
                    f"{ev['id']!r}"
                )
                depth = 0
            async_depth[key] = depth
    for (cat, id_), depth in async_depth.items():
        if depth > 0:
            errors.append(
                f"unbalanced async events: {depth} unclosed 'b' for "
                f"cat={cat!r} id={id_!r}"
            )
            if len(errors) >= 25:
                break
    return errors


def write_chrome_trace(path: str, collector: Any, stats: Any) -> None:
    """Build, validate, and write the Chrome trace; loud on failure."""
    doc = build_chrome_trace(collector, stats)
    problems = validate_chrome_trace(doc)
    if problems:
        raise TraceExportError(
            f"refusing to write invalid Chrome trace {path}: "
            + "; ".join(problems[:5]),
            path=path,
            reason="schema validation failed",
        )
    try:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, separators=(",", ":"))
            fh.write("\n")
    except OSError as exc:
        raise TraceExportError(
            f"could not write Chrome trace {path}: {exc}",
            path=path, reason=str(exc),
        ) from exc


def validate_chrome_file(path: str) -> None:
    """Load a written trace and re-validate it (CI gate); loud on failure."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        raise TraceExportError(
            f"could not load Chrome trace {path}: {exc}",
            path=path, reason=str(exc),
        ) from exc
    problems = validate_chrome_trace(doc)
    if problems:
        raise TraceExportError(
            f"Chrome trace {path} fails schema validation: "
            + "; ".join(problems[:5]),
            path=path,
            reason="schema validation failed",
        )


# --------------------------------------------------------------------- #
# Distributed span waterfall (repro.obs.tracectx records).
# --------------------------------------------------------------------- #


def build_span_trace(spans: Any) -> Dict[str, Any]:
    """Assemble a Chrome trace-event document from finished
    :class:`~repro.obs.tracectx.SpanRecord` objects (pure; no I/O).

    Each process label becomes one Chrome ``pid`` row (named via
    ``process_name`` metadata), each recording thread one ``tid``, and
    each span a complete (``ph: "X"``) slice.  Wall-clock timestamps
    are normalized to microseconds from the earliest span start so the
    cross-process waterfall lines up in one viewer timeline.
    """
    spans = list(spans)
    events: List[Dict[str, Any]] = []
    pids: Dict[str, int] = {}
    tids: Dict[Tuple[int, int], int] = {}
    t0 = min((s.start_s for s in spans), default=0.0)
    trace_ids: Dict[str, None] = {}

    for span in spans:
        pid = pids.setdefault(span.process, len(pids) + 1)
        tid = tids.setdefault((pid, span.tid), len(tids) + 1)
        trace_ids.setdefault(span.trace_id, None)
        args: Dict[str, Any] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
        }
        if span.parent_span_id:
            args["parent_span_id"] = span.parent_span_id
        for key, value in sorted(span.attrs.items()):
            args.setdefault(key, value)
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": "span",
            "ts": round((span.start_s - t0) * 1e6, 3),
            "dur": round(span.duration_s * 1e6, 3),
            "pid": pid,
            "tid": tid,
            "args": args,
        })

    events.sort(key=lambda e: e["ts"])

    meta: List[Dict[str, Any]] = []
    for process, pid in sorted(pids.items(), key=lambda kv: kv[1]):
        meta.append({
            "ph": "M", "name": "process_name", "pid": pid, "ts": 0,
            "args": {"name": process},
        })
    for (pid, raw_tid), tid in sorted(tids.items(), key=lambda kv: kv[1]):
        meta.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "ts": 0, "args": {"name": f"thread-{raw_tid}"},
        })

    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "kind": "repro distributed spans",
            "span_count": len(events),
            "trace_ids": sorted(trace_ids),
            "clock": "wall clock, us since earliest span",
        },
    }


def write_span_trace(path: str, spans: Any) -> None:
    """Build, validate, and write the span waterfall; loud on failure."""
    doc = build_span_trace(spans)
    problems = validate_chrome_trace(doc)
    if problems:
        raise TraceExportError(
            f"refusing to write invalid span trace {path}: "
            + "; ".join(problems[:5]),
            path=path,
            reason="schema validation failed",
        )
    try:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, separators=(",", ":"))
            fh.write("\n")
    except OSError as exc:
        raise TraceExportError(
            f"could not write span trace {path}: {exc}",
            path=path, reason=str(exc),
        ) from exc


# --------------------------------------------------------------------- #
# Kanata.
# --------------------------------------------------------------------- #


def build_kanata(collector: Any, stats: Any) -> str:
    """Assemble the Kanata 0004 log text (pure; no I/O)."""
    # Konata expects instruction ids in appearance order; renumber uids
    # by (fetch cycle, uid).
    order = sorted(
        collector.insts.items(), key=lambda kv: (kv[1][_FETCH], kv[0])
    )
    # (cycle, priority, line) -- E before S before R at equal cycles so a
    # stage handoff on one cycle parses as end-then-begin.
    lines: List[Tuple[int, int, str]] = []
    retire_id = 0
    for kid, (uid, rec) in enumerate(order):
        tid = rec[_TID]
        chain = _stage_chain(rec)
        if not chain:
            continue
        fetch = chain[0][2]
        label = f"uid={uid} tid={tid}"
        if rec[_PC] >= 0:
            label += f" pc=0x{rec[_PC]:x}"
        lines.append((fetch, 0, f"I\t{kid}\t{uid}\t{tid}"))
        lines.append((fetch, 1, f"L\t{kid}\t0\t{label}"))
        for i, (_, stage, start) in enumerate(chain):
            end = chain[i + 1][2] if i + 1 < len(chain) else (
                rec[_RETIRE] if rec[_RETIRE] >= 0 else start + 1
            )
            end = max(end, start)
            lines.append((start, 3, f"S\t{kid}\t0\t{stage}"))
            lines.append((end, 2, f"E\t{kid}\t0\t{stage}"))
        if rec[_RETIRE] >= 0:
            lines.append((rec[_RETIRE], 4, f"R\t{kid}\t{retire_id}\t0"))
            retire_id += 1
        else:  # p-instructions complete but never retire: mark flushed
            last_end = max(rec[_RETIRE], chain[-1][2] + 1)
            lines.append((last_end, 4, f"R\t{kid}\t{retire_id}\t1"))

    lines.sort(key=lambda item: (item[0], item[1]))
    out: List[str] = [f"Kanata\t{KANATA_VERSION}"]
    cycle = lines[0][0] if lines else 0
    out.append(f"C=\t{cycle}")
    for at, _, line in lines:
        if at > cycle:
            out.append(f"C\t{at - cycle}")
            cycle = at
        out.append(line)
    return "\n".join(out) + "\n"


def write_kanata(path: str, collector: Any, stats: Any) -> None:
    try:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(build_kanata(collector, stats))
    except OSError as exc:
        raise TraceExportError(
            f"could not write Kanata log {path}: {exc}",
            path=path, reason=str(exc),
        ) from exc
