"""Zero-dependency structured logging and hierarchical phase timing.

Telemetry is **off by default**: until :func:`configure` raises the
level, :func:`log_event` is a single dict lookup plus an integer
comparison, and :class:`Span` never touches the output stream.  Spans
*always* measure wall-clock time (two ``perf_counter`` calls per phase),
so callers can collect per-phase durations for result artifacts even
when nothing is being logged.

Events are emitted as JSON lines, one object per line::

    {"ts": 1722855600.0, "level": "info", "event": "span_end",
     "span": "experiment/simulate", "wall_s": 0.81,
     "cycles": 403121, "cycles_per_sec": 497680}

The ``span`` field is the slash-joined path of enclosing spans on the
current thread, so nested phases are attributable without a tracing
backend.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any, Dict, IO, Optional

from repro.obs import tracectx

#: Numeric severity per level name; "off" is above everything.
LEVELS: Dict[str, int] = {
    "debug": 10,
    "info": 20,
    "warning": 30,
    "error": 40,
    "off": 100,
}

LEVEL_NAMES = tuple(LEVELS)


class _State:
    """Process-wide logger state (threshold + sink + quiet flag)."""

    __slots__ = ("threshold", "stream", "lock", "quiet")

    def __init__(self) -> None:
        self.threshold = LEVELS["off"]
        self.stream: Optional[IO[str]] = None  # None -> sys.stderr
        self.lock = threading.Lock()
        #: ``--quiet``: suppresses *progress chatter* (simulator
        #: heartbeats) without lowering the log threshold or touching
        #: taps — the server's per-job streaming never sets it.
        self.quiet = False


_state = _State()
_local = threading.local()  # per-thread span stack

#: In-process event subscribers: each tap is called with the full
#: record dict for *every* event, regardless of the log level threshold
#: (a tap is an explicit subscription, not a verbosity setting).  The
#: experiment server uses one to stream per-job heartbeat/ETA progress.
_taps: list = []


def add_tap(fn) -> None:
    """Subscribe ``fn(record: dict)`` to every emitted event."""
    if fn not in _taps:
        _taps.append(fn)


def remove_tap(fn) -> None:
    try:
        _taps.remove(fn)
    except ValueError:
        pass


def has_taps() -> bool:
    """Cheap pre-check event producers hoist out of hot loops (the
    simulator heartbeat fires when debug logging *or* a tap wants it)."""
    return bool(_taps)


def configure(level: str = "info", stream: Optional[IO[str]] = None) -> None:
    """Enable telemetry at ``level``, optionally redirecting the sink.

    ``stream`` defaults to ``sys.stderr`` (resolved at emit time so
    pytest's capture and late redirection both work).
    """
    if level not in LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {LEVEL_NAMES}"
        )
    _state.threshold = LEVELS[level]
    if stream is not None:
        _state.stream = stream


def reset() -> None:
    """Return to the off-by-default state (tests use this)."""
    _state.threshold = LEVELS["off"]
    _state.stream = None
    _state.quiet = False
    _local.stack = []


def set_quiet(flag: bool) -> None:
    """Toggle progress-chatter suppression (``--quiet``)."""
    _state.quiet = bool(flag)


def is_quiet() -> bool:
    """Should progress chatter (heartbeats) stay silent?"""
    return _state.quiet


def is_enabled(level: str = "info") -> bool:
    """Would an event at ``level`` be emitted right now?"""
    return LEVELS.get(level, 0) >= _state.threshold


def current_level() -> str:
    """The active threshold's name (worker processes re-apply it)."""
    for name, value in LEVELS.items():
        if value == _state.threshold:
            return name
    return "off"


def current_span_path() -> str:
    """Slash-joined names of the spans open on this thread ('' if none)."""
    stack = getattr(_local, "stack", None)
    if not stack:
        return ""
    return "/".join(s.name for s in stack)


def log_event(event: str, level: str = "info", **fields: Any) -> None:
    """Emit one JSON-lines event if ``level`` clears the threshold.

    Registered taps receive the record regardless of the threshold; a
    tap that raises is dropped silently (observation must never take
    down the observed)."""
    emit = LEVELS.get(level, 0) >= _state.threshold
    if not emit and not _taps:
        return
    record: Dict[str, Any] = {
        "ts": round(time.time(), 6),
        "level": level,
        "event": event,
    }
    path = current_span_path()
    if path:
        record["span"] = path
    record.update(fields)
    for tap in list(_taps):
        try:
            tap(record)
        except Exception:
            remove_tap(tap)
    if not emit:
        return
    line = json.dumps(record, default=str, separators=(",", ":"))
    stream = _state.stream or sys.stderr
    with _state.lock:
        stream.write(line + "\n")


class Span:
    """A timed phase, usable as a context manager.

    ``wall_s`` is valid after ``__exit__`` regardless of the log level.
    If an annotated field named ``cycles`` is present at exit, the span
    derives ``cycles_per_sec`` so simulator phases report throughput
    for free.
    """

    __slots__ = ("name", "fields", "wall_s", "path", "_t0", "_trace")

    def __init__(self, name: str, **fields: Any) -> None:
        self.name = name
        self.fields = fields
        self.wall_s = 0.0
        self.path = name
        self._t0 = 0.0
        self._trace = None

    def annotate(self, **fields: Any) -> "Span":
        """Attach extra fields reported on the span_end event."""
        self.fields.update(fields)
        return self

    def __enter__(self) -> "Span":
        stack = getattr(_local, "stack", None)
        if stack is None:
            stack = _local.stack = []
        stack.append(self)
        self.path = "/".join(s.name for s in stack)
        if tracectx.is_active():
            self._trace = tracectx.start_span(self.name)
        if _state.threshold <= LEVELS["debug"]:
            log_event("span_begin", level="debug", name=self.name,
                      **self.fields)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_s = time.perf_counter() - self._t0
        stack = getattr(_local, "stack", [])
        if stack and stack[-1] is self:
            stack.pop()
        if self._trace is not None:
            attrs = {
                k: v for k, v in self.fields.items()
                if isinstance(v, (str, int, float, bool))
            }
            attrs["span_path"] = self.path
            tracectx.finish_span(self.name, self._trace, attrs)
            self._trace = None
        if _state.threshold <= LEVELS["info"]:
            fields = dict(self.fields)
            if exc_type is not None:
                fields["error"] = exc_type.__name__
            cycles = fields.get("cycles")
            if isinstance(cycles, (int, float)) and self.wall_s > 0:
                fields["cycles_per_sec"] = round(cycles / self.wall_s)
            log_event("span_end", level="info", name=self.name,
                      span_path=self.path, wall_s=round(self.wall_s, 6),
                      **fields)
        return False


def span(name: str, **fields: Any) -> Span:
    """Open a hierarchical timed span: ``with span('simulate', bench=b):``."""
    return Span(name, **fields)
