"""Observability: structured logging, phase timing, metrics, manifests.

The subsystem the rest of the stack reports through:

- :mod:`repro.obs.log` -- JSON-lines event logger plus the hierarchical
  :func:`span` phase timer (off-by-default; spans still measure time);
- :mod:`repro.obs.metrics` -- the always-on :data:`counters` registry of
  counters and gauges;
- :mod:`repro.obs.manifest` -- :class:`RunWriter`, which turns result
  rows into ``manifest.json`` / ``results.jsonl`` / ``run_table.csv``
  artifacts with configuration fingerprints;
- :mod:`repro.obs.utrace` -- opt-in microarchitectural tracing
  (instruction lifecycles, stall attribution, per-event energy audit),
  imported lazily by the pipeline so the off path costs nothing;
- :mod:`repro.obs.export` -- Chrome trace-event and Kanata exporters
  for utrace collections, with built-in schema validation.

Typical harness usage::

    from repro import obs

    obs.configure(level="info")
    with obs.span("simulate", benchmark="mcf") as sp:
        stats = simulate(trace, machine)
        sp.annotate(cycles=stats.cycles)
    obs.counters.counter("harness.runs").add()
"""

from repro.obs import tracectx
from repro.obs.log import (
    LEVEL_NAMES,
    LEVELS,
    Span,
    add_tap,
    configure,
    current_level,
    current_span_path,
    has_taps,
    is_enabled,
    is_quiet,
    log_event,
    remove_tap,
    reset,
    set_quiet,
    span,
)
from repro.obs.manifest import (
    RESULTS_SCHEMA_VERSION,
    RunWriter,
    config_fingerprint,
    stable_json,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LatencyWindow,
    MetricsRegistry,
    counters,
    snapshot_delta,
)

__all__ = [
    "LEVELS",
    "LEVEL_NAMES",
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyWindow",
    "MetricsRegistry",
    "RESULTS_SCHEMA_VERSION",
    "RunWriter",
    "Span",
    "add_tap",
    "config_fingerprint",
    "configure",
    "counters",
    "current_level",
    "current_span_path",
    "has_taps",
    "is_enabled",
    "is_quiet",
    "log_event",
    "remove_tap",
    "reset",
    "set_quiet",
    "snapshot_delta",
    "span",
    "stable_json",
    "tracectx",
]
