"""Counters and gauges: a tiny always-on metrics registry.

Counters are plain attribute increments on slotted objects, cheap
enough to leave enabled unconditionally (they count *events* --
candidates examined, cache hits, simulations run -- never per-cycle
work).  Hot call sites hold a module-level reference::

    _HITS = counters.counter("harness.experiment.baseline_cache.hits")
    ...
    _HITS.add()

``counters.snapshot()`` feeds the run manifest, so every run records
what its phases actually did.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Union


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-value-wins measurement (e.g. retired instructions/sec)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class LatencyWindow:
    """A bounded ring of recent observations with percentile queries.

    The experiment server's admission controller derives its
    ``Retry-After`` from the observed p95 service time, and the load
    harness summarizes per-request latencies the same way, so both read
    from this one implementation.  Thread-safe: observations come from
    handler/executor threads, percentiles from whoever is reporting.
    """

    __slots__ = ("capacity", "_values", "_next", "_count", "_lock")

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("LatencyWindow capacity must be >= 1")
        self.capacity = capacity
        self._values = [0.0] * capacity
        self._next = 0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._values[self._next] = float(value)
            self._next = (self._next + 1) % self.capacity
            if self._count < self.capacity:
                self._count += 1

    def __len__(self) -> int:
        return self._count

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) of the window, by the
        nearest-rank method; 0.0 while the window is empty."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            values = sorted(self._values[: self._count])
        rank = max(1, -(-int(self._count * q) // 100))  # ceil
        return values[min(rank, self._count) - 1]

    def p95(self) -> float:
        return self.percentile(95.0)


def percentile(values, q: float) -> float:
    """Nearest-rank percentile of an arbitrary sequence (0.0 if empty)."""
    window = LatencyWindow(capacity=max(1, len(values)))
    for value in values:
        window.observe(value)
    return window.percentile(q)


#: Fixed log-spaced latency bucket upper bounds (seconds), 1-2-5 per
#: decade from 1 ms to 500 s.  Fixed bounds are what make histograms
#: *mergeable*: a worker's delta adds bucket-for-bucket into the
#: parent's histogram, exactly like counters.
HISTOGRAM_BOUNDS: tuple = (
    0.001, 0.002, 0.005,
    0.01, 0.02, 0.05,
    0.1, 0.2, 0.5,
    1.0, 2.0, 5.0,
    10.0, 20.0, 50.0,
    100.0, 200.0, 500.0,
)


class Histogram:
    """A fixed-bucket latency histogram with worker-delta merging.

    Observations land in log-spaced buckets (:data:`HISTOGRAM_BOUNDS`
    plus a final +Inf bucket).  The registry snapshots it as a
    JSON-safe state dict ``{"buckets": [...], "sum": s, "count": n}``
    so the existing snapshot/delta/merge machinery ships it across
    process boundaries unchanged.  Thread-safe.
    """

    __slots__ = ("name", "bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(self, name: str, bounds=HISTOGRAM_BOUNDS) -> None:
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self._counts = [0] * (len(self.bounds) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    def state(self) -> Dict[str, object]:
        """JSON-safe snapshot: per-bucket counts (non-cumulative),
        total sum and count."""
        with self._lock:
            return {
                "buckets": list(self._counts),
                "sum": self._sum,
                "count": self._count,
            }

    #: Snapshot protocol: the registry reads ``metric.value``.
    @property
    def value(self) -> Dict[str, object]:
        return self.state()

    def merge_state(self, state: Mapping[str, object]) -> None:
        """Add another histogram's (delta) state bucket-for-bucket."""
        buckets = list(state.get("buckets") or [])
        with self._lock:
            for i, n in enumerate(buckets[: len(self._counts)]):
                self._counts[i] += int(n)
            self._sum += float(state.get("sum") or 0.0)
            self._count += int(state.get("count") or 0)

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._sum = 0.0
            self._count = 0

    def __len__(self) -> int:
        return self._count

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (0..100) as the upper edge
        of the bucket holding that rank -- within one bucket width of
        the true value by construction.  0.0 while empty; the +Inf
        bucket reports the largest finite bound."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"quantile must be in [0, 100], got {q}")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return 0.0
        rank = max(1, -(-int(total * q) // 100))  # ceil, nearest-rank
        seen = 0
        for i, n in enumerate(counts):
            seen += n
            if seen >= rank:
                if i < len(self.bounds):
                    return self.bounds[i]
                return self.bounds[-1]
        return self.bounds[-1]


def _is_histogram_state(value: object) -> bool:
    return isinstance(value, Mapping) and "buckets" in value


def _histogram_state_delta(
    after: Mapping[str, object], before: Optional[Mapping[str, object]]
) -> Dict[str, object]:
    """Elementwise ``after - before`` for histogram state dicts."""
    after_buckets = list(after.get("buckets") or [])
    before_buckets: List[int] = []
    before_sum = 0.0
    before_count = 0
    if before is not None and _is_histogram_state(before):
        before_buckets = list(before.get("buckets") or [])
        before_sum = float(before.get("sum") or 0.0)
        before_count = int(before.get("count") or 0)
    before_buckets += [0] * (len(after_buckets) - len(before_buckets))
    return {
        "buckets": [
            int(a) - int(b) for a, b in zip(after_buckets, before_buckets)
        ],
        "sum": float(after.get("sum") or 0.0) - before_sum,
        "count": int(after.get("count") or 0) - before_count,
    }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Name -> metric registry with get-or-create semantics."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.setdefault(name, cls(name))
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)  # type: ignore[return-value]

    def histograms(self) -> Dict[str, Histogram]:
        """Registered histograms by name (for exposition renderers)."""
        return {
            name: metric
            for name, metric in sorted(self._metrics.items())
            if isinstance(metric, Histogram)
        }

    def snapshot(self) -> Dict[str, float]:
        """All metric values, sorted by name (counters as ints)."""
        return {
            name: self._metrics[name].value
            for name in sorted(self._metrics)
        }

    def delta_since(self, before: Mapping[str, float]) -> Dict[str, float]:
        """Type-aware change since a :meth:`snapshot`: counters report the
        difference, gauges report their current value (they are last-value
        metrics, so "delta" has no meaning).  Zero entries are dropped."""
        out: Dict[str, float] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Gauge):
                if metric.value:
                    out[name] = metric.value
            elif isinstance(metric, Histogram):
                change = _histogram_state_delta(
                    metric.state(), before.get(name)  # type: ignore[arg-type]
                )
                if change["count"]:
                    out[name] = change  # type: ignore[assignment]
            else:
                change = metric.value - before.get(name, 0)
                if change:
                    out[name] = change
        return out

    def merge(self, values: Mapping[str, float]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counter values are *added* (the argument is treated as a delta, as
        produced by :func:`snapshot_delta`); gauge values are *set*
        (last-writer-wins).  Names not yet registered here become counters,
        the common case for worker-process telemetry arriving before the
        parent touched the same code path.
        """
        for name, value in values.items():
            if _is_histogram_state(value):
                self.histogram(name).merge_state(value)  # type: ignore[arg-type]
                continue
            metric = self._metrics.get(name)
            if metric is None:
                metric = self.counter(name)
            if isinstance(metric, Histogram):
                # A scalar arriving for a histogram name: treat it as
                # one observation rather than corrupting the state.
                metric.observe(float(value))
            elif isinstance(metric, Gauge):
                metric.set(value)
            else:
                metric.add(value)

    def reset(self) -> None:
        """Zero every metric but keep registrations (and cached refs) alive."""
        with self._lock:
            for metric in self._metrics.values():
                if isinstance(metric, Histogram):
                    metric.reset()
                else:
                    metric.value = 0 if isinstance(metric, Counter) else 0.0

    def clear(self) -> None:
        """Drop all registrations (invalidates cached references)."""
        with self._lock:
            self._metrics.clear()


def snapshot_delta(
    before: Mapping[str, float], after: Mapping[str, float]
) -> Dict[str, float]:
    """The per-name difference between two :meth:`MetricsRegistry.snapshot`
    calls, suitable for :meth:`MetricsRegistry.merge`.

    Counters that did not move are dropped so merges stay small; names new
    in ``after`` count from zero.  (Gauges are last-value metrics, so their
    "delta" is simply the ``after`` value.)
    """
    delta: Dict[str, float] = {}
    for name, value in after.items():
        if _is_histogram_state(value):
            change = _histogram_state_delta(
                value, before.get(name)  # type: ignore[arg-type]
            )
            if change["count"]:
                delta[name] = change  # type: ignore[assignment]
            continue
        change = value - before.get(name, 0)
        if change:
            delta[name] = change
    return delta


#: The process-wide default registry all repro instrumentation uses.
counters = MetricsRegistry()
