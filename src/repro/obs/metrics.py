"""Counters and gauges: a tiny always-on metrics registry.

Counters are plain attribute increments on slotted objects, cheap
enough to leave enabled unconditionally (they count *events* --
candidates examined, cache hits, simulations run -- never per-cycle
work).  Hot call sites hold a module-level reference::

    _HITS = counters.counter("harness.experiment.baseline_cache.hits")
    ...
    _HITS.add()

``counters.snapshot()`` feeds the run manifest, so every run records
what its phases actually did.
"""

from __future__ import annotations

import threading
from typing import Dict, Mapping, Union


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-value-wins measurement (e.g. retired instructions/sec)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class LatencyWindow:
    """A bounded ring of recent observations with percentile queries.

    The experiment server's admission controller derives its
    ``Retry-After`` from the observed p95 service time, and the load
    harness summarizes per-request latencies the same way, so both read
    from this one implementation.  Thread-safe: observations come from
    handler/executor threads, percentiles from whoever is reporting.
    """

    __slots__ = ("capacity", "_values", "_next", "_count", "_lock")

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("LatencyWindow capacity must be >= 1")
        self.capacity = capacity
        self._values = [0.0] * capacity
        self._next = 0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._values[self._next] = float(value)
            self._next = (self._next + 1) % self.capacity
            if self._count < self.capacity:
                self._count += 1

    def __len__(self) -> int:
        return self._count

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) of the window, by the
        nearest-rank method; 0.0 while the window is empty."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            values = sorted(self._values[: self._count])
        rank = max(1, -(-int(self._count * q) // 100))  # ceil
        return values[min(rank, self._count) - 1]

    def p95(self) -> float:
        return self.percentile(95.0)


def percentile(values, q: float) -> float:
    """Nearest-rank percentile of an arbitrary sequence (0.0 if empty)."""
    window = LatencyWindow(capacity=max(1, len(values)))
    for value in values:
        window.observe(value)
    return window.percentile(q)


Metric = Union[Counter, Gauge]


class MetricsRegistry:
    """Name -> metric registry with get-or-create semantics."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.setdefault(name, cls(name))
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def snapshot(self) -> Dict[str, float]:
        """All metric values, sorted by name (counters as ints)."""
        return {
            name: self._metrics[name].value
            for name in sorted(self._metrics)
        }

    def delta_since(self, before: Mapping[str, float]) -> Dict[str, float]:
        """Type-aware change since a :meth:`snapshot`: counters report the
        difference, gauges report their current value (they are last-value
        metrics, so "delta" has no meaning).  Zero entries are dropped."""
        out: Dict[str, float] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Gauge):
                if metric.value:
                    out[name] = metric.value
            else:
                change = metric.value - before.get(name, 0)
                if change:
                    out[name] = change
        return out

    def merge(self, values: Mapping[str, float]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counter values are *added* (the argument is treated as a delta, as
        produced by :func:`snapshot_delta`); gauge values are *set*
        (last-writer-wins).  Names not yet registered here become counters,
        the common case for worker-process telemetry arriving before the
        parent touched the same code path.
        """
        for name, value in values.items():
            metric = self._metrics.get(name)
            if metric is None:
                metric = self.counter(name)
            if isinstance(metric, Gauge):
                metric.set(value)
            else:
                metric.add(value)

    def reset(self) -> None:
        """Zero every metric but keep registrations (and cached refs) alive."""
        with self._lock:
            for metric in self._metrics.values():
                metric.value = 0 if isinstance(metric, Counter) else 0.0

    def clear(self) -> None:
        """Drop all registrations (invalidates cached references)."""
        with self._lock:
            self._metrics.clear()


def snapshot_delta(
    before: Mapping[str, float], after: Mapping[str, float]
) -> Dict[str, float]:
    """The per-name difference between two :meth:`MetricsRegistry.snapshot`
    calls, suitable for :meth:`MetricsRegistry.merge`.

    Counters that did not move are dropped so merges stay small; names new
    in ``after`` count from zero.  (Gauges are last-value metrics, so their
    "delta" is simply the ``after`` value.)
    """
    delta: Dict[str, float] = {}
    for name, value in after.items():
        change = value - before.get(name, 0)
        if change:
            delta[name] = change
    return delta


#: The process-wide default registry all repro instrumentation uses.
counters = MetricsRegistry()
