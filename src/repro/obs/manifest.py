"""Run manifests and machine-readable result artifacts.

One "run" is a CLI invocation (or any harness driver) writing into an
output directory::

    <out>/manifest.json    -- provenance: command, argv, config
                              fingerprints, package/python versions,
                              timestamps, counters snapshot
    <out>/results.jsonl    -- one JSON object per (benchmark, target)
    <out>/run_table.csv    -- the same rows, appendable across runs
                              (mubench-style run table: header written
                              once, later runs append)

Rows are plain dicts -- whatever :meth:`ExperimentResult.summary_row`
plus the phase timings produced.  The CSV reuses the header of an
existing file so accumulated tables stay rectangular even when a later
version adds columns.
"""

from __future__ import annotations

import csv
import dataclasses
import hashlib
import json
import os
import platform
import sys
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence

#: Identity columns always ordered first in ``run_table.csv``.
RUN_TABLE_LEAD_COLUMNS = ("run_id", "command", "benchmark", "target")

MANIFEST_NAME = "manifest.json"
RESULTS_NAME = "results.jsonl"
RUN_TABLE_NAME = "run_table.csv"

#: Layout version of the run artifacts (manifest + results.jsonl rows).
#: Stamped into ``manifest.json`` as ``schema_version`` and into every
#: ``results.jsonl`` record as a ``schema`` header field, so consumers
#: (the :mod:`repro.analytics` ingester first among them) can reject or
#: upgrade old layouts instead of mis-parsing them.
#:
#: - 1: the implicit PR 1-5 layout (no stamp anywhere);
#: - 2: stamped records; manifest carries ``schema_version`` and a
#:   best-effort ``git_commit``.
RESULTS_SCHEMA_VERSION = 2


def stable_json(obj: Any) -> str:
    """Deterministic JSON used for hashing and manifest payloads."""
    return json.dumps(obj, sort_keys=True, default=str,
                      separators=(",", ":"))


def config_fingerprint(config: Any) -> str:
    """Short stable hash of a (frozen dataclass) configuration object."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload = stable_json(dataclasses.asdict(config))
    else:
        payload = repr(config)
    digest = hashlib.sha256(
        f"{type(config).__name__}:{payload}".encode()
    ).hexdigest()
    return digest[:16]


def _package_version() -> str:
    try:  # late import: obs must stay importable on its own
        from repro import __version__

        return __version__
    except Exception:  # pragma: no cover - broken install only
        return "unknown"


def _utc(ts: float) -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(ts))


def git_commit() -> Optional[str]:
    """Best-effort commit hash for timeline attribution.

    ``GITHUB_SHA`` (CI) wins over asking git; neither being available
    returns ``None`` -- provenance must never fail a run.
    """
    sha = os.environ.get("GITHUB_SHA", "").strip()
    if sha:
        return sha
    try:
        import subprocess

        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5,
        )
    except Exception:
        return None
    if proc.returncode != 0:
        return None
    out = proc.stdout.strip()
    return out or None


class RunWriter:
    """Accumulates result rows and writes the three artifacts.

    ``out_dir`` is created on construction; ``results.jsonl`` and
    ``run_table.csv`` are appended (repeat runs into the same directory
    accumulate), ``manifest.json`` describes the latest run.
    """

    def __init__(
        self,
        out_dir: str,
        command: str = "",
        argv: Optional[Sequence[str]] = None,
        run_id: Optional[str] = None,
        configs: Optional[Mapping[str, Any]] = None,
        started: Optional[float] = None,
    ) -> None:
        self.out_dir = out_dir
        self.command = command
        self.argv = list(argv) if argv is not None else []
        # Callers that construct the writer only at teardown can pass the
        # command's real start time so manifest wall_s covers the whole run.
        self.started = time.time() if started is None else started
        self.run_id = run_id or (
            time.strftime("%Y%m%dT%H%M%S", time.gmtime(self.started))
            + f"-{os.getpid()}"
        )
        self.configs = dict(configs or {})
        self.rows: List[Dict[str, Any]] = []
        os.makedirs(out_dir, exist_ok=True)

    # ----------------------------------------------------------------- #

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.out_dir, MANIFEST_NAME)

    @property
    def results_path(self) -> str:
        return os.path.join(self.out_dir, RESULTS_NAME)

    @property
    def run_table_path(self) -> str:
        return os.path.join(self.out_dir, RUN_TABLE_NAME)

    # ----------------------------------------------------------------- #

    def add_row(self, row: Mapping[str, Any]) -> None:
        """Record one (benchmark, target) result row and append it to
        ``results.jsonl`` immediately (crash-safe partial results)."""
        row = dict(row)
        self.rows.append(row)
        # The JSONL record carries a ``schema`` header field the
        # in-memory row does not: run_table.csv and figure rows keep
        # their historical shape, while on-disk records self-describe
        # their layout version for the analytics ingester.
        record = {"schema": RESULTS_SCHEMA_VERSION}
        record.update(row)
        with open(self.results_path, "a", encoding="utf-8") as fh:
            fh.write(stable_json(record) + "\n")

    def add_rows(self, rows: Sequence[Mapping[str, Any]]) -> None:
        """Record a batch of rows (see :meth:`add_row`)."""
        for row in rows:
            self.add_row(row)

    def _append_run_table(self) -> None:
        lead = [c for c in RUN_TABLE_LEAD_COLUMNS]
        extra = sorted(
            {k for row in self.rows for k in row} - set(lead)
        )
        columns = lead + extra
        write_header = True
        if os.path.exists(self.run_table_path):
            with open(self.run_table_path, "r", encoding="utf-8",
                      newline="") as fh:
                first = fh.readline().strip()
            if first:
                # Keep the accumulated table rectangular: reuse its header.
                columns = next(csv.reader([first]))
                write_header = False
        with open(self.run_table_path, "a", encoding="utf-8",
                  newline="") as fh:
            writer = csv.writer(fh)
            if write_header:
                writer.writerow(columns)
            for row in self.rows:
                full = {"run_id": self.run_id, "command": self.command}
                full.update(row)
                writer.writerow([full.get(c, "") for c in columns])

    def finalize(
        self,
        counters: Optional[Mapping[str, float]] = None,
        **extra: Any,
    ) -> str:
        """Write ``run_table.csv`` rows and ``manifest.json``; returns the
        manifest path."""
        self._append_run_table()
        finished = time.time()
        manifest: Dict[str, Any] = {
            "schema_version": RESULTS_SCHEMA_VERSION,
            "run_id": self.run_id,
            "command": self.command,
            "argv": self.argv,
            "package": "repro",
            "version": _package_version(),
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "started": _utc(self.started),
            "finished": _utc(finished),
            "wall_s": round(finished - self.started, 6),
            "n_rows": len(self.rows),
            "configs": {
                name: {
                    "fingerprint": config_fingerprint(cfg),
                    "values": dataclasses.asdict(cfg)
                    if dataclasses.is_dataclass(cfg)
                    and not isinstance(cfg, type)
                    else repr(cfg),
                }
                for name, cfg in self.configs.items()
            },
        }
        commit = git_commit()
        if commit:
            manifest["git_commit"] = commit
        if counters:
            manifest["counters"] = dict(counters)
        manifest.update(extra)
        with open(self.manifest_path, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True, default=str)
            fh.write("\n")
        return self.manifest_path
