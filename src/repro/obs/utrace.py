"""Opt-in microarchitectural tracing (``repro.obs.utrace``).

The introspection layer behind ``repro trace``: when enabled, the timing
pipeline records **instruction lifecycle events** (fetch -> dispatch ->
issue -> complete -> retire, plus replays, redirects, and p-thread
spawns) and accumulates **per-event energy** through
:class:`repro.energy.wattch.EnergyAudit`, which is cross-checked against
the closed-form E1-E8 totals at the end of every traced simulation.

Design constraints, in order:

- **Zero overhead when off.**  The pipeline asks once per simulation
  (:func:`collector_for`) and hoists a single ``trace_on`` boolean into
  its hot-loop locals -- the same no-op fast-path pattern as the obs
  heartbeat.  With tracing disabled nothing below this module's
  ``_CONFIG is None`` check ever runs.
- **Bounded volume.**  Lifecycle records are confined to a cycle window
  (``--trace-window START:END``) and capped at ``max_insts`` recorded
  instructions; energy auditing always covers the whole run (the E1-E8
  cross-check is meaningless on a partial stream).
- **Parallel-engine safe.**  Configuration is encodable
  (:func:`encode`/:func:`apply_encoded`) so worker initializers can
  re-apply it under spawn, artifact records flow back to the parent on
  the :class:`~repro.harness.experiment.ExperimentResult`, and file
  names carry the scoped cell key so concurrent sweep cells never
  collide.

Typical use::

    utrace.configure(out_dir="runs/trace", window=(0, 500_000))
    with utrace.scope(label="mcf.L.optimized", energy=energy_cfg):
        stats = simulate(trace, machine, pthreads)
    artifacts = utrace.drain_artifacts()
"""

from __future__ import annotations

import contextlib
import json
import os
import re
import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigError

#: An effectively-unbounded window end (cycle counts stay far below it).
WINDOW_END_MAX = 1 << 62

#: Default cap on recorded instruction lifecycles per simulation.
DEFAULT_MAX_INSTS = 200_000

#: Export formats this layer knows how to write.
FORMATS = ("chrome", "kanata")

#: Subdirectory of the run's ``--out`` directory holding trace files.
UTRACE_DIR = "utrace"


@dataclass(frozen=True)
class UTraceConfig:
    """Process-wide tracing configuration (immutable once applied)."""

    out_dir: str
    window: Tuple[int, int] = (0, WINDOW_END_MAX)
    formats: Tuple[str, ...] = FORMATS
    energy_audit: bool = True
    audit_tolerance: float = 1e-3
    max_insts: int = DEFAULT_MAX_INSTS


_CONFIG: Optional[UTraceConfig] = None

#: Artifact records produced by finalized collectors in this process.
_ARTIFACTS: List[Dict[str, Any]] = []
_ARTIFACTS_LOCK = threading.Lock()

_scope = threading.local()  # .label, .cell, .energy


def parse_window(spec: str) -> Tuple[int, int]:
    """Parse a ``START:END`` cycle range (either side may be empty)."""
    match = re.fullmatch(r"(\d*):(\d*)", spec.strip())
    if match is None:
        raise ConfigError(
            f"bad trace window {spec!r}: expected START:END cycle range"
        )
    start = int(match.group(1)) if match.group(1) else 0
    end = int(match.group(2)) if match.group(2) else WINDOW_END_MAX
    if end < start:
        raise ConfigError(
            f"bad trace window {spec!r}: END must be >= START"
        )
    return (start, end)


def configure(
    out_dir: str,
    window: Optional[Tuple[int, int]] = None,
    formats: Optional[Tuple[str, ...]] = None,
    energy_audit: bool = True,
    audit_tolerance: float = 1e-3,
    max_insts: int = DEFAULT_MAX_INSTS,
) -> UTraceConfig:
    """Enable tracing process-wide; subsequent simulations are traced."""
    global _CONFIG
    formats = tuple(formats) if formats is not None else FORMATS
    for fmt in formats:
        if fmt not in FORMATS:
            raise ConfigError(
                f"unknown trace format {fmt!r}; expected one of {FORMATS}"
            )
    _CONFIG = UTraceConfig(
        out_dir=out_dir,
        window=window or (0, WINDOW_END_MAX),
        formats=formats,
        energy_audit=energy_audit,
        audit_tolerance=audit_tolerance,
        max_insts=max_insts,
    )
    return _CONFIG


def disable() -> None:
    """Return to the off-by-default state (tests and CLI teardown)."""
    global _CONFIG
    _CONFIG = None


def enabled() -> bool:
    return _CONFIG is not None


def config() -> Optional[UTraceConfig]:
    return _CONFIG


def encode() -> Optional[Dict[str, Any]]:
    """The active configuration as a plain dict for worker initargs."""
    if _CONFIG is None:
        return None
    return {
        "out_dir": _CONFIG.out_dir,
        "window": list(_CONFIG.window),
        "formats": list(_CONFIG.formats),
        "energy_audit": _CONFIG.energy_audit,
        "audit_tolerance": _CONFIG.audit_tolerance,
        "max_insts": _CONFIG.max_insts,
    }


def apply_encoded(payload: Optional[Dict[str, Any]]) -> None:
    """Worker-side: re-apply a parent's :func:`encode` payload."""
    if payload is None:
        disable()
        return
    configure(
        out_dir=payload["out_dir"],
        window=tuple(payload["window"]),
        formats=tuple(payload["formats"]),
        energy_audit=payload["energy_audit"],
        audit_tolerance=payload["audit_tolerance"],
        max_insts=payload["max_insts"],
    )


# --------------------------------------------------------------------- #
# Scoping: who is being simulated (labels artifact files) and with which
# energy configuration (calibrates the audit).
# --------------------------------------------------------------------- #


@contextlib.contextmanager
def scope(
    label: Optional[str] = None,
    energy: Optional[Any] = None,
    cell: Optional[str] = None,
) -> Iterator[None]:
    """Attach a label / energy config / cell key to nested simulations."""
    prev = (
        getattr(_scope, "label", None),
        getattr(_scope, "energy", None),
        getattr(_scope, "cell", None),
    )
    if label is not None:
        _scope.label = label
    if energy is not None:
        _scope.energy = energy
    if cell is not None:
        _scope.cell = cell
    try:
        yield
    finally:
        _scope.label, _scope.energy, _scope.cell = prev


def current_label() -> Optional[str]:
    return getattr(_scope, "label", None)


def current_energy() -> Optional[Any]:
    return getattr(_scope, "energy", None)


def current_cell() -> Optional[str]:
    return getattr(_scope, "cell", None)


# --------------------------------------------------------------------- #
# Artifact registry.  Collectors register what they wrote; the harness
# ships worker-side records back on the ExperimentResult and the CLI
# drains the registry into manifest.json.
# --------------------------------------------------------------------- #


def register_artifacts(artifacts: List[Dict[str, Any]]) -> None:
    with _ARTIFACTS_LOCK:
        _ARTIFACTS.extend(artifacts)


def artifact_mark() -> int:
    """Current registry length; pair with :func:`artifacts_since`."""
    return len(_ARTIFACTS)


def artifacts_since(mark: int) -> List[Dict[str, Any]]:
    with _ARTIFACTS_LOCK:
        return [dict(a) for a in _ARTIFACTS[mark:]]


def drain_artifacts() -> List[Dict[str, Any]]:
    """Pop every registered artifact record (CLI manifest writing)."""
    with _ARTIFACTS_LOCK:
        out = list(_ARTIFACTS)
        _ARTIFACTS.clear()
    return out


def _sanitize(label: str) -> str:
    return re.sub(r"[^A-Za-z0-9._+-]+", "_", label).strip("._") or "sim"


# --------------------------------------------------------------------- #
# The collector.
# --------------------------------------------------------------------- #

# Lifecycle record slots (per recorded instruction).
_TID, _PC, _FETCH, _DISPATCH, _ISSUE, _COMPLETE, _RETIRE = range(7)

#: Thread id of the main thread in exported traces; p-thread contexts
#: use ``1 + static_id``.
MAIN_TID = 0


class Collector:
    """Event sink for one traced simulation.

    The pipeline hoists bound methods of this object into its hot-loop
    locals and calls them behind a single ``trace_on`` boolean.  All
    lifecycle recording is window- and volume-capped; energy auditing
    (when enabled) covers the entire run.
    """

    def __init__(
        self,
        machine: Any,
        cfg: Optional[UTraceConfig] = None,
        label: Optional[str] = None,
        energy: Optional[Any] = None,
    ) -> None:
        cfg = cfg or _CONFIG
        if cfg is None:
            raise ConfigError("utrace is not configured")
        self.cfg = cfg
        self.machine = machine
        self.label = label or current_label() or "sim"
        self.cell = current_cell()
        self.t0, self.t1 = cfg.window
        #: uid -> [tid, pc, fetch, dispatch, issue, complete, retire]
        self.insts: Dict[int, List[int]] = {}
        self.dropped_insts = 0
        self.replays: List[Tuple[int, int]] = []  # (cycle, uid)
        self.redirects: List[Tuple[int, int]] = []  # (cycle, branch seq)
        self.spawn_events: List[Tuple[int, int, int]] = []
        self.audit = None
        if cfg.energy_audit:
            from repro.config import EnergyConfig
            from repro.energy.wattch import EnergyModel

            energy_cfg = energy or current_energy() or EnergyConfig()
            self.audit = EnergyModel(energy_cfg, machine).audit()

    # -- lifecycle ----------------------------------------------------- #

    def _record(self, now: int, uid: int, tid: int, pc: int) -> bool:
        if now < self.t0 or now > self.t1:
            return False
        if len(self.insts) >= self.cfg.max_insts:
            self.dropped_insts += 1
            return False
        self.insts[uid] = [tid, pc, now, -1, -1, -1, -1]
        return True

    def fetch_main(self, now: int, seq: int, pc: int) -> None:
        self._record(now, seq, MAIN_TID, pc)

    def fetch_pth(self, now: int, uid: int, static_id: int) -> None:
        self._record(now, uid, 1 + static_id, -1)

    def dispatch(self, now: int, uid: int, is_pth: bool) -> None:
        rec = self.insts.get(uid)
        if rec is not None:
            rec[_DISPATCH] = now
        if self.audit is not None:
            self.audit.dispatch(is_pth)

    def issue(self, now: int, uid: int, complete_at: int) -> None:
        rec = self.insts.get(uid)
        if rec is not None:
            rec[_ISSUE] = now
            rec[_COMPLETE] = complete_at

    def retire(self, now: int, uid: int) -> None:
        rec = self.insts.get(uid)
        if rec is not None:
            rec[_RETIRE] = now

    def replay(self, now: int, uid: int) -> None:
        if self.t0 <= now <= self.t1:
            self.replays.append((now, uid))

    def redirect(self, now: int, seq: int) -> None:
        if self.t0 <= now <= self.t1:
            self.redirects.append((now, seq))

    def spawn(self, now: int, static_id: int, trigger_seq: int) -> None:
        if self.t0 <= now <= self.t1:
            self.spawn_events.append((now, static_id, trigger_seq))

    # -- energy-audit events ------------------------------------------- #
    # Thin pass-throughs kept as methods so the pipeline needs exactly
    # one tracer handle; each mirrors one ActivityCounts increment.

    def fetch_block(self, is_pth: bool) -> None:
        if self.audit is not None:
            self.audit.fetch_block(is_pth)

    def bpred(self) -> None:
        if self.audit is not None:
            self.audit.bpred_access()

    def alu(self, is_pth: bool) -> None:
        if self.audit is not None:
            self.audit.alu_op(is_pth)

    def mem(self, is_pth: bool, l2: bool) -> None:
        if self.audit is not None:
            self.audit.dmem_access(is_pth)
            if l2:
                self.audit.l2_access(is_pth)

    def committed(self, n: int) -> None:
        if self.audit is not None:
            self.audit.commit(n)

    def idle(self, n: int) -> None:
        if self.audit is not None:
            self.audit.idle_cycles(n)

    # -- finalize ------------------------------------------------------ #

    def event_count(self) -> int:
        """Recorded lifecycle events (stage timestamps + markers)."""
        stages = sum(
            sum(1 for v in rec[_FETCH:] if v >= 0)
            for rec in self.insts.values()
        )
        return (
            stages
            + len(self.replays)
            + len(self.redirects)
            + len(self.spawn_events)
        )

    def finalize(self, stats: Any) -> List[Dict[str, Any]]:
        """Audit, export, and register this simulation's artifacts.

        Called by the pipeline after the run completes.  Raises
        :class:`~repro.errors.EnergyAuditError` on audit divergence and
        :class:`~repro.errors.TraceExportError` on invalid exports --
        both deliberately loud.
        """
        from repro.obs import export

        audit_report = None
        if self.audit is not None:
            audit_report = self.audit.compare(
                stats.activity,
                tolerance=self.cfg.audit_tolerance,
                raise_on_divergence=True,
            )

        out_dir = os.path.join(self.cfg.out_dir, UTRACE_DIR)
        os.makedirs(out_dir, exist_ok=True)
        stem = _sanitize(
            self.label if not self.cell else f"{self.label}.{self.cell}"
        )
        window = [self.t0, min(self.t1, stats.cycles)]
        artifacts: List[Dict[str, Any]] = []

        def record(kind: str, path: str, **extra: Any) -> None:
            artifacts.append(
                {
                    "kind": kind,
                    "label": self.label,
                    "path": path,
                    "bytes": os.path.getsize(path),
                    "window": window,
                    **extra,
                }
            )

        n_events = self.event_count()
        if "chrome" in self.cfg.formats:
            path = os.path.join(out_dir, f"{stem}.chrome.json")
            export.write_chrome_trace(path, self, stats)
            record("chrome_trace", path, events=n_events)
        if "kanata" in self.cfg.formats:
            path = os.path.join(out_dir, f"{stem}.kanata")
            export.write_kanata(path, self, stats)
            record("kanata_log", path, events=n_events)

        summary_path = os.path.join(out_dir, f"{stem}.summary.json")
        summary: Dict[str, Any] = {
            "label": self.label,
            "cell": self.cell,
            "window": window,
            "cycles": stats.cycles,
            "committed": stats.committed,
            "ipc": round(stats.ipc, 4),
            "width": self.machine.width,
            "insts_recorded": len(self.insts),
            "insts_dropped": self.dropped_insts,
            "events": n_events,
            "replays": len(self.replays),
            "redirects": len(self.redirects),
            "spawns": len(self.spawn_events),
            "stall_slots": stats.stalls.as_dict(),
            "stall_fractions": {
                k: round(v, 6) for k, v in stats.stalls.fractions().items()
            },
            "latency_breakdown": stats.breakdown.as_dict(),
        }
        if audit_report is not None:
            summary["energy_audit"] = audit_report.as_dict()
        with open(summary_path, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=1, sort_keys=True)
            fh.write("\n")
        record("utrace_summary", summary_path, events=n_events)

        register_artifacts(artifacts)
        return artifacts


def collector_for(machine: Any) -> Optional[Collector]:
    """The pipeline's single entry point: a new collector when tracing
    is enabled, ``None`` (the no-op fast path) otherwise."""
    if _CONFIG is None:
        return None
    return Collector(machine)
