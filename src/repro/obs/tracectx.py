"""Distributed trace context: one ``trace_id`` across processes.

A request entering through :class:`repro.server.client.ServerClient`
must be followable through admission, queue wait, worker pickup, and
the trace/analysis/sim phases — across three processes (client,
server, pool worker).  This module is the substrate:

- :class:`TraceContext` — W3C-trace-context-shaped identifiers
  (``trace_id`` 32 hex chars, ``span_id`` 16, optional
  ``parent_span_id``), minted from :func:`os.urandom`.
- A **thread-local context stack**: :func:`activate` pushes a context
  for a ``with`` block, :func:`current` reads the innermost one, and
  :func:`is_active` is the cheap off-path check (one attribute read)
  that keeps tracing free when nobody asked for it.
- :class:`SpanRecord` — a finished span (name, ids, wall-clock start
  and end, process label, thread id, attrs), JSON-safe via
  ``to_dict``/``from_dict``.
- A **process-global bounded recorder**: finished spans land in a
  deque (:data:`MAX_RECORDED_SPANS`), drained by the CLI into
  ``spans.jsonl`` or shipped across process boundaries (pool worker
  -> parent, server -> client) exactly like obs-counter deltas, then
  re-ingested with :func:`ingest`.
- ``traceparent`` **header codec** (:func:`format_traceparent` /
  :func:`parse_traceparent`) for the HTTP hop, and
  :func:`encode`/:func:`decode` for job payloads.

Everything here is stdlib-only and import-light: :mod:`repro.obs.log`
imports this module during package init, so it must not import
anything from :mod:`repro`.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "TraceContext",
    "SpanRecord",
    "new_context",
    "child_context",
    "activate",
    "current",
    "is_active",
    "record",
    "record_span",
    "drain",
    "peek",
    "take",
    "ingest",
    "span_count",
    "format_traceparent",
    "parse_traceparent",
    "encode",
    "decode",
    "set_process_label",
    "process_label",
    "start_span",
    "finish_span",
]

#: Upper bound on buffered finished spans per process.  Tracing must
#: never grow memory without bound on a long-lived server; the deque
#: silently drops the oldest spans past this point.
MAX_RECORDED_SPANS = 4096

_TRACE_ID_LEN = 32
_SPAN_ID_LEN = 16
_HEX = frozenset("0123456789abcdef")


class TraceContext:
    """Identifiers for one node in a distributed trace."""

    __slots__ = ("trace_id", "span_id", "parent_span_id")

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_span_id: Optional[str] = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_span_id = parent_span_id

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TraceContext(trace_id={self.trace_id!r}, "
            f"span_id={self.span_id!r}, "
            f"parent_span_id={self.parent_span_id!r})"
        )

    def child(self) -> "TraceContext":
        """A fresh span id under the same trace, parented to this one."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=_rand_hex(_SPAN_ID_LEN),
            parent_span_id=self.span_id,
        )


def _rand_hex(n_chars: int) -> str:
    return os.urandom(n_chars // 2).hex()


def new_context() -> TraceContext:
    """Mint a brand-new root trace context."""
    return TraceContext(
        trace_id=_rand_hex(_TRACE_ID_LEN),
        span_id=_rand_hex(_SPAN_ID_LEN),
        parent_span_id=None,
    )


# --------------------------------------------------------------------- #
# Thread-local activation stack
# --------------------------------------------------------------------- #

_local = threading.local()


def _stack() -> List[TraceContext]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


class _Activation:
    """``with activate(ctx):`` — push/pop on the thread-local stack."""

    __slots__ = ("_ctx",)

    def __init__(self, ctx: TraceContext) -> None:
        self._ctx = ctx

    def __enter__(self) -> TraceContext:
        _stack().append(self._ctx)
        return self._ctx

    def __exit__(self, *exc: object) -> None:
        stack = _stack()
        if stack:
            stack.pop()


def activate(ctx: TraceContext) -> _Activation:
    """Make ``ctx`` the current trace context for a ``with`` block."""
    return _Activation(ctx)


def current() -> Optional[TraceContext]:
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else None


def is_active() -> bool:
    """Cheap check used on hot paths before doing any span work."""
    stack = getattr(_local, "stack", None)
    return bool(stack)


def child_context() -> Optional[TraceContext]:
    """A child of the current context, or ``None`` when inactive."""
    ctx = current()
    return ctx.child() if ctx is not None else None


# --------------------------------------------------------------------- #
# Span records and the process-global recorder
# --------------------------------------------------------------------- #


class SpanRecord:
    """One finished span, ready for export or cross-process shipping."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_span_id",
        "start_s",
        "end_s",
        "process",
        "tid",
        "attrs",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_span_id: Optional[str],
        start_s: float,
        end_s: float,
        process: str,
        tid: int,
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_span_id = parent_span_id
        self.start_s = start_s
        self.end_s = end_s
        self.process = process
        self.tid = tid
        self.attrs = attrs or {}

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "process": self.process,
            "tid": self.tid,
        }
        if self.attrs:
            doc["attrs"] = self.attrs
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "SpanRecord":
        return cls(
            name=str(doc["name"]),
            trace_id=str(doc["trace_id"]),
            span_id=str(doc["span_id"]),
            parent_span_id=(
                str(doc["parent_span_id"])
                if doc.get("parent_span_id")
                else None
            ),
            start_s=float(doc["start_s"]),  # type: ignore[arg-type]
            end_s=float(doc["end_s"]),  # type: ignore[arg-type]
            process=str(doc.get("process", "unknown")),
            tid=int(doc.get("tid", 0)),  # type: ignore[arg-type]
            attrs=dict(doc.get("attrs") or {}),  # type: ignore[arg-type]
        )


_recorder_lock = threading.Lock()
_recorded: Deque[SpanRecord] = deque(maxlen=MAX_RECORDED_SPANS)

_process_label: Optional[str] = None


def set_process_label(label: Optional[str]) -> None:
    """Name this process in exported spans (e.g. ``client``,
    ``server``, ``pool-worker-3``).  ``None`` reverts to the default
    pid-derived label."""
    global _process_label
    _process_label = label


def process_label() -> str:
    return _process_label or f"pid-{os.getpid()}"


def record(span: SpanRecord) -> None:
    with _recorder_lock:
        _recorded.append(span)


def record_span(
    name: str,
    ctx: TraceContext,
    start_s: float,
    end_s: float,
    attrs: Optional[Dict[str, object]] = None,
) -> SpanRecord:
    """Build a :class:`SpanRecord` for ``ctx`` and record it."""
    span = SpanRecord(
        name=name,
        trace_id=ctx.trace_id,
        span_id=ctx.span_id,
        parent_span_id=ctx.parent_span_id,
        start_s=start_s,
        end_s=end_s,
        process=process_label(),
        tid=threading.get_ident(),
        attrs=attrs,
    )
    record(span)
    return span


def drain() -> List[SpanRecord]:
    """Remove and return every buffered span (oldest first)."""
    with _recorder_lock:
        out = list(_recorded)
        _recorded.clear()
    return out


def peek() -> List[SpanRecord]:
    with _recorder_lock:
        return list(_recorded)


def take(trace_id: str) -> List[SpanRecord]:
    """Remove and return spans belonging to one trace, leaving the
    rest buffered (the server collects per-job spans this way without
    stealing a concurrent job's records)."""
    with _recorder_lock:
        mine = [s for s in _recorded if s.trace_id == trace_id]
        if mine:
            rest = [s for s in _recorded if s.trace_id != trace_id]
            _recorded.clear()
            _recorded.extend(rest)
    return mine


def ingest(spans: Iterable[object]) -> int:
    """Re-record spans shipped from another process.  Accepts
    :class:`SpanRecord` objects or their ``to_dict`` forms; returns
    the count ingested.  Malformed entries are dropped (telemetry must
    not take down the experiment), and spans already buffered (same
    ``trace_id``/``span_id``) are skipped so re-delivered result
    payloads do not duplicate the waterfall."""
    with _recorder_lock:
        seen = {(s.trace_id, s.span_id) for s in _recorded}
    n = 0
    for item in spans or ():
        try:
            span = (
                item
                if isinstance(item, SpanRecord)
                else SpanRecord.from_dict(item)  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError):
            continue
        key = (span.trace_id, span.span_id)
        if key in seen:
            continue
        seen.add(key)
        record(span)
        n += 1
    return n


def span_count() -> int:
    with _recorder_lock:
        return len(_recorded)


# --------------------------------------------------------------------- #
# In-flight span helpers (used by repro.obs.log.Span)
# --------------------------------------------------------------------- #


def start_span(name: str) -> Optional[Tuple[TraceContext, float]]:
    """Open a child span under the current context.  Returns an opaque
    token for :func:`finish_span`, or ``None`` when tracing is
    inactive.  The child context is pushed so nested spans parent to
    this one."""
    ctx = current()
    if ctx is None:
        return None
    child = ctx.child()
    _stack().append(child)
    return (child, time.time())


def finish_span(
    name: str,
    token: Optional[Tuple[TraceContext, float]],
    attrs: Optional[Dict[str, object]] = None,
) -> Optional[SpanRecord]:
    """Close a span opened by :func:`start_span` and record it."""
    if token is None:
        return None
    ctx, start_s = token
    stack = _stack()
    # Pop back to (and including) our context; tolerate a corrupted
    # stack rather than raising inside telemetry.
    while stack:
        top = stack.pop()
        if top is ctx:
            break
    return record_span(name, ctx, start_s, time.time(), attrs)


# --------------------------------------------------------------------- #
# Wire codecs
# --------------------------------------------------------------------- #

TRACEPARENT_HEADER = "Traceparent"


def format_traceparent(ctx: TraceContext) -> str:
    """``00-<trace_id>-<span_id>-01`` (version 00, sampled)."""
    return f"00-{ctx.trace_id}-{ctx.span_id}-01"


def _is_hex(value: str, length: int) -> bool:
    return len(value) == length and all(c in _HEX for c in value)


def parse_traceparent(header: Optional[str]) -> Optional[TraceContext]:
    """Parse a ``traceparent`` header.  Returns a context whose
    ``span_id`` is the *remote caller's* span — spans opened under it
    become that span's children.  Invalid headers yield ``None``
    (never an error: a bad header must not fail the request)."""
    if not header:
        return None
    parts = header.strip().lower().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, span_id = parts[0], parts[1], parts[2]
    if version == "ff" or not _is_hex(version, 2):
        return None
    if not _is_hex(trace_id, _TRACE_ID_LEN) or trace_id == "0" * _TRACE_ID_LEN:
        return None
    if not _is_hex(span_id, _SPAN_ID_LEN) or span_id == "0" * _SPAN_ID_LEN:
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id)


def encode(ctx: Optional[TraceContext]) -> Optional[Dict[str, object]]:
    """JSON-safe form for job payloads (pool worker initargs etc.)."""
    if ctx is None:
        return None
    return {
        "trace_id": ctx.trace_id,
        "span_id": ctx.span_id,
        "parent_span_id": ctx.parent_span_id,
    }


def decode(doc: Optional[Dict[str, object]]) -> Optional[TraceContext]:
    if not doc:
        return None
    try:
        return TraceContext(
            trace_id=str(doc["trace_id"]),
            span_id=str(doc["span_id"]),
            parent_span_id=(
                str(doc["parent_span_id"])
                if doc.get("parent_span_id")
                else None
            ),
        )
    except (KeyError, TypeError):
        return None
