"""Prometheus text-format exposition (version 0.0.4) and a strict parser.

:func:`render_prometheus` turns the :class:`~repro.obs.metrics.MetricsRegistry`
into the plain-text scrape format: every counter becomes a
``# TYPE ... counter`` sample with the conventional ``_total`` suffix,
gauges stay bare, and each :class:`~repro.obs.metrics.Histogram`
expands to cumulative ``_bucket{le="..."}`` samples plus ``_sum`` and
``_count``.  Callers may append ad-hoc gauges (queue depth, breaker
state) that live outside the registry.

:func:`parse_prometheus_text` is the matching *strict* checker used by
tests and the CI ``tracing-e2e`` job: it validates name syntax, TYPE
declarations, float literals, bucket monotonicity, and the
``+Inf``-bucket-equals-``_count`` invariant, raising
:class:`PromFormatError` on the first violation.

Zero dependencies, no actual Prometheus required — the point is that a
real scraper *would* accept the output.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Mapping, Optional, Tuple

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "CONTENT_TYPE",
    "PromFormatError",
    "render_prometheus",
    "parse_prometheus_text",
    "sanitize_metric_name",
]

#: The Content-Type a text-format scrape endpoint must declare.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<ts>-?\d+))?$"
)
_LABEL_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


class PromFormatError(ValueError):
    """The exposition text violates the Prometheus text format."""


def sanitize_metric_name(name: str) -> str:
    """Map an internal dotted metric name (``server.queue.depth``) to a
    legal Prometheus name (``server_queue_depth``)."""
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not out or not _NAME_RE.match(out):
        out = "_" + out
    return out


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    if bound == math.inf:
        return "+Inf"
    if float(bound).is_integer():
        return f"{bound:.1f}"
    return repr(float(bound))


def render_prometheus(
    registry: MetricsRegistry,
    extra_gauges: Optional[Mapping[str, float]] = None,
    help_text: Optional[Mapping[str, str]] = None,
) -> str:
    """Render ``registry`` (plus ``extra_gauges``) as exposition text.

    ``help_text`` maps *internal* (dotted) names to ``# HELP`` strings;
    names without an entry get a generated one.  Counter sample names
    gain the ``_total`` suffix; the TYPE line uses the suffixed name as
    the metric family name, as the format requires.
    """
    help_text = help_text or {}
    lines: List[str] = []
    seen: set = set()

    def emit(family: str, kind: str, raw_name: str) -> None:
        text = help_text.get(raw_name) or f"repro metric {raw_name}"
        text = text.replace("\\", "\\\\").replace("\n", "\\n")
        lines.append(f"# HELP {family} {text}")
        lines.append(f"# TYPE {family} {kind}")

    metrics = dict(registry._metrics)  # snapshot of the mapping
    for raw_name in sorted(metrics):
        metric = metrics[raw_name]
        base = sanitize_metric_name(raw_name)
        if isinstance(metric, Histogram):
            if base in seen:
                continue
            seen.add(base)
            emit(base, "histogram", raw_name)
            state = metric.state()
            buckets = state["buckets"]
            cumulative = 0
            for bound, count in zip(metric.bounds, buckets):
                cumulative += int(count)
                lines.append(
                    f'{base}_bucket{{le="{_format_bound(bound)}"}} '
                    f"{cumulative}"
                )
            total = int(state["count"])
            lines.append(f'{base}_bucket{{le="+Inf"}} {total}')
            lines.append(f"{base}_sum {_format_value(float(state['sum']))}")
            lines.append(f"{base}_count {total}")
        elif isinstance(metric, Counter):
            family = base if base.endswith("_total") else base + "_total"
            if family in seen:
                continue
            seen.add(family)
            emit(family, "counter", raw_name)
            lines.append(f"{family} {_format_value(metric.value)}")
        elif isinstance(metric, Gauge):
            if base in seen:
                continue
            seen.add(base)
            emit(base, "gauge", raw_name)
            lines.append(f"{base} {_format_value(metric.value)}")
    for raw_name in sorted(extra_gauges or {}):
        base = sanitize_metric_name(raw_name)
        if base in seen:
            continue
        seen.add(base)
        emit(base, "gauge", raw_name)
        lines.append(
            f"{base} {_format_value(float((extra_gauges or {})[raw_name]))}"
        )
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------- #
# Strict parser / validator
# --------------------------------------------------------------------- #


def _parse_float(text: str, lineno: int) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise PromFormatError(
            f"line {lineno}: invalid sample value {text!r}"
        ) from None


def parse_prometheus_text(
    text: str,
) -> Dict[str, Dict[str, object]]:
    """Parse and validate exposition text.

    Returns ``{family_name: {"type": ..., "samples": [(name, labels,
    value), ...]}}``.  Raises :class:`PromFormatError` on: illegal
    metric/label names, samples for histogram families without a TYPE
    line, non-monotonic histogram buckets, a ``+Inf`` bucket count that
    disagrees with ``_count``, duplicate TYPE declarations, or
    unparseable values.
    """
    families: Dict[str, Dict[str, object]] = {}
    typed: Dict[str, str] = {}

    def family_for(sample_name: str) -> Optional[str]:
        for fam in typed:
            if sample_name == fam:
                return fam
            if typed[fam] == "histogram" and sample_name in (
                fam + "_bucket", fam + "_sum", fam + "_count"
            ):
                return fam
            if typed[fam] == "counter" and sample_name == fam:
                return fam
        return None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                raise PromFormatError(f"line {lineno}: malformed HELP line")
            if not _NAME_RE.match(parts[2]):
                raise PromFormatError(
                    f"line {lineno}: illegal metric name {parts[2]!r}"
                )
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise PromFormatError(f"line {lineno}: malformed TYPE line")
            name, kind = parts[2], parts[3]
            if not _NAME_RE.match(name):
                raise PromFormatError(
                    f"line {lineno}: illegal metric name {name!r}"
                )
            if kind not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise PromFormatError(
                    f"line {lineno}: unknown metric type {kind!r}"
                )
            if name in typed:
                raise PromFormatError(
                    f"line {lineno}: duplicate TYPE for {name!r}"
                )
            typed[name] = kind
            families[name] = {"type": kind, "samples": []}
            continue
        if line.startswith("#"):
            continue  # arbitrary comment
        match = _SAMPLE_RE.match(line)
        if not match:
            raise PromFormatError(f"line {lineno}: unparseable sample {raw!r}")
        name = match.group("name")
        value = _parse_float(match.group("value"), lineno)
        labels: Dict[str, str] = {}
        label_text = match.group("labels")
        if label_text:
            consumed = 0
            for lm in _LABEL_RE.finditer(label_text):
                if not _LABEL_NAME_RE.match(lm.group("name")):
                    raise PromFormatError(
                        f"line {lineno}: illegal label name "
                        f"{lm.group('name')!r}"
                    )
                labels[lm.group("name")] = lm.group("value")
                consumed += 1
            stripped = _LABEL_RE.sub("", label_text).replace(",", "").strip()
            if stripped or consumed == 0:
                raise PromFormatError(
                    f"line {lineno}: malformed labels {label_text!r}"
                )
        fam = family_for(name)
        if fam is None:
            if name.endswith(("_bucket", "_sum", "_count")):
                raise PromFormatError(
                    f"line {lineno}: histogram-style sample {name!r} "
                    "has no TYPE declaration"
                )
            fam = name
            typed.setdefault(fam, "untyped")
            families.setdefault(fam, {"type": "untyped", "samples": []})
        families[fam]["samples"].append((name, labels, value))  # type: ignore[union-attr]

    _check_histograms(families)
    return families


def _check_histograms(families: Dict[str, Dict[str, object]]) -> None:
    for fam, info in families.items():
        if info["type"] != "histogram":
            continue
        samples: List[Tuple[str, Dict[str, str], float]] = (
            info["samples"]  # type: ignore[assignment]
        )
        buckets: List[Tuple[float, float]] = []
        count_value: Optional[float] = None
        saw_sum = False
        for name, labels, value in samples:
            if name == fam + "_bucket":
                le = labels.get("le")
                if le is None:
                    raise PromFormatError(
                        f"histogram {fam!r}: bucket sample missing le label"
                    )
                bound = (
                    math.inf if le == "+Inf" else _parse_float(le, 0)
                )
                buckets.append((bound, value))
            elif name == fam + "_count":
                count_value = value
            elif name == fam + "_sum":
                saw_sum = True
        if not buckets:
            raise PromFormatError(f"histogram {fam!r}: no bucket samples")
        if count_value is None or not saw_sum:
            raise PromFormatError(
                f"histogram {fam!r}: missing _sum or _count"
            )
        bounds = [b for b, _ in buckets]
        if bounds != sorted(bounds):
            raise PromFormatError(
                f"histogram {fam!r}: bucket bounds out of order"
            )
        values = [v for _, v in buckets]
        if any(b > a for b, a in zip(values, values[1:])):
            raise PromFormatError(
                f"histogram {fam!r}: bucket counts not cumulative"
            )
        if bounds[-1] != math.inf:
            raise PromFormatError(
                f"histogram {fam!r}: missing +Inf bucket"
            )
        if values[-1] != count_value:
            raise PromFormatError(
                f"histogram {fam!r}: +Inf bucket {values[-1]} != "
                f"_count {count_value}"
            )
