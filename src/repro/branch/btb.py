"""Branch target buffer."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass
class BTBStats:
    lookups: int = 0
    misses: int = 0


class BTB:
    """A target buffer mapping branch PCs to predicted targets.

    Modeled as LRU over a bounded number of entries.  A taken-predicted
    branch whose target is absent (or stale) costs a fetch redirect even
    when the direction prediction was right.
    """

    def __init__(self, entries: int = 2048) -> None:
        if entries <= 0:
            raise ConfigError("BTB needs at least one entry")
        self.entries = entries
        self.stats = BTBStats()
        self._table: "OrderedDict[int, int]" = OrderedDict()

    def lookup(self, pc: int) -> int:
        """Predicted target of ``pc``, or -1 when absent."""
        self.stats.lookups += 1
        target = self._table.get(pc, -1)
        if target == -1:
            self.stats.misses += 1
        else:
            self._table.move_to_end(pc)
        return target

    def update(self, pc: int, target: int) -> None:
        if pc in self._table:
            self._table.move_to_end(pc)
        elif len(self._table) >= self.entries:
            self._table.popitem(last=False)
        self._table[pc] = target
