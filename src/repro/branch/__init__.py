"""Branch prediction: an 8K-entry hybrid predictor and a 2K-entry BTB."""

from repro.branch.btb import BTB
from repro.branch.predictors import (
    BimodalPredictor,
    GsharePredictor,
    HybridPredictor,
)

__all__ = ["BTB", "BimodalPredictor", "GsharePredictor", "HybridPredictor"]
