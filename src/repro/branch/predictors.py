"""Two-bit, gshare, and hybrid (chooser) direction predictors.

The hybrid predictor mirrors the paper's 8K-entry configuration: an
8K-entry chooser selecting between an 8K-entry bimodal table and an
8K-entry gshare table with a 12-bit global history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigError


def _check_power_of_two(entries: int) -> None:
    if entries <= 0 or entries & (entries - 1):
        raise ConfigError(f"predictor table size must be a power of two: {entries}")


@dataclass
class PredictorStats:
    lookups: int = 0
    mispredictions: int = 0

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.lookups if self.lookups else 0.0


class BimodalPredictor:
    """A table of 2-bit saturating counters indexed by PC."""

    def __init__(self, entries: int) -> None:
        _check_power_of_two(entries)
        self._mask = entries - 1
        self._table: List[int] = [2] * entries  # weakly taken
        self.stats = PredictorStats()

    def _index(self, pc: int) -> int:
        return pc & self._mask

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        i = self._index(pc)
        counter = self._table[i]
        if taken:
            self._table[i] = min(3, counter + 1)
        else:
            self._table[i] = max(0, counter - 1)


class GsharePredictor:
    """A global-history predictor: PC xor history indexes 2-bit counters."""

    def __init__(self, entries: int, history_bits: int = 12) -> None:
        _check_power_of_two(entries)
        self._mask = entries - 1
        self._table: List[int] = [2] * entries
        self._history = 0
        self._history_mask = (1 << history_bits) - 1
        self.stats = PredictorStats()

    def _index(self, pc: int) -> int:
        return (pc ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        i = self._index(pc)
        counter = self._table[i]
        if taken:
            self._table[i] = min(3, counter + 1)
        else:
            self._table[i] = max(0, counter - 1)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask


class HybridPredictor:
    """Bimodal + gshare with a 2-bit chooser (McFarling-style)."""

    def __init__(self, entries: int = 8192, history_bits: int = 12) -> None:
        self.bimodal = BimodalPredictor(entries)
        self.gshare = GsharePredictor(entries, history_bits)
        _check_power_of_two(entries)
        self._chooser: List[int] = [2] * entries
        self._mask = entries - 1
        self.stats = PredictorStats()

    def predict(self, pc: int) -> bool:
        self.stats.lookups += 1
        if self._chooser[pc & self._mask] >= 2:
            return self.gshare.predict(pc)
        return self.bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        bimodal_correct = self.bimodal.predict(pc) == taken
        gshare_correct = self.gshare.predict(pc) == taken
        i = pc & self._mask
        if gshare_correct and not bimodal_correct:
            self._chooser[i] = min(3, self._chooser[i] + 1)
        elif bimodal_correct and not gshare_correct:
            self._chooser[i] = max(0, self._chooser[i] - 1)
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, taken)

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Convenience for trace-driven use: predict, learn, count."""
        prediction = self.predict(pc)
        if prediction != taken:
            self.stats.mispredictions += 1
        self.update(pc, taken)
        return prediction
