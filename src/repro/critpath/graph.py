"""Dependence-graph forward pass over a trace window.

A lightweight instantiation of the Fields et al. critical-path model with
three events per instruction -- dispatch (D), execute-start (E), commit
(C) -- and edges for:

- in-order fetch/dispatch bandwidth (1/width cycle per instruction),
- branch misprediction (dispatch of post-branch instructions waits for
  the branch to resolve plus a front-end refill),
- dataflow (execute waits for producers' completions),
- finite ROB (dispatch waits for the commit of the instruction ROB-size
  earlier),
- in-order commit at commit-width bandwidth.

The pass is O(window length) and is re-run with modified load latencies
to answer the "what if this load were faster" questions the load cost
model asks (Section 4.1 of the paper).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.config import MachineConfig
from repro.critpath.classify import L1, L2, MEM, LoadClassification
from repro.frontend.trace import NO_PRODUCER, Trace
from repro.isa.opcodes import CLASS_BY_CODE, LD_CODE, OpClass


def service_latency(level: str, config: MachineConfig) -> int:
    """Load-to-use latency for a service level."""
    if level == MEM:
        return (
            config.dcache.hit_latency
            + config.l2.hit_latency
            + config.memory_latency
        )
    if level == L2:
        return config.dcache.hit_latency + config.l2.hit_latency
    return config.dcache.hit_latency


class ForwardPass:
    """Reusable forward-pass engine over one trace window."""

    def __init__(
        self,
        trace: Trace,
        config: Optional[MachineConfig] = None,
        classification: Optional[LoadClassification] = None,
        start: int = 0,
        end: Optional[int] = None,
    ) -> None:
        self.trace = trace
        self.config = config or MachineConfig()
        self.start = start
        self.end = len(trace) if end is None else min(end, len(trace))
        self._classification = classification

        cfg = self.config
        # Pre-extract per-instruction static latencies and dependences for
        # speed (column sweeps over the trace's shared lists rather than
        # per-object attribute walks); load latencies are replaced per
        # run() call.
        start, end = self.start, self.end
        L = trace.as_lists()
        codes = L.op_code
        # code -> fixed latency for non-load instructions.
        lat_by_code = [
            float(cfg.mul_latency) if cls is OpClass.MUL
            else 0.0 if cls in (OpClass.NOP, OpClass.HALT, OpClass.JUMP)
            else 1.0
            for cls in CLASS_BY_CODE
        ]
        lat_by_level = {
            level: float(service_latency(level, cfg))
            for level in (L1, L2, MEM)
        }
        service_get = classification.service.get if classification else None
        l1_lat = lat_by_level[L1]

        base_latency: List[float] = []
        is_load: List[bool] = []
        ld_code = LD_CODE
        for seq in range(start, end):
            code = codes[seq]
            if code == ld_code:
                is_load.append(True)
                if service_get is not None:
                    base_latency.append(lat_by_level[service_get(seq, L1)])
                else:
                    base_latency.append(l1_lat)
            else:
                is_load.append(False)
                base_latency.append(lat_by_code[code])
        self._base_latency = base_latency
        self._is_load = is_load

        mispred = [False] * (end - start)
        if classification is not None:
            for seq in classification.mispredicted:
                if start <= seq < end:
                    mispred[seq - start] = True
        self._mispredicted = mispred
        self._src1 = L.src1[start:end]
        self._src2 = L.src2[start:end]

    def __len__(self) -> int:
        return self.end - self.start

    def run(self, latency_override: Optional[Dict[int, float]] = None) -> float:
        """Execute the forward pass; return the window's execution time.

        ``latency_override`` maps dynamic sequence numbers to replacement
        latencies (the what-if knob of the load cost model).
        """
        cfg = self.config
        n = len(self)
        if n == 0:
            return 0.0
        start = self.start
        inv_width = 1.0 / cfg.width
        inv_commit = 1.0 / cfg.commit_width
        rob = cfg.rob_entries
        refill = float(cfg.frontend_depth)
        src1 = self._src1
        src2 = self._src2
        mispred = self._mispredicted
        # Apply the override once up front; the inner loop then reads a
        # plain latency list instead of probing a dict per instruction.
        if latency_override:
            latency = self._base_latency[:]
            for seq, lat in latency_override.items():
                i = seq - start
                if 0 <= i < n:
                    latency[i] = lat
        else:
            latency = self._base_latency

        comp: List[float] = [0.0] * n  # completion time of local index i
        commit: List[float] = [0.0] * n
        d_prev = 0.0
        c_prev = 0.0
        redirect_ready = 0.0

        for i in range(n):
            d = d_prev + inv_width
            if redirect_ready > d:
                d = redirect_ready
            if i >= rob:
                rob_limit = commit[i - rob]
                if rob_limit > d:
                    d = rob_limit
            e = d + 1.0
            p = src1[i]
            if p != NO_PRODUCER and p >= start:
                t = comp[p - start]
                if t > e:
                    e = t
            p = src2[i]
            if p != NO_PRODUCER and p >= start:
                t = comp[p - start]
                if t > e:
                    e = t
            done = e + latency[i]
            comp[i] = done
            c = c_prev + inv_commit
            if done > c:
                c = done
            commit[i] = c
            c_prev = c
            d_prev = d
            if mispred[i]:
                redirect_ready = done + refill

        return commit[n - 1]

    def load_seqs(self) -> List[int]:
        """Sequence numbers of loads inside this window."""
        return [
            self.start + i for i, is_ld in enumerate(self._is_load) if is_ld
        ]
