"""Critical-path modeling (Fields et al. [9]) and load cost functions.

This package supplies the Section 4.1 extension to PTHSEL: per-problem-
load functions mapping load latency reduction to global execution time
reduction, computed from a dependence-graph model of the trace and
averaged between a pessimistic estimate (only this load's misses are
tolerated) and an optimistic one (all other contemporaneous misses are
resolved) to approximate interaction costs [8].
"""

from repro.critpath.classify import LoadClassification, classify_trace
from repro.critpath.graph import ForwardPass
from repro.critpath.loadcost import (
    FlatLoadCost,
    LoadCostFunction,
    build_cost_functions,
)

__all__ = [
    "FlatLoadCost",
    "ForwardPass",
    "LoadClassification",
    "LoadCostFunction",
    "build_cost_functions",
    "classify_trace",
]
