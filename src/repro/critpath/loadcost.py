"""Per-problem-load cost functions (the Section 4.1 PTHSEL extension).

Original PTHSEL assumes one cycle of load latency tolerance buys one cycle
of execution time (:class:`FlatLoadCost`).  The criticality-based model
(:class:`LoadCostFunction`) evaluates, per static problem load, how much
execution time is actually saved when its misses are tolerated by 25%,
50%, 75% and 100% of the miss latency, interpolating linearly in between.

Each sample point averages two dependence-graph estimates:

- *pessimistic*: only this load's misses are reduced; contemporaneous
  misses from other loads keep their full latency (underestimates the
  benefit because the other misses keep the ROB wedged);
- *optimistic*: all other loads' misses are assumed resolved before
  reducing this one (overestimates, like original PTHSEL, but does see
  secondary critical paths).

The average lets PTHSEL target overlapping loads independently without
either double-counting their joint benefit or giving up on both
(the paper's worked example assigns two same-cycle misses 45 cycles of
savings each instead of 100/100 or 0/0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import MachineConfig
from repro.critpath.classify import L2, MEM, LoadClassification
from repro.critpath.graph import ForwardPass, service_latency
from repro.errors import SelectionError
from repro.frontend.trace import Trace

#: Latency-reduction sample points (fractions of the miss latency).
SAMPLE_POINTS = (0.25, 0.5, 0.75, 1.0)


class FlatLoadCost:
    """Original PTHSEL's cycle-for-cycle model: gain(t) = t."""

    def gain(self, tolerated_cycles: float) -> float:
        """Execution cycles saved per miss when ``tolerated_cycles`` of
        its latency are hidden."""
        return max(0.0, tolerated_cycles)


@dataclass(frozen=True)
class LoadCostFunction:
    """Piecewise-linear latency-reduction -> execution-time-reduction.

    ``samples[k]`` is the average execution time saved per covered miss
    when ``SAMPLE_POINTS[k]`` of the miss latency is tolerated.
    """

    pc: int
    miss_latency: float
    samples: Tuple[float, ...]

    def gain(self, tolerated_cycles: float) -> float:
        """Interpolate the execution cycles saved per covered miss."""
        if tolerated_cycles <= 0 or self.miss_latency <= 0:
            return 0.0
        fraction = min(1.0, tolerated_cycles / self.miss_latency)
        points = SAMPLE_POINTS
        prev_x, prev_y = 0.0, 0.0
        for x, y in zip(points, self.samples):
            if fraction <= x:
                span = x - prev_x
                if span <= 0:
                    return y
                t = (fraction - prev_x) / span
                return prev_y + t * (y - prev_y)
            prev_x, prev_y = x, y
        return self.samples[-1]

    @property
    def saturation(self) -> float:
        """Saved cycles at full tolerance (the function's plateau)."""
        return self.samples[-1]

    @property
    def criticality(self) -> float:
        """Fraction of the miss latency that converts into saved time."""
        if self.miss_latency <= 0:
            return 0.0
        return self.samples[-1] / self.miss_latency


def build_cost_functions(
    trace: Trace,
    classification: LoadClassification,
    problem_pcs: Sequence[int],
    config: Optional[MachineConfig] = None,
    window: int = 60_000,
) -> Dict[int, LoadCostFunction]:
    """Build criticality-based cost functions for each problem load.

    ``window`` bounds the dependence-graph passes: the model is evaluated
    over the first ``window`` instructions of the trace (the functions are
    statistical averages; a large window is representative of the whole
    run while keeping the 2 x 4 passes per load affordable).
    """
    config = config or MachineConfig()
    if not problem_pcs:
        return {}
    end = min(window, len(trace))
    fp = ForwardPass(trace, config, classification, start=0, end=end)
    miss_latency = float(service_latency(MEM, config))
    resolved_latency = float(service_latency(L2, config))

    # Misses per problem pc inside the window.
    window_misses: Dict[int, List[int]] = {pc: [] for pc in problem_pcs}
    all_miss_seqs: List[int] = []
    pc_l = trace.as_lists().pc
    service_get = classification.service.get
    for seq in fp.load_seqs():
        if service_get(seq) == MEM:
            all_miss_seqs.append(seq)
            pc = pc_l[seq]
            if pc in window_misses:
                window_misses[pc].append(seq)

    base_time = fp.run()
    # Optimistic baseline: every miss in the window resolved to an L2 hit.
    all_resolved = {seq: resolved_latency for seq in all_miss_seqs}
    functions: Dict[int, LoadCostFunction] = {}

    for pc in problem_pcs:
        seqs = window_misses[pc]
        if not seqs:
            raise SelectionError(
                f"problem load pc={pc} has no misses in the analysis window"
            )
        n = len(seqs)
        # Optimistic baseline specific to this load: all OTHER misses
        # resolved, this load's misses at full latency.
        opt_base_override = dict(all_resolved)
        for seq in seqs:
            opt_base_override.pop(seq, None)
        opt_base_time = fp.run(opt_base_override)

        samples: List[float] = []
        for fraction in SAMPLE_POINTS:
            reduced = miss_latency - fraction * (miss_latency - resolved_latency)
            # Pessimistic: only this load's misses get faster.
            pess_override = {seq: reduced for seq in seqs}
            pess_gain = (base_time - fp.run(pess_override)) / n
            # Optimistic: all other misses already resolved.
            opt_override = dict(opt_base_override)
            for seq in seqs:
                opt_override[seq] = reduced
            opt_gain = (opt_base_time - fp.run(opt_override)) / n
            samples.append(max(0.0, 0.5 * (pess_gain + opt_gain)))
        # Enforce monotonicity (sampling noise can produce tiny dips).
        for k in range(1, len(samples)):
            samples[k] = max(samples[k], samples[k - 1])
        functions[pc] = LoadCostFunction(
            pc=pc,
            miss_latency=miss_latency - resolved_latency,
            samples=tuple(samples),
        )
    return functions
