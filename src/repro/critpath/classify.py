"""Functional (timing-free) classification of a trace's loads and branches.

PTHSEL operates on program profiles, not timing simulations.  This module
replays a trace through the cache geometry and branch predictor
functionally -- in program order, no cycle accounting -- to classify every
dynamic load by the level that services it and every branch by whether
the predictor gets it right.  The result is the profile the slicer and
the selection models consume (DCptcm mining, per-load miss latencies,
wrong-path spawn rates).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.branch.predictors import HybridPredictor
from repro.config import MachineConfig
from repro.frontend.trace import Trace
from repro.isa.opcodes import BRANCH_CODES, LD_CODE, ST_CODE
from repro.memory.cache import Cache

#: Load service levels.
L1, L2, MEM = "l1", "l2", "mem"


@dataclass
class LoadClassification:
    """Profile of a trace's memory and control behavior.

    ``service`` reflects *latency*, not just residency: a load whose line
    was brought in by a miss initiated only a few instructions earlier
    (i.e. one that would merge with the outstanding MSHR entry and wait
    nearly the whole miss) is classified "mem" even though the line is
    nominally present.  ``miss_counts`` counts only miss *initiators*,
    which is what problem-load identification needs.
    """

    #: Dynamic load seq -> service level ("l1" | "l2" | "mem").
    service: Dict[int, str] = field(default_factory=dict)
    #: Static load pc -> number of dynamic L2 misses (initiators only).
    miss_counts: Dict[int, int] = field(default_factory=dict)
    #: Static load pc -> number of dynamic instances.
    load_counts: Dict[int, int] = field(default_factory=dict)
    #: Static load pc -> number of dynamic L1 misses (hits L2 or memory).
    l1_miss_counts: Dict[int, int] = field(default_factory=dict)
    #: Static load pc -> [n_l1, n_l2, n_mem] service-level counts.
    service_counts: Dict[int, List[int]] = field(default_factory=dict)
    #: Dynamic branch seq numbers the hybrid predictor got wrong.
    mispredicted: Set[int] = field(default_factory=set)
    #: Static branch pc -> (total, mispredicted) counts.
    branch_counts: Dict[int, List[int]] = field(default_factory=dict)
    total_l2_misses: int = 0

    def miss_seqs_of(self, pc: int, trace: Trace) -> List[int]:
        """Sequence numbers of the L2-missing instances of static pc."""
        return [
            seq
            for seq in trace.occurrences(pc)
            if self.service.get(seq) == MEM
        ]

    def miss_rate_l1(self, pc: int) -> float:
        """L1 miss rate of a static load (used by equation E7)."""
        total = self.load_counts.get(pc, 0)
        if not total:
            return 0.0
        return self.l1_miss_counts.get(pc, 0) / total

    def mispredict_rate(self, pc: int) -> float:
        entry = self.branch_counts.get(pc)
        if not entry or not entry[0]:
            return 0.0
        return entry[1] / entry[0]

    def expected_service_latency(self, pc: int, latencies: Dict[str, float],
                                 default: float) -> float:
        """Mean wait of a static load given per-level latencies."""
        counts = self.service_counts.get(pc)
        if not counts:
            return default
        total = sum(counts)
        return (
            counts[0] * latencies[L1]
            + counts[1] * latencies[L2]
            + counts[2] * latencies[MEM]
        ) / total


def classify_trace(
    trace: Trace, config: MachineConfig | None = None, warm: bool = True
) -> LoadClassification:
    """Classify every load and branch of ``trace`` functionally.

    ``warm`` pre-touches every data access once (mirroring the timing
    simulator's warm-up) so the profile reflects steady-state capacity
    misses rather than cold misses.
    """
    config = config or MachineConfig()
    dcache = Cache("l1d", config.dcache)
    l2 = Cache("l2", config.l2)
    predictor = HybridPredictor(config.bpred_entries)
    result = LoadClassification()

    L = trace.as_lists()
    if warm:
        dc_access = dcache.access
        l2_access = l2.access
        l2_fill = l2.fill
        dc_fill = dcache.fill
        for addr in L.addr:
            if addr >= 0:
                if not dc_access(addr):
                    if not l2_access(addr):
                        l2_fill(addr)
                    dc_fill(addr)

    service = result.service
    miss_counts = result.miss_counts
    load_counts = result.load_counts
    l1_miss_counts = result.l1_miss_counts
    service_counts = result.service_counts
    line_shift = config.l2.line_bytes.bit_length() - 1
    #: Line -> seq of the miss that brought it; a subsequent access within
    #: one ROB's worth of instructions would merge with the outstanding
    #: fill and wait nearly the full miss latency.
    recent_miss: Dict[int, int] = {}
    merge_window = config.rob_entries
    _LEVEL_INDEX = {L1: 0, L2: 1, MEM: 2}

    dc_access = dcache.access
    l2_access = l2.access
    l2_fill = l2.fill
    dc_fill = dcache.fill
    predict_and_update = predictor.predict_and_update
    branch_counts = result.branch_counts
    mispredicted = result.mispredicted
    recent_miss_get = recent_miss.get
    ld_code = LD_CODE
    st_code = ST_CODE
    branch_codes = BRANCH_CODES

    for seq, (pc, code, addr, taken) in enumerate(
        zip(L.pc, L.op_code, L.addr, L.taken)
    ):
        if code == ld_code:
            load_counts[pc] = load_counts.get(pc, 0) + 1
            line = addr >> line_shift
            if dc_access(addr):
                level = L1
            else:
                l1_miss_counts[pc] = l1_miss_counts.get(pc, 0) + 1
                if l2_access(addr):
                    level = L2
                else:
                    level = MEM
                    miss_counts[pc] = miss_counts.get(pc, 0) + 1
                    result.total_l2_misses += 1
                    recent_miss[line] = seq
                    l2_fill(addr)
                dc_fill(addr)
            if level != MEM:
                initiator = recent_miss_get(line)
                if initiator is not None and seq - initiator <= merge_window:
                    level = MEM  # would merge with the in-flight fill
            service[seq] = level
            counts = service_counts.setdefault(pc, [0, 0, 0])
            counts[_LEVEL_INDEX[level]] += 1
        elif code == st_code:
            if not dc_access(addr, is_write=True):
                if not l2_access(addr):
                    l2_fill(addr)
                dc_fill(addr, dirty=True)
        elif code in branch_codes:
            taken_b = taken != 0
            predicted = predict_and_update(pc, taken_b)
            entry = branch_counts.setdefault(pc, [0, 0])
            entry[0] += 1
            if predicted != taken_b:
                entry[1] += 1
                mispredicted.add(seq)
    return result


def analysis_memo_enabled() -> bool:
    """Whether machine-independent analysis artifacts (classification,
    slice trees, cost functions, augmented runs) may be shared across
    the cells of a sweep.  ``REPRO_ANALYSIS_MEMO=0`` disables sharing,
    recomputing every cell independently."""
    return os.environ.get("REPRO_ANALYSIS_MEMO", "").strip() != "0"


def profile_geometry_key(config: MachineConfig, warm: bool = True) -> Tuple:
    """The machine parameters the functional profile actually depends
    on: cache geometry, predictor size, and the MSHR-merge window (ROB
    depth) -- NOT latencies.  Sweeps that vary only latency share one
    classification per trace."""
    d, l2c = config.dcache, config.l2
    return (
        d.size_bytes, d.assoc, d.line_bytes,
        l2c.size_bytes, l2c.assoc, l2c.line_bytes,
        config.bpred_entries, config.rob_entries, warm,
    )


def classify_trace_cached(
    trace: Trace, config: MachineConfig | None = None, warm: bool = True
) -> LoadClassification:
    """Memoizing wrapper over :func:`classify_trace`.

    The profile is a deterministic function of the trace and the cache /
    predictor geometry, so the result is memoized on the trace itself
    (``trace.derived``) keyed by :func:`profile_geometry_key`.  The
    returned object is shared and must be treated as read-only.
    """
    config = config or MachineConfig()
    if not analysis_memo_enabled():
        return classify_trace(trace, config, warm)
    key = ("classify", profile_geometry_key(config, warm))
    cached = trace.derived.get(key)
    if cached is None:
        cached = classify_trace(trace, config, warm)
        trace.derived[key] = cached
    return cached
