"""Functional (timing-free) classification of a trace's loads and branches.

PTHSEL operates on program profiles, not timing simulations.  This module
replays a trace through the cache geometry and branch predictor
functionally -- in program order, no cycle accounting -- to classify every
dynamic load by the level that services it and every branch by whether
the predictor gets it right.  The result is the profile the slicer and
the selection models consume (DCptcm mining, per-load miss latencies,
wrong-path spawn rates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.branch.predictors import HybridPredictor
from repro.config import MachineConfig
from repro.frontend.trace import Trace
from repro.isa.opcodes import Op
from repro.memory.cache import Cache

#: Load service levels.
L1, L2, MEM = "l1", "l2", "mem"


@dataclass
class LoadClassification:
    """Profile of a trace's memory and control behavior.

    ``service`` reflects *latency*, not just residency: a load whose line
    was brought in by a miss initiated only a few instructions earlier
    (i.e. one that would merge with the outstanding MSHR entry and wait
    nearly the whole miss) is classified "mem" even though the line is
    nominally present.  ``miss_counts`` counts only miss *initiators*,
    which is what problem-load identification needs.
    """

    #: Dynamic load seq -> service level ("l1" | "l2" | "mem").
    service: Dict[int, str] = field(default_factory=dict)
    #: Static load pc -> number of dynamic L2 misses (initiators only).
    miss_counts: Dict[int, int] = field(default_factory=dict)
    #: Static load pc -> number of dynamic instances.
    load_counts: Dict[int, int] = field(default_factory=dict)
    #: Static load pc -> number of dynamic L1 misses (hits L2 or memory).
    l1_miss_counts: Dict[int, int] = field(default_factory=dict)
    #: Static load pc -> [n_l1, n_l2, n_mem] service-level counts.
    service_counts: Dict[int, List[int]] = field(default_factory=dict)
    #: Dynamic branch seq numbers the hybrid predictor got wrong.
    mispredicted: Set[int] = field(default_factory=set)
    #: Static branch pc -> (total, mispredicted) counts.
    branch_counts: Dict[int, List[int]] = field(default_factory=dict)
    total_l2_misses: int = 0

    def miss_seqs_of(self, pc: int, trace: Trace) -> List[int]:
        """Sequence numbers of the L2-missing instances of static pc."""
        return [
            seq
            for seq in trace.occurrences(pc)
            if self.service.get(seq) == MEM
        ]

    def miss_rate_l1(self, pc: int) -> float:
        """L1 miss rate of a static load (used by equation E7)."""
        total = self.load_counts.get(pc, 0)
        if not total:
            return 0.0
        return self.l1_miss_counts.get(pc, 0) / total

    def mispredict_rate(self, pc: int) -> float:
        entry = self.branch_counts.get(pc)
        if not entry or not entry[0]:
            return 0.0
        return entry[1] / entry[0]

    def expected_service_latency(self, pc: int, latencies: Dict[str, float],
                                 default: float) -> float:
        """Mean wait of a static load given per-level latencies."""
        counts = self.service_counts.get(pc)
        if not counts:
            return default
        total = sum(counts)
        return (
            counts[0] * latencies[L1]
            + counts[1] * latencies[L2]
            + counts[2] * latencies[MEM]
        ) / total


def classify_trace(
    trace: Trace, config: MachineConfig | None = None, warm: bool = True
) -> LoadClassification:
    """Classify every load and branch of ``trace`` functionally.

    ``warm`` pre-touches every data access once (mirroring the timing
    simulator's warm-up) so the profile reflects steady-state capacity
    misses rather than cold misses.
    """
    config = config or MachineConfig()
    dcache = Cache("l1d", config.dcache)
    l2 = Cache("l2", config.l2)
    predictor = HybridPredictor(config.bpred_entries)
    result = LoadClassification()

    if warm:
        for dyn in trace:
            if dyn.addr >= 0:
                if not dcache.access(dyn.addr):
                    if not l2.access(dyn.addr):
                        l2.fill(dyn.addr)
                    dcache.fill(dyn.addr)

    service = result.service
    miss_counts = result.miss_counts
    load_counts = result.load_counts
    l1_miss_counts = result.l1_miss_counts
    service_counts = result.service_counts
    line_shift = config.l2.line_bytes.bit_length() - 1
    #: Line -> seq of the miss that brought it; a subsequent access within
    #: one ROB's worth of instructions would merge with the outstanding
    #: fill and wait nearly the full miss latency.
    recent_miss: Dict[int, int] = {}
    merge_window = config.rob_entries
    _LEVEL_INDEX = {L1: 0, L2: 1, MEM: 2}

    for dyn in trace:
        op = dyn.op
        if op is Op.LD:
            pc = dyn.pc
            load_counts[pc] = load_counts.get(pc, 0) + 1
            line = dyn.addr >> line_shift
            if dcache.access(dyn.addr):
                level = L1
            else:
                l1_miss_counts[pc] = l1_miss_counts.get(pc, 0) + 1
                if l2.access(dyn.addr):
                    level = L2
                else:
                    level = MEM
                    miss_counts[pc] = miss_counts.get(pc, 0) + 1
                    result.total_l2_misses += 1
                    recent_miss[line] = dyn.seq
                    l2.fill(dyn.addr)
                dcache.fill(dyn.addr)
            if level != MEM:
                initiator = recent_miss.get(line)
                if initiator is not None and dyn.seq - initiator <= merge_window:
                    level = MEM  # would merge with the in-flight fill
            service[dyn.seq] = level
            counts = service_counts.setdefault(pc, [0, 0, 0])
            counts[_LEVEL_INDEX[level]] += 1
        elif op is Op.ST:
            if not dcache.access(dyn.addr, is_write=True):
                if not l2.access(dyn.addr):
                    l2.fill(dyn.addr)
                dcache.fill(dyn.addr, dirty=True)
        elif op.is_branch:
            predicted = predictor.predict_and_update(dyn.pc, dyn.taken)
            entry = result.branch_counts.setdefault(dyn.pc, [0, 0])
            entry[0] += 1
            if predicted != dyn.taken:
                entry[1] += 1
                result.mispredicted.add(dyn.seq)
    return result
