"""Functional expansion of static p-threads into dynamic spawns."""

from __future__ import annotations

import bisect
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.cpu.pthreads import PInstClass, PInstSpec, PThreadProgram, SpawnSpec
from repro.frontend.interpreter import InterpreterState, interpret
from repro.frontend.trace import NO_PRODUCER, Trace
from repro.isa.instruction import Program, StaticInst
from repro.isa.opcodes import IMMEDIATE_OPS, Op, OpClass
from repro.pthsel.pthread import StaticPThread


@dataclass
class AugmentedProgram:
    """A program's trace together with its expanded p-thread spawns."""

    trace: Trace
    pthreads: PThreadProgram
    #: Per static p-thread: dynamic spawns expanded.
    spawn_counts: Dict[int, int]


def _pinst_class(inst: StaticInst) -> PInstClass:
    cls = inst.op.op_class
    if cls is OpClass.LOAD:
        return PInstClass.LOAD
    if cls is OpClass.MUL:
        return PInstClass.MUL
    return PInstClass.ALU


def _expand_body(
    pthread: StaticPThread,
    trigger_seq: int,
    state: InterpreterState,
    hint_seq: int = -1,
) -> SpawnSpec:
    """Execute a p-thread body against spawn-time architectural state.

    Register values are read from the checkpoint (the state just after
    the trigger executed); loads read the memory image as of the spawn
    point.  Returns the spawn's timing description: per p-instruction
    class, resolved address, intra-body dependences and main-thread
    live-in producers.

    For branch p-threads, ``hint_seq`` names the future dynamic branch
    instance the computed outcome is communicated to.
    """
    local_values: Dict[int, int] = {}
    local_writer: Dict[int, int] = {}  # register -> body index
    insts: List[PInstSpec] = []
    target_set = set(pthread.target_pcs)

    for idx, inst in enumerate(pthread.body):
        body_deps: List[int] = []
        livein_seqs: List[int] = []

        def read(reg: int) -> int:
            writer = local_writer.get(reg)
            if writer is not None:
                body_deps.append(writer)
                return local_values[reg]
            producer = state.last_writer[reg]
            if producer != NO_PRODUCER:
                livein_seqs.append(producer)
            return state.regs[reg]

        op = inst.op
        if op.op_class is OpClass.BRANCH:
            # Branch pre-execution: evaluate the outcome and attach the
            # hint; executes as a single-cycle compare.
            a, b2 = read(inst.rs1), read(inst.rs2)
            taken = inst.evaluate_branch(a, b2)
            insts.append(
                PInstSpec(
                    klass=PInstClass.ALU,
                    body_deps=tuple(dict.fromkeys(body_deps)),
                    livein_seqs=tuple(dict.fromkeys(livein_seqs)),
                    hint_branch_seq=hint_seq,
                    hint_taken=taken,
                )
            )
            continue
        if op.op_class is OpClass.LOAD:
            base = read(inst.rs1)
            addr = (base + (inst.imm or 0)) & ~7
            value = state.read_word(addr) if addr >= 0 else 0
            insts.append(
                PInstSpec(
                    klass=PInstClass.LOAD,
                    addr=max(0, addr),
                    body_deps=tuple(dict.fromkeys(body_deps)),
                    livein_seqs=tuple(dict.fromkeys(livein_seqs)),
                    is_target=inst.pc in target_set,
                )
            )
        else:  # ALU / MUL (p-threads contain no stores or branches)
            if op is Op.LI:
                a, b = 0, inst.imm
            elif op is Op.MOV:
                a, b = read(inst.rs1), 0
            elif op in IMMEDIATE_OPS:
                a, b = read(inst.rs1), inst.imm
            else:
                a, b = read(inst.rs1), read(inst.rs2)
            value = inst.evaluate_alu(a, b)
            insts.append(
                PInstSpec(
                    klass=_pinst_class(inst),
                    body_deps=tuple(dict.fromkeys(body_deps)),
                    livein_seqs=tuple(dict.fromkeys(livein_seqs)),
                )
            )
        if inst.rd is not None:
            local_values[inst.rd] = value
            local_writer[inst.rd] = idx

    return SpawnSpec(
        trigger_seq=trigger_seq,
        static_id=pthread.pthread_id,
        insts=tuple(insts),
    )


# --------------------------------------------------------------------- #
# Expansion memo.  A spawn list is a pure function of (program, budget,
# p-thread content): the hooks that collect spawns only *read* the
# interpreter state, so the replay is the same execution every time.  A
# figure sweep selects heavily-overlapping p-thread sets across its
# cells (the same static p-thread reappears at other latencies and
# targets), and each expansion replays the full trace budget -- caching
# per static p-thread means a sweep only pays for interpretation when a
# cell introduces a p-thread nobody has expanded yet.
#
# Keys exclude ``pthread_id`` (selection runs number their picks
# independently); the id recorded at build time is rewritten on reuse.
_SPAWN_CACHE: "OrderedDict[Tuple, Tuple[int, Tuple[SpawnSpec, ...]]]" = (
    OrderedDict()
)
_SPAWN_CACHE_LIMIT = 64

_SPAWN_HITS = obs.counters.counter("ddmt.augment.spawn_cache.hits")
_SPAWN_BUILDS = obs.counters.counter("ddmt.augment.spawn_cache.builds")
_TRACE_ADOPTIONS = obs.counters.counter("ddmt.augment.trace_adoptions")


def clear_spawn_cache() -> None:
    """Drop memoized spawn expansions (tests that patch workloads)."""
    _SPAWN_CACHE.clear()


def _content_key(pthread: StaticPThread) -> Tuple:
    """Behavioral identity of a static p-thread for expansion purposes:
    everything ``_expand_body`` and hint targeting can observe."""
    return (
        pthread.trigger_pc,
        pthread.hint_offset,
        pthread.target_pcs,
        tuple(
            (i.pc, i.op.value, i.rd, i.rs1, i.rs2, i.imm, i.target)
            for i in pthread.body
        ),
    )


def expand_pthreads(
    program: Program,
    pthreads: List[StaticPThread],
    max_instructions: int = 2_000_000,
    reference_trace: Optional[Trace] = None,
    require_halt: bool = True,
) -> AugmentedProgram:
    """Replay ``program`` and expand every spawn of every p-thread.

    Branch p-threads need to know *which* future dynamic instance of
    their target branch each spawn's hint addresses; that mapping comes
    from a reference trace (passed in, or produced by one extra plain
    interpretation).

    When ``reference_trace`` is supplied, it is also *adopted* as the
    augmented program's trace: spawn hooks cannot perturb execution, so
    the hooked interpretation reproduces the reference trace exactly,
    and sharing the object lets every augmented program reuse the
    reference trace's derived analyses and simulation precomputes.
    """
    program_fp = program.fingerprint()
    keys = [
        (program_fp, max_instructions, require_halt) + _content_key(p)
        for p in pthreads
    ]

    # Per-pthread spawn lists, indexed by position in ``pthreads``.
    expanded: Dict[int, Tuple[SpawnSpec, ...]] = {}
    uncached: List[int] = []
    for idx, key in enumerate(keys):
        hit = _SPAWN_CACHE.get(key)
        if hit is None:
            uncached.append(idx)
            continue
        _SPAWN_CACHE.move_to_end(key)
        _SPAWN_HITS.add()
        built_id, spawn_list = hit
        wanted_id = pthreads[idx].pthread_id
        if built_id != wanted_id:
            spawn_list = tuple(
                replace(s, static_id=wanted_id) for s in spawn_list
            )
        expanded[idx] = spawn_list

    trace = reference_trace
    if uncached:
        need = [pthreads[i] for i in uncached]

        # Occurrence lists for branch-hint targeting.
        hint_occurrences: Dict[int, List[int]] = {}
        if any(p.is_branch_pthread for p in need):
            if reference_trace is None:
                reference_trace = interpret(
                    program, max_instructions, require_halt=require_halt
                )
                trace = reference_trace
            for pthread in need:
                if pthread.is_branch_pthread:
                    pc = pthread.target_pcs[0]
                    if pc not in hint_occurrences:
                        hint_occurrences[pc] = reference_trace.occurrences(pc)

        def hint_target(pthread: StaticPThread, seq: int) -> int:
            occurrences = hint_occurrences[pthread.target_pcs[0]]
            index = bisect.bisect_right(occurrences, seq)
            target_index = index + pthread.hint_offset - 1
            if target_index < len(occurrences):
                return occurrences[target_index]
            return -1

        collected: Dict[int, List[SpawnSpec]] = {i: [] for i in uncached}
        by_trigger: Dict[int, List[int]] = {}
        for i in uncached:
            by_trigger.setdefault(pthreads[i].trigger_pc, []).append(i)

        def make_hook(candidates: List[int]):
            def hook(seq: int, state: InterpreterState) -> None:
                for i in candidates:
                    pthread = pthreads[i]
                    hint_seq = (
                        hint_target(pthread, seq)
                        if pthread.is_branch_pthread
                        else -1
                    )
                    collected[i].append(
                        _expand_body(pthread, seq, state, hint_seq=hint_seq)
                    )

            return hook

        hooks = {pc: make_hook(group) for pc, group in by_trigger.items()}
        hooked_trace = interpret(
            program, max_instructions, pc_hooks=hooks,
            require_halt=require_halt,
        )
        if trace is None:
            trace = hooked_trace
        for i in uncached:
            spawn_list = tuple(collected[i])
            expanded[i] = spawn_list
            _SPAWN_CACHE[keys[i]] = (pthreads[i].pthread_id, spawn_list)
            _SPAWN_BUILDS.add()
        while len(_SPAWN_CACHE) > _SPAWN_CACHE_LIMIT:
            _SPAWN_CACHE.popitem(last=False)
    elif trace is None:
        trace = interpret(program, max_instructions, require_halt=require_halt)
    if trace is reference_trace and reference_trace is not None:
        _TRACE_ADOPTIONS.add()

    # Merge per-pthread lists back into the order a single hooked replay
    # would have produced them: trace order, ties (several p-threads on
    # one trigger) broken by position in ``pthreads``.  Spawn order is
    # observable -- the simulator allocates contexts in list order.
    merged: List[Tuple[int, int, SpawnSpec]] = []
    for idx in range(len(pthreads)):
        for spawn in expanded[idx]:
            merged.append((spawn.trigger_seq, idx, spawn))
    merged.sort(key=lambda item: (item[0], item[1]))
    spawns = [item[2] for item in merged]
    spawn_counts = {
        pthreads[idx].pthread_id: len(expanded[idx])
        for idx in range(len(pthreads))
    }
    return AugmentedProgram(
        trace=trace,
        pthreads=PThreadProgram.from_spawns(spawns),
        spawn_counts=spawn_counts,
    )
