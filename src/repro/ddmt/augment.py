"""Functional expansion of static p-threads into dynamic spawns."""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cpu.pthreads import PInstClass, PInstSpec, PThreadProgram, SpawnSpec
from repro.frontend.interpreter import InterpreterState, interpret
from repro.frontend.trace import NO_PRODUCER, Trace
from repro.isa.instruction import Program, StaticInst
from repro.isa.opcodes import IMMEDIATE_OPS, Op, OpClass
from repro.pthsel.pthread import StaticPThread


@dataclass
class AugmentedProgram:
    """A program's trace together with its expanded p-thread spawns."""

    trace: Trace
    pthreads: PThreadProgram
    #: Per static p-thread: dynamic spawns expanded.
    spawn_counts: Dict[int, int]


def _pinst_class(inst: StaticInst) -> PInstClass:
    cls = inst.op.op_class
    if cls is OpClass.LOAD:
        return PInstClass.LOAD
    if cls is OpClass.MUL:
        return PInstClass.MUL
    return PInstClass.ALU


def _expand_body(
    pthread: StaticPThread,
    trigger_seq: int,
    state: InterpreterState,
    hint_seq: int = -1,
) -> SpawnSpec:
    """Execute a p-thread body against spawn-time architectural state.

    Register values are read from the checkpoint (the state just after
    the trigger executed); loads read the memory image as of the spawn
    point.  Returns the spawn's timing description: per p-instruction
    class, resolved address, intra-body dependences and main-thread
    live-in producers.

    For branch p-threads, ``hint_seq`` names the future dynamic branch
    instance the computed outcome is communicated to.
    """
    local_values: Dict[int, int] = {}
    local_writer: Dict[int, int] = {}  # register -> body index
    insts: List[PInstSpec] = []
    target_set = set(pthread.target_pcs)

    for idx, inst in enumerate(pthread.body):
        body_deps: List[int] = []
        livein_seqs: List[int] = []

        def read(reg: int) -> int:
            writer = local_writer.get(reg)
            if writer is not None:
                body_deps.append(writer)
                return local_values[reg]
            producer = state.last_writer[reg]
            if producer != NO_PRODUCER:
                livein_seqs.append(producer)
            return state.regs[reg]

        op = inst.op
        if op.op_class is OpClass.BRANCH:
            # Branch pre-execution: evaluate the outcome and attach the
            # hint; executes as a single-cycle compare.
            a, b2 = read(inst.rs1), read(inst.rs2)
            taken = inst.evaluate_branch(a, b2)
            insts.append(
                PInstSpec(
                    klass=PInstClass.ALU,
                    body_deps=tuple(dict.fromkeys(body_deps)),
                    livein_seqs=tuple(dict.fromkeys(livein_seqs)),
                    hint_branch_seq=hint_seq,
                    hint_taken=taken,
                )
            )
            continue
        if op.op_class is OpClass.LOAD:
            base = read(inst.rs1)
            addr = (base + (inst.imm or 0)) & ~7
            value = state.read_word(addr) if addr >= 0 else 0
            insts.append(
                PInstSpec(
                    klass=PInstClass.LOAD,
                    addr=max(0, addr),
                    body_deps=tuple(dict.fromkeys(body_deps)),
                    livein_seqs=tuple(dict.fromkeys(livein_seqs)),
                    is_target=inst.pc in target_set,
                )
            )
        else:  # ALU / MUL (p-threads contain no stores or branches)
            if op is Op.LI:
                a, b = 0, inst.imm
            elif op is Op.MOV:
                a, b = read(inst.rs1), 0
            elif op in IMMEDIATE_OPS:
                a, b = read(inst.rs1), inst.imm
            else:
                a, b = read(inst.rs1), read(inst.rs2)
            value = inst.evaluate_alu(a, b)
            insts.append(
                PInstSpec(
                    klass=_pinst_class(inst),
                    body_deps=tuple(dict.fromkeys(body_deps)),
                    livein_seqs=tuple(dict.fromkeys(livein_seqs)),
                )
            )
        if inst.rd is not None:
            local_values[inst.rd] = value
            local_writer[inst.rd] = idx

    return SpawnSpec(
        trigger_seq=trigger_seq,
        static_id=pthread.pthread_id,
        insts=tuple(insts),
    )


def expand_pthreads(
    program: Program,
    pthreads: List[StaticPThread],
    max_instructions: int = 2_000_000,
    reference_trace: Optional[Trace] = None,
) -> AugmentedProgram:
    """Replay ``program`` and expand every spawn of every p-thread.

    Branch p-threads need to know *which* future dynamic instance of
    their target branch each spawn's hint addresses; that mapping comes
    from a reference trace (passed in, or produced by one extra plain
    interpretation).
    """
    by_trigger: Dict[int, List[StaticPThread]] = {}
    for pthread in pthreads:
        by_trigger.setdefault(pthread.trigger_pc, []).append(pthread)

    # Occurrence lists for branch-hint targeting.
    hint_occurrences: Dict[int, List[int]] = {}
    if any(p.is_branch_pthread for p in pthreads):
        if reference_trace is None:
            reference_trace = interpret(program, max_instructions)
        for pthread in pthreads:
            if pthread.is_branch_pthread:
                pc = pthread.target_pcs[0]
                if pc not in hint_occurrences:
                    hint_occurrences[pc] = reference_trace.occurrences(pc)

    spawns: List[SpawnSpec] = []
    spawn_counts: Dict[int, int] = {p.pthread_id: 0 for p in pthreads}

    def hint_target(pthread: StaticPThread, seq: int) -> int:
        occurrences = hint_occurrences[pthread.target_pcs[0]]
        index = bisect.bisect_right(occurrences, seq)
        target_index = index + pthread.hint_offset - 1
        if target_index < len(occurrences):
            return occurrences[target_index]
        return -1

    def make_hook(candidates: List[StaticPThread]):
        def hook(seq: int, state: InterpreterState) -> None:
            for pthread in candidates:
                hint_seq = (
                    hint_target(pthread, seq)
                    if pthread.is_branch_pthread
                    else -1
                )
                spawns.append(
                    _expand_body(pthread, seq, state, hint_seq=hint_seq)
                )
                spawn_counts[pthread.pthread_id] += 1

        return hook

    hooks = {pc: make_hook(group) for pc, group in by_trigger.items()}
    trace = interpret(program, max_instructions, pc_hooks=hooks)
    return AugmentedProgram(
        trace=trace,
        pthreads=PThreadProgram.from_spawns(spawns),
        spawn_counts=spawn_counts,
    )
