"""DDMT binary augmentation: from selected static p-threads to spawns.

Speculative Data-Driven Multithreading (Roth & Sohi [18]) forks p-threads
microarchitecturally: when the main thread renames a trigger, a register
map checkpoint is handed to a free context, which then fetches and
executes the fixed p-thread body.  Trace-driven equivalently: we replay
the program functionally and, at every dynamic occurrence of a trigger
PC, expand the p-thread body against the architectural state at that
point, yielding the per-spawn instruction lists (with resolved load
addresses and dependences) the timing simulator consumes.
"""

from repro.ddmt.augment import AugmentedProgram, expand_pthreads

__all__ = ["AugmentedProgram", "expand_pthreads"]
