"""Reproduction of Petric & Roth, ISCA 2005.

"Energy-Effectiveness of Pre-Execution and Energy-Aware P-Thread Selection"

The package implements the paper's primary contribution -- the PTHSEL and
PTHSEL+E analytical p-thread selection frameworks -- together with every
substrate the paper's evaluation depends on:

- a small RISC ISA and program builder (:mod:`repro.isa`),
- synthetic SPEC2000-integer-like workloads (:mod:`repro.workloads`),
- a functional frontend producing dynamic traces (:mod:`repro.frontend`),
- a cache/TLB/bus memory hierarchy (:mod:`repro.memory`),
- hybrid branch prediction (:mod:`repro.branch`),
- a cycle-level out-of-order multithreaded CPU with DDMT-style
  pre-execution (:mod:`repro.cpu`),
- a Wattch-style energy model (:mod:`repro.energy`),
- a Fields-style critical-path analyzer (:mod:`repro.critpath`),
- a dynamic backward slicer producing slice trees (:mod:`repro.slicer`),
- the PTHSEL / PTHSEL+E selection core (:mod:`repro.pthsel`),
- DDMT binary augmentation (:mod:`repro.ddmt`), and
- the experiment harness that regenerates every table and figure
  (:mod:`repro.harness`).

Quickstart
----------
>>> from repro import run_experiment, Target
>>> result = run_experiment("gcc", target=Target.LATENCY)
>>> result.speedup_pct > 0
True
"""

from typing import TYPE_CHECKING

from repro.config import (
    EnergyConfig,
    MachineConfig,
    SelectionConfig,
    SimulationConfig,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.experiment import (
        ExperimentResult,
        run_baseline,
        run_experiment,
    )
    from repro.pthsel.targets import Target

__version__ = "1.0.0"

__all__ = [
    "EnergyConfig",
    "ExperimentResult",
    "MachineConfig",
    "SelectionConfig",
    "SimulationConfig",
    "Target",
    "run_baseline",
    "run_experiment",
    "__version__",
]

_LAZY = {
    "ExperimentResult": ("repro.harness.experiment", "ExperimentResult"),
    "run_baseline": ("repro.harness.experiment", "run_baseline"),
    "run_experiment": ("repro.harness.experiment", "run_experiment"),
    "Target": ("repro.pthsel.targets", "Target"),
}


def __getattr__(name: str):
    """Lazily resolve the heavyweight public entry points (PEP 562)."""
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
