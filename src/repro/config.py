"""Configuration objects for the machine, energy model, selection, and runs.

Defaults reproduce the paper's experimental setup (Section 3.1):

- a 6-way superscalar, 15-stage, dynamically scheduled multithreaded
  processor with a 128-entry ROB, 80 reservation stations, 384 physical
  registers and 8 thread contexts;
- 32KB/2-way/1-cycle L1I, 16KB/2-way/2-cycle L1D, 256KB/4-way/12-cycle L2,
  64-entry I/D TLBs, 16-byte buses with the memory bus at 1/4 core clock,
  a 200-cycle infinite main memory, 2 load + 1 store ports, 16 MSHRs;
- an 8K-entry hybrid branch predictor with a 2K-entry BTB;
- Wattch-style energy with a 5% idle energy factor at 100nm / 3GHz / 1.2V.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict

from repro.errors import ConfigError


def _require(
    owner: str, field_name: str, value: object, ok: bool, legal: str
) -> None:
    """Raise a :class:`ConfigError` naming the offending field and its
    legal range -- the contract of every ``validate()`` below."""
    if not ok:
        raise ConfigError(
            f"{owner}.{field_name} = {value!r} is invalid; legal: {legal}"
        )


def _power_of_two(n: int) -> bool:
    return n >= 1 and not (n & (n - 1))


class _Fingerprinted:
    """Mixin: short stable content hash for run-manifest provenance."""

    @property
    def fingerprint(self) -> str:
        from repro.obs.manifest import config_fingerprint

        return config_fingerprint(self)


@dataclass(frozen=True)
class CacheConfig(_Fingerprinted):
    """Geometry and timing of one cache level."""

    size_bytes: int
    assoc: int
    line_bytes: int
    hit_latency: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.assoc <= 0 or self.line_bytes <= 0:
            raise ConfigError("cache geometry values must be positive")
        n_lines = self.size_bytes // self.line_bytes
        if n_lines % self.assoc:
            raise ConfigError(
                f"cache of {n_lines} lines not divisible into {self.assoc} ways"
            )
        n_sets = n_lines // self.assoc
        if n_sets & (n_sets - 1):
            raise ConfigError(f"number of sets must be a power of two, got {n_sets}")
        if self.hit_latency < 1:
            raise ConfigError("hit latency must be at least one cycle")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.assoc)

    def validate(self, owner: str = "CacheConfig") -> "CacheConfig":
        """Field-by-field validation with named-field diagnostics.

        ``__post_init__`` keeps obviously broken geometry from ever being
        constructed; this re-checks with messages that name the offending
        field and its legal range, so a bad sweep axis fails at experiment
        start with an actionable error instead of deep in a worker.
        """
        _require(owner, "size_bytes", self.size_bytes, self.size_bytes >= 1, ">= 1")
        _require(owner, "assoc", self.assoc, self.assoc >= 1, ">= 1")
        _require(
            owner,
            "line_bytes",
            self.line_bytes,
            _power_of_two(self.line_bytes),
            "a power of two >= 1",
        )
        _require(
            owner,
            "hit_latency",
            self.hit_latency,
            self.hit_latency >= 1,
            ">= 1 cycle",
        )
        _require(
            owner,
            "size_bytes",
            self.size_bytes,
            _power_of_two(self.n_sets),
            f"a size giving a power-of-two set count "
            f"(got {self.n_sets} sets for assoc={self.assoc}, "
            f"line_bytes={self.line_bytes})",
        )
        return self


@dataclass(frozen=True)
class MachineConfig(_Fingerprinted):
    """Microarchitectural parameters of the simulated processor."""

    width: int = 6
    pipeline_stages: int = 15
    rob_entries: int = 128
    rs_entries: int = 80
    physical_registers: int = 384
    thread_contexts: int = 8
    commit_width: int = 6
    load_ports: int = 2
    store_ports: int = 1
    mshr_entries: int = 16
    int_alus: int = 6
    mul_latency: int = 3

    icache: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 2, 64, 1)
    )
    dcache: CacheConfig = field(
        default_factory=lambda: CacheConfig(16 * 1024, 2, 64, 2)
    )
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(256 * 1024, 4, 64, 12))
    itlb_entries: int = 64
    dtlb_entries: int = 64
    page_bytes: int = 8192
    tlb_miss_latency: int = 30

    memory_latency: int = 200
    bus_bytes: int = 16
    memory_bus_divisor: int = 4

    bpred_entries: int = 8192
    btb_entries: int = 2048

    # DDMT: p-threads are sequenced in width-sized blocks at a frequency that
    # achieves 1 instruction/cycle of aggregate bandwidth (Section 4.2, E5).
    pthread_fetch_ipc: float = 1.0
    #: Reservation stations the main thread may not occupy, so p-threads
    #: can always enter the scheduler even when the main thread's window
    #: is full of long-latency waiters (DDMT allocates p-instructions
    #: reservation stations of their own).
    pthread_rs_reserve: int = 12
    # DDMT prefetches into the L2 only, bypassing the L1 (Section 4.2).
    pthread_fill_l1: bool = False

    def __post_init__(self) -> None:
        if self.width < 1 or self.commit_width < 1:
            raise ConfigError("pipeline widths must be positive")
        if self.thread_contexts < 1:
            raise ConfigError("at least one thread context is required")
        if self.memory_latency < 1:
            raise ConfigError("memory latency must be positive")
        if self.rob_entries < self.width:
            raise ConfigError("ROB must hold at least one fetch group")

    def validate(self) -> "MachineConfig":
        """Validate every field (and the cache sub-configs), raising a
        :class:`ConfigError` that names the offending field and its legal
        range.  Called at experiment start so misconfigured sweeps fail
        before any simulation work is dispatched."""
        owner = "MachineConfig"
        _require(owner, "width", self.width, 1 <= self.width <= 64, "1..64")
        _require(
            owner,
            "pipeline_stages",
            self.pipeline_stages,
            self.pipeline_stages >= 6,
            ">= 6 (frontend depth must be positive)",
        )
        _require(
            owner,
            "commit_width",
            self.commit_width,
            self.commit_width >= 1,
            ">= 1",
        )
        _require(
            owner,
            "rob_entries",
            self.rob_entries,
            self.rob_entries >= self.width,
            f">= width ({self.width}): the ROB must hold a full fetch group",
        )
        _require(
            owner, "rs_entries", self.rs_entries, self.rs_entries >= 1, ">= 1"
        )
        _require(
            owner,
            "pthread_rs_reserve",
            self.pthread_rs_reserve,
            0 <= self.pthread_rs_reserve < self.rs_entries,
            f"0..rs_entries-1 (rs_entries={self.rs_entries})",
        )
        _require(
            owner,
            "physical_registers",
            self.physical_registers,
            self.physical_registers >= self.rob_entries,
            f">= rob_entries ({self.rob_entries})",
        )
        _require(
            owner,
            "thread_contexts",
            self.thread_contexts,
            self.thread_contexts >= 1,
            ">= 1",
        )
        _require(
            owner, "load_ports", self.load_ports, self.load_ports >= 1, ">= 1"
        )
        _require(
            owner,
            "store_ports",
            self.store_ports,
            self.store_ports >= 1,
            ">= 1",
        )
        _require(
            owner,
            "mshr_entries",
            self.mshr_entries,
            self.mshr_entries >= 1,
            ">= 1",
        )
        _require(owner, "int_alus", self.int_alus, self.int_alus >= 1, ">= 1")
        _require(
            owner,
            "mul_latency",
            self.mul_latency,
            self.mul_latency >= 1,
            ">= 1 cycle",
        )
        _require(
            owner,
            "itlb_entries",
            self.itlb_entries,
            self.itlb_entries >= 1,
            ">= 1",
        )
        _require(
            owner,
            "dtlb_entries",
            self.dtlb_entries,
            self.dtlb_entries >= 1,
            ">= 1",
        )
        _require(
            owner,
            "page_bytes",
            self.page_bytes,
            _power_of_two(self.page_bytes),
            "a power of two >= 1",
        )
        _require(
            owner,
            "tlb_miss_latency",
            self.tlb_miss_latency,
            self.tlb_miss_latency >= 0,
            ">= 0 cycles",
        )
        _require(
            owner,
            "memory_latency",
            self.memory_latency,
            self.memory_latency >= 1,
            ">= 1 cycle",
        )
        _require(
            owner,
            "bus_bytes",
            self.bus_bytes,
            _power_of_two(self.bus_bytes),
            "a power of two >= 1",
        )
        _require(
            owner,
            "memory_bus_divisor",
            self.memory_bus_divisor,
            self.memory_bus_divisor >= 1,
            ">= 1",
        )
        _require(
            owner,
            "bpred_entries",
            self.bpred_entries,
            _power_of_two(self.bpred_entries),
            "a power of two >= 1 (predictor tables are index-masked)",
        )
        _require(
            owner,
            "btb_entries",
            self.btb_entries,
            self.btb_entries >= 1,
            ">= 1",
        )
        _require(
            owner,
            "pthread_fetch_ipc",
            self.pthread_fetch_ipc,
            0.0 < self.pthread_fetch_ipc <= float(self.width),
            f"in (0, width] (width={self.width})",
        )
        self.icache.validate("MachineConfig.icache")
        self.dcache.validate("MachineConfig.dcache")
        self.l2.validate("MachineConfig.l2")
        return self

    @property
    def frontend_depth(self) -> int:
        """Stages between fetch and execute, charged on a mispredict redirect."""
        return max(1, self.pipeline_stages - 5)

    def scaled_l2(self, size_bytes: int, hit_latency: int) -> "MachineConfig":
        """Return a copy with a different L2 size/latency (Figure 5 bottom)."""
        new_l2 = CacheConfig(size_bytes, self.l2.assoc, self.l2.line_bytes, hit_latency)
        return replace(self, l2=new_l2)

    def with_memory_latency(self, latency: int) -> "MachineConfig":
        """Return a copy with a different memory latency (Figure 5 middle)."""
        return replace(self, memory_latency=latency)


#: Per-structure share of maximum per-cycle energy, from Section 3.1.  The
#: breakdown "corresponds to an unrealistic cycle in which every port of
#: every structure is accessed".
PAPER_STRUCTURE_SHARES: Dict[str, float] = {
    "bpred": 0.044,  # branch predictor + BTB
    "icache": 0.181,  # instruction cache + ITLB
    "window": 0.136,  # issue window / ROB / result bus
    "regfile": 0.142,
    "alu": 0.055,
    "dcache": 0.086,  # data cache + DTLB + LSQ
    "l2": 0.136,
    "clock": 0.220,
}


@dataclass(frozen=True)
class EnergyConfig(_Fingerprinted):
    """Wattch-style energy model parameters.

    All per-access / per-cycle constants are expressed as fractions of the
    maximum per-cycle energy consumption ``e_max_per_cycle`` (Section 4.2,
    equation E8 lists the fractions used by PTHSEL+E).
    """

    #: Absolute scale in joules for one maximum-activity cycle.  100nm, 3GHz,
    #: 1.2V; chosen so that full-activity power is ~60W, in line with
    #: high-end 2005 desktop parts.  Only ratios matter for the results.
    e_max_per_cycle: float = 20e-9

    #: Fraction of a structure's max energy drawn even when unused
    #: ("all structures draw some fixed fraction of their maximum per-cycle
    #: energy even when unused").  This together with the clock tree makes up
    #: the idle energy.
    idle_factor: float = 0.05

    structure_shares: Dict[str, float] = field(
        default_factory=lambda: dict(PAPER_STRUCTURE_SHARES)
    )

    # PTHSEL+E external parameters (equation E8), as fractions of
    # e_max_per_cycle: fetch 9%, all-execute 4.9%, ALU 0.8%, load 3.8%,
    # L2 13.6%, idle 5%.
    e_fetch_access: float = 0.09
    e_xall_access: float = 0.049
    e_xalu_access: float = 0.008
    e_xload_access: float = 0.038
    e_l2_access: float = 0.136
    # e_idle_per_cycle defaults to idle_factor; kept separate so the
    # selection model can be fed a wrong constant in validation studies.

    process_nm: int = 100
    frequency_ghz: float = 3.0
    vdd: float = 1.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.idle_factor <= 1.0:
            raise ConfigError("idle_factor must be within [0, 1]")
        if self.e_max_per_cycle <= 0:
            raise ConfigError("e_max_per_cycle must be positive")
        total = sum(self.structure_shares.values())
        if not math.isclose(total, 1.0, abs_tol=0.02):
            raise ConfigError(
                f"structure shares must sum to ~1.0, got {total:.3f}"
            )

    def validate(self) -> "EnergyConfig":
        """Validate every field, naming the offender and its legal range."""
        owner = "EnergyConfig"
        _require(
            owner,
            "e_max_per_cycle",
            self.e_max_per_cycle,
            self.e_max_per_cycle > 0,
            "> 0 joules",
        )
        _require(
            owner,
            "idle_factor",
            self.idle_factor,
            0.0 <= self.idle_factor <= 1.0,
            "in [0, 1]",
        )
        for field_name in (
            "e_fetch_access",
            "e_xall_access",
            "e_xalu_access",
            "e_xload_access",
            "e_l2_access",
        ):
            value = getattr(self, field_name)
            _require(
                owner,
                field_name,
                value,
                0.0 <= value <= 1.0,
                "in [0, 1] (a fraction of e_max_per_cycle)",
            )
        total = sum(self.structure_shares.values())
        _require(
            owner,
            "structure_shares",
            round(total, 3),
            math.isclose(total, 1.0, abs_tol=0.02),
            "shares summing to 1.0 +/- 0.02",
        )
        _require(
            owner,
            "process_nm",
            self.process_nm,
            self.process_nm >= 1,
            ">= 1",
        )
        _require(
            owner,
            "frequency_ghz",
            self.frequency_ghz,
            self.frequency_ghz > 0,
            "> 0",
        )
        _require(owner, "vdd", self.vdd, self.vdd > 0, "> 0 volts")
        return self

    @property
    def e_idle_per_cycle(self) -> float:
        """Idle energy per cycle as a fraction of max per-cycle energy."""
        return self.idle_factor

    def with_idle_factor(self, factor: float) -> "EnergyConfig":
        """Return a copy with a different idle energy factor (Figure 5 top)."""
        return replace(self, idle_factor=factor)

    def joules(self, fraction_cycles: float) -> float:
        """Convert an energy expressed in max-cycle fractions to joules."""
        return fraction_cycles * self.e_max_per_cycle


class LoadCostModel:
    """Which latency-reduction -> execution-time-reduction model to use.

    ``FLAT`` is original PTHSEL's cycle-for-cycle assumption; ``CRITICALITY``
    is the Section 4.1 model built from averaged pessimistic/optimistic
    critical-path estimates.
    """

    FLAT = "flat"
    CRITICALITY = "criticality"


@dataclass(frozen=True)
class SelectionConfig(_Fingerprinted):
    """PTHSEL / PTHSEL+E algorithm parameters (Section 3.1 defaults)."""

    slicing_window: int = 2048
    max_pthread_insts: int = 64
    max_unroll: int = 8
    load_cost_model: str = LoadCostModel.CRITICALITY
    #: Problem loads below this share of total L2 misses are not targeted.
    min_miss_share: float = 0.02
    #: Candidates whose modeled execution-time gain per covered miss is
    #: below this many cycles are never selected (filters degenerate
    #: zero-lookahead p-threads that only add overhead).
    min_gain_cycles: float = 1.0
    #: Derating applied to cache misses *embedded inside a p-thread body*
    #: when estimating how long the p-thread takes to reach its target
    #: load.  A p-thread's own misses see bus/MSHR queueing on top of the
    #: raw miss latency, so un-derated estimates make serial
    #: chase-through-chase p-threads (which can never outrun the main
    #: thread's identical dependence chain) look marginally profitable.
    embedded_latency_factor: float = 1.4
    #: Maximum number of static problem loads considered per program.
    max_problem_loads: int = 12
    merge_triggers: bool = True
    overlap_discount: bool = True
    #: Composition weight W (C2): 1 = latency, 0 = energy, 0.5 = ED,
    #: 0.67 = ED^2.  Set by the Target used at the framework level.
    composition_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.slicing_window < 2:
            raise ConfigError("slicing window must cover at least 2 instructions")
        if self.max_pthread_insts < 1:
            raise ConfigError("p-threads must be allowed at least 1 instruction")
        if not 0.0 <= self.composition_weight <= 1.0:
            raise ConfigError("composition weight W must be in [0, 1]")
        if self.load_cost_model not in (LoadCostModel.FLAT, LoadCostModel.CRITICALITY):
            raise ConfigError(f"unknown load cost model {self.load_cost_model!r}")

    def validate(self) -> "SelectionConfig":
        """Validate every field, naming the offender and its legal range."""
        owner = "SelectionConfig"
        _require(
            owner,
            "slicing_window",
            self.slicing_window,
            self.slicing_window >= 2,
            ">= 2 instructions",
        )
        _require(
            owner,
            "max_pthread_insts",
            self.max_pthread_insts,
            self.max_pthread_insts >= 1,
            ">= 1",
        )
        _require(
            owner,
            "max_unroll",
            self.max_unroll,
            self.max_unroll >= 1,
            ">= 1",
        )
        _require(
            owner,
            "load_cost_model",
            self.load_cost_model,
            self.load_cost_model
            in (LoadCostModel.FLAT, LoadCostModel.CRITICALITY),
            f"'{LoadCostModel.FLAT}' or '{LoadCostModel.CRITICALITY}'",
        )
        _require(
            owner,
            "min_miss_share",
            self.min_miss_share,
            0.0 <= self.min_miss_share <= 1.0,
            "in [0, 1]",
        )
        _require(
            owner,
            "min_gain_cycles",
            self.min_gain_cycles,
            self.min_gain_cycles >= 0.0,
            ">= 0 cycles",
        )
        _require(
            owner,
            "embedded_latency_factor",
            self.embedded_latency_factor,
            self.embedded_latency_factor >= 1.0,
            ">= 1.0 (a derating multiplier)",
        )
        _require(
            owner,
            "max_problem_loads",
            self.max_problem_loads,
            self.max_problem_loads >= 1,
            ">= 1",
        )
        _require(
            owner,
            "composition_weight",
            self.composition_weight,
            0.0 <= self.composition_weight <= 1.0,
            "in [0, 1] (1 = latency, 0 = energy)",
        )
        return self


@dataclass(frozen=True)
class SimulationConfig(_Fingerprinted):
    """How much of a workload to run and how."""

    max_instructions: int = 400_000
    #: Periodic sampling: fraction of the run measured in detail.  1.0
    #: disables sampling (the default for our synthetic workloads, which are
    #: small enough to run in full).
    sample_fraction: float = 1.0
    sample_instructions: int = 10_000_000
    warmup_fraction: float = 0.02
    seed: int = 1

    def __post_init__(self) -> None:
        if self.max_instructions < 1:
            raise ConfigError("max_instructions must be positive")
        if not 0.0 < self.sample_fraction <= 1.0:
            raise ConfigError("sample_fraction must be in (0, 1]")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigError("warmup_fraction must be in [0, 1)")

    def validate(self) -> "SimulationConfig":
        """Validate every field, naming the offender and its legal range."""
        owner = "SimulationConfig"
        _require(
            owner,
            "max_instructions",
            self.max_instructions,
            self.max_instructions >= 1,
            ">= 1",
        )
        _require(
            owner,
            "sample_fraction",
            self.sample_fraction,
            0.0 < self.sample_fraction <= 1.0,
            "in (0, 1]",
        )
        _require(
            owner,
            "sample_instructions",
            self.sample_instructions,
            self.sample_instructions >= 1,
            ">= 1",
        )
        _require(
            owner,
            "warmup_fraction",
            self.warmup_fraction,
            0.0 <= self.warmup_fraction < 1.0,
            "in [0, 1)",
        )
        _require(owner, "seed", self.seed, self.seed >= 0, ">= 0")
        return self
