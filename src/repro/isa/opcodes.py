"""Opcode definitions and functional semantics.

Values are 64-bit two's-complement integers; arithmetic wraps.  Loads and
stores move aligned 8-byte words.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict

_MASK = (1 << 64) - 1
_SIGN = 1 << 63


def _wrap(value: int) -> int:
    """Wrap a Python int to signed 64-bit two's complement."""
    value &= _MASK
    return value - (1 << 64) if value & _SIGN else value


class OpClass(enum.Enum):
    """Coarse instruction class used by the timing and energy models."""

    ALU = "alu"
    MUL = "mul"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    NOP = "nop"
    HALT = "halt"


class Op(enum.Enum):
    """Instruction opcodes."""

    # ALU register-register / register-immediate.
    ADD = "add"
    ADDI = "addi"
    SUB = "sub"
    AND = "and"
    ANDI = "andi"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHLI = "shli"
    SHR = "shr"
    SHRI = "shri"
    SLT = "slt"
    SLTI = "slti"
    MUL = "mul"
    LI = "li"  # rd = imm
    MOV = "mov"  # rd = rs1

    # Memory: LD rd, imm(rs1); ST rs2, imm(rs1).
    LD = "ld"
    ST = "st"

    # Control: conditional branches compare rs1 against rs2 (or zero).
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    JMP = "jmp"

    NOP = "nop"
    HALT = "halt"

    @property
    def op_class(self) -> OpClass:
        return _OP_CLASS[self]

    @property
    def is_load(self) -> bool:
        return self is Op.LD

    @property
    def is_store(self) -> bool:
        return self is Op.ST

    @property
    def is_branch(self) -> bool:
        return _OP_CLASS[self] is OpClass.BRANCH

    @property
    def is_control(self) -> bool:
        return _OP_CLASS[self] in (OpClass.BRANCH, OpClass.JUMP)

    @property
    def writes_register(self) -> bool:
        return _OP_CLASS[self] in (OpClass.ALU, OpClass.MUL, OpClass.LOAD)


_OP_CLASS: Dict[Op, OpClass] = {
    Op.ADD: OpClass.ALU,
    Op.ADDI: OpClass.ALU,
    Op.SUB: OpClass.ALU,
    Op.AND: OpClass.ALU,
    Op.ANDI: OpClass.ALU,
    Op.OR: OpClass.ALU,
    Op.XOR: OpClass.ALU,
    Op.SHL: OpClass.ALU,
    Op.SHLI: OpClass.ALU,
    Op.SHR: OpClass.ALU,
    Op.SHRI: OpClass.ALU,
    Op.SLT: OpClass.ALU,
    Op.SLTI: OpClass.ALU,
    Op.MUL: OpClass.MUL,
    Op.LI: OpClass.ALU,
    Op.MOV: OpClass.ALU,
    Op.LD: OpClass.LOAD,
    Op.ST: OpClass.STORE,
    Op.BEQ: OpClass.BRANCH,
    Op.BNE: OpClass.BRANCH,
    Op.BLT: OpClass.BRANCH,
    Op.BGE: OpClass.BRANCH,
    Op.JMP: OpClass.JUMP,
    Op.NOP: OpClass.NOP,
    Op.HALT: OpClass.HALT,
}

#: Functional semantics of ALU/MUL ops: (a, b) -> result, where ``b`` is the
#: second register operand or the immediate, depending on the opcode.
ALU_SEMANTICS: Dict[Op, Callable[[int, int], int]] = {
    Op.ADD: lambda a, b: _wrap(a + b),
    Op.ADDI: lambda a, b: _wrap(a + b),
    Op.SUB: lambda a, b: _wrap(a - b),
    Op.AND: lambda a, b: a & b,
    Op.ANDI: lambda a, b: a & b,
    Op.OR: lambda a, b: a | b,
    Op.XOR: lambda a, b: a ^ b,
    Op.SHL: lambda a, b: _wrap(a << (b & 63)),
    Op.SHLI: lambda a, b: _wrap(a << (b & 63)),
    Op.SHR: lambda a, b: _wrap((a & _MASK) >> (b & 63)),
    Op.SHRI: lambda a, b: _wrap((a & _MASK) >> (b & 63)),
    Op.SLT: lambda a, b: int(a < b),
    Op.SLTI: lambda a, b: int(a < b),
    Op.MUL: lambda a, b: _wrap(a * b),
    Op.LI: lambda a, b: b,
    Op.MOV: lambda a, b: a,
}

#: Branch semantics: (a, b) -> taken?
BRANCH_SEMANTICS: Dict[Op, Callable[[int, int], bool]] = {
    Op.BEQ: lambda a, b: a == b,
    Op.BNE: lambda a, b: a != b,
    Op.BLT: lambda a, b: a < b,
    Op.BGE: lambda a, b: a >= b,
}

#: Opcodes whose second source operand comes from the immediate field.
IMMEDIATE_OPS = frozenset(
    {Op.ADDI, Op.ANDI, Op.SHLI, Op.SHRI, Op.SLTI, Op.LI}
)

# --------------------------------------------------------------------- #
# Dense integer opcode encoding for the columnar trace representation.
#
# Columns store one small int per dynamic instruction instead of an enum
# member; per-code tuples below replace the ``Op -> OpClass`` enum-hash
# chains in every hot loop (interpreter, pipeline, classifier).  The
# encoding is definition order, which is stable: appending opcodes keeps
# existing codes valid.
# --------------------------------------------------------------------- #

#: code -> Op, in definition order (the inverse of :data:`CODE_BY_OP`).
OPS_BY_CODE: tuple = tuple(Op)

#: Op -> dense integer code.
CODE_BY_OP: Dict[Op, int] = {op: i for i, op in enumerate(OPS_BY_CODE)}

#: code -> OpClass.
CLASS_BY_CODE: tuple = tuple(_OP_CLASS[op] for op in OPS_BY_CODE)

#: code -> writes an architectural register.
WRITES_BY_CODE: tuple = tuple(op.writes_register for op in OPS_BY_CODE)

#: Dense codes of the conditional branch opcodes.
BRANCH_CODES = frozenset(
    code
    for code, cls in enumerate(CLASS_BY_CODE)
    if cls is OpClass.BRANCH
)

LD_CODE = CODE_BY_OP[Op.LD]
ST_CODE = CODE_BY_OP[Op.ST]
