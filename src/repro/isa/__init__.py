"""A small RISC ISA: opcodes, static instructions, and a program builder.

The ISA deliberately mirrors the instruction classes that matter to the
paper -- ALU operations, loads, stores, conditional branches, and jumps --
without the encoding baggage of a real ISA.  Programs are lists of
:class:`~repro.isa.instruction.StaticInst` addressed by index ("PC").
"""

from repro.isa.builder import DataSegment, ProgramBuilder
from repro.isa.instruction import Program, StaticInst
from repro.isa.opcodes import Op, OpClass
from repro.isa.registers import NUM_ARCH_REGS, Reg

__all__ = [
    "DataSegment",
    "NUM_ARCH_REGS",
    "Op",
    "OpClass",
    "Program",
    "ProgramBuilder",
    "Reg",
    "StaticInst",
]
