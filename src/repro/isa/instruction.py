"""Static instruction and program containers."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ProgramError
from repro.isa.opcodes import (
    ALU_SEMANTICS,
    BRANCH_SEMANTICS,
    IMMEDIATE_OPS,
    Op,
    OpClass,
)
from repro.isa.registers import NUM_ARCH_REGS


@dataclass(frozen=True)
class StaticInst:
    """One static instruction.

    Fields not used by an opcode are ``None``.  ``target`` is the static PC
    of a taken branch or jump.  ``annotation`` is a free-form label the
    workload generators use to mark instructions of interest (e.g. which
    source-level statement a load corresponds to).
    """

    pc: int
    op: Op
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: Optional[int] = None
    target: Optional[int] = None
    annotation: str = ""

    def __post_init__(self) -> None:
        self._validate()

    def _validate(self) -> None:
        op = self.op
        cls = op.op_class
        if cls in (OpClass.ALU, OpClass.MUL):
            if self.rd is None:
                raise ProgramError(f"{op.value} at pc={self.pc} needs a destination")
            if op is Op.LI:
                if self.imm is None:
                    raise ProgramError(f"li at pc={self.pc} needs an immediate")
            elif self.rs1 is None:
                raise ProgramError(f"{op.value} at pc={self.pc} needs rs1")
            if op in IMMEDIATE_OPS and op is not Op.LI and self.imm is None:
                raise ProgramError(f"{op.value} at pc={self.pc} needs an immediate")
            if op not in IMMEDIATE_OPS and op is not Op.MOV and self.rs2 is None:
                raise ProgramError(f"{op.value} at pc={self.pc} needs rs2")
        elif cls is OpClass.LOAD:
            if self.rd is None or self.rs1 is None:
                raise ProgramError(f"ld at pc={self.pc} needs rd and a base register")
        elif cls is OpClass.STORE:
            if self.rs1 is None or self.rs2 is None:
                raise ProgramError(f"st at pc={self.pc} needs base and data registers")
        elif cls is OpClass.BRANCH:
            if self.rs1 is None or self.target is None:
                raise ProgramError(f"{op.value} at pc={self.pc} needs rs1 and a target")
        elif cls is OpClass.JUMP:
            if self.target is None:
                raise ProgramError(f"jmp at pc={self.pc} needs a target")
        for reg in (self.rd, self.rs1, self.rs2):
            if reg is not None and not 0 <= reg < NUM_ARCH_REGS:
                raise ProgramError(f"bad register {reg} at pc={self.pc}")

    @property
    def sources(self) -> Tuple[int, ...]:
        """Architectural source registers read by this instruction."""
        op = self.op
        if op is Op.LI or op.op_class in (OpClass.NOP, OpClass.HALT, OpClass.JUMP):
            return ()
        regs: List[int] = []
        if self.rs1 is not None:
            regs.append(self.rs1)
        if self.rs2 is not None and op not in IMMEDIATE_OPS and op is not Op.MOV:
            regs.append(self.rs2)
        return tuple(regs)

    @property
    def dest(self) -> Optional[int]:
        """Architectural destination register, or ``None``."""
        return self.rd if self.op.writes_register else None

    def evaluate_alu(self, a: int, b: int) -> int:
        """Apply ALU/MUL semantics to resolved operand values."""
        return ALU_SEMANTICS[self.op](a, b)

    def evaluate_branch(self, a: int, b: int) -> bool:
        """Apply branch semantics to resolved operand values."""
        return BRANCH_SEMANTICS[self.op](a, b)

    def __str__(self) -> str:
        parts = [f"{self.pc:5d}: {self.op.value}"]
        if self.rd is not None:
            parts.append(f"r{self.rd}")
        if self.rs1 is not None:
            parts.append(f"r{self.rs1}")
        if self.rs2 is not None:
            parts.append(f"r{self.rs2}")
        if self.imm is not None:
            parts.append(f"#{self.imm}")
        if self.target is not None:
            parts.append(f"->{self.target}")
        text = " ".join(parts)
        if self.annotation:
            text += f"  ; {self.annotation}"
        return text


@dataclass
class Program:
    """A complete program: code, initial data image, and entry point."""

    name: str
    instructions: List[StaticInst]
    data: Dict[int, int] = field(default_factory=dict)
    entry: int = 0
    #: Initial architectural register values (register -> value).
    initial_regs: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for expected_pc, inst in enumerate(self.instructions):
            if inst.pc != expected_pc:
                raise ProgramError(
                    f"instruction pc mismatch: {inst.pc} at index {expected_pc}"
                )
            if inst.target is not None and not 0 <= inst.target < len(
                self.instructions
            ):
                raise ProgramError(
                    f"branch target {inst.target} out of range at pc={inst.pc}"
                )
        if not 0 <= self.entry < len(self.instructions):
            raise ProgramError(f"entry point {self.entry} out of range")

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, pc: int) -> StaticInst:
        return self.instructions[pc]

    def __iter__(self) -> Iterator[StaticInst]:
        return iter(self.instructions)

    @property
    def static_loads(self) -> List[StaticInst]:
        """All static load instructions, in program order."""
        return [inst for inst in self.instructions if inst.op.is_load]

    def fingerprint(self) -> str:
        """SHA-256 of the program *content*: code, data image, entry, and
        initial registers (the name is deliberately excluded).

        This is the workload identity caches key on, so two different
        programs registered under the same benchmark name can never alias,
        and identical programs under different names can share work.  The
        digest is memoized; programs are treated as immutable once built.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            hasher = hashlib.sha256()
            hasher.update(f"entry:{self.entry};".encode())
            for inst in self.instructions:
                hasher.update(
                    (
                        f"{inst.pc},{inst.op.value},{inst.rd},{inst.rs1},"
                        f"{inst.rs2},{inst.imm},{inst.target},"
                        f"{inst.annotation};"
                    ).encode()
                )
            for addr in sorted(self.data):
                hasher.update(f"d{addr}:{self.data[addr]};".encode())
            for reg in sorted(self.initial_regs):
                hasher.update(f"r{reg}:{self.initial_regs[reg]};".encode())
            cached = hasher.hexdigest()
            self._fingerprint = cached
        return cached

    def listing(self) -> str:
        """A human-readable assembly listing."""
        return "\n".join(str(inst) for inst in self.instructions)
