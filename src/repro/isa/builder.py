"""A small assembler-style DSL for constructing programs.

The builder handles label resolution and data-segment layout so workload
generators can read like assembly listings:

>>> b = ProgramBuilder("demo")
>>> arr = b.data.alloc("arr", 16)
>>> b.li(Reg.r1, 0)
>>> b.label("loop")
>>> b.load(Reg.r2, Reg.r1, base_symbol="arr")
>>> b.addi(Reg.r1, Reg.r1, 8)
>>> b.blt(Reg.r1, 128, "loop", rhs_is_imm=True)
>>> b.halt()
>>> program = b.build()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ProgramError
from repro.isa.instruction import Program, StaticInst
from repro.isa.opcodes import Op
from repro.isa.registers import check_reg

WORD_BYTES = 8

#: Scratch register reserved for immediate branch operands.
_BRANCH_TEMP = 31


class DataSegment:
    """Allocates named regions in the data address space and fills them."""

    def __init__(self, base: int = 0x10000) -> None:
        self._next = base
        self._regions: Dict[str, Tuple[int, int]] = {}
        self.image: Dict[int, int] = {}

    def alloc(self, name: str, n_words: int, align: int = 64) -> int:
        """Reserve ``n_words`` 8-byte words under ``name``; return the base."""
        if name in self._regions:
            raise ProgramError(f"data region {name!r} allocated twice")
        if n_words <= 0:
            raise ProgramError("data regions must hold at least one word")
        base = (self._next + align - 1) // align * align
        self._regions[name] = (base, n_words)
        self._next = base + n_words * WORD_BYTES
        return base

    def base(self, name: str) -> int:
        try:
            return self._regions[name][0]
        except KeyError:
            raise ProgramError(f"unknown data region {name!r}") from None

    def size_words(self, name: str) -> int:
        return self._regions[name][1]

    def set_word(self, name: str, index: int, value: int) -> None:
        """Initialize word ``index`` of region ``name``."""
        base, n_words = self._regions[name]
        if not 0 <= index < n_words:
            raise ProgramError(f"index {index} out of range for region {name!r}")
        self.image[base + index * WORD_BYTES] = value

    def fill(self, name: str, values: List[int]) -> None:
        """Initialize a region from a list of word values."""
        for i, value in enumerate(values):
            self.set_word(name, i, value)


@dataclass
class _Fixup:
    index: int
    label: str


class ProgramBuilder:
    """Incrementally build a :class:`~repro.isa.instruction.Program`."""

    def __init__(self, name: str, data_base: int = 0x10000) -> None:
        self.name = name
        self.data = DataSegment(data_base)
        self._insts: List[StaticInst] = []
        self._labels: Dict[str, int] = {}
        self._fixups: List[_Fixup] = []
        self._initial_regs: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Label and layout management.
    # ------------------------------------------------------------------ #

    @property
    def here(self) -> int:
        """The PC the next emitted instruction will occupy."""
        return len(self._insts)

    def label(self, name: str) -> int:
        """Bind ``name`` to the current PC."""
        if name in self._labels:
            raise ProgramError(f"label {name!r} defined twice")
        self._labels[name] = self.here
        return self.here

    def set_reg(self, reg: int, value: int) -> None:
        """Set an initial architectural register value."""
        self._initial_regs[check_reg(reg)] = value

    def _emit(self, **kwargs: object) -> StaticInst:
        inst = StaticInst(pc=self.here, **kwargs)  # type: ignore[arg-type]
        self._insts.append(inst)
        return inst

    def _emit_control(self, label: str, **kwargs: object) -> StaticInst:
        """Emit a control instruction whose target is patched at build()."""
        inst = StaticInst(pc=self.here, target=0, **kwargs)  # type: ignore[arg-type]
        self._insts.append(inst)
        self._fixups.append(_Fixup(index=len(self._insts) - 1, label=label))
        return inst

    # ------------------------------------------------------------------ #
    # ALU instructions.
    # ------------------------------------------------------------------ #

    def li(self, rd: int, imm: int, annotation: str = "") -> None:
        self._emit(op=Op.LI, rd=rd, imm=imm, annotation=annotation)

    def mov(self, rd: int, rs: int, annotation: str = "") -> None:
        self._emit(op=Op.MOV, rd=rd, rs1=rs, annotation=annotation)

    def add(self, rd: int, rs1: int, rs2: int, annotation: str = "") -> None:
        self._emit(op=Op.ADD, rd=rd, rs1=rs1, rs2=rs2, annotation=annotation)

    def addi(self, rd: int, rs1: int, imm: int, annotation: str = "") -> None:
        self._emit(op=Op.ADDI, rd=rd, rs1=rs1, imm=imm, annotation=annotation)

    def sub(self, rd: int, rs1: int, rs2: int, annotation: str = "") -> None:
        self._emit(op=Op.SUB, rd=rd, rs1=rs1, rs2=rs2, annotation=annotation)

    def mul(self, rd: int, rs1: int, rs2: int, annotation: str = "") -> None:
        self._emit(op=Op.MUL, rd=rd, rs1=rs1, rs2=rs2, annotation=annotation)

    def and_(self, rd: int, rs1: int, rs2: int, annotation: str = "") -> None:
        self._emit(op=Op.AND, rd=rd, rs1=rs1, rs2=rs2, annotation=annotation)

    def andi(self, rd: int, rs1: int, imm: int, annotation: str = "") -> None:
        self._emit(op=Op.ANDI, rd=rd, rs1=rs1, imm=imm, annotation=annotation)

    def or_(self, rd: int, rs1: int, rs2: int, annotation: str = "") -> None:
        self._emit(op=Op.OR, rd=rd, rs1=rs1, rs2=rs2, annotation=annotation)

    def xor(self, rd: int, rs1: int, rs2: int, annotation: str = "") -> None:
        self._emit(op=Op.XOR, rd=rd, rs1=rs1, rs2=rs2, annotation=annotation)

    def shli(self, rd: int, rs1: int, imm: int, annotation: str = "") -> None:
        self._emit(op=Op.SHLI, rd=rd, rs1=rs1, imm=imm, annotation=annotation)

    def shri(self, rd: int, rs1: int, imm: int, annotation: str = "") -> None:
        self._emit(op=Op.SHRI, rd=rd, rs1=rs1, imm=imm, annotation=annotation)

    def slti(self, rd: int, rs1: int, imm: int, annotation: str = "") -> None:
        self._emit(op=Op.SLTI, rd=rd, rs1=rs1, imm=imm, annotation=annotation)

    def nop(self) -> None:
        self._emit(op=Op.NOP)

    # ------------------------------------------------------------------ #
    # Memory instructions.
    # ------------------------------------------------------------------ #

    def load(
        self,
        rd: int,
        base: int,
        imm: int = 0,
        base_symbol: Optional[str] = None,
        annotation: str = "",
    ) -> StaticInst:
        """``rd = M[base + imm]``; if ``base_symbol``, add that region's base."""
        if base_symbol is not None:
            imm += self.data.base(base_symbol)
        return self._emit(op=Op.LD, rd=rd, rs1=base, imm=imm, annotation=annotation)

    def store(
        self,
        src: int,
        base: int,
        imm: int = 0,
        base_symbol: Optional[str] = None,
        annotation: str = "",
    ) -> StaticInst:
        """``M[base + imm] = src``."""
        if base_symbol is not None:
            imm += self.data.base(base_symbol)
        return self._emit(op=Op.ST, rs1=base, rs2=src, imm=imm, annotation=annotation)

    # ------------------------------------------------------------------ #
    # Control instructions.  ``rhs_is_imm`` materializes the comparison
    # constant into a scratch register, as a real compiler would.
    # ------------------------------------------------------------------ #

    def _branch(
        self,
        op: Op,
        rs1: int,
        rhs: int,
        label: str,
        rhs_is_imm: bool,
        annotation: str,
    ) -> None:
        if rhs_is_imm:
            self.li(_BRANCH_TEMP, rhs)
            rhs = _BRANCH_TEMP
        self._emit_control(label, op=op, rs1=rs1, rs2=rhs, annotation=annotation)

    def beq(self, rs1: int, rhs: int, label: str, rhs_is_imm: bool = False,
            annotation: str = "") -> None:
        self._branch(Op.BEQ, rs1, rhs, label, rhs_is_imm, annotation)

    def bne(self, rs1: int, rhs: int, label: str, rhs_is_imm: bool = False,
            annotation: str = "") -> None:
        self._branch(Op.BNE, rs1, rhs, label, rhs_is_imm, annotation)

    def blt(self, rs1: int, rhs: int, label: str, rhs_is_imm: bool = False,
            annotation: str = "") -> None:
        self._branch(Op.BLT, rs1, rhs, label, rhs_is_imm, annotation)

    def bge(self, rs1: int, rhs: int, label: str, rhs_is_imm: bool = False,
            annotation: str = "") -> None:
        self._branch(Op.BGE, rs1, rhs, label, rhs_is_imm, annotation)

    def jump(self, label: str, annotation: str = "") -> None:
        self._emit_control(label, op=Op.JMP, annotation=annotation)

    def halt(self) -> None:
        self._emit(op=Op.HALT)

    # ------------------------------------------------------------------ #

    def build(self) -> Program:
        """Resolve labels and return the finished program."""
        insts = list(self._insts)
        for fixup in self._fixups:
            if fixup.label not in self._labels:
                raise ProgramError(f"undefined label {fixup.label!r}")
            old = insts[fixup.index]
            insts[fixup.index] = StaticInst(
                pc=old.pc,
                op=old.op,
                rd=old.rd,
                rs1=old.rs1,
                rs2=old.rs2,
                imm=old.imm,
                target=self._labels[fixup.label],
                annotation=old.annotation,
            )
        return Program(
            name=self.name,
            instructions=insts,
            data=dict(self.data.image),
            initial_regs=dict(self._initial_regs),
        )
