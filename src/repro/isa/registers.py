"""Architectural register names.

The ISA has 32 integer registers.  ``r0`` is hardwired to zero (writes are
discarded), matching the Alpha convention the paper's toolchain used.
"""

from __future__ import annotations

NUM_ARCH_REGS = 32

#: The hardwired-zero register.
ZERO = 0


class Reg:
    """Symbolic register numbers, ``Reg.r0`` .. ``Reg.r31``."""

    r0 = 0


for _i in range(1, NUM_ARCH_REGS):
    setattr(Reg, f"r{_i}", _i)


def check_reg(index: int) -> int:
    """Validate a register index, returning it unchanged."""
    if not 0 <= index < NUM_ARCH_REGS:
        raise ValueError(f"register index out of range: {index}")
    return index
