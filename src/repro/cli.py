"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's evaluation:

- ``run BENCH``          one experiment (pick ``--target O|L|E|P|P2``)
- ``figure2``            N-vs-O breakdowns
- ``figure3``            the O/L/E/P retargeting study
- ``figure4``            realistic-profiling robustness
- ``figure5 idle|memlat|l2``  sensitivity panels
- ``table3``             model validation ratios
- ``list``               available benchmarks
- ``cache stats|clear``  inspect / empty the persistent simulation cache
- ``bench``              measure simulator + grid throughput
- ``trace BENCH``        run one experiment with microarchitectural
  tracing: Chrome/Perfetto + Kanata exports, top-down stall
  attribution, and a per-event energy audit land in ``--out``
- ``report [DIR]``       render a self-contained HTML report from a run
  directory's manifest/results/utrace artifacts (plus the cross-run
  Timeline section when an analytics store is populated)
- ``analytics ingest|query|timeline|stats``  the fleet-scale result
  analytics layer: ingest run directories / BENCH snapshots into the
  columnar run store, aggregate cross-run trends (gmean per objective,
  stall-mix drift, phase walls), and check/render the per-commit
  regression timeline.  Runs with ``--out`` auto-ingest on completion
  unless ``REPRO_ANALYTICS=0``; ``--store DIR`` (or
  ``REPRO_ANALYTICS_DIR``) picks the store location

Every evaluation command accepts the global observability flags:

- ``--log-level LEVEL``  emit JSON-lines telemetry (spans, heartbeats,
  simulator throughput) to stderr at ``debug|info|warning|error``;
- ``--json``             print result rows as JSON lines instead of the
  rendered text table;
- ``--out DIR``          write machine-readable artifacts into ``DIR``:
  ``manifest.json`` (provenance + config fingerprints + counters),
  ``results.jsonl`` (one row per (benchmark, target)), an appendable
  ``run_table.csv``, and -- when any trace spans were recorded --
  ``spans.jsonl`` plus the Chrome trace-event waterfall
  ``spans_chrome.json``;
- ``--quiet``            suppress heartbeat/progress telemetry.

Every command runs under a distributed trace context: ``repro serve``
propagates it over HTTP (W3C-style ``Traceparent``) and into pool
workers (``--pool N``), so one ``trace_id`` spans client, server and
worker processes; ``repro top URL`` is the live terminal dashboard
over a running server.

the performance flags:

- ``--jobs N``           worker processes for figure grids (default:
  ``REPRO_JOBS`` or ``os.cpu_count()``; ``1`` = fully sequential);
- ``--cache-dir DIR``    persistent simulation cache location
  (default ``~/.cache/repro-sim``);
- ``--no-sim-cache``     disable the persistent cache for this run;

and the robustness flags:

- ``--retries N``        attempts per grid cell before it becomes a
  failure row (default 3);
- ``--job-timeout S``    per-job wall-clock timeout in seconds (the
  worker pool is rebuilt around hung cells);
- ``--resume``           with ``--out DIR``, skip cells already recorded
  in ``DIR/journal.jsonl`` by a previous (interrupted) run;
- ``--inject-fault SITE:prob[:seed]``  deterministically inject faults
  (repeatable; see ``repro.faults`` for sites).

``repro chaos`` runs a grid twice -- fault-free and under injected
faults -- and reports whether recovery was complete, bit-identical, and
fully accounted.

Any evaluation command combined with ``--out DIR --trace-window
START:END`` runs with microarchitectural tracing enabled (per-cell
trace files under ``DIR/utrace/``, indexed in ``manifest.json``); the
``trace`` subcommand is the single-experiment front door to the same
machinery.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import time
from typing import Dict, List, Optional

from repro import faults, obs
from repro.obs import utrace
from repro.config import (
    EnergyConfig,
    MachineConfig,
    SelectionConfig,
    SimulationConfig,
)
from repro.cpu import engine as sim_engine
from repro.errors import ConfigError
from repro.frontend import columns
from repro.harness import figures, simcache
from repro.harness.experiment import run_experiment
from repro.harness.figures import result_row
from repro.harness.journal import Journal
from repro.harness.parallel import RetryPolicy, engine_options
from repro.harness.report import (
    format_table,
    render_json_lines,
    visible_columns,
)
from repro.pthsel.targets import Target
from repro.workloads import benchmark_names

_TARGETS = {t.label: t for t in Target}


def _parser() -> argparse.ArgumentParser:
    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_flags.add_argument(
        "--log-level",
        default="off",
        choices=obs.LEVEL_NAMES,
        help="emit JSON-lines telemetry to stderr at this level",
    )
    obs_flags.add_argument(
        "--json",
        action="store_true",
        help="print result rows as JSON lines instead of text tables",
    )
    obs_flags.add_argument(
        "--quiet",
        action="store_true",
        help="suppress heartbeat/progress telemetry (and, for run, the "
        "selection description)",
    )
    obs_flags.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="write manifest.json/results.jsonl and append run_table.csv "
        "under DIR",
    )
    obs_flags.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for experiment grids "
        "(default: REPRO_JOBS or cpu count; 1 = sequential)",
    )
    obs_flags.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persistent simulation cache directory "
        "(default ~/.cache/repro-sim)",
    )
    obs_flags.add_argument(
        "--no-sim-cache",
        action="store_true",
        help="disable the persistent simulation cache for this run",
    )
    obs_flags.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="attempts per grid cell before it degrades to a failure "
        "row (default 3)",
    )
    obs_flags.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock timeout; hung workers are killed and "
        "their cells retried (default: none)",
    )
    obs_flags.add_argument(
        "--resume",
        action="store_true",
        help="with --out DIR: skip cells already completed in "
        "DIR/journal.jsonl (from a previous interrupted run)",
    )
    obs_flags.add_argument(
        "--inject-fault",
        action="append",
        default=None,
        metavar="SITE:PROB[:SEED]",
        help="deterministically inject faults at SITE with probability "
        "PROB (repeatable; sites: " + ", ".join(faults.SITES) + ")",
    )
    obs_flags.add_argument(
        "--numpy",
        action="store_true",
        help="force the NumPy trace-column backend (default: auto; "
        "REPRO_NUMPY=0/1 also selects it)",
    )
    obs_flags.add_argument(
        "--sim-backend",
        choices=sim_engine.SIM_BACKENDS,
        default=None,
        metavar="BACKEND",
        help="cycle-engine backend: reference (the oracle Pipeline), "
        "batched (merged-loop engine with shared per-trace precomputes; "
        "default), numpy (batched + vectorized precomputes), or native "
        "(compiled C cycle kernel; build with "
        "`python -m repro.cpu.nativebuild`); all are bit-identical "
        "(REPRO_SIM_BACKEND also selects it)",
    )
    obs_flags.add_argument(
        "--trace-window",
        metavar="START:END",
        default=None,
        help="with --out DIR: enable microarchitectural tracing for "
        "this cycle range (either side may be empty); traces land in "
        "DIR/utrace/ and are indexed in manifest.json",
    )
    obs_flags.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="analytics run store directory (default: "
        "REPRO_ANALYTICS_DIR or ~/.cache/repro-analytics); runs with "
        "--out auto-ingest into it unless REPRO_ANALYTICS=0",
    )

    parser = argparse.ArgumentParser(
        prog="repro",
        description="PTHSEL/PTHSEL+E reproduction (Petric & Roth, ISCA 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", parents=[obs_flags],
                         help="run one experiment")
    run.add_argument("benchmark", choices=benchmark_names())
    run.add_argument("--target", default="L", choices=sorted(_TARGETS))
    run.add_argument("--profile-input", default="train",
                     choices=("train", "ref"))
    run.add_argument("--branch-pthreads", action="store_true",
                     help="also select branch-outcome p-threads (Section 7)")

    sub.add_parser("figure2", parents=[obs_flags],
                   help="N vs O breakdowns")
    fig3 = sub.add_parser("figure3", parents=[obs_flags],
                          help="O/L/E/P retargeting study")
    fig3.add_argument("--benchmarks", nargs="*", default=None)
    sub.add_parser("figure4", parents=[obs_flags],
                   help="realistic profiling study")
    fig5 = sub.add_parser("figure5", parents=[obs_flags],
                          help="sensitivity panels")
    fig5.add_argument("panel", choices=("idle", "memlat", "l2"))
    sub.add_parser("table3", parents=[obs_flags],
                   help="model validation ratios")
    sub.add_parser("list", parents=[obs_flags], help="list benchmarks")

    cache = sub.add_parser("cache", parents=[obs_flags],
                           help="persistent simulation cache maintenance")
    cache.add_argument("action", choices=("stats", "clear"))

    bench = sub.add_parser("bench", parents=[obs_flags],
                           help="measure simulator and grid throughput")
    bench.add_argument("--quick", action="store_true",
                       help="small benchmark subset + reduced grid "
                       "(CI smoke mode)")
    bench.add_argument("--no-grid", action="store_true",
                       help="skip the figure-grid wall-time measurement")
    bench.add_argument("--backend-walls", action="store_true",
                       help="measure the sequential uncached grid once "
                       "per available cycle-engine backend "
                       "(backend_walls_s; always on in --quick)")
    bench.add_argument("--out-file", default=None, metavar="PATH",
                       help="also write the payload as JSON to PATH "
                       "(default: BENCH_<date>.json in the current "
                       "directory when --write is given)")
    bench.add_argument("--write", action="store_true",
                       help="write BENCH_<date>.json (implied by "
                       "--out-file)")
    bench.add_argument("--profile", action="store_true",
                       help="run the bench under cProfile and emit a "
                       "top-25 cumulative-time hotspot table (written "
                       "next to the payload as *.profile.txt when "
                       "writing, else printed)")

    trace = sub.add_parser(
        "trace", parents=[obs_flags],
        help="run one experiment with microarchitectural tracing "
        "(Chrome/Perfetto + Kanata exports, stall attribution, "
        "energy audit)",
    )
    trace.add_argument("benchmark", choices=benchmark_names())
    trace.add_argument("--target", default="L", choices=sorted(_TARGETS))
    trace.add_argument("--profile-input", default="train",
                       choices=("train", "ref"))
    trace.add_argument("--quick", action="store_true",
                       help="trace only the first 50k cycles "
                       "(CI smoke mode; overridden by --trace-window)")
    trace.add_argument("--format", action="append", default=None,
                       choices=("chrome", "kanata"), dest="formats",
                       help="export format(s) to write (default: both; "
                       "repeatable)")
    trace.add_argument("--max-insts", type=int, default=None,
                       metavar="N",
                       help="cap on recorded instruction lifecycles per "
                       "simulation (default 200000)")
    trace.add_argument("--no-energy-audit", action="store_true",
                       help="skip per-event energy accumulation and the "
                       "E1-E8 cross-check")

    report = sub.add_parser(
        "report", parents=[obs_flags],
        help="render a self-contained HTML report from a run "
        "directory's manifest/results/utrace artifacts",
    )
    report.add_argument("dir", nargs="?", default=None,
                        help="run directory to render (default: --out)")
    report.add_argument("--output", default=None, metavar="PATH",
                        help="HTML output path (default: DIR/report.html)")

    # No parents=[obs_flags] on the group parser itself: nested
    # subparser defaults would clobber values parsed at this level
    # (argparse re-applies defaults), so the flags live on the actions.
    analytics = sub.add_parser(
        "analytics",
        help="fleet-scale result analytics: ingest runs into the "
        "columnar store, query cross-run trends, render the "
        "regression timeline",
    )
    asub = analytics.add_subparsers(dest="action", required=True)
    a_ingest = asub.add_parser(
        "ingest", parents=[obs_flags],
        help="ingest run directories and/or BENCH_*.json snapshots",
    )
    a_ingest.add_argument("paths", nargs="+", metavar="PATH",
                          help="run directory (--out style) or "
                          "BENCH_*.json throughput snapshot")
    a_ingest.add_argument("--force", action="store_true",
                          help="re-ingest runs whose run_id is already "
                          "in the store")
    a_query = asub.add_parser(
        "query", parents=[obs_flags],
        help="group-by aggregation over the store",
    )
    a_query.add_argument("--metric", default="ed2_save_pct",
                         help="numeric column to aggregate "
                         "(default ed2_save_pct)")
    a_query.add_argument("--group-by", default="run_seq,target",
                         metavar="COL[,COL...]",
                         help="group columns (default run_seq,target)")
    a_query.add_argument("--agg", default="gmean",
                         choices=("gmean", "mean", "sum", "count",
                                  "min", "max"))
    a_query.add_argument("--kind", default="result",
                         help="row family: result|run|trace|bench|"
                         "bench_grid (default result)")
    a_query.add_argument("--where", action="append", default=None,
                         metavar="COL=VALUE",
                         help="exact-match filter (repeatable)")
    a_timeline = asub.add_parser(
        "timeline", parents=[obs_flags],
        help="trajectory check + SVG timeline over the whole store",
    )
    a_timeline.add_argument("--baseline", default=None, metavar="PATH",
                            help="bench payload to band against "
                            "(e.g. benchmarks/bench_baseline_quick."
                            "json); default: each series' first point")
    a_timeline.add_argument("--tolerance", type=float, default=0.5,
                            help="fractional tolerance band "
                            "(default 0.5)")
    a_timeline.add_argument("--html", default=None, metavar="PATH",
                            help="also write a standalone timeline "
                            "page to PATH")
    asub.add_parser(
        "stats", parents=[obs_flags],
        help="store occupancy (segments, rows, bytes, backend)",
    )

    chaos = sub.add_parser(
        "chaos", parents=[obs_flags],
        help="prove fault recovery: run a grid fault-free and under "
        "injected faults, compare",
    )
    chaos.add_argument("--quick", action="store_true",
                       help="small grid + a seed guaranteed to inject "
                       "(CI smoke mode)")
    chaos.add_argument("--benchmarks", nargs="*", default=None)
    chaos.add_argument("--spec", action="append", default=None,
                       metavar="SITE:PROB[:SEED]",
                       help="fault spec(s) for the chaotic run "
                       "(default worker.run:0.3)")
    chaos.add_argument("--max-attempts", type=int, default=None,
                       metavar="N",
                       help="retry budget for the chaotic run "
                       "(default 8)")
    chaos.add_argument("--server", action="store_true",
                       help="server drill instead: kill -9 a faulted "
                       "repro serve mid-grid, --resume it, verify every "
                       "acknowledged job completes bit-identically")
    chaos.add_argument("--kill-after", type=int, default=None,
                       metavar="N",
                       help="with --server: SIGKILL the server after N "
                       "acknowledged submits (default 2: the first "
                       "completes, the second dies in flight)")

    serve = sub.add_parser(
        "serve", parents=[obs_flags],
        help="HTTP/JSON experiment service: async job queue over the "
        "engine with crash-safe state",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8023,
                       help="bind port; 0 picks a free one (default 8023)")
    serve.add_argument("--state", metavar="DIR", default="serve_state",
                       help="state directory for the accept ledger and "
                       "completion journal (default ./serve_state)")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="job worker threads (default: --jobs or 2)")
    serve.add_argument("--max-queue", type=int, default=64, metavar="N",
                       help="admission-control queue depth bound; "
                       "beyond it submits shed with 429 + Retry-After "
                       "(default 64)")
    serve.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="default per-job deadline: jobs still "
                       "queued after SECONDS fail instead of running "
                       "(default: none)")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="graceful-shutdown budget for in-flight "
                       "jobs on SIGTERM/^C (default 30)")
    serve.add_argument("--pool", type=int, default=None, metavar="N",
                       help="run jobs in a persistent pool of N worker "
                       "processes instead of the queue's threads, so "
                       "distributed traces span client/server/worker "
                       "(default: in-thread execution)")

    top = sub.add_parser(
        "top", parents=[obs_flags],
        help="live terminal dashboard over a running server's "
        "/v1/stats, /v1/jobs and Prometheus /metrics",
    )
    top.add_argument("server", metavar="URL",
                     help="server base URL, e.g. http://127.0.0.1:8023")
    top.add_argument("--interval", type=float, default=2.0,
                     metavar="SECONDS",
                     help="refresh interval (default 2.0)")
    top.add_argument("--once", action="store_true",
                     help="print a single frame and exit (CI/scripts)")

    loadtest = sub.add_parser(
        "loadtest", parents=[obs_flags],
        help="drive a repro server with a closed- or open-loop load "
        "model and report throughput/latency/failure-rate",
    )
    loadtest.add_argument("--server", metavar="URL", default=None,
                          help="server base URL (default: self-host an "
                          "in-process server for the run)")
    loadtest.add_argument("--mode", choices=("closed", "open"),
                          default="closed",
                          help="closed: N workers with one outstanding "
                          "request each; open: fixed-rate arrivals "
                          "regardless of completions (default closed)")
    loadtest.add_argument("--requests", type=int, default=None,
                          metavar="N", help="total requests to issue")
    loadtest.add_argument("--concurrency", type=int, default=None,
                          metavar="N",
                          help="closed-loop worker count (default 3)")
    loadtest.add_argument("--rate", type=float, default=2.0,
                          metavar="RPS",
                          help="open-loop arrival rate (default 2.0)")
    loadtest.add_argument("--benchmarks", nargs="*", default=None)
    loadtest.add_argument("--target", default="L",
                          choices=sorted(_TARGETS))
    loadtest.add_argument("--quick", action="store_true",
                          help="CI smoke: one benchmark, 6 requests, "
                          "concurrency 3")
    loadtest.add_argument("--budget", type=float, default=None,
                          metavar="SECONDS",
                          help="latency budget for the report's "
                          "max-concurrency math (default 60)")
    loadtest.add_argument("--wait-timeout", type=float, default=180.0,
                          metavar="SECONDS",
                          help="per-request completion wait (default 180)")
    loadtest.add_argument("--max-failure-rate", type=float, default=0.0,
                          metavar="FRACTION",
                          help="exit non-zero if failure_rate exceeds "
                          "this (default 0.0; sheds are not failures)")
    return parser


def _default_configs() -> Dict[str, object]:
    return {
        "machine": MachineConfig(),
        "energy": EnergyConfig(),
        "selection": SelectionConfig(),
        "simulation": SimulationConfig(),
    }


def _write_artifacts(
    args: argparse.Namespace,
    argv: Optional[List[str]],
    rows: List[Dict[str, object]],
    **extra: object,
) -> None:
    """Write manifest/results/run-table artifacts when ``--out`` was given.

    A partial grid is flagged ``degraded: true`` (any failure rows, or
    recorded engine failures).  Artifact I/O failure -- ENOSPC, a
    read-only directory, the ``manifest.write`` fault site -- is logged
    and swallowed: the results were already printed, and dying while
    writing provenance would turn a finished run into a failed one.
    """
    if not args.out:
        return
    degraded = any(row.get("failed") for row in rows)
    extra.setdefault("degraded", degraded)
    if utrace.enabled():
        files = utrace.drain_artifacts()
        extra.setdefault("utrace", {
            "config": utrace.encode(),
            "n_files": len(files),
            "total_bytes": sum(int(a.get("bytes", 0)) for a in files),
            "files": files,
        })
    spans = obs.tracectx.drain()
    if spans:
        trace_info = _write_trace_spans(args.out, spans)
        if trace_info is not None:
            extra.setdefault("trace", trace_info)
    try:
        faults.raise_os_if("manifest.write", key=args.command)
        writer = obs.RunWriter(
            args.out,
            command=args.command,
            argv=list(argv) if argv is not None else sys.argv[1:],
            configs=_default_configs(),
            started=getattr(args, "_started", None),
        )
        for row in rows:
            writer.add_row(row)
        path = writer.finalize(counters=obs.counters.snapshot(), **extra)
    except OSError as exc:
        obs.log_event(
            "manifest_write_failed",
            level="warning",
            dir=args.out,
            error=type(exc).__name__,
            detail=str(exc),
        )
        print(f"warning: could not write artifacts to {args.out}: {exc}",
              file=sys.stderr)
        return
    print(f"wrote {len(rows)} rows to {args.out} "
          f"(manifest: {path})", file=sys.stderr)
    _auto_ingest(args)


def _write_trace_spans(out_dir: str, spans: List[object]) -> Optional[Dict[str, object]]:
    """Persist the command's drained trace spans under ``out_dir``:
    ``spans.jsonl`` (one span per line; what analytics ingests) and the
    validated Chrome trace-event waterfall ``spans_chrome.json``.
    Returns the manifest stanza, or ``None`` on (logged) failure --
    span artifacts must never fail a finished run."""
    from repro.obs import export as obs_export

    try:
        os.makedirs(out_dir, exist_ok=True)
        jsonl_path = os.path.join(out_dir, "spans.jsonl")
        with open(jsonl_path, "w", encoding="utf-8") as fh:
            for span in spans:
                fh.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        chrome_name = "spans_chrome.json"
        obs_export.write_span_trace(
            os.path.join(out_dir, chrome_name), spans
        )
    except Exception as exc:
        obs.log_event(
            "trace_span_write_failed",
            level="warning",
            dir=out_dir,
            error=type(exc).__name__,
            detail=str(exc),
        )
        return None
    return {
        "n_spans": len(spans),
        "trace_ids": sorted({s.trace_id for s in spans}),
        "spans_jsonl": "spans.jsonl",
        "chrome": chrome_name,
    }


def _auto_ingest(args: argparse.Namespace) -> None:
    """Ingest the finished run into the analytics store.

    On by default for every ``--out`` run; ``REPRO_ANALYTICS=0``
    disables it (and any store failure is warn-and-continue -- the
    run's own artifacts are already on disk and must stay the source
    of truth).
    """
    from repro.analytics import RunStore, ingest_enabled

    if not args.out or not ingest_enabled():
        return
    try:
        store = RunStore(getattr(args, "store", None))
        report = store.ingest_run(args.out)
    except Exception as exc:
        obs.log_event(
            "analytics_auto_ingest_failed",
            level="warning",
            dir=args.out,
            error=type(exc).__name__,
            detail=str(exc),
        )
        return
    if not report.skipped:
        print(
            f"ingested {report.rows_ingested} rows into analytics "
            f"store {store.root} (run_seq {report.run_seq})",
            file=sys.stderr,
        )


def _emit_rows(args: argparse.Namespace,
               rows: List[Dict[str, object]]) -> None:
    """Print rows as a text table, or as JSON lines under ``--json``."""
    if args.json:
        print(render_json_lines(rows))
    else:
        print(format_table(rows, columns=visible_columns(rows) or None))


#: Commands whose grids are journaled under ``--out`` for ``--resume``.
#: ``bench`` is deliberately excluded: it times the *same* grid several
#: ways, and serving later passes from a journal would void the
#: measurement.
_GRID_COMMANDS = ("figure2", "figure3", "figure4", "figure5", "table3")


def main(argv: Optional[List[str]] = None) -> int:
    started = time.time()
    args = _parser().parse_args(argv)
    args._started = started

    if getattr(args, "log_level", "off") != "off":
        obs.configure(level=args.log_level)
    if getattr(args, "quiet", False):
        obs.set_quiet(True)

    if getattr(args, "cache_dir", None) or getattr(args, "no_sim_cache",
                                                   False):
        simcache.configure(
            cache_dir=args.cache_dir,
            enabled=False if args.no_sim_cache else None,
        )
    jobs = getattr(args, "jobs", None)

    if getattr(args, "inject_fault", None):
        try:
            faults.configure(args.inject_fault)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if getattr(args, "numpy", False):
        try:
            columns.set_backend("numpy")
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if getattr(args, "sim_backend", None):
        try:
            sim_engine.set_sim_backend(args.sim_backend)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if (
        getattr(args, "resume", False)
        and not getattr(args, "out", None)
        and args.command != "serve"  # serve resumes from --state instead
    ):
        print("error: --resume requires --out DIR", file=sys.stderr)
        return 2

    traced = False
    if args.command == "trace" or getattr(args, "trace_window", None):
        if args.command == "trace" and not args.out:
            args.out = f"trace_{args.benchmark}"
        if not args.out:
            print("error: --trace-window requires --out DIR",
                  file=sys.stderr)
            return 2
        try:
            window = None
            if getattr(args, "trace_window", None):
                window = utrace.parse_window(args.trace_window)
            elif args.command == "trace" and args.quick:
                window = (0, 50_000)
            utrace.configure(
                out_dir=args.out,
                window=window,
                formats=tuple(args.formats)
                if getattr(args, "formats", None) else None,
                energy_audit=not getattr(args, "no_energy_audit", False),
                max_insts=getattr(args, "max_insts", None)
                or utrace.DEFAULT_MAX_INSTS,
            )
            traced = True
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    policy = RetryPolicy(
        max_attempts=(
            args.retries
            if getattr(args, "retries", None)
            else RetryPolicy.max_attempts
        ),
        timeout_s=getattr(args, "job_timeout", None),
    )
    journal = None
    if getattr(args, "out", None) and args.command in _GRID_COMMANDS:
        journal = Journal.for_run_dir(args.out)
        if args.resume:
            resumed = len(journal.load())
            if resumed:
                print(
                    f"resuming: {resumed} cell(s) already completed in "
                    f"{journal.path}",
                    file=sys.stderr,
                )
        else:
            journal.discard()

    # SIGTERM gets the same clean shutdown as ^C: workers terminated and
    # joined, journal already flushed, manifest marked interrupted.
    def _on_sigterm(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:  # pragma: no cover - non-main thread (tests)
        pass

    # Every command runs under a fresh root trace context: spans from
    # obs.Span instrumentation (and, via Traceparent propagation, from
    # servers and pool workers this command talks to) share one
    # trace_id and land in --out DIR as spans.jsonl + a Chrome trace.
    obs.tracectx.set_process_label(
        "server" if args.command == "serve" else "cli"
    )
    root_ctx = obs.tracectx.new_context()
    try:
        with obs.tracectx.activate(root_ctx), engine_options(
            policy=policy, journal=journal, degrade=True
        ):
            return _dispatch(args, argv, jobs)
    except KeyboardInterrupt:
        _write_artifacts(args, argv, [], interrupted=True)
        print("interrupted", file=sys.stderr)
        return 130
    finally:
        # The fault plan is process-global; don't leak --inject-fault
        # into a later in-process invocation (tests call main directly).
        if getattr(args, "inject_fault", None):
            faults.reset()
        if traced:  # same hygiene for the tracing configuration
            utrace.disable()
        if getattr(args, "quiet", False):
            obs.set_quiet(False)


def _dispatch(
    args: argparse.Namespace,
    argv: Optional[List[str]],
    jobs: Optional[int],
) -> int:
    if args.command == "cache":
        cache = simcache.get_cache() or simcache.SimCache(args.cache_dir)
        if args.action == "stats":
            print(json.dumps(cache.stats(), indent=1, sort_keys=True))
        else:
            removed = cache.clear()
            print(f"removed {removed} entries from {cache.root}")
        return 0

    if args.command == "bench":
        from repro.harness.bench import hotspot_table, run_bench, write_bench

        profile_text = None
        if args.profile:
            import cProfile

            profiler = cProfile.Profile()
            payload = profiler.runcall(
                run_bench,
                quick=args.quick, jobs=jobs, with_grid=not args.no_grid,
                backend_walls=args.backend_walls or None,
            )
            profile_text = hotspot_table(profiler, limit=25)
        else:
            payload = run_bench(
                quick=args.quick, jobs=jobs, with_grid=not args.no_grid,
                backend_walls=args.backend_walls or None,
            )
        print(json.dumps(payload, indent=1, sort_keys=True))
        if args.write or args.out_file:
            path = write_bench(payload, args.out_file)
            print(f"wrote {path}", file=sys.stderr)
            if profile_text is not None:
                profile_path = (
                    path[:-5] if path.endswith(".json") else path
                ) + ".profile.txt"
                with open(profile_path, "w") as fh:
                    fh.write(profile_text)
                print(f"wrote {profile_path}", file=sys.stderr)
            from repro.analytics import RunStore, ingest_enabled

            if ingest_enabled():
                try:
                    store = RunStore(args.store)
                    report = store.ingest_bench(path)
                    if not report.skipped:
                        print(
                            f"ingested bench snapshot into {store.root} "
                            f"(run_seq {report.run_seq})",
                            file=sys.stderr,
                        )
                except Exception as exc:
                    print(
                        "warning: bench analytics ingest failed: "
                        f"{exc}", file=sys.stderr,
                    )
        elif profile_text is not None:
            print(profile_text, file=sys.stderr)
        return 0

    if args.command == "list":
        rows = [{"benchmark": name} for name in benchmark_names()]
        if args.json:
            print(render_json_lines(rows))
        else:
            for name in benchmark_names():
                print(name)
        _write_artifacts(args, argv, rows)
        return 0

    if args.command == "run":
        result = run_experiment(
            args.benchmark,
            target=_TARGETS[args.target],
            profile_input=args.profile_input,
            include_branch_pthreads=args.branch_pthreads,
        )
        row = result_row(result)
        if args.json:
            print(render_json_lines([row]))
        else:
            if not args.quiet:
                print(result.selection.describe())
                print()
            print(format_table([result.summary_row()]))
        _write_artifacts(args, argv, [row])
        return 0

    if args.command == "trace":
        result = run_experiment(
            args.benchmark,
            target=_TARGETS[args.target],
            profile_input=args.profile_input,
        )
        row = result_row(result)
        if args.json:
            print(render_json_lines([row]))
        else:
            print(format_table([result.summary_row()]))
        for art in result.trace_artifacts:
            print(
                f"  {art['kind']:<16} {art['bytes']:>12,} B  {art['path']}",
                file=sys.stderr,
            )
        _write_artifacts(args, argv, [row])
        return 0

    if args.command == "report":
        from repro.harness.htmlreport import render_report

        run_dir = args.dir or args.out
        if not run_dir:
            print("error: report needs a run directory "
                  "(positional DIR or --out DIR)", file=sys.stderr)
            return 2
        try:
            path = render_report(run_dir, output=args.output,
                                 store_dir=args.store)
        except (ConfigError, OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(path)
        return 0

    if args.command == "analytics":
        return _dispatch_analytics(args)

    if args.command == "figure2":
        data = figures.figure2(jobs=jobs)
        _emit_rows(args, data.rows)
        _write_artifacts(args, argv, data.rows)
        return 0

    if args.command == "figure3":
        benchmarks = args.benchmarks or list(benchmark_names())
        data = figures.figure3(benchmarks=benchmarks, jobs=jobs)
        gmeans = {
            metric: {t: round(v, 4) for t, v in data.gmeans(metric).items()}
            for metric in ("speedup_pct", "energy_save_pct", "ed_save_pct")
        }
        if args.json:
            print(render_json_lines(data.rows))
            print(render_json_lines([{"event": "gmeans", **gmeans}]))
        else:
            print(data.render())
            for metric, gm in gmeans.items():
                print(f"GMean {metric}: "
                      + "  ".join(f"{t}={v:+.1f}%" for t, v in gm.items()))
        _write_artifacts(args, argv, data.rows, gmeans=gmeans,
                         benchmarks=benchmarks)
        return 0

    if args.command == "figure4":
        data = figures.figure4(jobs=jobs)
        _emit_rows(args, data.rows)
        _write_artifacts(args, argv, data.rows)
        return 0

    if args.command == "figure5":
        panel = {
            "idle": figures.figure5_idle,
            "memlat": figures.figure5_memory_latency,
            "l2": figures.figure5_l2_size,
        }[args.panel]
        rows = panel(jobs=jobs)
        _emit_rows(args, rows)
        _write_artifacts(args, argv, rows, panel=args.panel)
        return 0

    if args.command == "table3":
        rows = figures.table3(jobs=jobs)
        _emit_rows(args, rows)
        _write_artifacts(args, argv, rows)
        return 0

    if args.command == "chaos":
        from repro.harness.chaos import run_chaos, run_server_chaos

        if args.server:
            server_kwargs: Dict[str, object] = {
                "benchmarks": args.benchmarks or None,
                "specs": args.spec,
                "quick": args.quick,
            }
            if args.kill_after:
                server_kwargs["kill_after"] = args.kill_after
            report = run_server_chaos(**server_kwargs)  # type: ignore[arg-type]
            print(json.dumps(report, indent=1, sort_keys=True))
            _write_artifacts(args, argv, [], server_chaos=report)
            return 0 if report["ok"] else 1

        kwargs: Dict[str, object] = {
            "benchmarks": args.benchmarks or None,
            "specs": args.spec,
            "jobs": jobs,
            "timeout_s": args.job_timeout,
            "quick": args.quick,
        }
        if args.max_attempts:
            kwargs["max_attempts"] = args.max_attempts
        report = run_chaos(**kwargs)  # type: ignore[arg-type]
        print(json.dumps(report, indent=1, sort_keys=True))
        _write_artifacts(
            args,
            argv,
            [dict(row) for row in report["failed_cells"]],
            chaos=report,
        )
        return 0 if report["ok"] else 1

    if args.command == "serve":
        return _dispatch_serve(args)

    if args.command == "top":
        from repro.server.top import run_top

        return run_top(
            args.server,
            interval_s=args.interval,
            iterations=1 if args.once else None,
        )

    if args.command == "loadtest":
        from repro.server.loadtest import (
            QUICK_BENCHMARKS,
            QUICK_CONCURRENCY,
            QUICK_REQUESTS,
            run_loadtest,
        )

        requests = args.requests or (
            QUICK_REQUESTS if args.quick else 12
        )
        concurrency = args.concurrency or QUICK_CONCURRENCY
        benchmarks = args.benchmarks or (
            list(QUICK_BENCHMARKS) if args.quick
            else list(benchmark_names()[:2])
        )
        lt_kwargs: Dict[str, object] = {
            "server_url": args.server,
            "mode": args.mode,
            "benchmarks": benchmarks,
            "requests": requests,
            "concurrency": concurrency,
            "rate_rps": args.rate,
            "wait_timeout_s": args.wait_timeout,
            "target": args.target,
        }
        if args.budget:
            lt_kwargs["latency_budget_s"] = args.budget
        report = run_loadtest(**lt_kwargs)  # type: ignore[arg-type]
        row = report["row"]
        if args.json:
            print(render_json_lines([row]))
        else:
            print(json.dumps(report, indent=1, sort_keys=True))
        # One summary row plus one row per request: the per-request
        # rows carry trace_id, joining slow samples to server spans.
        request_rows = [
            {"request": i + 1, **sample}
            for i, sample in enumerate(report["samples"])
        ]
        _write_artifacts(
            args, argv, [dict(row)] + request_rows, loadtest=report
        )
        failure_rate = float(row.get("failure_rate", 1.0))
        if failure_rate > args.max_failure_rate:
            print(
                f"error: failure_rate {failure_rate:.3f} exceeds "
                f"--max-failure-rate {args.max_failure_rate:.3f}",
                file=sys.stderr,
            )
            return 1
        return 0

    raise AssertionError("unreachable")  # pragma: no cover


def _dispatch_serve(args: argparse.Namespace) -> int:
    """``repro serve``: bring the service up, run until SIGTERM/^C,
    drain gracefully, exit 0."""
    from repro.server import (
        AdmissionController,
        CircuitBreaker,
        ExperimentServer,
        JobQueue,
        PoolRunner,
        ServerState,
    )

    workers = args.workers or args.jobs or 2
    state = ServerState(args.state)
    pool_breaker = CircuitBreaker("pool")
    cache_breaker = CircuitBreaker("simcache")
    admission = AdmissionController(
        max_queue_depth=args.max_queue,
        workers=workers,
        pool_breaker=pool_breaker,
    )
    pool_runner = None
    if args.pool:
        pool_runner = PoolRunner(
            workers=args.pool,
            job_timeout_s=getattr(args, "job_timeout", None),
        )
        pool_runner.start()
    queue = JobQueue(
        state,
        workers=workers,
        runner=pool_runner,
        admission=admission,
        pool_breaker=pool_breaker,
        cache_breaker=cache_breaker,
        default_deadline_s=args.deadline,
    )
    server = ExperimentServer(
        queue, host=args.host, port=args.port, drain_s=args.drain_timeout
    )
    resumed = server.start(resume=args.resume)
    # The URL line is machine-parsed (tests, the chaos drill): keep the
    # format stable and flush it before serve_forever blocks.
    print(
        f"serving on {server.url} (state: {args.state}, "
        f"workers: {workers}, resumed: {resumed})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        # SIGTERM and ^C both land here (main() installs the handler):
        # stop accepting, drain in-flight work, then exit cleanly.
        pass
    drained = server.shutdown_and_drain()
    if pool_runner is not None:
        pool_runner.close()
    print(f"drained: {drained}", file=sys.stderr)
    return 0


def _dispatch_analytics(args: argparse.Namespace) -> int:
    """``repro analytics ingest|query|timeline|stats``."""
    from repro.analytics import RunStore, build_timeline
    from repro.analytics.query import aggregate
    from repro.analytics.timeline import (
        load_baseline,
        render_timeline_html,
    )

    store = RunStore(getattr(args, "store", None))

    if args.action == "ingest":
        reports = []
        for path in args.paths:
            try:
                report = store.ingest_path(path, force=args.force)
            except ConfigError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            reports.append(report.to_dict())
            status = (
                f"skipped ({report.reason})" if report.skipped
                else f"run_seq {report.run_seq}: "
                f"{report.rows_ingested} rows"
                + (f", {report.rows_flagged} flagged"
                   if report.rows_flagged else "")
                + (f", {report.lines_damaged} damaged lines"
                   if report.lines_damaged else "")
                + (f", {report.rows_rejected} rejected"
                   if report.rows_rejected else "")
            )
            print(f"{path}: {status}")
        if args.json:
            print(render_json_lines(reports))
        return 0

    if args.action == "query":
        group_by = tuple(
            c.strip() for c in args.group_by.split(",") if c.strip()
        )
        where = {}
        for spec in args.where or ():
            if "=" not in spec:
                print(f"error: bad --where {spec!r} (COL=VALUE)",
                      file=sys.stderr)
                return 2
            key, _, value = spec.partition("=")
            where[key.strip()] = value.strip()
        try:
            result = aggregate(
                store, args.metric, group_by=group_by, agg=args.agg,
                kind=args.kind or None, where=where or None,
            )
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        rows = [
            {k: (round(v, 4) if isinstance(v, float) else v)
             for k, v in row.items()}
            for row in result.rows
        ]
        if args.json:
            print(render_json_lines(rows))
        else:
            print(format_table(rows) if rows else "(no rows)")
            print(
                f"# {result.n_input_rows} input rows, "
                f"{result.n_failed_skipped} failed skipped, "
                f"{result.n_missing_skipped} missing skipped",
                file=sys.stderr,
            )
        return 0

    if args.action == "timeline":
        baseline = None
        if args.baseline:
            try:
                baseline = load_baseline(args.baseline)
            except (OSError, ValueError) as exc:
                print(f"error: unreadable baseline: {exc}",
                      file=sys.stderr)
                return 2
        report = build_timeline(
            store, baseline=baseline, tolerance=args.tolerance
        )
        if baseline is not None:
            report.baseline_source = args.baseline
        print(json.dumps(report.to_dict(), indent=1, sort_keys=True,
                         default=str))
        if args.html:
            doc = render_timeline_html(report)
            directory = os.path.dirname(args.html)
            if directory:
                os.makedirs(directory, exist_ok=True)
            with open(args.html, "w", encoding="utf-8") as fh:
                fh.write(doc)
            print(f"wrote {args.html}", file=sys.stderr)
        first = report.first_regression
        if first:
            print(
                f"first regressing metric: {first['metric']} at run "
                f"{first['run_seq']} ({first['run_id']}"
                + (f", commit {first['commit']}" if first["commit"]
                   else "")
                + ")",
                file=sys.stderr,
            )
            return 1
        print("trajectory ok", file=sys.stderr)
        return 0

    if args.action == "stats":
        print(json.dumps(store.stats(), indent=1, sort_keys=True))
        return 0

    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
