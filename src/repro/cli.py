"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's evaluation:

- ``run BENCH``          one experiment (pick ``--target O|L|E|P|P2``)
- ``figure2``            N-vs-O breakdowns
- ``figure3``            the O/L/E/P retargeting study
- ``figure4``            realistic-profiling robustness
- ``figure5 idle|memlat|l2``  sensitivity panels
- ``table3``             model validation ratios
- ``list``               available benchmarks
- ``cache stats|clear``  inspect / empty the persistent simulation cache
- ``bench``              measure simulator + grid throughput

Every evaluation command accepts the global observability flags:

- ``--log-level LEVEL``  emit JSON-lines telemetry (spans, heartbeats,
  simulator throughput) to stderr at ``debug|info|warning|error``;
- ``--json``             print result rows as JSON lines instead of the
  rendered text table;
- ``--out DIR``          write machine-readable artifacts into ``DIR``:
  ``manifest.json`` (provenance + config fingerprints + counters),
  ``results.jsonl`` (one row per (benchmark, target)), and an
  appendable ``run_table.csv``.

and the performance flags:

- ``--jobs N``           worker processes for figure grids (default:
  ``REPRO_JOBS`` or ``os.cpu_count()``; ``1`` = fully sequential);
- ``--cache-dir DIR``    persistent simulation cache location
  (default ``~/.cache/repro-sim``);
- ``--no-sim-cache``     disable the persistent cache for this run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from repro import obs
from repro.config import (
    EnergyConfig,
    MachineConfig,
    SelectionConfig,
    SimulationConfig,
)
from repro.harness import figures, simcache
from repro.harness.experiment import run_experiment
from repro.harness.figures import result_row
from repro.harness.report import (
    format_table,
    render_json_lines,
    visible_columns,
)
from repro.pthsel.targets import Target
from repro.workloads import benchmark_names

_TARGETS = {t.label: t for t in Target}


def _parser() -> argparse.ArgumentParser:
    obs_flags = argparse.ArgumentParser(add_help=False)
    obs_flags.add_argument(
        "--log-level",
        default="off",
        choices=obs.LEVEL_NAMES,
        help="emit JSON-lines telemetry to stderr at this level",
    )
    obs_flags.add_argument(
        "--json",
        action="store_true",
        help="print result rows as JSON lines instead of text tables",
    )
    obs_flags.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="write manifest.json/results.jsonl and append run_table.csv "
        "under DIR",
    )
    obs_flags.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for experiment grids "
        "(default: REPRO_JOBS or cpu count; 1 = sequential)",
    )
    obs_flags.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persistent simulation cache directory "
        "(default ~/.cache/repro-sim)",
    )
    obs_flags.add_argument(
        "--no-sim-cache",
        action="store_true",
        help="disable the persistent simulation cache for this run",
    )

    parser = argparse.ArgumentParser(
        prog="repro",
        description="PTHSEL/PTHSEL+E reproduction (Petric & Roth, ISCA 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", parents=[obs_flags],
                         help="run one experiment")
    run.add_argument("benchmark", choices=benchmark_names())
    run.add_argument("--target", default="L", choices=sorted(_TARGETS))
    run.add_argument("--profile-input", default="train",
                     choices=("train", "ref"))
    run.add_argument("--branch-pthreads", action="store_true",
                     help="also select branch-outcome p-threads (Section 7)")
    run.add_argument("--quiet", action="store_true",
                     help="suppress the selection description")

    sub.add_parser("figure2", parents=[obs_flags],
                   help="N vs O breakdowns")
    fig3 = sub.add_parser("figure3", parents=[obs_flags],
                          help="O/L/E/P retargeting study")
    fig3.add_argument("--benchmarks", nargs="*", default=None)
    sub.add_parser("figure4", parents=[obs_flags],
                   help="realistic profiling study")
    fig5 = sub.add_parser("figure5", parents=[obs_flags],
                          help="sensitivity panels")
    fig5.add_argument("panel", choices=("idle", "memlat", "l2"))
    sub.add_parser("table3", parents=[obs_flags],
                   help="model validation ratios")
    sub.add_parser("list", parents=[obs_flags], help="list benchmarks")

    cache = sub.add_parser("cache", parents=[obs_flags],
                           help="persistent simulation cache maintenance")
    cache.add_argument("action", choices=("stats", "clear"))

    bench = sub.add_parser("bench", parents=[obs_flags],
                           help="measure simulator and grid throughput")
    bench.add_argument("--quick", action="store_true",
                       help="small benchmark subset + reduced grid "
                       "(CI smoke mode)")
    bench.add_argument("--no-grid", action="store_true",
                       help="skip the figure-grid wall-time measurement")
    bench.add_argument("--out-file", default=None, metavar="PATH",
                       help="also write the payload as JSON to PATH "
                       "(default: BENCH_<date>.json in the current "
                       "directory when --write is given)")
    bench.add_argument("--write", action="store_true",
                       help="write BENCH_<date>.json (implied by "
                       "--out-file)")
    return parser


def _default_configs() -> Dict[str, object]:
    return {
        "machine": MachineConfig(),
        "energy": EnergyConfig(),
        "selection": SelectionConfig(),
        "simulation": SimulationConfig(),
    }


def _write_artifacts(
    args: argparse.Namespace,
    argv: Optional[List[str]],
    rows: List[Dict[str, object]],
    **extra: object,
) -> None:
    """Write manifest/results/run-table artifacts when ``--out`` was given."""
    if not args.out:
        return
    writer = obs.RunWriter(
        args.out,
        command=args.command,
        argv=list(argv) if argv is not None else sys.argv[1:],
        configs=_default_configs(),
        started=getattr(args, "_started", None),
    )
    for row in rows:
        writer.add_row(row)
    path = writer.finalize(counters=obs.counters.snapshot(), **extra)
    print(f"wrote {len(rows)} rows to {args.out} "
          f"(manifest: {path})", file=sys.stderr)


def _emit_rows(args: argparse.Namespace,
               rows: List[Dict[str, object]]) -> None:
    """Print rows as a text table, or as JSON lines under ``--json``."""
    if args.json:
        print(render_json_lines(rows))
    else:
        print(format_table(rows, columns=visible_columns(rows) or None))


def main(argv: Optional[List[str]] = None) -> int:
    started = time.time()
    args = _parser().parse_args(argv)
    args._started = started

    if getattr(args, "log_level", "off") != "off":
        obs.configure(level=args.log_level)

    if getattr(args, "cache_dir", None) or getattr(args, "no_sim_cache",
                                                   False):
        simcache.configure(
            cache_dir=args.cache_dir,
            enabled=False if args.no_sim_cache else None,
        )
    jobs = getattr(args, "jobs", None)

    if args.command == "cache":
        cache = simcache.get_cache() or simcache.SimCache(args.cache_dir)
        if args.action == "stats":
            print(json.dumps(cache.stats(), indent=1, sort_keys=True))
        else:
            removed = cache.clear()
            print(f"removed {removed} entries from {cache.root}")
        return 0

    if args.command == "bench":
        from repro.harness.bench import run_bench, write_bench

        payload = run_bench(
            quick=args.quick, jobs=jobs, with_grid=not args.no_grid
        )
        print(json.dumps(payload, indent=1, sort_keys=True))
        if args.write or args.out_file:
            path = write_bench(payload, args.out_file)
            print(f"wrote {path}", file=sys.stderr)
        return 0

    if args.command == "list":
        rows = [{"benchmark": name} for name in benchmark_names()]
        if args.json:
            print(render_json_lines(rows))
        else:
            for name in benchmark_names():
                print(name)
        _write_artifacts(args, argv, rows)
        return 0

    if args.command == "run":
        result = run_experiment(
            args.benchmark,
            target=_TARGETS[args.target],
            profile_input=args.profile_input,
            include_branch_pthreads=args.branch_pthreads,
        )
        row = result_row(result)
        if args.json:
            print(render_json_lines([row]))
        else:
            if not args.quiet:
                print(result.selection.describe())
                print()
            print(format_table([result.summary_row()]))
        _write_artifacts(args, argv, [row])
        return 0

    if args.command == "figure2":
        data = figures.figure2(jobs=jobs)
        _emit_rows(args, data.rows)
        _write_artifacts(args, argv, data.rows)
        return 0

    if args.command == "figure3":
        benchmarks = args.benchmarks or list(benchmark_names())
        data = figures.figure3(benchmarks=benchmarks, jobs=jobs)
        gmeans = {
            metric: {t: round(v, 4) for t, v in data.gmeans(metric).items()}
            for metric in ("speedup_pct", "energy_save_pct", "ed_save_pct")
        }
        if args.json:
            print(render_json_lines(data.rows))
            print(render_json_lines([{"event": "gmeans", **gmeans}]))
        else:
            print(data.render())
            for metric, gm in gmeans.items():
                print(f"GMean {metric}: "
                      + "  ".join(f"{t}={v:+.1f}%" for t, v in gm.items()))
        _write_artifacts(args, argv, data.rows, gmeans=gmeans,
                         benchmarks=benchmarks)
        return 0

    if args.command == "figure4":
        data = figures.figure4(jobs=jobs)
        _emit_rows(args, data.rows)
        _write_artifacts(args, argv, data.rows)
        return 0

    if args.command == "figure5":
        panel = {
            "idle": figures.figure5_idle,
            "memlat": figures.figure5_memory_latency,
            "l2": figures.figure5_l2_size,
        }[args.panel]
        rows = panel(jobs=jobs)
        _emit_rows(args, rows)
        _write_artifacts(args, argv, rows, panel=args.panel)
        return 0

    if args.command == "table3":
        rows = figures.table3(jobs=jobs)
        _emit_rows(args, rows)
        _write_artifacts(args, argv, rows)
        return 0

    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
