"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's evaluation:

- ``run BENCH``          one experiment (pick ``--target O|L|E|P|P2``)
- ``figure2``            N-vs-O breakdowns
- ``figure3``            the O/L/E/P retargeting study
- ``figure4``            realistic-profiling robustness
- ``figure5 idle|memlat|l2``  sensitivity panels
- ``table3``             model validation ratios
- ``list``               available benchmarks
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness import figures
from repro.harness.experiment import run_experiment
from repro.harness.report import format_table
from repro.pthsel.targets import Target
from repro.workloads import benchmark_names

_TARGETS = {t.label: t for t in Target}


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PTHSEL/PTHSEL+E reproduction (Petric & Roth, ISCA 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("benchmark", choices=benchmark_names())
    run.add_argument("--target", default="L", choices=sorted(_TARGETS))
    run.add_argument("--profile-input", default="train",
                     choices=("train", "ref"))
    run.add_argument("--branch-pthreads", action="store_true",
                     help="also select branch-outcome p-threads (Section 7)")

    sub.add_parser("figure2", help="N vs O breakdowns")
    fig3 = sub.add_parser("figure3", help="O/L/E/P retargeting study")
    fig3.add_argument("--benchmarks", nargs="*", default=None)
    sub.add_parser("figure4", help="realistic profiling study")
    fig5 = sub.add_parser("figure5", help="sensitivity panels")
    fig5.add_argument("panel", choices=("idle", "memlat", "l2"))
    sub.add_parser("table3", help="model validation ratios")
    sub.add_parser("list", help="list benchmarks")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)

    if args.command == "list":
        for name in benchmark_names():
            print(name)
        return 0

    if args.command == "run":
        result = run_experiment(
            args.benchmark,
            target=_TARGETS[args.target],
            profile_input=args.profile_input,
            include_branch_pthreads=args.branch_pthreads,
        )
        print(result.selection.describe())
        print()
        print(format_table([{
            "speedup_pct": round(result.speedup_pct, 2),
            "energy_save_pct": round(result.energy_save_pct, 2),
            "ed_save_pct": round(result.ed_save_pct, 2),
            **{k: round(v, 2) for k, v in result.diagnostics().items()},
        }]))
        return 0

    if args.command == "figure2":
        data = figures.figure2()
        print(data.render())
        return 0

    if args.command == "figure3":
        benchmarks = args.benchmarks or list(benchmark_names())
        data = figures.figure3(benchmarks=benchmarks)
        print(data.render())
        for metric in ("speedup_pct", "energy_save_pct", "ed_save_pct"):
            gm = data.gmeans(metric)
            print(f"GMean {metric}: "
                  + "  ".join(f"{t}={v:+.1f}%" for t, v in gm.items()))
        return 0

    if args.command == "figure4":
        data = figures.figure4()
        print(data.render())
        return 0

    if args.command == "figure5":
        panel = {
            "idle": figures.figure5_idle,
            "memlat": figures.figure5_memory_latency,
            "l2": figures.figure5_l2_size,
        }[args.panel]
        print(format_table(panel()))
        return 0

    if args.command == "table3":
        print(format_table(figures.table3()))
        return 0

    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
