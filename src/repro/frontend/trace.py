"""Dynamic trace containers.

The trace is stored columnar (:class:`~repro.frontend.columns.TraceColumns`)
rather than as one Python object per dynamic instruction.  :class:`DynInst`
survives as a lazy row view built on demand for the shrinking set of call
sites that still want objects; the analysis and simulation layers consume
the memoized flat-list view (:meth:`Trace.as_lists`) or the sealed columns
directly.

Derived artifacts -- the pc->seqs occurrence index, per-class counts, and
branch statistics -- are built in one pass on first use and cached, so a
figure grid's cells share them instead of re-scanning the trace per call.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterator, List, NamedTuple, Optional, Union

from repro.frontend.columns import TraceColumns, use_numpy
from repro.isa.instruction import Program
from repro.isa.opcodes import (
    BRANCH_CODES,
    CLASS_BY_CODE,
    LD_CODE,
    Op,
    OpClass,
    OPS_BY_CODE,
)

#: Sentinel producer sequence number meaning "ready at program start".
NO_PRODUCER = -1


class DynInst:
    """One dynamic instruction (a materialized row of the columnar trace).

    ``src1_seq``/``src2_seq`` are the trace sequence numbers of the dynamic
    instructions that produced this instruction's register sources
    (:data:`NO_PRODUCER` when the value predates the trace).  For loads and
    stores ``addr`` is the effective byte address.  For branches ``taken``
    records the resolved direction and ``next_pc`` the resolved successor.
    """

    __slots__ = (
        "seq",
        "pc",
        "op",
        "src1_seq",
        "src2_seq",
        "addr",
        "taken",
        "next_pc",
    )

    def __init__(
        self,
        seq: int,
        pc: int,
        op: Op,
        src1_seq: int = NO_PRODUCER,
        src2_seq: int = NO_PRODUCER,
        addr: int = -1,
        taken: bool = False,
        next_pc: int = -1,
    ) -> None:
        self.seq = seq
        self.pc = pc
        self.op = op
        self.src1_seq = src1_seq
        self.src2_seq = src2_seq
        self.addr = addr
        self.taken = taken
        self.next_pc = next_pc

    @property
    def is_load(self) -> bool:
        return self.op is Op.LD

    @property
    def is_store(self) -> bool:
        return self.op is Op.ST

    @property
    def is_branch(self) -> bool:
        return self.op.is_branch

    @property
    def is_control(self) -> bool:
        return self.op.is_control

    def __repr__(self) -> str:
        return (
            f"DynInst(seq={self.seq}, pc={self.pc}, op={self.op.value}, "
            f"addr={self.addr}, taken={self.taken})"
        )


class TraceLists(NamedTuple):
    """The trace's columns as plain Python lists (one shared conversion).

    CPython elementwise loops index plain lists faster than any other
    container, so every sequential consumer (pipeline, classifier, slicer)
    reads these; they are materialized once per trace and shared.
    ``op_code`` holds dense :data:`~repro.isa.opcodes.CODE_BY_OP` codes
    and ``taken`` holds 0/1 ints.
    """

    pc: List[int]
    op_code: List[int]
    src1: List[int]
    src2: List[int]
    addr: List[int]
    taken: List[int]
    next_pc: List[int]


class Trace:
    """A complete dynamic execution trace of the main thread."""

    def __init__(
        self,
        program: Program,
        insts: Union[TraceColumns, List[DynInst]],
    ) -> None:
        self.program = program
        if isinstance(insts, TraceColumns):
            self.columns = insts
            self._insts: Optional[List[DynInst]] = None
        else:
            # Legacy row-object path (tests, sampled windows).
            self.columns = TraceColumns.from_rows(insts)
            self._insts = list(insts)
        self._n = len(self.columns)
        self._lists: Optional[TraceLists] = None
        self._pc_index: Optional[Dict[int, List[int]]] = None
        self._class_counts: Optional[Dict[OpClass, int]] = None
        self._branch_stats: Optional[Dict[int, Dict[str, int]]] = None
        self._pc_counts: Optional[Counter] = None
        #: Consumer-memoized derivations (e.g. the pipeline's kind/ctrl
        #: view), keyed by consumer name.  Shared like the columns.
        self.derived: Dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # Views.
    # ------------------------------------------------------------------ #

    def as_lists(self) -> TraceLists:
        """The columns as plain lists, converted once and memoized."""
        lists = self._lists
        if lists is None:
            c = self.columns
            lists = TraceLists(
                c.pc.tolist(),
                c.op_code.tolist(),
                c.src1.tolist(),
                c.src2.tolist(),
                c.addr.tolist(),
                c.taken.tolist(),
                c.next_pc.tolist(),
            )
            self._lists = lists
        return lists

    @property
    def insts(self) -> List[DynInst]:
        """All rows as :class:`DynInst` objects (lazy, memoized)."""
        cached = self._insts
        if cached is None:
            cached = list(iter(self))
            self._insts = cached
        return cached

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, seq: int) -> DynInst:
        if self._insts is not None:
            return self._insts[seq]
        if seq < 0:
            seq += self._n
        if not 0 <= seq < self._n:
            raise IndexError(f"trace index {seq} out of range")
        L = self.as_lists()
        return DynInst(
            seq,
            L.pc[seq],
            OPS_BY_CODE[L.op_code[seq]],
            L.src1[seq],
            L.src2[seq],
            L.addr[seq],
            L.taken[seq] != 0,
            L.next_pc[seq],
        )

    def __iter__(self) -> Iterator[DynInst]:
        if self._insts is not None:
            return iter(self._insts)
        return self._iter_rows()

    def _iter_rows(self) -> Iterator[DynInst]:
        L = self.as_lists()
        ops = OPS_BY_CODE
        make = DynInst
        for seq, (pc, code, s1, s2, addr, taken, npc) in enumerate(
            zip(L.pc, L.op_code, L.src1, L.src2, L.addr, L.taken, L.next_pc)
        ):
            yield make(seq, pc, ops[code], s1, s2, addr, taken != 0, npc)

    def static_of(self, dyn: DynInst):
        """The static instruction a dynamic instruction came from."""
        return self.program[dyn.pc]

    # ------------------------------------------------------------------ #
    # Derived statistics: one single-pass (or vectorized) construction,
    # shared by every consumer.
    # ------------------------------------------------------------------ #

    def _materialize_stats(self) -> None:
        if self._pc_index is not None:
            return
        c = self.columns
        n_codes = len(OPS_BY_CODE)
        if use_numpy() and c.backend == "numpy":
            import numpy as np

            pc_arr = c.pc
            order = np.argsort(pc_arr, kind="stable")
            code_counts = np.bincount(
                c.op_code, minlength=n_codes
            ).tolist()
            if len(order):
                sorted_pcs = pc_arr[order]
                boundaries = np.flatnonzero(np.diff(sorted_pcs)) + 1
                groups = np.split(order, boundaries)
                # First-occurrence order, matching the sequential build.
                items = [(int(g[0]), int(sorted_pcs[starts]), g)
                         for g, starts in zip(
                             groups,
                             np.concatenate(([0], boundaries)))]
                items.sort()
                pc_index = {pc: g.tolist() for _, pc, g in items}
            else:
                pc_index = {}
        else:
            L = self.as_lists()
            pc_index = {}
            index_get = pc_index.get
            code_counts = [0] * n_codes
            for seq, (pc, code) in enumerate(zip(L.pc, L.op_code)):
                bucket = index_get(pc)
                if bucket is None:
                    pc_index[pc] = [seq]
                else:
                    bucket.append(seq)
                code_counts[code] += 1
        # Per-class totals and per-branch-pc taken counts fall out of the
        # code histogram and the occurrence index without another sweep.
        class_counts: Dict[OpClass, int] = {}
        for code, count in enumerate(code_counts):
            if count:
                cls = CLASS_BY_CODE[code]
                class_counts[cls] = class_counts.get(cls, 0) + count
        taken_l = self.as_lists().taken
        code_l = self.as_lists().op_code
        branch_stats: Dict[int, Dict[str, int]] = {}
        for pc, seqs in pc_index.items():
            if code_l[seqs[0]] in BRANCH_CODES:
                branch_stats[pc] = {
                    "total": len(seqs),
                    "taken": sum(taken_l[s] for s in seqs),
                }
        self._class_counts = class_counts
        self._branch_stats = branch_stats
        self._pc_index = pc_index

    def pc_index(self) -> Dict[int, List[int]]:
        """pc -> ascending seqs of its dynamic instances (do not mutate)."""
        self._materialize_stats()
        return self._pc_index

    def count_by_class(self) -> Dict[OpClass, int]:
        """Dynamic instruction counts per op class."""
        self._materialize_stats()
        return dict(self._class_counts)

    def dynamic_loads_by_pc(self) -> Dict[int, List[int]]:
        """Map static load PC -> sequence numbers of its dynamic instances."""
        self._materialize_stats()
        code_l = self.as_lists().op_code
        return {
            pc: list(seqs)
            for pc, seqs in self._pc_index.items()
            if code_l[seqs[0]] == LD_CODE
        }

    def occurrences(self, pc: int) -> List[int]:
        """Sequence numbers of all dynamic instances of static PC ``pc``.

        Served from the precomputed occurrence index; callers must treat
        the result as read-only.
        """
        self._materialize_stats()
        return self._pc_index.get(pc, [])

    def pc_occurrence_counts(self) -> Counter:
        """Dynamic execution count per static PC (DCtrig), memoized."""
        counts = self._pc_counts
        if counts is None:
            self._materialize_stats()
            counts = Counter(
                {pc: len(seqs) for pc, seqs in self._pc_index.items()}
            )
            self._pc_counts = counts
        return counts

    def branch_stats(self) -> Dict[int, Dict[str, int]]:
        """Per-static-branch dynamic counts: total and taken."""
        self._materialize_stats()
        return {pc: dict(entry) for pc, entry in self._branch_stats.items()}

    def summary(self) -> Dict[str, int]:
        """Headline dynamic counts."""
        by_class = self.count_by_class()
        return {
            "instructions": self._n,
            "loads": by_class.get(OpClass.LOAD, 0),
            "stores": by_class.get(OpClass.STORE, 0),
            "branches": by_class.get(OpClass.BRANCH, 0),
        }


class TraceWindow:
    """A contiguous view over a region of a trace (used by the slicer)."""

    def __init__(self, trace: Trace, start: int, end: int) -> None:
        if not 0 <= start <= end <= len(trace):
            raise IndexError(f"bad window [{start}, {end}) over {len(trace)} insts")
        self.trace = trace
        self.start = start
        self.end = end

    def __len__(self) -> int:
        return self.end - self.start

    def __iter__(self) -> Iterator[DynInst]:
        for seq in range(self.start, self.end):
            yield self.trace[seq]

    def contains(self, seq: int) -> bool:
        return self.start <= seq < self.end
