"""Dynamic trace containers."""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterator, List

from repro.isa.instruction import Program
from repro.isa.opcodes import Op, OpClass

#: Sentinel producer sequence number meaning "ready at program start".
NO_PRODUCER = -1


class DynInst:
    """One dynamic instruction.

    ``src1_seq``/``src2_seq`` are the trace sequence numbers of the dynamic
    instructions that produced this instruction's register sources
    (:data:`NO_PRODUCER` when the value predates the trace).  For loads and
    stores ``addr`` is the effective byte address.  For branches ``taken``
    records the resolved direction and ``next_pc`` the resolved successor.
    """

    __slots__ = (
        "seq",
        "pc",
        "op",
        "src1_seq",
        "src2_seq",
        "addr",
        "taken",
        "next_pc",
    )

    def __init__(
        self,
        seq: int,
        pc: int,
        op: Op,
        src1_seq: int = NO_PRODUCER,
        src2_seq: int = NO_PRODUCER,
        addr: int = -1,
        taken: bool = False,
        next_pc: int = -1,
    ) -> None:
        self.seq = seq
        self.pc = pc
        self.op = op
        self.src1_seq = src1_seq
        self.src2_seq = src2_seq
        self.addr = addr
        self.taken = taken
        self.next_pc = next_pc

    @property
    def is_load(self) -> bool:
        return self.op is Op.LD

    @property
    def is_store(self) -> bool:
        return self.op is Op.ST

    @property
    def is_branch(self) -> bool:
        return self.op.is_branch

    @property
    def is_control(self) -> bool:
        return self.op.is_control

    def __repr__(self) -> str:
        return (
            f"DynInst(seq={self.seq}, pc={self.pc}, op={self.op.value}, "
            f"addr={self.addr}, taken={self.taken})"
        )


class Trace:
    """A complete dynamic execution trace of the main thread."""

    def __init__(self, program: Program, insts: List[DynInst]) -> None:
        self.program = program
        self.insts = insts

    def __len__(self) -> int:
        return len(self.insts)

    def __getitem__(self, seq: int) -> DynInst:
        return self.insts[seq]

    def __iter__(self) -> Iterator[DynInst]:
        return iter(self.insts)

    def static_of(self, dyn: DynInst):
        """The static instruction a dynamic instruction came from."""
        return self.program[dyn.pc]

    def count_by_class(self) -> Dict[OpClass, int]:
        """Dynamic instruction counts per op class."""
        counts: Counter = Counter()
        for inst in self.insts:
            counts[inst.op.op_class] += 1
        return dict(counts)

    def dynamic_loads_by_pc(self) -> Dict[int, List[int]]:
        """Map static load PC -> sequence numbers of its dynamic instances."""
        by_pc: Dict[int, List[int]] = defaultdict(list)
        for inst in self.insts:
            if inst.op is Op.LD:
                by_pc[inst.pc].append(inst.seq)
        return dict(by_pc)

    def occurrences(self, pc: int) -> List[int]:
        """Sequence numbers of all dynamic instances of static PC ``pc``."""
        return [inst.seq for inst in self.insts if inst.pc == pc]

    def branch_stats(self) -> Dict[int, Dict[str, int]]:
        """Per-static-branch dynamic counts: total and taken."""
        stats: Dict[int, Dict[str, int]] = {}
        for inst in self.insts:
            if inst.is_branch:
                entry = stats.setdefault(inst.pc, {"total": 0, "taken": 0})
                entry["total"] += 1
                if inst.taken:
                    entry["taken"] += 1
        return stats

    def summary(self) -> Dict[str, int]:
        """Headline dynamic counts."""
        by_class = self.count_by_class()
        return {
            "instructions": len(self.insts),
            "loads": by_class.get(OpClass.LOAD, 0),
            "stores": by_class.get(OpClass.STORE, 0),
            "branches": by_class.get(OpClass.BRANCH, 0),
        }


class TraceWindow:
    """A contiguous view over a region of a trace (used by the slicer)."""

    def __init__(self, trace: Trace, start: int, end: int) -> None:
        if not 0 <= start <= end <= len(trace):
            raise IndexError(f"bad window [{start}, {end}) over {len(trace)} insts")
        self.trace = trace
        self.start = start
        self.end = end

    def __len__(self) -> int:
        return self.end - self.start

    def __iter__(self) -> Iterator[DynInst]:
        for seq in range(self.start, self.end):
            yield self.trace[seq]

    def contains(self, seq: int) -> bool:
        return self.start <= seq < self.end
