"""Per-process trace-artifact memo shared across grid cells.

``interpret()`` is machine-configuration independent: a workload's dynamic
trace depends only on the program and the instruction budget.  A figure
grid therefore re-executes the same interpretation once per *cell* (27
times for the memory-latency grid) when once per *workload* suffices.
This module memoizes built traces per process, keyed by
``(Program.fingerprint(), max_instructions)``, so cells share one trace
object -- including its lazily materialized pc->seqs index, flat-list
view, and consumer-derived columns -- read-only.  Pool workers forked
from a warmed parent inherit the memo for free.

Augmented (p-thread) interpretations use ``pc_hooks`` and mutate
architectural state observation per call; they never go through the memo.

Disable with ``REPRO_TRACE_MEMO=0`` (each call then interprets afresh,
matching pre-memo behavior exactly -- the memo returns the same bits
either way, this is a debugging/measurement knob).
"""

from __future__ import annotations

import os
import time
from typing import Dict, Tuple

from repro.frontend.interpreter import interpret
from repro.frontend.trace import Trace
from repro.isa.instruction import Program

#: Retained traces per process; bounded because a session touches a handful
#: of workloads, but evict oldest beyond this to stay safe in long sweeps.
_MAX_ENTRIES = 32

_store: Dict[Tuple[str, int], Trace] = {}
_hits = 0
_misses = 0


def enabled() -> bool:
    return os.environ.get("REPRO_TRACE_MEMO", "").strip() != "0"


def get_trace(program: Program, max_instructions: int) -> Tuple[Trace, float]:
    """The memoized trace for ``(program, max_instructions)``.

    Returns ``(trace, build_seconds)``; ``build_seconds`` is 0.0 on a memo
    hit (nothing was built in this call).
    """
    trace, build_seconds, _ = get_trace_tagged(program, max_instructions)
    return trace, build_seconds


def get_trace_tagged(
    program: Program, max_instructions: int
) -> Tuple[Trace, float, str]:
    """:func:`get_trace` plus where the trace came from.

    Returns ``(trace, build_seconds, src)`` with ``src`` either
    ``"interpreted"`` (this call ran the interpreter; ``build_seconds``
    measures it) or ``"memo"`` (served from the per-process store;
    ``build_seconds`` is 0.0).  The tag is what lets bench cold-phase
    rows explain a ``t_trace`` of zero.
    """
    global _hits, _misses
    if not enabled():
        start = time.perf_counter()
        trace = interpret(program, max_instructions=max_instructions)
        return trace, time.perf_counter() - start, "interpreted"
    key = (program.fingerprint(), max_instructions)
    cached = _store.get(key)
    if cached is not None:
        _hits += 1
        return cached, 0.0, "memo"
    start = time.perf_counter()
    trace = interpret(program, max_instructions=max_instructions)
    build_seconds = time.perf_counter() - start
    _misses += 1
    if len(_store) >= _MAX_ENTRIES:
        _store.pop(next(iter(_store)))
    _store[key] = trace
    return trace, build_seconds, "interpreted"


def clear() -> None:
    """Drop all memoized traces and reset counters (tests, cold benches)."""
    global _hits, _misses
    _store.clear()
    _hits = 0
    _misses = 0


def stats() -> Dict[str, int]:
    return {"entries": len(_store), "hits": _hits, "misses": _misses}
