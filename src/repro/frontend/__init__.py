"""Functional frontend: interprets programs into dynamic traces.

The timing simulator (:mod:`repro.cpu`) is trace-driven: the functional
interpreter resolves register dataflow, memory addresses and branch
outcomes once, and the timing model charges cycles.  Because p-threads
never modify architectural state, this split is exact for DDMT-style
pre-execution (Section 2.1 of the paper).
"""

from repro.frontend.interpreter import InterpreterState, interpret
from repro.frontend.trace import DynInst, Trace

__all__ = ["DynInst", "InterpreterState", "Trace", "interpret"]
