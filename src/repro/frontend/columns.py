"""Columnar (structure-of-arrays) storage machinery.

Originally built for the dynamic trace -- seven flat columns (pc, op
code, producer sequence numbers, effective address, branch direction,
resolved next pc) instead of one Python object per dynamic instruction
-- the buffer/seal machinery here is general and is also the array
layer under the :mod:`repro.analytics` columnar run store (int64,
int8, and float64 columns over millions of result rows).  Two
interchangeable backends hold the sealed columns:

- ``python`` -- stdlib ``array('q')`` / ``array('b')``, always available;
- ``numpy``  -- int64/int8 ndarrays, enabling vectorized index and stats
  construction over the same values.

The backend is selected by the ``REPRO_NUMPY`` environment variable
(``1`` forces NumPy, ``0`` forces the pure-Python fallback, unset picks
NumPy when importable) or programmatically via :func:`set_backend` (the
``--numpy`` CLI flag and the golden bit-identity tests).  Columns hold
the same 64-bit values either way; nothing numeric may depend on the
backend.

Emission always happens into preallocated stdlib arrays (CPython item
assignment into ``array('q')`` is as fast as anything NumPy offers for
a data-dependent sequential loop); :meth:`TraceColumns.seal` converts
the truncated columns to the active backend once, at trace build time.
"""

from __future__ import annotations

import math
import os
import struct
from array import array
from typing import Iterable, List, Optional

from repro.errors import ConfigError

try:  # optional backend; the pure-Python fallback needs no third party
    import numpy as _np
except ImportError:  # pragma: no cover - exercised where numpy is absent
    _np = None

#: int64 two's-complement -1, used to prefill sentinel columns.
_NEG1_WORD = b"\xff" * 8

_backend: Optional[str] = None


def _resolve_from_env() -> str:
    env = os.environ.get("REPRO_NUMPY", "").strip()
    if env == "0":
        return "python"
    if env == "1":
        if _np is None:
            raise ConfigError(
                "REPRO_NUMPY=1 requires numpy, which is not importable"
            )
        return "numpy"
    return "numpy" if _np is not None else "python"


def backend() -> str:
    """The active column backend name (``"python"`` or ``"numpy"``)."""
    global _backend
    if _backend is None:
        _backend = _resolve_from_env()
    return _backend


def set_backend(name: Optional[str]) -> None:
    """Force a backend, or ``None`` to re-resolve from the environment.

    Traces already built keep their backend; only future construction is
    affected (the golden tests build one trace per backend and compare).
    """
    global _backend
    if name is None:
        _backend = None
        return
    if name not in ("python", "numpy"):
        raise ConfigError(f"unknown column backend: {name!r}")
    if name == "numpy" and _np is None:
        raise ConfigError("numpy backend requested but numpy is not importable")
    _backend = name


def use_numpy() -> bool:
    return backend() == "numpy"


def int64_buffer(n: int, fill: int = 0) -> array:
    """A writable int64 emission buffer of length ``n``.

    ``fill`` must be 0 or -1: the two sentinel prefill patterns the
    interpreter needs (zeros for always-written columns, -1 for
    ``NO_PRODUCER`` / "no address" defaults), both constructed as raw
    bytes rather than one Python int at a time.
    """
    if fill == 0:
        return array("q", bytes(8 * n))
    if fill == -1:
        return array("q", _NEG1_WORD * n)
    raise ValueError(f"unsupported prefill value: {fill}")


def int8_buffer(n: int) -> array:
    """A writable zero-filled int8 emission buffer of length ``n``."""
    return array("b", bytes(n))


#: Native-order float64 NaN, the "value absent" sentinel for analytics
#: columns (result rows are an open set; most segments miss some keys).
_NAN_WORD = struct.pack("=d", math.nan)


def float64_buffer(n: int, fill: float = 0.0) -> array:
    """A writable float64 emission buffer of length ``n``.

    ``fill`` must be 0.0 or NaN -- the two bulk prefill patterns
    (zeros for dense columns, NaN for sparse "missing value" columns),
    both constructed as raw bytes rather than one float at a time.
    """
    if fill == 0.0:
        return array("d", bytes(8 * n))
    if math.isnan(fill):
        return array("d", _NAN_WORD * n)
    raise ValueError(f"unsupported prefill value: {fill}")


def grow_int64(col: array, delta: int, fill: int = 0) -> None:
    """Extend an int64 emission buffer by ``delta`` prefilled slots."""
    col.frombytes(_NEG1_WORD * delta if fill == -1 else bytes(8 * delta))


def grow_int8(col: array, delta: int) -> None:
    """Extend an int8 emission buffer by ``delta`` zeroed slots."""
    col.frombytes(bytes(delta))


def grow_float64(col: array, delta: int) -> None:
    """Extend a float64 emission buffer by ``delta`` zeroed slots."""
    col.frombytes(bytes(8 * delta))


# --------------------------------------------------------------------- #
# Generic typed columns (beyond the fixed trace schema).
#
# The analytics run store holds an *open* column set -- whatever numeric
# and categorical keys its ingested result rows carry -- so it needs the
# buffer/seal machinery parameterized by column kind rather than the
# seven hard-wired trace columns above.
# --------------------------------------------------------------------- #

#: kind -> (array typecode, numpy dtype name, bytes per item)
COLUMN_KINDS = {
    "int64": ("q", "int64", 8),
    "int8": ("b", "int8", 1),
    "float64": ("d", "float64", 8),
}


def seal_column(col: array, kind: str):
    """Convert one emission buffer to the active backend (zero-copy via
    ``numpy.frombuffer`` when the NumPy backend is selected)."""
    typecode, dtype, _ = COLUMN_KINDS[kind]
    if col.typecode != typecode:
        raise ConfigError(
            f"column buffer typecode {col.typecode!r} does not match "
            f"kind {kind!r} (expected {typecode!r})"
        )
    if backend() == "numpy":
        return _np.frombuffer(col, dtype=dtype)
    return col


def column_from_values(values: Iterable, kind: str):
    """Build a sealed column of ``kind`` from a Python iterable."""
    typecode, dtype, _ = COLUMN_KINDS[kind]
    if backend() == "numpy":
        return _np.asarray(list(values), dtype=dtype)
    return array(typecode, values)


def column_from_bytes(raw: bytes, kind: str):
    """Rehydrate a sealed column from its on-disk little-endian bytes.

    Segment files store raw column bytes; both backends read the same
    payload (``array`` and ``numpy`` agree on the memory layout for the
    three supported kinds on every platform CPython supports).
    """
    typecode, dtype, _ = COLUMN_KINDS[kind]
    if backend() == "numpy":
        return _np.frombuffer(raw, dtype=dtype)
    col = array(typecode)
    col.frombytes(raw)
    return col


def column_to_bytes(col) -> bytes:
    """The on-disk byte payload of a sealed (or emission) column."""
    if _np is not None and isinstance(col, _np.ndarray):
        return col.tobytes()
    return col.tobytes()


class TraceColumns:
    """Sealed trace columns, in the backend active at construction.

    ``taken`` and ``op_code`` are 8-bit columns; the rest are int64.
    Instances are treated as immutable once sealed -- they are shared
    across grid cells and fork-inherited pool workers.
    """

    __slots__ = ("pc", "op_code", "src1", "src2", "addr", "taken",
                 "next_pc", "backend")

    def __init__(self, pc, op_code, src1, src2, addr, taken, next_pc,
                 backend_name: str) -> None:
        self.pc = pc
        self.op_code = op_code
        self.src1 = src1
        self.src2 = src2
        self.addr = addr
        self.taken = taken
        self.next_pc = next_pc
        self.backend = backend_name

    def __len__(self) -> int:
        return len(self.pc)

    @classmethod
    def seal(
        cls,
        pc: array,
        op_code: array,
        src1: array,
        src2: array,
        addr: array,
        taken: array,
        next_pc: array,
        length: int,
    ) -> "TraceColumns":
        """Truncate emission buffers to ``length`` and convert them to
        the active backend."""
        for col in (pc, src1, src2, addr, next_pc, op_code, taken):
            del col[length:]
        name = backend()
        if name == "numpy":
            return cls(
                _np.frombuffer(pc, dtype=_np.int64),
                _np.frombuffer(op_code, dtype=_np.int8),
                _np.frombuffer(src1, dtype=_np.int64),
                _np.frombuffer(src2, dtype=_np.int64),
                _np.frombuffer(addr, dtype=_np.int64),
                _np.frombuffer(taken, dtype=_np.int8),
                _np.frombuffer(next_pc, dtype=_np.int64),
                backend_name=name,
            )
        return cls(pc, op_code, src1, src2, addr, taken, next_pc,
                   backend_name=name)

    @classmethod
    def from_rows(cls, rows: Iterable) -> "TraceColumns":
        """Build sealed columns from ``DynInst``-like row objects (the
        legacy constructor path: tests, the sampling harness, and the
        object-path reference interpreter)."""
        pc: List[int] = []
        op_code: List[int] = []
        src1: List[int] = []
        src2: List[int] = []
        addr: List[int] = []
        taken: List[int] = []
        next_pc: List[int] = []
        from repro.isa.opcodes import CODE_BY_OP

        for row in rows:
            pc.append(row.pc)
            op_code.append(CODE_BY_OP[row.op])
            src1.append(row.src1_seq)
            src2.append(row.src2_seq)
            addr.append(row.addr)
            taken.append(1 if row.taken else 0)
            next_pc.append(row.next_pc)
        name = backend()
        if name == "numpy":
            return cls(
                _np.asarray(pc, dtype=_np.int64),
                _np.asarray(op_code, dtype=_np.int8),
                _np.asarray(src1, dtype=_np.int64),
                _np.asarray(src2, dtype=_np.int64),
                _np.asarray(addr, dtype=_np.int64),
                _np.asarray(taken, dtype=_np.int8),
                _np.asarray(next_pc, dtype=_np.int64),
                backend_name=name,
            )
        return cls(
            array("q", pc),
            array("b", op_code),
            array("q", src1),
            array("q", src2),
            array("q", addr),
            array("b", taken),
            array("q", next_pc),
            backend_name=name,
        )
