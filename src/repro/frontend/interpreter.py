"""Functional interpreter producing dynamic traces.

The interpreter executes a :class:`~repro.isa.instruction.Program` with
exact 64-bit semantics and records, per dynamic instruction, the register
dataflow (producer sequence numbers), memory addresses, and resolved branch
directions.  An optional per-PC hook lets the DDMT layer observe
architectural state at trigger points to expand p-thread spawns.

The trace is emitted directly into preallocated flat columns (stdlib
``array('q')``/``array('b')``, sealed to the active
:mod:`~repro.frontend.columns` backend) and the static program is decoded
once into flat per-PC dispatch tuples, so the dynamic loop never chases
``StaticInst -> Op -> OpClass`` attribute/property/enum-hash chains.  The
retained object-path implementation in :mod:`repro.frontend.reference` is
the bit-identity oracle this emitter is tested against.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import ExecutionError
from repro.frontend.columns import (
    TraceColumns,
    grow_int64,
    grow_int8,
    int64_buffer,
    int8_buffer,
)
from repro.frontend.trace import NO_PRODUCER, Trace
from repro.isa.instruction import Program
from repro.isa.opcodes import (
    ALU_SEMANTICS,
    BRANCH_SEMANTICS,
    CODE_BY_OP,
    IMMEDIATE_OPS,
    Op,
    OpClass,
)
from repro.isa.registers import NUM_ARCH_REGS, ZERO

#: Hook called after a watched static PC executes: (seq, state).
PcHook = Callable[[int, "InterpreterState"], None]

#: Initial column capacity; buffers double (bounded by max_instructions)
#: when a trace outgrows it, so tiny test programs don't preallocate
#: megabytes per interpretation.
_INITIAL_CAPACITY = 1 << 16

# Decoded dispatch categories, ordered roughly by dynamic frequency.
(_C_ALU_IMM, _C_ALU_RR, _C_LOAD, _C_BRANCH, _C_STORE, _C_LI, _C_MOV,
 _C_JUMP, _C_NOP, _C_HALT) = range(10)


class InterpreterState:
    """Architectural state exposed to PC hooks.

    ``regs`` are current register values *after* the watched instruction
    executed; ``last_writer`` maps each register to the sequence number of
    the dynamic instruction that produced its current value.
    """

    __slots__ = ("regs", "last_writer", "memory", "seq")

    def __init__(self) -> None:
        self.regs: List[int] = [0] * NUM_ARCH_REGS
        self.last_writer: List[int] = [NO_PRODUCER] * NUM_ARCH_REGS
        self.memory: Dict[int, int] = {}
        self.seq: int = 0

    def read_word(self, addr: int) -> int:
        """Read an aligned 8-byte word (unwritten memory reads as zero)."""
        return self.memory.get(addr & ~7, 0)


def _decode(program: Program) -> tuple:
    """Flat per-PC dispatch tuples ``(cat, code, rd, rs1, rs2, ext, fn)``.

    ``rd`` is -1 when the instruction writes no architectural register
    (including writes to the hardwired zero register); ``ext`` carries the
    immediate or the control target; ``fn`` the ALU/branch semantics
    callable.  Memoized on the program -- programs are immutable once
    built (the same convention ``fingerprint()`` relies on).
    """
    table = getattr(program, "_decode_table", None)
    if table is not None:
        return table
    rows = []
    for inst in program.instructions:
        op = inst.op
        code = CODE_BY_OP[op]
        cls = op.op_class
        rd = inst.rd if inst.rd is not None and inst.rd != ZERO else -1
        if cls is OpClass.ALU or cls is OpClass.MUL:
            if op is Op.LI:
                row = (_C_LI, code, rd, 0, 0, inst.imm, None)
            elif op is Op.MOV:
                row = (_C_MOV, code, rd, inst.rs1, 0, 0, None)
            elif op in IMMEDIATE_OPS:
                row = (_C_ALU_IMM, code, rd, inst.rs1, 0, inst.imm,
                       ALU_SEMANTICS[op])
            else:
                row = (_C_ALU_RR, code, rd, inst.rs1, inst.rs2, 0,
                       ALU_SEMANTICS[op])
        elif cls is OpClass.LOAD:
            row = (_C_LOAD, code, rd, inst.rs1, 0, inst.imm or 0, None)
        elif cls is OpClass.STORE:
            row = (_C_STORE, code, -1, inst.rs1, inst.rs2, inst.imm or 0,
                   None)
        elif cls is OpClass.BRANCH:
            row = (_C_BRANCH, code, -1, inst.rs1, inst.rs2, inst.target,
                   BRANCH_SEMANTICS[op])
        elif cls is OpClass.JUMP:
            row = (_C_JUMP, code, -1, 0, 0, inst.target, None)
        elif cls is OpClass.NOP:
            row = (_C_NOP, code, -1, 0, 0, 0, None)
        elif cls is OpClass.HALT:
            row = (_C_HALT, code, -1, 0, 0, 0, None)
        else:  # pragma: no cover - all classes handled above
            raise ExecutionError(f"unhandled op class {cls} at pc={inst.pc}")
        rows.append(row)
    table = tuple(rows)
    program._decode_table = table
    return table


def interpret(
    program: Program,
    max_instructions: int = 1_000_000,
    pc_hooks: Optional[Dict[int, PcHook]] = None,
    require_halt: bool = True,
) -> Trace:
    """Execute ``program`` functionally and return its dynamic trace.

    Raises :class:`~repro.errors.ExecutionError` if the program runs past
    ``max_instructions`` without halting (unless ``require_halt`` is False,
    in which case the trace is truncated at the limit).
    """
    state = InterpreterState()
    state.memory = dict(program.data)
    for reg, value in program.initial_regs.items():
        state.regs[reg] = value

    decoded = _decode(program)
    n_static = len(decoded)
    regs = state.regs
    last_writer = state.last_writer
    memory = state.memory
    memory_get = memory.get
    hooks = pc_hooks or None

    cap = min(max_instructions, _INITIAL_CAPACITY)
    pc_col = int64_buffer(cap)
    op_col = int8_buffer(cap)
    src1_col = int64_buffer(cap, fill=-1)
    src2_col = int64_buffer(cap, fill=-1)
    addr_col = int64_buffer(cap, fill=-1)
    taken_col = int8_buffer(cap)
    next_col = int64_buffer(cap)

    pc = program.entry
    seq = 0
    halted = False
    while seq < max_instructions:
        if not 0 <= pc < n_static:
            raise ExecutionError(f"control transferred outside program: pc={pc}")
        if seq == cap:
            new_cap = min(max_instructions, cap * 2)
            delta = new_cap - cap
            grow_int64(pc_col, delta)
            grow_int8(op_col, delta)
            grow_int64(src1_col, delta, fill=-1)
            grow_int64(src2_col, delta, fill=-1)
            grow_int64(addr_col, delta, fill=-1)
            grow_int8(taken_col, delta)
            grow_int64(next_col, delta)
            cap = new_cap
        cat, code, rd, rs1, rs2, ext, fn = decoded[pc]
        next_pc = pc + 1
        pc_col[seq] = pc
        op_col[seq] = code

        if cat == _C_ALU_IMM:
            value = fn(regs[rs1], ext)
            src1_col[seq] = last_writer[rs1]
            if rd >= 0:
                regs[rd] = value
                last_writer[rd] = seq
        elif cat == _C_ALU_RR:
            value = fn(regs[rs1], regs[rs2])
            src1_col[seq] = last_writer[rs1]
            src2_col[seq] = last_writer[rs2]
            if rd >= 0:
                regs[rd] = value
                last_writer[rd] = seq
        elif cat == _C_LOAD:
            addr = (regs[rs1] + ext) & ~7
            if addr < 0:
                raise ExecutionError(f"negative load address at pc={pc}")
            addr_col[seq] = addr
            src1_col[seq] = last_writer[rs1]
            if rd >= 0:
                regs[rd] = memory_get(addr, 0)
                last_writer[rd] = seq
        elif cat == _C_BRANCH:
            src1_col[seq] = last_writer[rs1]
            src2_col[seq] = last_writer[rs2]
            if fn(regs[rs1], regs[rs2]):
                taken_col[seq] = 1
                next_pc = ext
        elif cat == _C_STORE:
            addr = (regs[rs1] + ext) & ~7
            if addr < 0:
                raise ExecutionError(f"negative store address at pc={pc}")
            addr_col[seq] = addr
            src1_col[seq] = last_writer[rs1]
            src2_col[seq] = last_writer[rs2]
            memory[addr] = regs[rs2]
        elif cat == _C_LI:
            if rd >= 0:
                regs[rd] = ext
                last_writer[rd] = seq
        elif cat == _C_MOV:
            src1_col[seq] = last_writer[rs1]
            if rd >= 0:
                regs[rd] = regs[rs1]
                last_writer[rd] = seq
        elif cat == _C_JUMP:
            taken_col[seq] = 1
            next_pc = ext
        elif cat == _C_NOP:
            pass
        else:  # _C_HALT
            halted = True

        next_col[seq] = next_pc
        seq += 1
        if hooks is not None:
            hook = hooks.get(pc)
            if hook is not None:
                state.seq = seq - 1
                hook(seq - 1, state)
        if halted:
            break
        pc = next_pc

    if not halted and require_halt:
        raise ExecutionError(
            f"program {program.name!r} did not halt within "
            f"{max_instructions} instructions"
        )
    return Trace(
        program,
        TraceColumns.seal(
            pc_col, op_col, src1_col, src2_col, addr_col, taken_col,
            next_col, seq,
        ),
    )
