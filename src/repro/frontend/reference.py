"""Object-path reference interpreter (golden bit-identity oracle).

This is the original per-object ``interpret()`` retained verbatim: it
builds one :class:`~repro.frontend.trace.DynInst` per dynamic instruction
and hands the list to :class:`~repro.frontend.trace.Trace`.  The golden
tests run it against the columnar emitter in
:mod:`repro.frontend.interpreter` and require identical ``SimStats``,
figure rows, and selected p-threads.  It is not used on any production
path.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ExecutionError
from repro.frontend.interpreter import InterpreterState, PcHook
from repro.frontend.trace import NO_PRODUCER, DynInst, Trace
from repro.isa.instruction import Program
from repro.isa.opcodes import IMMEDIATE_OPS, Op, OpClass
from repro.isa.registers import ZERO


def interpret_reference(
    program: Program,
    max_instructions: int = 1_000_000,
    pc_hooks: Optional[Dict[int, PcHook]] = None,
    require_halt: bool = True,
) -> Trace:
    """Execute ``program`` functionally and return its dynamic trace.

    Raises :class:`~repro.errors.ExecutionError` if the program runs past
    ``max_instructions`` without halting (unless ``require_halt`` is False,
    in which case the trace is truncated at the limit).
    """
    state = InterpreterState()
    state.memory = dict(program.data)
    for reg, value in program.initial_regs.items():
        state.regs[reg] = value

    insts = program.instructions
    n_static = len(insts)
    trace: List[DynInst] = []
    regs = state.regs
    last_writer = state.last_writer
    memory = state.memory
    hooks = pc_hooks or {}

    pc = program.entry
    halted = False
    while len(trace) < max_instructions:
        if not 0 <= pc < n_static:
            raise ExecutionError(f"control transferred outside program: pc={pc}")
        static = insts[pc]
        op = static.op
        seq = len(trace)
        next_pc = pc + 1
        cls = op.op_class

        if cls is OpClass.ALU or cls is OpClass.MUL:
            if op is Op.LI:
                a = 0
                b = static.imm
                s1 = NO_PRODUCER
                s2 = NO_PRODUCER
            elif op is Op.MOV:
                a = regs[static.rs1]
                b = 0
                s1 = last_writer[static.rs1]
                s2 = NO_PRODUCER
            elif op in IMMEDIATE_OPS:
                a = regs[static.rs1]
                b = static.imm
                s1 = last_writer[static.rs1]
                s2 = NO_PRODUCER
            else:
                a = regs[static.rs1]
                b = regs[static.rs2]
                s1 = last_writer[static.rs1]
                s2 = last_writer[static.rs2]
            value = static.evaluate_alu(a, b)
            if static.rd != ZERO:
                regs[static.rd] = value
                last_writer[static.rd] = seq
            trace.append(DynInst(seq, pc, op, s1, s2, next_pc=next_pc))

        elif cls is OpClass.LOAD:
            base = regs[static.rs1]
            addr = (base + (static.imm or 0)) & ~7
            if addr < 0:
                raise ExecutionError(f"negative load address at pc={pc}")
            value = memory.get(addr, 0)
            s1 = last_writer[static.rs1]
            if static.rd != ZERO:
                regs[static.rd] = value
                last_writer[static.rd] = seq
            trace.append(DynInst(seq, pc, op, s1, NO_PRODUCER, addr=addr,
                                 next_pc=next_pc))

        elif cls is OpClass.STORE:
            base = regs[static.rs1]
            addr = (base + (static.imm or 0)) & ~7
            if addr < 0:
                raise ExecutionError(f"negative store address at pc={pc}")
            memory[addr] = regs[static.rs2]
            trace.append(
                DynInst(
                    seq,
                    pc,
                    op,
                    last_writer[static.rs1],
                    last_writer[static.rs2],
                    addr=addr,
                    next_pc=next_pc,
                )
            )

        elif cls is OpClass.BRANCH:
            a = regs[static.rs1]
            b = regs[static.rs2]
            taken = static.evaluate_branch(a, b)
            if taken:
                next_pc = static.target
            trace.append(
                DynInst(
                    seq,
                    pc,
                    op,
                    last_writer[static.rs1],
                    last_writer[static.rs2],
                    taken=taken,
                    next_pc=next_pc,
                )
            )

        elif cls is OpClass.JUMP:
            next_pc = static.target
            trace.append(DynInst(seq, pc, op, taken=True, next_pc=next_pc))

        elif cls is OpClass.NOP:
            trace.append(DynInst(seq, pc, op, next_pc=next_pc))

        elif cls is OpClass.HALT:
            trace.append(DynInst(seq, pc, op, next_pc=next_pc))
            halted = True

        else:  # pragma: no cover - all classes handled above
            raise ExecutionError(f"unhandled op class {cls} at pc={pc}")

        hook = hooks.get(pc)
        if hook is not None:
            state.seq = seq
            hook(seq, state)

        if halted:
            break
        pc = next_pc

    if not halted and require_halt:
        raise ExecutionError(
            f"program {program.name!r} did not halt within "
            f"{max_instructions} instructions"
        )
    return Trace(program, trace)
