"""Energy breakdown categories matching the paper's Figures 2 and 3.

The paper's energy stacks distinguish: fetch (instruction cache and TLB),
structures accessed by p-loads (data cache/DTLB/LSQ), the L2, structures
accessed by all p-instructions (decode, map table, window, ALU, register
file, result bus), structures p-instructions never touch (branch
predictor, ROB), and idle energy -- with main-thread accesses solid and
p-thread accesses striped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: Category keys in the paper's stacking order (bottom to top).
CATEGORIES = (
    "imem_main",
    "dmem_main",
    "l2_main",
    "ooo_main",
    "rob_bpred",
    "idle",
    "imem_pth",
    "dmem_pth",
    "l2_pth",
    "ooo_pth",
)


@dataclass
class EnergyBreakdown:
    """Per-category energy in joules."""

    joules: Dict[str, float] = field(
        default_factory=lambda: {c: 0.0 for c in CATEGORIES}
    )

    def add(self, category: str, amount: float) -> None:
        if category not in self.joules:
            raise KeyError(f"unknown energy category {category!r}")
        self.joules[category] += amount

    @property
    def total(self) -> float:
        return sum(self.joules.values())

    @property
    def pthread_total(self) -> float:
        """Energy attributable to p-thread activity."""
        return sum(v for k, v in self.joules.items() if k.endswith("_pth"))

    def fractions(self) -> Dict[str, float]:
        """Per-category share of the total; all-zero for an empty run
        (a zero-cycle simulation consumes no energy, and must not divide
        by zero)."""
        total = self.total
        if not total:
            return {k: 0.0 for k in self.joules}
        return {k: v / total for k, v in self.joules.items()}

    def relative_to(self, baseline_total: float) -> Dict[str, float]:
        """Each category as a percentage of a baseline total (the paper's
        stacks are normalized to the unoptimized run's 100%).  A
        zero/empty baseline yields all-zero percentages rather than a
        division error."""
        if baseline_total <= 0:
            return {k: 0.0 for k in self.joules}
        return {k: 100.0 * v / baseline_total for k, v in self.joules.items()}
