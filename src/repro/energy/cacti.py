"""CACTI-like cache energy scaling.

The paper uses CACTI 3.0 for cache energy; we only need the *relative*
change in per-access energy as the L2 grows or shrinks (Figure 5 bottom:
"larger L2s ... consume more energy per access").  CACTI's dynamic access
energy for set-associative SRAM grows roughly with the square root of
capacity at fixed associativity and line size (bitline/wordline lengths
scale with array edge), which is the law we use.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError

#: The capacity at which the paper's 13.6% L2 share is calibrated.
BASELINE_L2_BYTES = 256 * 1024


def l2_access_energy_scale(size_bytes: int,
                           baseline_bytes: int = BASELINE_L2_BYTES) -> float:
    """Relative per-access energy of an L2 of ``size_bytes``.

    Returns 1.0 at the baseline capacity, ~0.71 at half, ~1.41 at double.
    """
    if size_bytes <= 0 or baseline_bytes <= 0:
        raise ConfigError("cache sizes must be positive")
    return math.sqrt(size_bytes / baseline_bytes)
