"""The Wattch-style energy model.

Converts the timing simulator's :class:`~repro.cpu.stats.ActivityCounts`
into joules.  Calibration: per-structure per-access energies are chosen so
that a cycle in which every port of every structure is used consumes
``e_max_per_cycle`` split according to the paper's published breakdown;
on top of that, every cycle draws ``idle_factor * e_max_per_cycle`` of
idle energy (leakage, imperfect clock gating, and gating control -- the
component only "deep sleep" could recover).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.config import EnergyConfig, MachineConfig
from repro.cpu.stats import ActivityCounts
from repro.energy.breakdown import CATEGORIES, EnergyBreakdown
from repro.energy.cacti import l2_access_energy_scale
from repro.errors import EnergyAuditError


@dataclass(frozen=True)
class EnergyResult:
    """Total and per-category energy of one run."""

    total_joules: float
    idle_joules: float
    breakdown: EnergyBreakdown

    @property
    def dynamic_joules(self) -> float:
        return self.total_joules - self.idle_joules


class EnergyModel:
    """Maps activity counts to energy for one machine configuration."""

    #: Structure -> (share key splits, max accesses per cycle).  The
    #: window/ROB/result-bus share from the paper is split between the
    #: issue-window complex (touched by every instruction including
    #: p-instructions) and the ROB (main thread only).
    WINDOW_SHARE = 0.090
    ROB_SHARE = 0.046

    def __init__(self, energy: Optional[EnergyConfig] = None,
                 machine: Optional[MachineConfig] = None) -> None:
        self.energy = energy or EnergyConfig()
        self.machine = machine or MachineConfig()
        shares = self.energy.structure_shares
        e_max = self.energy.e_max_per_cycle
        dyn = 1.0 - self.energy.idle_factor
        width = self.machine.width

        def unit(share: float, max_rate: float) -> float:
            return share * e_max * dyn / max_rate

        self._e_bpred = unit(shares["bpred"], 2.0)
        self._e_icache_block = unit(shares["icache"], 1.0)
        self._e_window = unit(self.WINDOW_SHARE, width)
        self._e_rob = unit(self.ROB_SHARE, 2.0 * width)
        self._e_regfile = unit(shares["regfile"], width)
        self._e_alu = unit(shares["alu"], float(self.machine.int_alus))
        self._e_dcache = unit(
            shares["dcache"],
            float(self.machine.load_ports + self.machine.store_ports),
        )
        l2_scale = l2_access_energy_scale(self.machine.l2.size_bytes)
        self._e_l2 = unit(shares["l2"], 1.0) * l2_scale
        self._e_clock = unit(shares["clock"], width)
        self._e_idle_cycle = self.energy.idle_factor * e_max

    # ------------------------------------------------------------------ #

    def evaluate(self, activity: ActivityCounts) -> EnergyResult:
        """Compute the energy of a run from its activity counts."""
        b = EnergyBreakdown()

        b.add("imem_main", activity.fetch_blocks_main * self._e_icache_block)
        b.add("imem_pth", activity.fetch_blocks_pth * self._e_icache_block)

        b.add("dmem_main", activity.dmem_accesses_main * self._e_dcache)
        b.add("dmem_pth", activity.dmem_accesses_pth * self._e_dcache)

        b.add("l2_main", activity.l2_accesses_main * self._e_l2)
        b.add("l2_pth", activity.l2_accesses_pth * self._e_l2)

        ooo_main = (
            activity.dispatched_main * (self._e_window + self._e_regfile
                                        + self._e_clock)
            + activity.alu_ops_main * self._e_alu
        )
        ooo_pth = (
            activity.dispatched_pth * (self._e_window + self._e_regfile
                                       + self._e_clock)
            + activity.alu_ops_pth * self._e_alu
        )
        b.add("ooo_main", ooo_main)
        b.add("ooo_pth", ooo_pth)

        rob_bpred = (
            activity.bpred_accesses * self._e_bpred
            + (activity.dispatched_main + activity.committed_main)
            * self._e_rob
        )
        b.add("rob_bpred", rob_bpred)

        idle = activity.cycles * self._e_idle_cycle
        b.add("idle", idle)

        return EnergyResult(
            total_joules=b.total, idle_joules=idle, breakdown=b
        )

    # ------------------------------------------------------------------ #

    def audit(self) -> "EnergyAudit":
        """A per-event energy auditor calibrated to this model."""
        return EnergyAudit(self)

    def pthsel_constants(self) -> Dict[str, float]:
        """The external energy parameters PTHSEL+E consumes (equation E8).

        Values are *joules per access / per cycle* for this configuration,
        derived from the same calibration as :meth:`evaluate`, so the
        selection model and the simulator agree by construction:

        - ``e_fetch``:  one p-thread I-cache block access,
        - ``e_xall``:   rename/window/register/result-bus per p-instruction,
        - ``e_xalu``:   the extra ALU energy of an ALU p-instruction,
        - ``e_xload``:  the extra D-cache/DTLB/LSQ energy of a p-load,
        - ``e_l2``:     one L2 access,
        - ``e_idle``:   idle energy per cycle.
        """
        return {
            "e_fetch": self._e_icache_block,
            "e_xall": self._e_window + self._e_regfile + self._e_clock,
            "e_xalu": self._e_alu,
            "e_xload": self._e_dcache,
            "e_l2": self._e_l2,
            "e_idle": self._e_idle_cycle,
        }


# --------------------------------------------------------------------- #
# Energy audit: per-event accumulation cross-checked against the
# closed-form E1-E8 evaluation.
# --------------------------------------------------------------------- #


@dataclass
class EnergyAuditReport:
    """Outcome of one event-stream vs closed-form energy cross-check."""

    ok: bool
    tolerance: float
    max_rel_error: float
    event_total_joules: float
    closed_form_joules: float
    per_category: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "tolerance": self.tolerance,
            "max_rel_error": self.max_rel_error,
            "event_total_joules": self.event_total_joules,
            "closed_form_joules": self.closed_form_joules,
            "per_category": self.per_category,
        }


class EnergyAudit:
    """Accumulates per-structure energy one microarchitectural event at a
    time, in event-stream order.

    The timing simulator's closed-form accounting
    (:meth:`EnergyModel.evaluate`) multiplies end-of-run activity counts
    by per-access energies.  Under tracing, this auditor instead charges
    each individual event as it happens; :meth:`compare` then
    cross-checks the two against each other within a tight relative
    tolerance (default 0.1%), failing loudly on divergence.  Agreement
    proves the event stream covers every access the aggregate counters
    saw -- the property the per-instruction trace exporters depend on.
    """

    __slots__ = ("model", "joules", "events")

    def __init__(self, model: EnergyModel) -> None:
        self.model = model
        self.joules: Dict[str, float] = {c: 0.0 for c in CATEGORIES}
        self.events = 0

    # Per-event charges; one call per microarchitectural event, mirroring
    # the ActivityCounts increments in the pipeline exactly.

    def fetch_block(self, is_pth: bool) -> None:
        self.events += 1
        key = "imem_pth" if is_pth else "imem_main"
        self.joules[key] += self.model._e_icache_block

    def bpred_access(self) -> None:
        self.events += 1
        self.joules["rob_bpred"] += self.model._e_bpred

    def dispatch(self, is_pth: bool) -> None:
        self.events += 1
        m = self.model
        per_inst = m._e_window + m._e_regfile + m._e_clock
        if is_pth:
            self.joules["ooo_pth"] += per_inst
        else:
            self.joules["ooo_main"] += per_inst
            self.joules["rob_bpred"] += m._e_rob

    def alu_op(self, is_pth: bool) -> None:
        self.events += 1
        key = "ooo_pth" if is_pth else "ooo_main"
        self.joules[key] += self.model._e_alu

    def dmem_access(self, is_pth: bool) -> None:
        self.events += 1
        key = "dmem_pth" if is_pth else "dmem_main"
        self.joules[key] += self.model._e_dcache

    def l2_access(self, is_pth: bool) -> None:
        self.events += 1
        key = "l2_pth" if is_pth else "l2_main"
        self.joules[key] += self.model._e_l2

    def commit(self, n: int) -> None:
        self.events += n
        self.joules["rob_bpred"] += n * self.model._e_rob

    def idle_cycles(self, n: int) -> None:
        self.joules["idle"] += n * self.model._e_idle_cycle

    # ----------------------------------------------------------------- #

    def compare(
        self,
        activity: ActivityCounts,
        tolerance: float = 1e-3,
        raise_on_divergence: bool = True,
    ) -> EnergyAuditReport:
        """Cross-check accumulated event energy against the closed form.

        Per category and in total, the relative error must stay within
        ``tolerance``.  Tiny categories (below one part per million of
        the run total) are compared absolutely against that same floor,
        so an all-zero category cannot produce a spurious 100% error.
        """
        closed = self.model.evaluate(activity).breakdown.joules
        closed_total = sum(closed.values())
        event_total = sum(self.joules.values())
        floor = max(closed_total, event_total) * 1e-6
        max_rel = 0.0
        per_category: Dict[str, Dict[str, float]] = {}
        for cat in CATEGORIES:
            ev = self.joules[cat]
            cf = closed[cat]
            err = abs(ev - cf)
            rel = 0.0 if err <= floor else err / max(abs(cf), floor)
            max_rel = max(max_rel, rel)
            per_category[cat] = {
                "event_joules": ev,
                "closed_form_joules": cf,
                "rel_error": rel,
            }
        total_err = abs(event_total - closed_total)
        total_rel = (
            0.0
            if total_err <= floor
            else total_err / max(closed_total, floor)
        )
        max_rel = max(max_rel, total_rel)
        report = EnergyAuditReport(
            ok=max_rel <= tolerance,
            tolerance=tolerance,
            max_rel_error=max_rel,
            event_total_joules=event_total,
            closed_form_joules=closed_total,
            per_category=per_category,
        )
        if not report.ok and raise_on_divergence:
            worst = max(
                per_category.items(), key=lambda kv: kv[1]["rel_error"]
            )
            raise EnergyAuditError(
                f"per-event energy diverges from the closed-form E1-E8 "
                f"totals: max relative error {max_rel:.2e} > tolerance "
                f"{tolerance:.1e} (worst category {worst[0]!r}: event "
                f"{worst[1]['event_joules']:.6e} J vs closed-form "
                f"{worst[1]['closed_form_joules']:.6e} J)",
                max_rel_error=max_rel,
                tolerance=tolerance,
                worst_category=worst[0],
                event_total_joules=event_total,
                closed_form_joules=closed_total,
            )
        return report
