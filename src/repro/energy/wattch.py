"""The Wattch-style energy model.

Converts the timing simulator's :class:`~repro.cpu.stats.ActivityCounts`
into joules.  Calibration: per-structure per-access energies are chosen so
that a cycle in which every port of every structure is used consumes
``e_max_per_cycle`` split according to the paper's published breakdown;
on top of that, every cycle draws ``idle_factor * e_max_per_cycle`` of
idle energy (leakage, imperfect clock gating, and gating control -- the
component only "deep sleep" could recover).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import EnergyConfig, MachineConfig
from repro.cpu.stats import ActivityCounts
from repro.energy.breakdown import EnergyBreakdown
from repro.energy.cacti import l2_access_energy_scale


@dataclass(frozen=True)
class EnergyResult:
    """Total and per-category energy of one run."""

    total_joules: float
    idle_joules: float
    breakdown: EnergyBreakdown

    @property
    def dynamic_joules(self) -> float:
        return self.total_joules - self.idle_joules


class EnergyModel:
    """Maps activity counts to energy for one machine configuration."""

    #: Structure -> (share key splits, max accesses per cycle).  The
    #: window/ROB/result-bus share from the paper is split between the
    #: issue-window complex (touched by every instruction including
    #: p-instructions) and the ROB (main thread only).
    WINDOW_SHARE = 0.090
    ROB_SHARE = 0.046

    def __init__(self, energy: Optional[EnergyConfig] = None,
                 machine: Optional[MachineConfig] = None) -> None:
        self.energy = energy or EnergyConfig()
        self.machine = machine or MachineConfig()
        shares = self.energy.structure_shares
        e_max = self.energy.e_max_per_cycle
        dyn = 1.0 - self.energy.idle_factor
        width = self.machine.width

        def unit(share: float, max_rate: float) -> float:
            return share * e_max * dyn / max_rate

        self._e_bpred = unit(shares["bpred"], 2.0)
        self._e_icache_block = unit(shares["icache"], 1.0)
        self._e_window = unit(self.WINDOW_SHARE, width)
        self._e_rob = unit(self.ROB_SHARE, 2.0 * width)
        self._e_regfile = unit(shares["regfile"], width)
        self._e_alu = unit(shares["alu"], float(self.machine.int_alus))
        self._e_dcache = unit(
            shares["dcache"],
            float(self.machine.load_ports + self.machine.store_ports),
        )
        l2_scale = l2_access_energy_scale(self.machine.l2.size_bytes)
        self._e_l2 = unit(shares["l2"], 1.0) * l2_scale
        self._e_clock = unit(shares["clock"], width)
        self._e_idle_cycle = self.energy.idle_factor * e_max

    # ------------------------------------------------------------------ #

    def evaluate(self, activity: ActivityCounts) -> EnergyResult:
        """Compute the energy of a run from its activity counts."""
        b = EnergyBreakdown()

        b.add("imem_main", activity.fetch_blocks_main * self._e_icache_block)
        b.add("imem_pth", activity.fetch_blocks_pth * self._e_icache_block)

        b.add("dmem_main", activity.dmem_accesses_main * self._e_dcache)
        b.add("dmem_pth", activity.dmem_accesses_pth * self._e_dcache)

        b.add("l2_main", activity.l2_accesses_main * self._e_l2)
        b.add("l2_pth", activity.l2_accesses_pth * self._e_l2)

        ooo_main = (
            activity.dispatched_main * (self._e_window + self._e_regfile
                                        + self._e_clock)
            + activity.alu_ops_main * self._e_alu
        )
        ooo_pth = (
            activity.dispatched_pth * (self._e_window + self._e_regfile
                                       + self._e_clock)
            + activity.alu_ops_pth * self._e_alu
        )
        b.add("ooo_main", ooo_main)
        b.add("ooo_pth", ooo_pth)

        rob_bpred = (
            activity.bpred_accesses * self._e_bpred
            + (activity.dispatched_main + activity.committed_main)
            * self._e_rob
        )
        b.add("rob_bpred", rob_bpred)

        idle = activity.cycles * self._e_idle_cycle
        b.add("idle", idle)

        return EnergyResult(
            total_joules=b.total, idle_joules=idle, breakdown=b
        )

    # ------------------------------------------------------------------ #

    def pthsel_constants(self) -> Dict[str, float]:
        """The external energy parameters PTHSEL+E consumes (equation E8).

        Values are *joules per access / per cycle* for this configuration,
        derived from the same calibration as :meth:`evaluate`, so the
        selection model and the simulator agree by construction:

        - ``e_fetch``:  one p-thread I-cache block access,
        - ``e_xall``:   rename/window/register/result-bus per p-instruction,
        - ``e_xalu``:   the extra ALU energy of an ALU p-instruction,
        - ``e_xload``:  the extra D-cache/DTLB/LSQ energy of a p-load,
        - ``e_l2``:     one L2 access,
        - ``e_idle``:   idle energy per cycle.
        """
        return {
            "e_fetch": self._e_icache_block,
            "e_xall": self._e_window + self._e_regfile + self._e_clock,
            "e_xalu": self._e_alu,
            "e_xload": self._e_dcache,
            "e_l2": self._e_l2,
            "e_idle": self._e_idle_cycle,
        }
