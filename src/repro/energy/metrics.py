"""Energy-effectiveness metrics: ED and ED^2.

The paper uses energy-delay (Gonzalez & Horowitz [10]) and energy-delay
squared (Martin et al. [16]); a technique is energy-effective when its
relative-to-baseline ED (or ED^2) is below 1.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigError


def ed(energy: float, delay: float) -> float:
    """Energy-delay product."""
    return energy * delay


def ed2(energy: float, delay: float) -> float:
    """Energy-delay-squared product."""
    return energy * delay * delay


def relative_metrics(
    base_delay: float,
    base_energy: float,
    new_delay: float,
    new_energy: float,
) -> Dict[str, float]:
    """Relative improvements, as the paper reports them (in percent).

    ``speedup_pct`` is the reduction in execution time, ``energy_save_pct``
    the reduction in energy, ``ed_save_pct``/``ed2_save_pct`` the
    reductions in ED and ED^2.  Positive numbers are improvements.
    """
    if base_delay <= 0 or base_energy <= 0:
        raise ConfigError("baseline delay and energy must be positive")
    return {
        "speedup_pct": 100.0 * (1.0 - new_delay / base_delay),
        "energy_save_pct": 100.0 * (1.0 - new_energy / base_energy),
        "ed_save_pct": 100.0 * (
            1.0 - ed(new_energy, new_delay) / ed(base_energy, base_delay)
        ),
        "ed2_save_pct": 100.0 * (
            1.0 - ed2(new_energy, new_delay) / ed2(base_energy, base_delay)
        ),
    }
