"""Wattch-style energy modeling and energy-effectiveness metrics.

The model follows the paper's Section 3.1 setup: per-structure access
energies calibrated so a cycle in which every port of every structure is
accessed matches the published breakdown (bpred/BTB 4.4%, I-cache/ITLB
18.1%, window/ROB/result-bus 13.6%, regfile 14.2%, ALU 5.5%,
D-cache/DTLB/LSQ 8.6%, L2 13.6%, clock 22%), plus an *idle energy factor*
(default 5%) drawn every cycle regardless of activity.
"""

from repro.energy.breakdown import EnergyBreakdown
from repro.energy.cacti import l2_access_energy_scale
from repro.energy.metrics import ed, ed2, relative_metrics
from repro.energy.wattch import EnergyModel, EnergyResult

__all__ = [
    "EnergyBreakdown",
    "EnergyModel",
    "EnergyResult",
    "ed",
    "ed2",
    "l2_access_energy_scale",
    "relative_metrics",
]
