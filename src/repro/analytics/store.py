"""Append-friendly columnar run store.

One store is a directory of immutable binary *segments* plus a JSON
index::

    <store>/
      index.json                -- store schema, ingest log, next seq
      segments/seg-000001.rcol  -- one ingest = one sealed segment

Each segment holds a batch of result rows as typed columns built on the
general :mod:`repro.frontend.columns` machinery: ``float64`` for every
numeric key, ``int8`` for flags, and dictionary-encoded ``int64`` codes
for strings (the per-segment dictionary lives in the header).  The
on-disk format is a single JSON header line followed by the raw
little-endian bytes of each column, so a segment loads with one
``frombytes`` per column (zero-copy ``numpy.frombuffer`` under the
NumPy backend) -- no per-row parsing ever happens after ingest.

Writes are atomic (temp file + ``os.replace``) and append-only: a crash
mid-ingest leaves the store exactly as it was.  Ingest is *lossless for
good rows and loud for bad ones*: degraded runs (``degraded: true``
manifests with :class:`JobFailure` rows) ingest as flagged rows, torn
trailing lines are tolerated (the expected crash artifact), damaged
interior lines and rows stamped with a newer schema than this code
understands are counted, warned about, and skipped -- never silently
mis-parsed.
"""

from __future__ import annotations

import glob
import json
import math
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro import obs
from repro.errors import ConfigError
from repro.frontend import columns as colmod
from repro.obs.manifest import (
    MANIFEST_NAME,
    RESULTS_NAME,
    RESULTS_SCHEMA_VERSION,
)

#: On-disk segment layout version (header + raw column bytes).
SEGMENT_FORMAT = 1

#: Store directory layout version (index.json + segments/).
STORE_SCHEMA_VERSION = 1

INDEX_NAME = "index.json"
SEGMENT_DIR = "segments"
SEGMENT_SUFFIX = ".rcol"
_MAGIC = "rcol"

#: Reserved columns every ingested row carries.
#:   run_seq  -- monotonically increasing ingest sequence (the x axis);
#:   kind     -- row family: result | run | trace | bench | bench_grid;
#:   schema   -- the results.jsonl record's stamped layout version
#:               (1 for pre-stamp artifacts);
#:   failed   -- 1 for JobFailure rows, else 0.
RESERVED_STRING = ("kind", "run_id", "commit")
RESERVED_INT = ("run_seq", "schema")
RESERVED_FLAG = ("failed",)

_ROWS = obs.counters.counter("analytics.ingest.rows")
_FLAGGED = obs.counters.counter("analytics.ingest.flagged_rows")
_DAMAGED = obs.counters.counter("analytics.ingest.damaged_lines")
_REJECTED = obs.counters.counter("analytics.ingest.rejected_rows")
_SEGMENTS = obs.counters.counter("analytics.ingest.segments")


def ingest_enabled() -> bool:
    """Automatic post-run ingest is on unless ``REPRO_ANALYTICS=0``."""
    return os.environ.get("REPRO_ANALYTICS", "").strip() != "0"


def default_store_dir() -> str:
    """``REPRO_ANALYTICS_DIR`` or ``~/.cache/repro-analytics``."""
    env = os.environ.get("REPRO_ANALYTICS_DIR", "").strip()
    if env:
        return env
    return os.path.join(
        os.path.expanduser("~"), ".cache", "repro-analytics"
    )


@dataclass
class IngestReport:
    """What one ingest did -- every row accounted for, good or bad."""

    source: str
    run_id: str = ""
    run_seq: int = -1
    rows_ingested: int = 0
    rows_flagged: int = 0
    rows_rejected: int = 0
    lines_damaged: int = 0
    skipped: bool = False
    reason: str = ""
    segment: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return dict(self.__dict__)


@dataclass
class Segment:
    """One loaded segment: sealed columns + per-column dictionaries."""

    path: str
    n_rows: int
    meta: Dict[str, Any]
    kinds: Dict[str, str]
    data: Dict[str, Any]
    dicts: Dict[str, List[str]] = field(default_factory=dict)

    def column(self, name: str):
        """The sealed column, or ``None`` when this segment lacks it."""
        return self.data.get(name)

    def strings(self, name: str) -> Optional[List[str]]:
        """Decode a dictionary column into its row-aligned strings."""
        codes = self.data.get(name)
        if codes is None:
            return None
        words = self.dicts.get(name, [])
        return [words[c] if 0 <= c < len(words) else "" for c in codes]


def _atomic_write(path: str, payload: bytes) -> None:
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _plan_columns(rows: Sequence[Mapping[str, Any]]) -> Dict[str, str]:
    """Decide each key's column kind from the union of row values.

    Strings dictionary-encode; everything numeric (bool included) is a
    ``float64`` column except the reserved integer/flag columns.  A key
    holding both strings and numbers across rows is a string column
    (the numbers stringify) -- mixed-type keys come from hand-edited
    artifacts and must not silently drop values.
    """
    kinds: Dict[str, str] = {}
    for name in RESERVED_STRING:
        kinds[name] = "str"
    for name in RESERVED_INT:
        kinds[name] = "int64"
    for name in RESERVED_FLAG:
        kinds[name] = "int8"
    for row in rows:
        for key, value in row.items():
            if key in kinds and kinds[key] != "str":
                if isinstance(value, str) and key not in (
                    RESERVED_INT + RESERVED_FLAG
                ):
                    kinds[key] = "str"
                continue
            if key in kinds:
                continue
            if isinstance(value, str):
                kinds[key] = "str"
            elif isinstance(value, bool):
                kinds[key] = "int8"
            elif isinstance(value, (int, float)):
                kinds[key] = "float64"
            elif value is None:
                continue  # decide from a later row that has a value
            else:
                kinds[key] = "str"  # lists/dicts stringify
    return kinds


def _coerce(value: Any, kind: str):
    if kind == "float64":
        if value is None:
            return math.nan
        try:
            return float(value)
        except (TypeError, ValueError):
            return math.nan
    if kind == "int8":
        return 1 if value else 0
    if kind == "int64":
        try:
            return int(value)
        except (TypeError, ValueError):
            return -1
    raise AssertionError(kind)  # pragma: no cover


class RunStore:
    """The columnar run store rooted at one directory."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root or default_store_dir()
        self._segment_cache: Dict[str, Segment] = {}

    # -- index ---------------------------------------------------------- #

    @property
    def index_path(self) -> str:
        return os.path.join(self.root, INDEX_NAME)

    def _load_index(self) -> Dict[str, Any]:
        try:
            with open(self.index_path, "r", encoding="utf-8") as fh:
                index = json.load(fh)
        except FileNotFoundError:
            return {
                "store_schema": STORE_SCHEMA_VERSION,
                "next_seq": 1,
                "ingests": [],
            }
        except (OSError, ValueError) as exc:
            raise ConfigError(
                f"unreadable analytics store index {self.index_path}: {exc}"
            ) from exc
        if index.get("store_schema", 0) > STORE_SCHEMA_VERSION:
            raise ConfigError(
                f"analytics store {self.root} has schema "
                f"{index.get('store_schema')}, newer than this code "
                f"({STORE_SCHEMA_VERSION}); refusing to touch it"
            )
        return index

    def _save_index(self, index: Dict[str, Any]) -> None:
        payload = json.dumps(index, indent=1, sort_keys=True).encode()
        _atomic_write(self.index_path, payload + b"\n")

    def ingested_run_ids(self) -> Dict[str, int]:
        index = self._load_index()
        return {
            rec["run_id"]: rec["seq"]
            for rec in index.get("ingests", [])
            if rec.get("run_id")
        }

    # -- segments ------------------------------------------------------- #

    def segment_paths(self) -> List[str]:
        pattern = os.path.join(
            self.root, SEGMENT_DIR, f"seg-*{SEGMENT_SUFFIX}"
        )
        return sorted(glob.glob(pattern))

    def segments(self) -> Iterable[Segment]:
        """Load every readable segment, skipping (and warning about)
        segments written by a newer format."""
        for path in self.segment_paths():
            seg = self._load_segment(path)
            if seg is not None:
                yield seg

    def _load_segment(self, path: str) -> Optional[Segment]:
        cached = self._segment_cache.get(path)
        if cached is not None:
            return cached
        try:
            with open(path, "rb") as fh:
                header_line = fh.readline()
                header = json.loads(header_line)
                if header.get("magic") != _MAGIC:
                    raise ValueError("bad magic")
                if header.get("format", 0) > SEGMENT_FORMAT:
                    obs.log_event(
                        "analytics_segment_skipped",
                        level="warning",
                        path=path,
                        format=header.get("format"),
                    )
                    return None
                raw = fh.read()
        except (OSError, ValueError) as exc:
            obs.log_event(
                "analytics_segment_unreadable",
                level="warning",
                path=path,
                error=str(exc),
            )
            return None
        data: Dict[str, Any] = {}
        kinds: Dict[str, str] = {}
        offset = 0
        for spec in header.get("columns", []):
            name, kind, nbytes = spec["name"], spec["kind"], spec["nbytes"]
            stored = "int64" if kind == "str" else kind
            data[name] = colmod.column_from_bytes(
                raw[offset:offset + nbytes], stored
            )
            kinds[name] = kind
            offset += nbytes
        seg = Segment(
            path=path,
            n_rows=int(header.get("n_rows", 0)),
            meta=header.get("meta", {}),
            kinds=kinds,
            data=data,
            dicts=header.get("dicts", {}),
        )
        self._segment_cache[path] = seg
        return seg

    # -- append --------------------------------------------------------- #

    def append_rows(
        self,
        rows: Sequence[Mapping[str, Any]],
        run_id: str,
        commit: Optional[str] = None,
        source: str = "",
        meta: Optional[Mapping[str, Any]] = None,
        force: bool = False,
    ) -> IngestReport:
        """Seal ``rows`` into one new segment (the ingest primitive).

        Every row gets the reserved columns; ``run_id`` dedups repeat
        ingests of the same run unless ``force``.  The segment file
        lands atomically, then the index records the ingest.
        """
        report = IngestReport(source=source or run_id, run_id=run_id)
        index = self._load_index()
        if not force and run_id in {
            rec.get("run_id") for rec in index.get("ingests", [])
        }:
            report.skipped = True
            report.reason = f"run_id {run_id!r} already ingested"
            return report
        if not rows:
            report.skipped = True
            report.reason = "no rows"
            return report

        seq = int(index.get("next_seq", 1))
        full_rows: List[Dict[str, Any]] = []
        for row in rows:
            full = {
                "run_seq": seq,
                "run_id": run_id,
                "commit": commit or "",
                "kind": row.get("kind", "result"),
                "schema": row.get("schema", 1),
                "failed": 1 if row.get("failed") else 0,
            }
            for key, value in row.items():
                if key in ("kind", "schema", "failed"):
                    continue
                full[key] = value
            full_rows.append(full)

        kinds = _plan_columns(full_rows)
        names = sorted(kinds)
        dicts: Dict[str, List[str]] = {}
        encoders: Dict[str, Dict[str, int]] = {}
        buffers: Dict[str, Any] = {}
        n = len(full_rows)
        for name in names:
            kind = kinds[name]
            if kind == "str":
                dicts[name] = []
                encoders[name] = {}
                buffers[name] = colmod.int64_buffer(n, fill=-1)
            elif kind == "int64":
                buffers[name] = colmod.int64_buffer(n)
            elif kind == "int8":
                buffers[name] = colmod.int8_buffer(n)
            else:
                buffers[name] = colmod.float64_buffer(n, fill=math.nan)
        for i, row in enumerate(full_rows):
            for name in names:
                kind = kinds[name]
                if kind == "str":
                    if name not in row or row[name] is None:
                        continue
                    word = str(row[name])
                    enc = encoders[name]
                    code = enc.get(word)
                    if code is None:
                        code = len(dicts[name])
                        enc[word] = code
                        dicts[name].append(word)
                    buffers[name][i] = code
                elif name in row:
                    buffers[name][i] = _coerce(row[name], kind)

        specs = []
        blobs = []
        for name in names:
            raw = colmod.column_to_bytes(buffers[name])
            specs.append(
                {"name": name, "kind": kinds[name], "nbytes": len(raw)}
            )
            blobs.append(raw)
        header = {
            "magic": _MAGIC,
            "format": SEGMENT_FORMAT,
            "n_rows": n,
            "columns": specs,
            "dicts": dicts,
            "meta": dict(meta or {}, run_id=run_id, run_seq=seq,
                         source=source),
        }
        payload = (
            json.dumps(header, sort_keys=True, separators=(",", ":"))
            .encode() + b"\n" + b"".join(blobs)
        )
        seg_path = os.path.join(
            self.root, SEGMENT_DIR, f"seg-{seq:06d}{SEGMENT_SUFFIX}"
        )
        _atomic_write(seg_path, payload)

        index["next_seq"] = seq + 1
        index.setdefault("ingests", []).append({
            "seq": seq,
            "run_id": run_id,
            "source": source,
            "commit": commit or "",
            "rows": n,
            "ingested_at": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
        })
        self._save_index(index)
        _SEGMENTS.add()
        _ROWS.add(n)
        report.run_seq = seq
        report.segment = seg_path
        report.rows_ingested = n
        report.rows_flagged = sum(r["failed"] for r in full_rows)
        _FLAGGED.add(report.rows_flagged)
        return report

    # -- ingest: run directories ---------------------------------------- #

    def ingest_run(self, run_dir: str, force: bool = False) -> IngestReport:
        """Ingest one ``--out`` run directory.

        Reads ``manifest.json`` (optional -- a missing manifest falls
        back to the directory name as run id) and ``results.jsonl``
        (torn-tail tolerant), plus any ``utrace/*.summary.json`` stall
        summaries.  Rows stamped with a newer schema than this code
        understands are rejected loudly, never guessed at.
        """
        manifest: Dict[str, Any] = {}
        manifest_path = os.path.join(run_dir, MANIFEST_NAME)
        try:
            with open(manifest_path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except FileNotFoundError:
            pass
        except (OSError, ValueError) as exc:
            obs.log_event(
                "analytics_manifest_unreadable",
                level="warning",
                path=manifest_path,
                error=str(exc),
            )
        run_id = str(
            manifest.get("run_id")
            or os.path.basename(os.path.normpath(run_dir))
        )
        commit = manifest.get("git_commit")
        report = IngestReport(source=run_dir, run_id=run_id)

        rows, damaged, rejected = self._read_results(
            os.path.join(run_dir, RESULTS_NAME)
        )
        report.lines_damaged = damaged
        report.rows_rejected = rejected

        rows.extend(self._trace_rows(run_dir))
        rows.extend(self._span_rows(run_dir))
        run_row = self._run_row(manifest)
        if run_row is not None:
            rows.append(run_row)

        if not rows:
            report.skipped = True
            report.reason = f"no ingestable rows in {run_dir}"
            return report
        appended = self.append_rows(
            rows,
            run_id=run_id,
            commit=commit,
            source=run_dir,
            meta={"command": manifest.get("command", "")},
            force=force,
        )
        appended.lines_damaged = damaged
        appended.rows_rejected = rejected
        appended.source = run_dir
        return appended

    def _read_results(self, path: str):
        rows: List[Dict[str, Any]] = []
        damaged = 0
        rejected = 0
        try:
            with open(path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except FileNotFoundError:
            return rows, damaged, rejected
        except OSError as exc:
            obs.log_event(
                "analytics_results_unreadable",
                level="warning",
                path=path,
                error=str(exc),
            )
            return rows, damaged, rejected
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("record is not an object")
            except ValueError:
                if i == len(lines) - 1:
                    continue  # torn tail: the expected crash artifact
                damaged += 1
                _DAMAGED.add()
                obs.log_event(
                    "analytics_damaged_line",
                    level="warning",
                    path=path,
                    line=i + 1,
                )
                continue
            schema = record.pop("schema", 1)
            try:
                schema = int(schema)
            except (TypeError, ValueError):
                schema = 0
            if schema > RESULTS_SCHEMA_VERSION or schema < 1:
                rejected += 1
                _REJECTED.add()
                obs.log_event(
                    "analytics_row_rejected",
                    level="warning",
                    path=path,
                    line=i + 1,
                    schema=schema,
                    supported=RESULTS_SCHEMA_VERSION,
                )
                continue
            record["schema"] = schema
            record.setdefault("kind", "result")
            rows.append(record)
        return rows, damaged, rejected

    def _trace_rows(self, run_dir: str) -> List[Dict[str, Any]]:
        """Stall-attribution rows from ``utrace/*.summary.json``."""
        rows: List[Dict[str, Any]] = []
        pattern = os.path.join(run_dir, "utrace", "*.summary.json")
        for path in sorted(glob.glob(pattern)):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    summary = json.load(fh)
            except (OSError, ValueError):
                _DAMAGED.add()
                obs.log_event(
                    "analytics_summary_unreadable",
                    level="warning",
                    path=path,
                )
                continue
            label = str(summary.get("label", ""))
            row: Dict[str, Any] = {
                "kind": "trace",
                "label": label,
                "benchmark": label.split(".", 1)[0] if label else "",
                "ipc": summary.get("ipc"),
                "cycles": summary.get("cycles"),
                "committed": summary.get("committed"),
            }
            for name, frac in (summary.get("stall_fractions") or {}).items():
                row[f"stall_{name}"] = frac
            rows.append(row)
        return rows

    def _span_rows(self, run_dir: str) -> List[Dict[str, Any]]:
        """Distributed-trace span rows from ``spans.jsonl`` (written by
        the CLI's artifact pass).  One ``kind="span"`` row per span, so
        cross-run queries can answer e.g. "where did queue-wait
        regress": ``analytics query --kind span --metric duration_s
        --group-by run_seq,name --where name=queue.wait``."""
        rows: List[Dict[str, Any]] = []
        path = os.path.join(run_dir, "spans.jsonl")
        try:
            with open(path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except FileNotFoundError:
            return rows
        except OSError:
            obs.log_event(
                "analytics_spans_unreadable", level="warning", path=path
            )
            return rows
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                span = json.loads(line)
                if not isinstance(span, dict):
                    raise ValueError("span is not an object")
                start_s = float(span["start_s"])
                end_s = float(span["end_s"])
            except (ValueError, KeyError, TypeError):
                if i == len(lines) - 1:
                    continue  # torn tail
                _DAMAGED.add()
                obs.log_event(
                    "analytics_damaged_line",
                    level="warning",
                    path=path,
                    line=i + 1,
                )
                continue
            rows.append({
                "kind": "span",
                "name": str(span.get("name", "")),
                "trace_id": str(span.get("trace_id", "")),
                "span_id": str(span.get("span_id", "")),
                "parent_span_id": str(span.get("parent_span_id") or ""),
                "process": str(span.get("process", "")),
                "duration_s": max(0.0, end_s - start_s),
                "start_s": start_s,
            })
        return rows

    def _run_row(self, manifest: Mapping[str, Any]):
        """One run-level row: wall time, degradation, simcache rates."""
        if not manifest:
            return None
        counters = manifest.get("counters") or {}
        hits = float(counters.get("harness.simcache.hits", 0) or 0)
        misses = float(counters.get("harness.simcache.misses", 0) or 0)
        row: Dict[str, Any] = {
            "kind": "run",
            "command": manifest.get("command", ""),
            "wall_s": manifest.get("wall_s"),
            "n_rows": manifest.get("n_rows"),
            "degraded": bool(manifest.get("degraded")),
            "interrupted": bool(manifest.get("interrupted")),
            "cache_hits": hits,
            "cache_misses": misses,
        }
        if hits + misses:
            row["cache_hit_rate"] = hits / (hits + misses)
        return row

    # -- ingest: bench snapshots ---------------------------------------- #

    def ingest_bench(self, path: str, force: bool = False) -> IngestReport:
        """Ingest one ``BENCH_*.json`` throughput snapshot.

        Simulator rows become ``kind="bench"`` rows (cycles, committed,
        cycles/sec per benchmark); the grid walls become one
        ``kind="bench_grid"`` row.  The snapshot's filename is its run
        id, so committed history files ingest idempotently.
        """
        report = IngestReport(source=path)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError) as exc:
            report.skipped = True
            report.reason = f"unreadable bench payload: {exc}"
            return report
        run_id = os.path.basename(path)
        rows: List[Dict[str, Any]] = []
        for sim in payload.get("simulator", []):
            if not isinstance(sim, dict):
                continue
            row = dict(sim, kind="bench")
            row.setdefault("date", payload.get("date", ""))
            rows.append(row)
        grid = payload.get("figure_grid") or {}
        if grid:
            rows.append({
                "kind": "bench_grid",
                "grid": grid.get("grid", ""),
                "date": payload.get("date", ""),
                "rows": grid.get("rows"),
                "sequential_uncached_wall_s":
                    grid.get("sequential_uncached_wall_s"),
                "cold_wall_s": grid.get("cold_wall_s"),
                "warm_wall_s": grid.get("warm_wall_s"),
            })
        if not rows:
            report.skipped = True
            report.reason = f"no simulator/grid rows in {path}"
            return report
        return self.append_rows(
            rows,
            run_id=run_id,
            commit=None,
            source=path,
            meta={"date": payload.get("date", ""),
                  "bench_version": payload.get("version", "")},
            force=force,
        )

    def ingest_path(self, path: str, force: bool = False) -> IngestReport:
        """Dispatch: a directory ingests as a run, a file as a bench
        snapshot."""
        if os.path.isdir(path):
            return self.ingest_run(path, force=force)
        return self.ingest_bench(path, force=force)

    # -- stats ---------------------------------------------------------- #

    def stats(self) -> Dict[str, Any]:
        index = self._load_index()
        paths = self.segment_paths()
        return {
            "dir": self.root,
            "store_schema": index.get("store_schema"),
            "segments": len(paths),
            "ingests": len(index.get("ingests", [])),
            "rows": sum(
                rec.get("rows", 0) for rec in index.get("ingests", [])
            ),
            "bytes": sum(os.path.getsize(p) for p in paths),
            "backend": colmod.backend(),
        }
