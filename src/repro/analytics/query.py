"""Cross-run queries over the columnar run store.

A :class:`Frame` is a column-oriented view of the whole store (or any
``kind`` slice of it): each requested column concatenated across
segments, NaN/empty-filled where a segment lacks it.  Aggregations are
group-by reductions over frames --

- ``gmean``  -- the paper's geometric-mean percentage improvement
  (via :func:`repro.harness.report.geometric_mean_pct` semantics);
- ``mean`` / ``sum`` / ``count`` / ``min`` / ``max``.

Under the NumPy backend the reductions vectorize (factorized group
codes + ``bincount`` with weights); the pure-Python backend runs the
same math as one tight loop.  Failed (flagged) rows and missing (NaN)
values never contribute to an aggregate, but they are *counted*, so a
degraded fleet still summarizes honestly.

The canonical fleet questions get named helpers: :func:`gmean_trend`
(gmean ED²/ED/energy per objective per run), :func:`stall_drift`
(stall-mix per workload across runs), :func:`cache_hit_rate`,
:func:`phase_walls` (t_trace/t_analysis/t_sim trajectories), and
:func:`bench_series` (throughput snapshots).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.frontend import columns as colmod
from repro.analytics.store import RunStore

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised where numpy is absent
    _np = None

#: Aggregations supported by :func:`aggregate`.
AGGREGATIONS = ("gmean", "mean", "sum", "count", "min", "max")


@dataclass
class Frame:
    """Columns concatenated across store segments."""

    n_rows: int = 0
    numeric: Dict[str, Any] = field(default_factory=dict)
    strings: Dict[str, List[str]] = field(default_factory=dict)

    @classmethod
    def from_store(
        cls,
        store: RunStore,
        columns: Sequence[str],
        kind: Optional[str] = None,
        where: Optional[Mapping[str, Any]] = None,
    ) -> "Frame":
        """Materialize ``columns`` over the store.

        ``kind`` restricts to one row family (``result``, ``trace``,
        ``run``, ``bench``...); ``where`` applies exact-match filters
        (string columns compare decoded values, numeric columns compare
        as floats).  Both filters drop rows *before* concatenation so a
        slice of a huge store only materializes what it selects.
        """
        want = list(dict.fromkeys(columns))
        filters = dict(where or {})
        if kind is not None:
            filters["kind"] = kind
        frame = cls()
        numeric_chunks: Dict[str, List[Any]] = {c: [] for c in want}
        string_chunks: Dict[str, List[List[str]]] = {}
        for seg in store.segments():
            keep = _segment_mask(seg, filters)
            if keep is None:
                continue
            n_keep = len(keep)
            if n_keep == 0:
                continue
            for name in want:
                kind_of = seg.kinds.get(name)
                if kind_of == "str":
                    decoded = seg.strings(name) or []
                    chunk = [decoded[i] for i in keep]
                    string_chunks.setdefault(name, []).append(chunk)
                    continue
                col = seg.column(name)
                if col is None:
                    chunk = _nan_chunk(n_keep)
                else:
                    chunk = _take(col, keep)
                numeric_chunks[name].append(chunk)
            frame.n_rows += n_keep
        for name in want:
            if name in string_chunks:
                merged: List[str] = []
                for chunk in string_chunks[name]:
                    merged.extend(chunk)
                # A column that is a string in one segment must read as
                # a string everywhere; numeric chunks of the same name
                # would mean mixed plans across ingests.
                frame.strings[name] = merged
            else:
                frame.numeric[name] = _concat(numeric_chunks[name])
        return frame

    def column(self, name: str):
        if name in self.strings:
            return self.strings[name]
        return self.numeric.get(name)

    def row(self, i: int, columns: Sequence[str]) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for name in columns:
            col = self.column(name)
            out[name] = col[i] if col is not None else None
        return out


def _segment_mask(seg, filters: Mapping[str, Any]) -> Optional[List[int]]:
    """Row indices of ``seg`` passing every filter (None = no rows)."""
    n = seg.n_rows
    keep = list(range(n))
    for name, wanted in filters.items():
        kind_of = seg.kinds.get(name)
        if kind_of is None:
            return None  # the segment lacks the column entirely
        if kind_of == "str":
            decoded = seg.strings(name) or []
            wanted_s = str(wanted)
            keep = [i for i in keep if decoded[i] == wanted_s]
        else:
            col = seg.column(name)
            wanted_f = float(wanted)
            keep = [i for i in keep if float(col[i]) == wanted_f]
        if not keep:
            return None
    return keep


def _nan_chunk(n: int):
    if colmod.use_numpy():
        return _np.full(n, _np.nan)
    return colmod.float64_buffer(n, fill=math.nan)


def _take(col, indices: List[int]):
    n = len(col)
    if colmod.use_numpy() and _np is not None:
        arr = _np.asarray(col, dtype=_np.float64)
        return arr[indices] if len(indices) != n else arr
    if len(indices) == n:
        out = colmod.float64_buffer(n)
        for i in range(n):
            out[i] = col[i]
        return out
    out = colmod.float64_buffer(len(indices))
    for j, i in enumerate(indices):
        out[j] = col[i]
    return out


def _concat(chunks: List[Any]):
    if colmod.use_numpy() and _np is not None:
        if not chunks:
            return _np.empty(0)
        return _np.concatenate([_np.asarray(c, dtype=_np.float64)
                                for c in chunks])
    out = colmod.float64_buffer(0)
    for chunk in chunks:
        out.extend(chunk)
    return out


@dataclass
class QueryResult:
    """Aggregated rows plus accounting of what was excluded."""

    rows: List[Dict[str, Any]] = field(default_factory=list)
    n_input_rows: int = 0
    n_failed_skipped: int = 0
    n_missing_skipped: int = 0

    def to_dicts(self) -> List[Dict[str, Any]]:
        return list(self.rows)


def aggregate(
    store: RunStore,
    metric: str,
    group_by: Sequence[str] = ("run_seq",),
    agg: str = "gmean",
    kind: Optional[str] = "result",
    where: Optional[Mapping[str, Any]] = None,
    include_failed: bool = False,
) -> QueryResult:
    """Group-by reduction of ``metric`` over the store.

    Returns one row per group: the group columns, ``value`` (the
    aggregate), and ``n`` (values that contributed).  Rows flagged
    failed and NaN metric values are skipped-and-counted.
    """
    if agg not in AGGREGATIONS:
        raise ConfigError(
            f"unknown aggregation {agg!r} (choose from "
            f"{', '.join(AGGREGATIONS)})"
        )
    needed = list(group_by) + [metric, "failed"]
    frame = Frame.from_store(store, needed, kind=kind, where=where)
    result = QueryResult(n_input_rows=frame.n_rows)
    if frame.n_rows == 0:
        return result

    values = frame.column(metric)
    failed = frame.column("failed")
    group_cols = [frame.column(g) for g in group_by]
    if values is None or isinstance(values, list):
        raise ConfigError(f"metric {metric!r} is not a numeric column")

    # Factorize group keys -> dense codes (shared by both backends).
    key_codes: List[int] = []
    key_index: Dict[Tuple, int] = {}
    keys: List[Tuple] = []
    n = frame.n_rows
    for i in range(n):
        key = tuple(
            col[i] if isinstance(col[i], str) else float(col[i])
            for col in group_cols
        )
        code = key_index.get(key)
        if code is None:
            code = len(keys)
            key_index[key] = code
            keys.append(key)
        key_codes.append(code)

    use_log = agg == "gmean"
    sums = [0.0] * len(keys)
    counts = [0] * len(keys)
    mins = [math.inf] * len(keys)
    maxs = [-math.inf] * len(keys)
    n_failed = 0
    n_missing = 0

    if colmod.use_numpy() and _np is not None:
        vals = _np.asarray(values, dtype=_np.float64)
        codes = _np.asarray(key_codes, dtype=_np.int64)
        mask = ~_np.isnan(vals)
        if failed is not None and not include_failed:
            f = _np.asarray(failed, dtype=_np.float64) != 0
            n_failed = int(_np.count_nonzero(f & mask))
            mask &= ~f
        n_missing = int(_np.count_nonzero(_np.isnan(vals)))
        vals = vals[mask]
        codes = codes[mask]
        if use_log:
            ratios = 1.0 - vals / 100.0
            ok = ratios > 0
            n_missing += int(_np.count_nonzero(~ok))
            vals = _np.log(ratios[ok])
            codes = codes[ok]
        counts = _np.bincount(
            codes, minlength=len(keys)
        ).tolist()
        sums = _np.bincount(
            codes, weights=vals, minlength=len(keys)
        ).tolist()
        if agg in ("min", "max") and len(vals):
            for code, v in zip(codes.tolist(), vals.tolist()):
                if v < mins[code]:
                    mins[code] = v
                if v > maxs[code]:
                    maxs[code] = v
    else:
        isnan = math.isnan
        log = math.log
        for i in range(n):
            v = values[i]
            if isnan(v):
                n_missing += 1
                continue
            if failed is not None and not include_failed and failed[i]:
                n_failed += 1
                continue
            code = key_codes[i]
            if use_log:
                ratio = 1.0 - v / 100.0
                if ratio <= 0:
                    n_missing += 1
                    continue
                v = log(ratio)
            sums[code] += v
            counts[code] += 1
            if v < mins[code]:
                mins[code] = v
            if v > maxs[code]:
                maxs[code] = v

    result.n_failed_skipped = n_failed
    result.n_missing_skipped = n_missing
    for code, key in enumerate(keys):
        count = counts[code]
        row = dict(zip(group_by, key))
        if count == 0:
            value = math.nan
        elif agg == "count":
            value = float(count)
        elif agg == "sum":
            value = sums[code]
        elif agg == "mean":
            value = sums[code] / count
        elif agg == "min":
            value = mins[code]
        elif agg == "max":
            value = maxs[code]
        else:  # gmean of percent improvements
            value = 100.0 * (1.0 - math.exp(sums[code] / count))
        row["value"] = value
        row["n"] = count
        result.rows.append(row)
    result.rows.sort(
        key=lambda r: tuple(_sort_key(r[g]) for g in group_by)
    )
    return result


def _sort_key(value: Any):
    if isinstance(value, str):
        return (1, value)
    try:
        return (0, float(value))
    except (TypeError, ValueError):
        return (1, str(value))


# --------------------------------------------------------------------- #
# Named fleet queries.
# --------------------------------------------------------------------- #


def gmean_trend(
    store: RunStore,
    metric: str = "ed2_save_pct",
    group_by: Sequence[str] = ("target",),
    where: Optional[Mapping[str, Any]] = None,
) -> QueryResult:
    """GMean of ``metric`` per objective per run: the headline trend.

    Rows come back ordered by ingest sequence then group, so the
    ``value`` series of one ``target`` is its trajectory across runs.
    """
    return aggregate(
        store,
        metric,
        group_by=("run_seq", *group_by),
        agg="gmean",
        kind="result",
        where=where,
    )


def stall_drift(
    store: RunStore,
    categories: Sequence[str] = (),
    benchmark: Optional[str] = None,
) -> Dict[str, QueryResult]:
    """Mean stall-mix fraction per workload across runs.

    Returns ``{stall_category: series}`` -- one query per category so
    each drifts independently.  With no explicit ``categories``, every
    ``stall_*`` column present in the store is tracked.
    """
    if not categories:
        names = set()
        for seg in store.segments():
            names.update(
                k for k in seg.kinds if k.startswith("stall_")
            )
        categories = sorted(names)
    where = {"benchmark": benchmark} if benchmark else None
    return {
        cat: aggregate(
            store, cat,
            group_by=("run_seq", "benchmark"),
            agg="mean", kind="trace", where=where,
        )
        for cat in categories
    }


def cache_hit_rate(store: RunStore) -> QueryResult:
    """Simulation-cache hit rate per run (from manifest counters)."""
    return aggregate(
        store, "cache_hit_rate",
        group_by=("run_seq",), agg="mean", kind="run",
    )


def phase_walls(
    store: RunStore,
    phases: Sequence[str] = ("t_trace", "t_analysis", "t_sim"),
) -> Dict[str, QueryResult]:
    """Total per-phase wall seconds per run: where fleet time goes."""
    return {
        phase: aggregate(
            store, phase, group_by=("run_seq",), agg="sum",
            kind="result",
        )
        for phase in phases
    }


def bench_series(
    store: RunStore,
    metric: str = "cycles_per_sec",
) -> QueryResult:
    """Throughput-snapshot series per benchmark (``BENCH_*`` ingests)."""
    return aggregate(
        store, metric,
        group_by=("run_seq", "benchmark"),
        agg="mean", kind="bench",
    )
