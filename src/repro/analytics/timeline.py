"""Regression timeline: per-run/per-commit trajectory tracking.

``benchmarks/check_regression.py`` compares one fresh run against one
committed baseline.  This module generalizes that check to the whole
ingested history: every metric becomes a *series* over the store's
ingest sequence, each point attributed to its run id and (when the
manifest recorded one) git commit, and the baseline's tolerance becomes
a *band* drawn along the series.  The first point that leaves the band
is the first regressing run -- the answer to "which commit moved it?".

Three metric disciplines, matching the single-baseline checker:

- ``exact``  -- determinism metrics (bench ``cycles``/``committed``):
  every point must equal the baseline bit-for-bit;
- ``floor``  -- bigger is better (throughput, gmean savings): points
  may not drop below ``baseline * (1 - tolerance)`` (absolute band for
  percent metrics);
- ``ceiling`` -- smaller is better (grid walls): points may not grow
  past ``baseline * (1 + tolerance)``.

Without an explicit baseline payload, each series is checked against
its own first point (self-referential drift tracking).

Rendering is dependency-free inline SVG -- line charts with shaded
tolerance bands and red first-regression markers, plus a stacked
phase-wall chart -- packaged as an HTML fragment for the ``repro
report`` Timeline section and as a standalone page for ``repro
analytics timeline``.
"""

from __future__ import annotations

import html
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analytics.query import (
    aggregate,
    bench_series,
    gmean_trend,
    phase_walls,
)
from repro.analytics.store import RunStore

#: Palette for multi-series charts (cycled).
SERIES_COLORS = (
    "#1e88e5", "#43a047", "#fb8c00", "#8e24aa", "#00897b",
    "#e53935", "#6d4c41", "#3949ab",
)
BAND_FILL = "#c8e6c9"
BAD_COLOR = "#c62828"

#: Phase colors for the stacked wall chart.
PHASE_COLORS = {
    "t_trace": "#1e88e5",
    "t_analysis": "#43a047",
    "t_sim": "#fb8c00",
}


@dataclass
class Series:
    """One metric's trajectory over the ingest sequence."""

    name: str
    points: List[Tuple[int, float]]  # (run_seq, value), seq-ordered
    discipline: str = "floor"  # exact | floor | ceiling
    baseline: Optional[float] = None
    bound: Optional[float] = None
    first_bad_seq: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.first_bad_seq is None

    def check(self, tolerance: float) -> None:
        """Set ``bound``/``first_bad_seq`` from the discipline."""
        if not self.points:
            return
        base = self.baseline
        if base is None:
            base = self.points[0][1]
            self.baseline = base
        if math.isnan(base):
            return
        if self.discipline == "exact":
            self.bound = base
            for seq, value in self.points:
                if value != base:
                    self.first_bad_seq = seq
                    return
            return
        span = abs(base) * tolerance
        if self.discipline == "ceiling":
            self.bound = base + span
            for seq, value in self.points:
                if not math.isnan(value) and value > self.bound:
                    self.first_bad_seq = seq
                    return
        else:
            self.bound = base - span
            for seq, value in self.points:
                if not math.isnan(value) and value < self.bound:
                    self.first_bad_seq = seq
                    return


@dataclass
class TimelineReport:
    """Everything the renderers and the CI gate need."""

    series: List[Series] = field(default_factory=list)
    phase_series: Dict[str, List[Tuple[int, float]]] = field(
        default_factory=dict
    )
    run_labels: Dict[int, Dict[str, str]] = field(default_factory=dict)
    tolerance: float = 0.5
    baseline_source: str = ""

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.series)

    @property
    def first_regression(self) -> Optional[Dict[str, Any]]:
        """The earliest out-of-band point across every series."""
        bad = [
            (s.first_bad_seq, s) for s in self.series if not s.ok
        ]
        if not bad:
            return None
        seq, series = min(bad, key=lambda item: item[0])
        value = next(v for q, v in series.points if q == seq)
        label = self.run_labels.get(seq, {})
        return {
            "metric": series.name,
            "run_seq": seq,
            "run_id": label.get("run_id", ""),
            "commit": label.get("commit", ""),
            "value": value,
            "bound": series.bound,
            "baseline": series.baseline,
            "discipline": series.discipline,
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "tolerance": self.tolerance,
            "baseline_source": self.baseline_source,
            "first_regression": self.first_regression,
            "series": [
                {
                    "name": s.name,
                    "discipline": s.discipline,
                    "baseline": s.baseline,
                    "bound": s.bound,
                    "ok": s.ok,
                    "first_bad_seq": s.first_bad_seq,
                    "points": [
                        {
                            "run_seq": seq,
                            "value": value,
                            **self.run_labels.get(seq, {}),
                        }
                        for seq, value in s.points
                    ],
                }
                for s in self.series
            ],
        }


def _series_points(rows: Sequence[Mapping[str, Any]],
                   key: str) -> Dict[Any, List[Tuple[int, float]]]:
    """Split aggregate rows into {group_value: [(seq, value), ...]}."""
    out: Dict[Any, List[Tuple[int, float]]] = {}
    for row in rows:
        out.setdefault(row.get(key), []).append(
            (int(row["run_seq"]), float(row["value"]))
        )
    for points in out.values():
        points.sort()
    return out


def build_timeline(
    store: RunStore,
    baseline: Optional[Mapping[str, Any]] = None,
    tolerance: float = 0.5,
    gmean_metrics: Sequence[str] = ("ed2_save_pct",),
) -> TimelineReport:
    """Assemble and check every tracked series from the store.

    ``baseline`` is a ``repro bench`` payload (the committed
    ``bench_baseline_quick.json``); without it each series self-bases
    on its first point.
    """
    report = TimelineReport(tolerance=tolerance)
    report.run_labels = _run_labels(store)
    base_sim: Dict[str, Mapping[str, Any]] = {}
    base_grid: Mapping[str, Any] = {}
    if baseline:
        base_sim = {
            row["benchmark"]: row
            for row in baseline.get("simulator", [])
            if isinstance(row, dict) and "benchmark" in row
        }
        base_grid = baseline.get("figure_grid") or {}

    # GMean savings per objective: the reproduction's headline numbers.
    for metric in gmean_metrics:
        trend = gmean_trend(store, metric=metric)
        for target, points in sorted(
            _series_points(trend.rows, "target").items()
        ):
            series = Series(
                name=f"gmean_{metric}[{target}]",
                points=points,
                discipline="floor",
            )
            # Percent metrics band absolutely: a 100*tol-point band
            # around a near-zero gmean would otherwise be vacuous.
            series.check(tolerance)
            report.series.append(series)

    # Bench determinism (exact) + throughput (floor) per benchmark.
    for metric, discipline in (
        ("cycles", "exact"),
        ("committed", "exact"),
        ("cycles_per_sec", "floor"),
    ):
        result = bench_series(store, metric=metric)
        for bench, points in sorted(
            _series_points(result.rows, "benchmark").items()
        ):
            base_row = base_sim.get(bench) or {}
            base_value = base_row.get(metric)
            series = Series(
                name=f"bench_{metric}[{bench}]",
                points=points,
                discipline=discipline,
                baseline=(
                    float(base_value) if base_value is not None else None
                ),
            )
            series.check(tolerance)
            report.series.append(series)

    # Grid walls (ceiling) from bench_grid rows.  Walls are only
    # comparable within one grid shape: a 2-row quick grid and a
    # 27-row full grid measure different work, so each row count gets
    # its own series, and the baseline only bands the shape it
    # actually measured.
    base_rows = base_grid.get("rows")
    for metric in ("sequential_uncached_wall_s", "cold_wall_s",
                   "warm_wall_s"):
        result = aggregate(
            store, metric, group_by=("run_seq", "rows"), agg="mean",
            kind="bench_grid",
        )
        for shape, points in sorted(
            _series_points(result.rows, "rows").items()
        ):
            points = [p for p in points if not math.isnan(p[1])]
            if not points:
                continue
            base_value = None
            if base_rows is not None and shape == float(base_rows):
                base_value = base_grid.get(metric)
            series = Series(
                name=f"grid_{metric}[rows={int(shape)}]",
                points=points,
                discipline="ceiling",
                baseline=(
                    float(base_value) if base_value is not None
                    else None
                ),
            )
            # Sub-second walls are noise-dominated (same rule as the
            # single-baseline checker): track them, don't band them.
            effective = (
                series.baseline if series.baseline is not None
                else points[0][1]
            )
            if effective >= 1.0:
                series.check(tolerance)
            report.series.append(series)

    # Phase walls: rendered as a stacked chart, not band-checked (the
    # per-metric wall series above carry the gate).
    for phase, result in phase_walls(store).items():
        points = [
            (int(row["run_seq"]), float(row["value"]))
            for row in result.rows
            if not math.isnan(float(row["value"]))
        ]
        if points:
            report.phase_series[phase] = sorted(points)
    return report


def _run_labels(store: RunStore) -> Dict[int, Dict[str, str]]:
    index = store._load_index()
    return {
        int(rec["seq"]): {
            "run_id": str(rec.get("run_id", "")),
            "commit": str(rec.get("commit", ""))[:12],
        }
        for rec in index.get("ingests", [])
    }


# --------------------------------------------------------------------- #
# SVG rendering (no JS, no external assets).
# --------------------------------------------------------------------- #

_W, _H = 640, 120
_PAD_L, _PAD_R, _PAD_T, _PAD_B = 60, 10, 8, 18


def _scale(points: Sequence[Tuple[int, float]],
           extra: Sequence[float] = ()):
    xs = [p[0] for p in points]
    ys = [p[1] for p in points if not math.isnan(p[1])]
    ys = list(ys) + [y for y in extra if y is not None
                     and not math.isnan(y)]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = (min(ys), max(ys)) if ys else (0.0, 1.0)
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + (abs(y_lo) or 1.0) * 0.1
        y_lo = y_lo - (abs(y_lo) or 1.0) * 0.1
    span_x = _W - _PAD_L - _PAD_R
    span_y = _H - _PAD_T - _PAD_B

    def to_xy(seq: int, value: float) -> Tuple[float, float]:
        x = _PAD_L + span_x * (seq - x_lo) / (x_hi - x_lo)
        y = _PAD_T + span_y * (1.0 - (value - y_lo) / (y_hi - y_lo))
        return x, y

    return to_xy, (x_lo, x_hi, y_lo, y_hi)


def _fmt_val(value: float) -> str:
    if value != value:  # NaN
        return "?"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:.3g}"


def render_series_svg(series: Series,
                      labels: Mapping[int, Mapping[str, str]]) -> str:
    """One series as an inline SVG line chart with its tolerance band."""
    points = [p for p in series.points if not math.isnan(p[1])]
    if not points:
        return "<p class='muted'>(no points)</p>"
    to_xy, (_, _, y_lo, y_hi) = _scale(
        points, extra=[series.baseline, series.bound]
    )
    parts: List[str] = [
        f"<svg viewBox='0 0 {_W} {_H}' width='{_W}' height='{_H}' "
        f"role='img' aria-label='{html.escape(series.name)}'>"
    ]
    # Tolerance band: the allowed half-plane, shaded from the bound.
    if series.bound is not None and not math.isnan(series.bound):
        _, by = to_xy(points[0][0], series.bound)
        if series.discipline == "ceiling":
            top, bottom = to_xy(points[0][0], y_hi)[1], by
        else:
            top, bottom = by, to_xy(points[0][0], y_lo)[1]
        top, bottom = min(top, bottom), max(top, bottom)
        parts.append(
            f"<rect x='{_PAD_L}' y='{top:.1f}' "
            f"width='{_W - _PAD_L - _PAD_R}' "
            f"height='{max(bottom - top, 1):.1f}' fill='{BAND_FILL}' "
            f"opacity='0.45'/>"
        )
    if series.baseline is not None and not math.isnan(series.baseline):
        _, by = to_xy(points[0][0], series.baseline)
        parts.append(
            f"<line x1='{_PAD_L}' y1='{by:.1f}' x2='{_W - _PAD_R}' "
            f"y2='{by:.1f}' stroke='#888' stroke-dasharray='4 3'/>"
        )
    coords = [to_xy(seq, value) for seq, value in points]
    path = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
    parts.append(
        f"<polyline points='{path}' fill='none' "
        f"stroke='{SERIES_COLORS[0]}' stroke-width='1.5'/>"
    )
    for (seq, value), (x, y) in zip(points, coords):
        bad = series.first_bad_seq is not None and (
            (series.discipline == "exact"
             and value != series.baseline)
            or (series.discipline == "ceiling"
                and series.bound is not None and value > series.bound)
            or (series.discipline == "floor"
                and series.bound is not None and value < series.bound)
        )
        color = BAD_COLOR if bad else SERIES_COLORS[0]
        label = labels.get(seq, {})
        tip = (
            f"{series.name} @ run {seq} "
            f"({label.get('run_id', '')} {label.get('commit', '')}): "
            f"{_fmt_val(value)}"
        )
        parts.append(
            f"<circle cx='{x:.1f}' cy='{y:.1f}' r='3' fill='{color}'>"
            f"<title>{html.escape(tip)}</title></circle>"
        )
    # Y extent labels.
    parts.append(
        f"<text x='2' y='{_PAD_T + 8}' font-size='9' fill='#666'>"
        f"{_fmt_val(y_hi)}</text>"
        f"<text x='2' y='{_H - _PAD_B}' font-size='9' fill='#666'>"
        f"{_fmt_val(y_lo)}</text>"
    )
    parts.append("</svg>")
    return "".join(parts)


def render_phase_stack_svg(
    phase_series: Mapping[str, Sequence[Tuple[int, float]]],
) -> str:
    """Stacked per-run phase walls (trace/analysis/sim) as SVG bars."""
    seqs = sorted({
        seq for points in phase_series.values() for seq, _ in points
    })
    if not seqs:
        return "<p class='muted'>(no phase timings ingested)</p>"
    by_phase = {
        phase: dict(points) for phase, points in phase_series.items()
    }
    totals = {
        seq: sum(by_phase[p].get(seq, 0.0) for p in by_phase)
        for seq in seqs
    }
    peak = max(totals.values()) or 1.0
    span_x = _W - _PAD_L - _PAD_R
    span_y = _H - _PAD_T - _PAD_B
    bar_w = max(min(span_x / max(len(seqs), 1) * 0.7, 40.0), 3.0)
    parts = [
        f"<svg viewBox='0 0 {_W} {_H}' width='{_W}' height='{_H}' "
        f"role='img' aria-label='phase walls per run'>"
    ]
    for i, seq in enumerate(seqs):
        x = _PAD_L + span_x * (i + 0.5) / len(seqs) - bar_w / 2
        y = float(_H - _PAD_B)
        for phase in sorted(by_phase):
            value = by_phase[phase].get(seq, 0.0)
            if value <= 0:
                continue
            h = span_y * value / peak
            y -= h
            color = PHASE_COLORS.get(
                phase,
                SERIES_COLORS[hash(phase) % len(SERIES_COLORS)],
            )
            parts.append(
                f"<rect x='{x:.1f}' y='{y:.1f}' width='{bar_w:.1f}' "
                f"height='{h:.1f}' fill='{color}'>"
                f"<title>run {seq} {html.escape(phase[2:])}: "
                f"{value:.2f}s</title></rect>"
            )
        parts.append(
            f"<text x='{x + bar_w / 2:.1f}' y='{_H - 4}' "
            f"font-size='8' fill='#666' text-anchor='middle'>"
            f"{seq}</text>"
        )
    parts.append(
        f"<text x='2' y='{_PAD_T + 8}' font-size='9' fill='#666'>"
        f"{peak:.1f}s</text>"
    )
    parts.append("</svg>")
    return "".join(parts)


def timeline_section_html(report: TimelineReport) -> str:
    """The Timeline section fragment for ``report.html``."""
    if not report.series and not report.phase_series:
        return (
            "<p class='muted'>analytics store is empty -- ingest runs "
            "with <code>repro analytics ingest</code></p>"
        )
    parts: List[str] = []
    first = report.first_regression
    if first:
        parts.append(
            "<p><span class='bad'>first regression</span>: "
            f"<code>{html.escape(first['metric'])}</code> at run "
            f"{first['run_seq']} "
            f"({html.escape(first['run_id'])}"
            + (f", commit {html.escape(first['commit'])}"
               if first["commit"] else "")
            + f") -- {_fmt_val(first['value'])} vs bound "
            f"{_fmt_val(first['bound'] or math.nan)}</p>"
        )
    else:
        parts.append(
            "<p><span class='ok'>trajectory ok</span> -- every series "
            f"within its tolerance band (&plusmn;{report.tolerance:.0%} "
            "where banded, exact where deterministic)</p>"
        )
    for series in report.series:
        status = (
            "<span class='ok'>ok</span>" if series.ok
            else "<span class='bad'>regressed</span>"
        )
        parts.append(
            f"<div class='barrow'><span class='barlabel'>"
            f"{html.escape(series.name)} "
            f"[{series.discipline}] {status}</span>"
            + render_series_svg(series, report.run_labels)
            + "</div>"
        )
    if report.phase_series:
        parts.append(
            "<h3>Phase walls per run</h3>"
            + render_phase_stack_svg(report.phase_series)
        )
    return "".join(parts)


def render_timeline_html(report: TimelineReport,
                         title: str = "repro regression timeline") -> str:
    """A standalone no-JS timeline page (``repro analytics timeline``)."""
    css = """
body { font: 14px/1.5 -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 72em; padding: 0 1em; color: #222; }
h1 { border-bottom: 2px solid #1e88e5; padding-bottom: .3em; }
.barrow { margin: .9em 0; }
.barlabel { display: block; font-size: 12px; color: #444;
            margin-bottom: .15em; font-family: monospace; }
.muted { color: #888; }
.ok { color: #2e7d32; font-weight: 600; }
.bad { color: #c62828; font-weight: 700; }
code { background: #f5f5f5; padding: .1em .3em; border-radius: 3px; }
"""
    return (
        "<!DOCTYPE html>\n<html lang='en'><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title><style>{css}</style>"
        f"</head><body><h1>{html.escape(title)}</h1>"
        + timeline_section_html(report)
        + "</body></html>\n"
    )


def load_baseline(path: str) -> Dict[str, Any]:
    """Read a ``repro bench`` payload to band the timeline against."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
