"""Fleet-scale result analytics: columnar run store, cross-run queries,
and a regression timeline.

Every evaluation command leaves per-run artifacts (``manifest.json``,
``results.jsonl``, ``run_table.csv``); at fleet scale that becomes
millions of rows scattered across run directories with no way to ask
longitudinal questions ("how has gmean ED² drift moved over the last N
commits?", "which workload's stall mix regressed?").  This package is
the longitudinal layer:

- :mod:`repro.analytics.store` -- an append-friendly columnar run
  store: run directories (and ``BENCH_*.json`` snapshots) ingest into
  sealed typed columns built on the general
  :mod:`repro.frontend.columns` array machinery (pure-Python default,
  zero-copy NumPy via the same ``--numpy`` / ``REPRO_NUMPY``
  selection), persisted as schema-versioned binary segments written
  with atomic temp+rename appends.  Degraded runs ingest as flagged
  rows, never dropped; torn tails and damaged lines are tolerated and
  counted.
- :mod:`repro.analytics.query` -- vectorized group-by / filter / gmean
  aggregation over the store: gmean trends per objective, stall-mix
  drift per workload, simcache hit rates, phase-wall trajectories.
- :mod:`repro.analytics.timeline` -- per-run/per-commit trajectory
  tracking with tolerance bands and first-regressing-commit
  attribution, rendered as no-JS SVG figures into the ``report.html``
  Timeline section.

The CLI front door is ``repro analytics ingest|query|timeline``;
evaluation commands with ``--out`` also auto-ingest their run on
completion unless ``REPRO_ANALYTICS=0``.
"""

from repro.analytics.store import (
    IngestReport,
    RunStore,
    SEGMENT_FORMAT,
    STORE_SCHEMA_VERSION,
    default_store_dir,
    ingest_enabled,
)
from repro.analytics.query import Frame, QueryResult, aggregate, gmean_trend
from repro.analytics.timeline import (
    TimelineReport,
    build_timeline,
    timeline_section_html,
)

__all__ = [
    "Frame",
    "IngestReport",
    "QueryResult",
    "RunStore",
    "SEGMENT_FORMAT",
    "STORE_SCHEMA_VERSION",
    "TimelineReport",
    "aggregate",
    "build_timeline",
    "default_store_dir",
    "gmean_trend",
    "ingest_enabled",
    "timeline_section_html",
]
