"""The async job queue between the HTTP front end and the engine.

Submits become :class:`JobRecord` entries executed by a small pool of
worker threads.  The queue owns the server's correctness-critical
sequencing:

- **Durable-before-acknowledged**: the accept ledger record is fsynced
  (:meth:`ServerState.record_accept`) before :meth:`submit` returns, so
  every job the client ever saw acknowledged survives ``kill -9``.
- **Content-addressed dedup**: a submit whose cell key matches an
  in-flight job attaches to that flight (one simulation, N
  acknowledgements); one whose cell already completed is answered from
  the completion journal immediately.  Deduplication is safe *because*
  the engine is deterministic -- the attached client receives exactly
  the bytes it would have computed.
- **Per-job deadlines**: a job still queued when its deadline passes is
  failed with :class:`SimulationTimeoutError` instead of running late;
  the run itself is bounded by the engine's own
  :class:`~repro.harness.parallel.RetryPolicy` timeout when the engine
  runner is used.
- **Breaker feedback**: infrastructure failures
  (:class:`WorkerCrashError`, :class:`SimulationTimeoutError`) feed the
  ``pool`` breaker that admission control sheds on; cache corruption
  feeds the ``simcache`` breaker, and while that breaker is open jobs
  run with the persistent cache bypassed rather than being shed --
  correctness never depended on the cache, only latency did.
- **Progress streaming**: an :func:`obs.add_tap` subscription captures
  the simulator's ``sim_heartbeat`` events (PR 5's ETA telemetry) on
  the worker thread that emitted them and buffers the most recent ones
  per job for the status endpoint.
"""

from __future__ import annotations

import contextlib
import queue as queue_mod
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro import faults, obs
from repro.errors import (
    AdmissionRejectedError,
    CacheCorruptionError,
    SimulationTimeoutError,
    WorkerCrashError,
    is_retryable,
)
from repro.harness import simcache
from repro.harness.figures import result_row
from repro.server.admission import AdmissionController
from repro.server.breaker import CircuitBreaker
from repro.server.jobspec import job_from_spec, normalize_spec
from repro.server.state import ServerState

_SUBMITTED = obs.counters.counter("server.queue.submitted")
_DEDUP_INFLIGHT = obs.counters.counter("server.queue.dedup_inflight")
_DEDUP_COMPLETED = obs.counters.counter("server.queue.dedup_completed")
_COMPLETED = obs.counters.counter("server.queue.completed")
_FAILED = obs.counters.counter("server.queue.failed")
_CANCELLED = obs.counters.counter("server.queue.cancelled")
_EXPIRED = obs.counters.counter("server.queue.expired")
_CACHE_BYPASSED = obs.counters.counter("server.queue.cache_bypassed")
_RECOVERED = obs.counters.counter("server.queue.jobs_recovered")

_CORRUPT = obs.counters.counter("harness.simcache.corrupt_entries")

_WAIT_HIST = obs.counters.histogram("server.queue.wait_seconds")
_SERVICE_HIST = obs.counters.histogram("server.queue.service_seconds")

#: Events the tap buffers per job for the status endpoint.
_STREAMED_EVENTS = frozenset({"sim_heartbeat"})

#: Per-job progress ring size.
EVENT_BUFFER = 32

#: Error class names that indicate the *worker pool* (not the job's own
#: configuration) is unhealthy, and should trip the pool breaker.
_POOL_FAULT_ERRORS = frozenset(
    {"WorkerCrashError", "SimulationTimeoutError", "BrokenProcessPool"}
)

_STOP = object()


class JobState:
    """Lifecycle states of a submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    TERMINAL = frozenset({DONE, FAILED, CANCELLED})


@dataclass
class JobRecord:
    """Everything the server knows about one acknowledged job."""

    job_id: str
    spec: Dict[str, Any]
    cell_key: str
    state: str = JobState.QUEUED
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Monotonic clock at enqueue, for deadline math.
    _enqueued_mono: float = 0.0
    deadline_s: Optional[float] = None
    #: Set when this submit attached to an identical in-flight cell.
    dedup_of: Optional[str] = None
    #: Job IDs that attached to *this* flight.
    attached: List[str] = field(default_factory=list)
    error: Optional[Dict[str, Any]] = None
    result: Optional[Any] = None
    events: Deque[Dict[str, Any]] = field(
        default_factory=lambda: deque(maxlen=EVENT_BUFFER)
    )
    #: Monotonic per-job event sequence (``Last-Event-ID`` resume).
    event_seq: int = 0
    #: Encoded :class:`~repro.obs.tracectx.TraceContext` this job runs
    #: under (None when the submit carried no traceparent).
    trace: Optional[Dict[str, Any]] = None
    #: Server/worker span records collected at completion, shipped to
    #: the client on the result payload.
    spans: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def trace_id(self) -> Optional[str]:
        return self.trace.get("trace_id") if self.trace else None

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe status view (no pickled result payload)."""
        out: Dict[str, Any] = {
            "job_id": self.job_id,
            "state": self.state,
            "spec": self.spec,
            "cell_key": self.cell_key,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "deadline_s": self.deadline_s,
            "dedup_of": self.dedup_of,
            "events": list(self.events),
        }
        if self.trace_id:
            out["trace_id"] = self.trace_id
        if self.error is not None:
            out["error"] = self.error
        return out

    def result_payload(self) -> Optional[Dict[str, Any]]:
        if self.result is None:
            return None
        # Stub runners (tests) may return plain row dicts directly.
        row = (
            self.result
            if isinstance(self.result, dict)
            else result_row(self.result)
        )
        out = {
            "job_id": self.job_id,
            "cell_key": self.cell_key,
            "row": row,
        }
        if self.trace_id:
            out["trace_id"] = self.trace_id
        if self.spans:
            out["spans"] = list(self.spans)
        return out


Runner = Callable[[Any], Any]


class JobQueue:
    """Worker threads draining acknowledged jobs into the engine.

    ``runner`` is injectable for tests (default: ``job.run()`` on the
    worker thread, which shares the process-wide baseline memo and the
    persistent simcache exactly like a sequential harness run).
    """

    def __init__(
        self,
        state: ServerState,
        runner: Optional[Runner] = None,
        workers: int = 2,
        admission: Optional[AdmissionController] = None,
        pool_breaker: Optional[CircuitBreaker] = None,
        cache_breaker: Optional[CircuitBreaker] = None,
        default_deadline_s: Optional[float] = None,
    ) -> None:
        self.state = state
        self._runner: Runner = runner or (lambda job: job.run())
        self.workers = max(1, workers)
        self.pool_breaker = pool_breaker or CircuitBreaker("pool")
        self.cache_breaker = cache_breaker or CircuitBreaker("simcache")
        self.admission = admission or AdmissionController(
            workers=self.workers, pool_breaker=self.pool_breaker
        )
        self.default_deadline_s = default_deadline_s
        self._tasks: "queue_mod.Queue" = queue_mod.Queue()
        self._jobs: Dict[str, JobRecord] = {}
        self._inflight: Dict[str, str] = {}  # cell_key -> primary job_id
        self._lock = threading.RLock()
        self._running_by_thread: Dict[int, str] = {}
        self._next_number = 1
        self._closed = False
        self._threads: List[threading.Thread] = []
        self._idle = threading.Condition(self._lock)
        self._running_count = 0
        #: Notified on every buffered progress event and every terminal
        #: transition; SSE tails block on it instead of polling.
        self._events = threading.Condition(self._lock)

    # ------------------------------------------------------------- #
    # Lifecycle

    def start(self) -> None:
        obs.add_tap(self._tap)
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-worker-{i}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def recover(self, resume: bool) -> int:
        """Replay the state directory.  With ``resume`` every live
        acknowledged job is re-registered under its original ID --
        already-journaled cells resolve to DONE instantly, the rest
        re-enqueue (deadlines restart: the queue wait already paid
        belongs to the crashed process, not the job).  Returns how many
        actually re-enqueued.  Without ``resume`` the ledger still seeds
        the ID counter and the completion journal still serves dedup,
        but nothing re-runs unasked."""
        live = self.state.load()
        self._next_number = self.state.max_job_number() + 1
        if not resume:
            return 0
        resumed = 0
        with self._lock:
            for record in live:
                job_id = record["job_id"]
                rec = JobRecord(
                    job_id=job_id,
                    spec=record["spec"],
                    cell_key=record["key"],
                    submitted_at=float(record.get("ts", 0.0)),
                    _enqueued_mono=time.monotonic(),
                    deadline_s=self.default_deadline_s,
                    trace=record.get("trace"),
                )
                self._jobs[job_id] = rec
                self._attach_or_enqueue(rec)
                if rec.state == JobState.QUEUED:
                    resumed += 1
        _RECOVERED.add(resumed)
        return resumed

    def close(self, drain_s: float = 0.0) -> bool:
        """Stop accepting; optionally wait up to ``drain_s`` for the
        backlog to finish; stop workers; sync state.  Returns True if
        the queue drained completely (anything left is durable in the
        accept ledger and recovers under ``--resume``)."""
        with self._lock:
            self._closed = True
        drained = self.wait_idle(drain_s) if drain_s > 0 else self.idle()
        for _ in self._threads:
            self._tasks.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=5.0)
        obs.remove_tap(self._tap)
        self.state.close()
        return drained

    def idle(self) -> bool:
        with self._lock:
            return self._tasks.qsize() == 0 and self._running_count == 0

    def wait_idle(self, timeout_s: float) -> bool:
        deadline = time.monotonic() + timeout_s
        with self._idle:
            while not (
                self._tasks.qsize() == 0 and self._running_count == 0
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(min(remaining, 0.25))
        return True

    # ------------------------------------------------------------- #
    # Submission

    def submit(
        self,
        raw_spec: Any,
        deadline_s: Optional[float] = None,
        trace: Optional[Dict[str, Any]] = None,
    ) -> JobRecord:
        """Validate, admit, durably record, and enqueue one job.

        Raises :class:`AdmissionRejectedError` when shed (queue full,
        breaker open, or draining) -- *before* anything was journaled,
        so a shed submit leaves no trace to recover.
        """
        spec = normalize_spec(raw_spec)
        job = job_from_spec(spec)
        cell_key = job.cell_key()
        with self._lock:
            if self._closed:
                raise AdmissionRejectedError(
                    "server is draining",
                    reason="draining",
                    retry_after_s=5,
                    queue_depth=self._tasks.qsize(),
                )
            decision = self.admission.admit(self._tasks.qsize())
            if not decision.admitted:
                raise AdmissionRejectedError(
                    f"admission rejected: {decision.reason}",
                    reason=decision.reason,
                    retry_after_s=decision.retry_after_s,
                    queue_depth=decision.queue_depth,
                )
            # The injectable enqueue failure: fires after admission but
            # before the accept is journaled, so the client's 503 is
            # honest -- nothing was acknowledged, nothing will recover.
            faults.raise_if("queue.enqueue", key=cell_key)
            job_id = f"job-{self._next_number:06d}"
            self._next_number += 1
            self.state.record_accept(job_id, cell_key, spec, trace=trace)
            record = JobRecord(
                job_id=job_id,
                spec=spec,
                cell_key=cell_key,
                submitted_at=round(time.time(), 3),
                _enqueued_mono=time.monotonic(),
                deadline_s=(
                    deadline_s
                    if deadline_s is not None
                    else self.default_deadline_s
                ),
                trace=trace,
            )
            self._jobs[job_id] = record
            _SUBMITTED.add()
            self._attach_or_enqueue(record)
            return record

    def _attach_or_enqueue(self, record: JobRecord) -> None:
        """Caller holds the lock."""
        done = self.state.result_for(record.cell_key)
        if done is not None:
            _DEDUP_COMPLETED.add()
            self._complete(record, done)
            return
        primary_id = self._inflight.get(record.cell_key)
        if primary_id is not None and primary_id in self._jobs:
            _DEDUP_INFLIGHT.add()
            record.dedup_of = primary_id
            self._jobs[primary_id].attached.append(record.job_id)
            return
        self._inflight[record.cell_key] = record.job_id
        self._tasks.put(record.job_id)

    # ------------------------------------------------------------- #
    # Introspection

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[JobRecord]:
        with self._lock:
            return list(self._jobs.values())

    def depth(self) -> int:
        return self._tasks.qsize()

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            by_state: Dict[str, int] = {}
            for record in self._jobs.values():
                by_state[record.state] = by_state.get(record.state, 0) + 1
            return {
                "queued_depth": self._tasks.qsize(),
                "running": self._running_count,
                "jobs": by_state,
                "draining": self._closed,
                "admission": self.admission.snapshot(),
                "breakers": [
                    self.pool_breaker.snapshot(),
                    self.cache_breaker.snapshot(),
                ],
            }

    # ------------------------------------------------------------- #
    # Cancellation

    def cancel(self, job_id: str) -> Tuple[bool, str]:
        """Best-effort cancel.  Queued jobs cancel (durably -- the
        ledger records it so ``--resume`` will not resurrect them);
        running jobs cannot be interrupted mid-simulation."""
        with self._lock:
            record = self._jobs.get(job_id)
            if record is None:
                return False, "unknown job"
            if record.state in JobState.TERMINAL:
                return False, f"job already {record.state}"
            if record.state == JobState.RUNNING:
                return False, "job is running and cannot be interrupted"
            self.state.record_cancel(job_id)
            record.state = JobState.CANCELLED
            record.finished_at = round(time.time(), 3)
            _CANCELLED.add()
            self._events.notify_all()
            if record.dedup_of:
                primary = self._jobs.get(record.dedup_of)
                if primary and job_id in primary.attached:
                    primary.attached.remove(job_id)
            return True, "cancelled"

    # ------------------------------------------------------------- #
    # Worker side

    def _tap(self, event: Dict[str, Any]) -> None:
        if event.get("event") not in _STREAMED_EVENTS:
            return
        job_id = self._running_by_thread.get(threading.get_ident())
        if job_id is None:
            return
        record = self._jobs.get(job_id)
        if record is None:
            return
        filtered = {
            k: event[k]
            for k in (
                "event",
                "ts",
                "progress_pct",
                "eta_s",
                "cycles",
                "committed",
                "wall_s",
            )
            if k in event
        }
        # Sequence numbers are per job and never reused, so an SSE
        # client reconnecting with Last-Event-ID resumes exactly after
        # the last frame it saw -- even when the ring has rotated.
        with self._events:
            record.event_seq += 1
            filtered["seq"] = record.event_seq
            record.events.append(filtered)
            self._events.notify_all()

    # ------------------------------------------------------------- #
    # Event streaming (SSE)

    def events_since(
        self, job_id: str, after_seq: int = 0
    ) -> Optional[Tuple[List[Dict[str, Any]], bool]]:
        """Buffered events with ``seq > after_seq`` plus a terminal
        flag; ``None`` for an unknown job."""
        with self._lock:
            record = self._jobs.get(job_id)
            if record is None:
                return None
            fresh = [
                dict(e) for e in record.events
                if e.get("seq", 0) > after_seq
            ]
            return fresh, record.state in JobState.TERMINAL

    def wait_events(
        self, job_id: str, after_seq: int, timeout_s: float
    ) -> Optional[Tuple[List[Dict[str, Any]], bool]]:
        """Block until the job buffers an event past ``after_seq`` or
        reaches a terminal state, bounded by ``timeout_s`` (returns
        ``([], False)`` on timeout so SSE handlers can emit a keepalive
        and re-check the connection)."""
        deadline = time.monotonic() + timeout_s
        with self._events:
            while True:
                record = self._jobs.get(job_id)
                if record is None:
                    return None
                fresh = [
                    dict(e) for e in record.events
                    if e.get("seq", 0) > after_seq
                ]
                terminal = record.state in JobState.TERMINAL
                if fresh or terminal:
                    return fresh, terminal
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return [], False
                self._events.wait(min(remaining, 0.25))

    def _worker_loop(self) -> None:
        while True:
            item = self._tasks.get()
            if item is _STOP:
                return
            try:
                self._run_one(item)
            finally:
                with self._idle:
                    self._idle.notify_all()

    def _run_one(self, job_id: str) -> None:
        with self._lock:
            record = self._jobs.get(job_id)
            if record is None:
                return
            # The whole flight (primary + attached) may have cancelled
            # while queued.
            live = [record.job_id] + list(record.attached)
            live = [
                jid
                for jid in live
                if self._jobs[jid].state == JobState.QUEUED
            ]
            if not live:
                self._inflight.pop(record.cell_key, None)
                return
            if (
                record.deadline_s is not None
                and time.monotonic() - record._enqueued_mono
                > record.deadline_s
            ):
                _EXPIRED.add()
                self._fail(
                    record,
                    SimulationTimeoutError(
                        f"job deadline ({record.deadline_s}s) expired "
                        f"before execution",
                        timeout_s=record.deadline_s,
                    ),
                )
                return
            record.state = JobState.RUNNING
            record.started_at = round(time.time(), 3)
            self._running_count += 1
            self._running_by_thread[threading.get_ident()] = job_id
        started = time.monotonic()
        _WAIT_HIST.observe(max(0.0, started - record._enqueued_mono))
        jctx = obs.tracectx.decode(record.trace)
        activation = (
            obs.tracectx.activate(jctx)
            if jctx is not None
            else contextlib.nullcontext()
        )
        use_cache = self.cache_breaker.allow()
        if not use_cache:
            _CACHE_BYPASSED.add()
        corrupt_before = _CORRUPT.value
        try:
            job = job_from_spec(record.spec)
            ctx = (
                contextlib.nullcontext()
                if use_cache
                else simcache.disabled()
            )
            with ctx, activation:
                result = self._runner(job)
        except Exception as exc:  # noqa: BLE001 - classified below
            _SERVICE_HIST.observe(time.monotonic() - started)
            self._collect_trace(record, jctx)
            self._note_breakers(exc, use_cache, corrupt_before)
            with self._lock:
                self._fail(record, exc)
        else:
            elapsed = time.monotonic() - started
            _SERVICE_HIST.observe(elapsed)
            self._collect_trace(record, jctx)
            self.pool_breaker.record_success()
            if use_cache:
                if _CORRUPT.value > corrupt_before:
                    self.cache_breaker.record_failure()
                else:
                    self.cache_breaker.record_success()
            self.admission.observe_service_time(elapsed)
            self.state.record_completion(
                record.cell_key,
                result,
                benchmark=record.spec.get("benchmark"),
                job_id=record.job_id,
                trace_id=record.trace_id,
            )
            with self._lock:
                self._complete(record, result)
        finally:
            with self._lock:
                self._running_by_thread.pop(threading.get_ident(), None)
                self._running_count -= 1

    def _collect_trace(
        self, record: JobRecord, jctx: Optional[Any]
    ) -> None:
        """Synthesize the queue-level spans and gather everything this
        job's trace recorded (including spans merged back from pool
        workers) onto the record for client delivery."""
        if jctx is None:
            return
        now = time.time()
        queue_wait = jctx.child()
        obs.tracectx.record_span(
            "queue.wait",
            queue_wait,
            record.submitted_at,
            record.started_at or now,
            attrs={"job_id": record.job_id},
        )
        obs.tracectx.record_span(
            "job",
            jctx,
            record.submitted_at,
            now,
            attrs={
                "job_id": record.job_id,
                "cell_key": record.cell_key,
            },
        )
        record.spans = [
            s.to_dict() for s in obs.tracectx.take(jctx.trace_id)
        ]

    def _note_breakers(
        self, exc: Exception, use_cache: bool, corrupt_before: int
    ) -> None:
        name = type(exc).__name__
        if name in _POOL_FAULT_ERRORS:
            self.pool_breaker.record_failure()
        else:
            # A deterministic job error says nothing about pool health.
            self.pool_breaker.record_success()
        if isinstance(exc, CacheCorruptionError) or (
            use_cache and _CORRUPT.value > corrupt_before
        ):
            self.cache_breaker.record_failure()

    # ------------------------------------------------------------- #
    # Completion fan-out (caller holds the lock)

    def _deliveries(self, record: JobRecord) -> List[JobRecord]:
        out = [record]
        for jid in record.attached:
            attached = self._jobs.get(jid)
            if attached is not None:
                out.append(attached)
        self._inflight.pop(record.cell_key, None)
        return out

    def _complete(self, record: JobRecord, result: Any) -> None:
        for rec in self._deliveries(record):
            if rec.state in JobState.TERMINAL:
                continue
            rec.state = JobState.DONE
            rec.result = result
            rec.spans = list(record.spans)
            rec.finished_at = round(time.time(), 3)
            _COMPLETED.add()
        self._events.notify_all()
        obs.log_event(
            "server_job_done",
            level="info",
            job_id=record.job_id,
            cell_key=record.cell_key,
            attached=len(record.attached),
        )

    def _fail(self, record: JobRecord, exc: Exception) -> None:
        error = {
            "error": type(exc).__name__,
            "message": str(exc),
            "retryable": is_retryable(exc),
        }
        for rec in self._deliveries(record):
            if rec.state in JobState.TERMINAL:
                continue
            rec.state = JobState.FAILED
            rec.error = dict(error)
            rec.finished_at = round(time.time(), 3)
            _FAILED.add()
        self._events.notify_all()
        obs.log_event(
            "server_job_failed",
            level="warning",
            job_id=record.job_id,
            cell_key=record.cell_key,
            **error,
        )
