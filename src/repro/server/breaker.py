"""Circuit breakers: stop hammering a subsystem that keeps failing.

A breaker guards one dependency (the worker pool, the simcache) with
the classic three-state machine:

- **closed**    -- everything flows; consecutive failures are counted.
- **open**      -- after ``failure_threshold`` consecutive failures the
  breaker trips: callers are rejected immediately (the server sheds
  with 503 + ``Retry-After``) instead of queueing work into a broken
  dependency.  After ``recovery_after_s`` the breaker half-opens.
- **half-open** -- up to ``half_open_probes`` trial calls are admitted;
  one success closes the breaker, one failure re-opens it (and restarts
  the recovery clock).

Every state transition increments an ``obs`` counter
(``server.breaker.<name>.<transition>``) and emits a telemetry event,
so the chaos report can account for the breaker's whole life.  The
clock is injectable for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict

from repro import obs

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """One named breaker; thread-safe (handler + executor threads)."""

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        recovery_after_s: float = 5.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_after_s = recovery_after_s
        self.half_open_probes = max(1, half_open_probes)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0

    # ----------------------------------------------------------------- #

    def _transition(self, state: str) -> None:
        """Caller holds the lock."""
        if state == self._state:
            return
        previous, self._state = self._state, state
        obs.counters.counter(
            f"server.breaker.{self.name}.{state}"
        ).add()
        obs.log_event(
            "breaker_transition",
            level="warning" if state == OPEN else "info",
            breaker=self.name,
            from_state=previous,
            to_state=state,
            consecutive_failures=self._consecutive_failures,
        )

    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.recovery_after_s
        ):
            self._probes_in_flight = 0
            self._transition(HALF_OPEN)

    # ----------------------------------------------------------------- #

    def allow(self) -> bool:
        """May a call proceed right now?  Half-open admits at most
        ``half_open_probes`` concurrent trials."""
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN:
                if self._probes_in_flight < self.half_open_probes:
                    self._probes_in_flight += 1
                    return True
                obs.counters.counter(
                    f"server.breaker.{self.name}.rejected"
                ).add()
                return False
            obs.counters.counter(
                f"server.breaker.{self.name}.rejected"
            ).add()
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state != CLOSED:
                self._transition(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state == HALF_OPEN:
                # The probe failed: straight back to open, clock reset.
                self._opened_at = self._clock()
                self._transition(OPEN)
            elif (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._opened_at = self._clock()
                self._transition(OPEN)

    def retry_after_s(self) -> float:
        """How long a shed caller should wait before trying again."""
        with self._lock:
            if self._state != OPEN:
                return 1.0
            remaining = self.recovery_after_s - (
                self._clock() - self._opened_at
            )
            return max(1.0, remaining)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            self._maybe_half_open()
            return {
                "name": self.name,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
            }
