"""The zero-dependency HTTP/JSON front end for ``repro serve``.

Built on :class:`http.server.ThreadingHTTPServer` (one thread per
connection; the stdlib is the whole dependency footprint).  Endpoints:

========  =============================  ====================================
Method    Path                           Meaning
========  =============================  ====================================
POST      ``/v1/experiments``            Submit a spec; 202 + job snapshot.
GET       ``/v1/experiments/<id>``       Status + buffered progress events.
GET       ``/v1/experiments/<id>/result``  200 row when done; 202 while
                                         pending; error status when failed.
GET       ``/v1/experiments/<id>/events``  Server-sent events: replay the
                                         journaled heartbeats, then tail
                                         live ones (Last-Event-ID resume).
DELETE    ``/v1/experiments/<id>``       Best-effort cancel.
GET       ``/v1/jobs``                   All job snapshots (no results).
GET       ``/v1/stats``                  Queue/breaker/admission snapshot.
GET       ``/metrics``                   Prometheus text-format exposition.
GET       ``/healthz``                   Liveness: the process answers.
GET       ``/readyz``                    Readiness: accepting and healthy.
========  =============================  ====================================

**Tracing**: a ``Traceparent`` request header ties the whole job to the
client's trace -- the submit runs under that context (admission span),
the job record carries it to the runner, and the terminal result
payload ships every server/worker span back for the client's exported
waterfall.

**Error contract** (:func:`status_for_error`): every engine/server error
maps to a stable HTTP status with a JSON body carrying the error class,
message, and structured context.  ``Retry-After`` is present *iff*
:func:`repro.errors.is_retryable` says a retry can help -- the header
and the taxonomy are one decision, never two.

**Fault sites**: ``server.accept`` drops the connection before the
request line is parsed (nothing acknowledged); ``server.respond`` drops
it after the job was accepted but before the response bytes reach the
client -- the classic ambiguous-outcome window the accept ledger
resolves.

**Drain**: :meth:`ExperimentServer.shutdown` stops accepting new
connections, lets the queue finish (or journal) in-flight jobs, and
returns whether the backlog fully drained; the CLI exits 0 either way
because anything left is durable and recovers under ``--resume``.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro import faults, obs
from repro.obs import prom, tracectx
from repro.errors import (
    AdmissionRejectedError,
    ConfigError,
    JobCancelledError,
    ProgramError,
    ReproError,
    SelectionError,
    WorkloadError,
    is_retryable,
)
from repro.server.queue import JobQueue, JobState

_REQUESTS = obs.counters.counter("server.http.requests")
_DROPPED_ACCEPT = obs.counters.counter("server.http.dropped_accept")
_DROPPED_RESPOND = obs.counters.counter("server.http.dropped_respond")
_ERRORS = obs.counters.counter("server.http.error_responses")
_SSE_OPENED = obs.counters.counter("server.sse.streams_opened")
_SSE_CLOSED = obs.counters.counter("server.sse.streams_closed")

#: Numeric breaker state for the /metrics gauges.
_BREAKER_STATE_VALUE = {"closed": 0, "half_open": 1, "open": 2}

#: HELP strings for the best-known exposition families.
_METRIC_HELP = {
    "server.queue.wait_seconds": (
        "Seconds jobs spent queued before a worker picked them up"
    ),
    "server.queue.service_seconds": (
        "Seconds jobs spent executing once picked up"
    ),
    "server.queue.depth": "Jobs currently waiting in the queue",
    "server.queue.running": "Jobs currently executing",
    "server.draining": "1 while the server is draining, else 0",
    "server.admission.p95_service_s": (
        "Observed p95 job service time feeding Retry-After"
    ),
    "harness.phase.trace_seconds": (
        "Per-experiment trace interpretation wall seconds"
    ),
    "harness.phase.analysis_seconds": (
        "Per-experiment PTHSEL analysis wall seconds"
    ),
    "harness.phase.sim_seconds": (
        "Per-experiment timing-simulation wall seconds"
    ),
    "harness.phase.total_seconds": "Per-experiment total wall seconds",
}

#: Client-caused, deterministic: the request itself is wrong.
_BAD_REQUEST_ERRORS = (
    ConfigError,
    WorkloadError,
    ProgramError,
    SelectionError,
)


def status_for_error(exc: BaseException) -> Tuple[int, Optional[int]]:
    """Map an error to ``(http_status, retry_after_s-or-None)``.

    The invariant the test suite pins: ``retry_after is not None``
    exactly when :func:`is_retryable` is True.  Non-retryable errors are
    4xx (the request can never succeed as posed) except deterministic
    *internal* failures, which are 500 -- still without ``Retry-After``.
    """
    if isinstance(exc, AdmissionRejectedError):
        retry = int(getattr(exc, "retry_after_s", 1) or 1)
        status = 429 if getattr(exc, "reason", "") == "queue_full" else 503
        return status, retry
    if isinstance(exc, _BAD_REQUEST_ERRORS):
        return 400, None
    if isinstance(exc, JobCancelledError):
        return 410, None
    if not is_retryable(exc):
        # ExecutionError, EnergyAuditError, TraceExportError, ...:
        # deterministic internal failures.
        return 500, None
    # Transients: a retry draws fresh luck (fresh worker, fresh cache
    # read, fresh fault sample).
    return 503, 2


def error_body(exc: BaseException) -> Dict[str, Any]:
    body: Dict[str, Any] = {
        "error": type(exc).__name__,
        "message": str(exc),
        "retryable": is_retryable(exc),
    }
    context = getattr(exc, "context", None)
    if context:
        body["context"] = context
    return body


class _DropConnection(Exception):
    """Internal: the ``server.respond`` fault fired; hang up silently."""


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    #: Per-request I/O deadline: a client that stops sending cannot pin
    #: a handler thread forever.
    timeout = 30.0

    server: "ExperimentServer"  # set by ThreadingHTTPServer machinery

    # ------------------------------------------------------------- #
    # Plumbing

    def log_message(self, format: str, *args: Any) -> None:
        # Route access logs through obs instead of stderr.
        obs.log_event(
            "http_access", level="debug", detail=format % args
        )

    def handle_one_request(self) -> None:
        if faults.should_fault("server.accept"):
            # Drop before parsing: the client sees a reset, the server
            # saw nothing -- no acknowledgement, nothing to recover.
            _DROPPED_ACCEPT.add()
            self.close_connection = True
            try:
                self.connection.close()
            except OSError:
                pass
            return
        super().handle_one_request()

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ConfigError("request body must be a JSON object")
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise ConfigError(f"request body is not valid JSON: {exc}")

    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        retry_after_s: Optional[int] = None,
    ) -> None:
        if faults.should_fault("server.respond"):
            # The ambiguous-outcome window: the work is acknowledged
            # and durable server-side, but this client never hears it.
            _DROPPED_RESPOND.add()
            raise _DropConnection()
        body = json.dumps(payload, default=str).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after_s is not None:
            self.send_header("Retry-After", str(int(retry_after_s)))
        self.end_headers()
        self.wfile.write(body)
        if status >= 400:
            _ERRORS.add()

    def _send_text(
        self, status: int, text: str, content_type: str
    ) -> None:
        if faults.should_fault("server.respond"):
            _DROPPED_RESPOND.add()
            raise _DropConnection()
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        if status >= 400:
            _ERRORS.add()

    def _send_error_for(self, exc: BaseException) -> None:
        status, retry = status_for_error(exc)
        self._send_json(status, error_body(exc), retry_after_s=retry)

    # ------------------------------------------------------------- #
    # Routing

    def do_GET(self) -> None:
        self._route("GET")

    def do_POST(self) -> None:
        self._route("POST")

    def do_DELETE(self) -> None:
        self._route("DELETE")

    def _route(self, method: str) -> None:
        _REQUESTS.add()
        path = self.path.rstrip("/") or "/"
        try:
            handler = self._resolve(method, path)
            if handler is None:
                self._send_json(
                    404, {"error": "NotFound", "path": path}
                )
                return
            handler()
        except _DropConnection:
            self.close_connection = True
            try:
                self.connection.close()
            except OSError:
                pass
        except ReproError as exc:
            try:
                self._send_error_for(exc)
            except _DropConnection:
                self.close_connection = True
        except Exception as exc:  # noqa: BLE001 - last-resort handler
            obs.log_event(
                "http_handler_error",
                level="error",
                error=type(exc).__name__,
                detail=str(exc),
                path=path,
            )
            try:
                # Same mapping as typed errors, so the Retry-After <->
                # is_retryable invariant holds even for bugs.
                self._send_error_for(exc)
            except (OSError, _DropConnection):
                self.close_connection = True

    def _resolve(self, method: str, path: str):
        queue = self.server.queue
        if method == "GET":
            if path == "/healthz":
                return lambda: self._send_json(200, {"ok": True})
            if path == "/readyz":
                return self._readyz
            if path == "/metrics":
                return self._metrics
            if path == "/v1/stats":
                return lambda: self._send_json(200, queue.stats())
            if path == "/v1/jobs":
                return lambda: self._send_json(
                    200,
                    {
                        "jobs": [
                            rec.snapshot() for rec in queue.jobs()
                        ]
                    },
                )
            if path.startswith("/v1/experiments/"):
                rest = path[len("/v1/experiments/"):]
                if rest.endswith("/result"):
                    return lambda: self._result(rest[: -len("/result")])
                if rest.endswith("/events"):
                    return lambda: self._events(rest[: -len("/events")])
                return lambda: self._status(rest)
        if method == "POST" and path == "/v1/experiments":
            return self._submit
        if method == "DELETE" and path.startswith("/v1/experiments/"):
            return lambda: self._cancel(path[len("/v1/experiments/"):])
        return None

    # ------------------------------------------------------------- #
    # Endpoints

    def _readyz(self) -> None:
        stats = self.server.queue.stats()
        pool_state = stats["breakers"][0]["state"]
        ready = not stats["draining"] and pool_state != "open"
        self._send_json(
            200 if ready else 503,
            {
                "ready": ready,
                "draining": stats["draining"],
                "pool_breaker": pool_state,
            },
            retry_after_s=None if ready else 5,
        )

    def _metrics(self) -> None:
        """Prometheus text-format exposition: the obs registry plus
        point-in-time queue/breaker/admission gauges."""
        queue = self.server.queue
        stats = queue.stats()
        extra: Dict[str, float] = {
            "server.queue.depth": float(stats["queued_depth"]),
            "server.queue.running": float(stats["running"]),
            "server.draining": 1.0 if stats["draining"] else 0.0,
            "server.admission.p95_service_s": float(
                stats["admission"]["p95_service_s"]
            ),
            "server.workers": float(queue.workers),
        }
        for breaker in stats["breakers"]:
            extra[f"server.breaker.{breaker['name']}.state"] = float(
                _BREAKER_STATE_VALUE.get(breaker["state"], 2)
            )
        self._send_text(
            200,
            prom.render_prometheus(
                obs.counters, extra_gauges=extra, help_text=_METRIC_HELP
            ),
            prom.CONTENT_TYPE,
        )

    def _events(self, job_id: str) -> None:
        """Stream the job's heartbeat/ETA feed as server-sent events:
        replay the buffered ring (past ``Last-Event-ID``), then tail
        live events until the job reaches a terminal state.  The body
        is EOF-delimited (``Connection: close``), keepalive comments
        double as disconnect probes so an abandoned stream frees its
        handler thread."""
        queue = self.server.queue
        if queue.events_since(job_id, 0) is None:
            self._send_json(404, {"error": "NotFound", "job_id": job_id})
            return
        after_seq = 0
        raw_last = self.headers.get("Last-Event-ID")
        if raw_last:
            with contextlib.suppress(ValueError):
                after_seq = int(raw_last)
        if faults.should_fault("server.respond"):
            _DROPPED_RESPOND.add()
            raise _DropConnection()
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.close_connection = True
        self.end_headers()
        _SSE_OPENED.add()
        keepalive_s = getattr(self.server, "sse_keepalive_s", 5.0)
        try:
            while True:
                got = queue.wait_events(
                    job_id, after_seq, timeout_s=keepalive_s
                )
                if got is None:
                    break
                fresh, terminal = got
                for event in fresh:
                    seq = int(event.get("seq", 0))
                    after_seq = max(after_seq, seq)
                    frame = (
                        f"id: {seq}\n"
                        f"event: {event.get('event', 'message')}\n"
                        f"data: {json.dumps(event, default=str)}\n\n"
                    )
                    self.wfile.write(frame.encode("utf-8"))
                self.wfile.flush()
                if terminal:
                    record = queue.get(job_id)
                    payload = {
                        "job_id": job_id,
                        "state": record.state if record else "unknown",
                    }
                    self.wfile.write(
                        (
                            "event: end\n"
                            f"data: {json.dumps(payload)}\n\n"
                        ).encode("utf-8")
                    )
                    self.wfile.flush()
                    break
                if not fresh:
                    # Keepalive comment: ignored by SSE parsers, but
                    # the write raises once the client is gone.
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass
        finally:
            _SSE_CLOSED.add()

    def _submit(self) -> None:
        body = self._read_json()
        if isinstance(body, dict) and "spec" in body:
            spec = body["spec"]
            deadline_s = body.get("deadline_s")
        else:
            spec = body
            deadline_s = None
        if deadline_s is not None:
            try:
                deadline_s = float(deadline_s)
            except (TypeError, ValueError):
                raise ConfigError(
                    f"deadline_s must be a number, got {deadline_s!r}"
                )
        # A Traceparent header ties this job to the caller's trace: the
        # admission decision gets its own span and the job context rides
        # the record into the runner (and, for pool runners, across the
        # process boundary).
        remote = tracectx.parse_traceparent(
            self.headers.get(tracectx.TRACEPARENT_HEADER)
        )
        if remote is None:
            record = self.server.queue.submit(spec, deadline_s=deadline_s)
        else:
            admit_ctx = remote.child()
            job_ctx = remote.child()
            started = time.time()
            try:
                record = self.server.queue.submit(
                    spec,
                    deadline_s=deadline_s,
                    trace=tracectx.encode(job_ctx),
                )
            finally:
                tracectx.record_span(
                    "admission",
                    admit_ctx,
                    started,
                    time.time(),
                    attrs={"path": "/v1/experiments"},
                )
        self._send_json(202, record.snapshot())

    def _status(self, job_id: str) -> None:
        record = self.server.queue.get(job_id)
        if record is None:
            self._send_json(
                404, {"error": "NotFound", "job_id": job_id}
            )
            return
        self._send_json(200, record.snapshot())

    def _result(self, job_id: str) -> None:
        record = self.server.queue.get(job_id)
        if record is None:
            self._send_json(
                404, {"error": "NotFound", "job_id": job_id}
            )
            return
        if record.state == JobState.DONE:
            self._send_json(200, record.result_payload() or {})
            return
        if record.state == JobState.CANCELLED:
            self._send_error_for(
                JobCancelledError(
                    f"job {job_id} was cancelled", job_id=job_id
                )
            )
            return
        if record.state == JobState.FAILED:
            error = record.error or {}
            status = 503 if error.get("retryable") else 500
            retry = 2 if error.get("retryable") else None
            self._send_json(
                status,
                {"job_id": job_id, "state": record.state, **error},
                retry_after_s=retry,
            )
            return
        # Still queued or running: not an error, not done.
        self._send_json(202, record.snapshot())

    def _cancel(self, job_id: str) -> None:
        cancelled, detail = self.server.queue.cancel(job_id)
        record = self.server.queue.get(job_id)
        if record is None:
            self._send_json(
                404, {"error": "NotFound", "job_id": job_id}
            )
            return
        self._send_json(
            200 if cancelled else 409,
            {
                "job_id": job_id,
                "cancelled": cancelled,
                "detail": detail,
                "state": record.state,
            },
        )


class ExperimentServer(ThreadingHTTPServer):
    """The HTTP server bound to a :class:`JobQueue`.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    construction.  ``serve_forever`` blocks; :meth:`shutdown_and_drain`
    (from a signal handler or another thread) performs the graceful
    drain.
    """

    daemon_threads = True
    allow_reuse_address = True
    #: Tail-poll interval for SSE streams: bounds both the keepalive
    #: cadence and how fast an abandoned stream notices the disconnect.
    sse_keepalive_s = 5.0

    def __init__(
        self,
        queue: JobQueue,
        host: str = "127.0.0.1",
        port: int = 0,
        drain_s: float = 30.0,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.queue = queue
        self.drain_s = drain_s
        self._shutdown_lock = threading.Lock()
        self._shut_down = False

    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self, resume: bool = False) -> int:
        """Recover state, start the queue, and return the number of
        resumed jobs.  (Binding happened in ``__init__``.)"""
        recovered = self.queue.recover(resume=resume)
        self.queue.start()
        obs.log_event(
            "server_started",
            level="info",
            host=self.host,
            port=self.port,
            workers=self.queue.workers,
            resumed_jobs=recovered,
        )
        return recovered

    def shutdown_and_drain(self) -> bool:
        """Stop accepting, drain the queue, release the socket.

        Idempotent; returns True when every in-flight and queued job
        finished inside the drain budget (the rest are journaled and
        recover under ``--resume``).
        """
        with self._shutdown_lock:
            if self._shut_down:
                return True
            self._shut_down = True
        self.shutdown()  # stop serve_forever + close listener loop
        drained = self.queue.close(drain_s=self.drain_s)
        self.server_close()
        obs.log_event(
            "server_drained",
            level="info" if drained else "warning",
            drained=drained,
        )
        return drained
