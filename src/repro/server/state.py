"""Crash-safe server state: what was promised, and what was delivered.

The exactly-once contract of ``repro serve`` rests on two append-only
files in the state directory:

- ``accepted.jsonl`` -- one record per *acknowledged* submit (and per
  acknowledged cancel).  The record is written, flushed and **fsynced
  before the HTTP 202 goes out**: an acknowledgement the client saw is
  durable by construction, so a ``kill -9`` can never lose an accepted
  job.  Duplicated work is prevented on the other side: completions are
  keyed by cell key, so a job that raced a crash re-runs into the same
  deterministic, bit-identical result.
- ``journal.jsonl`` -- the engine's own completion
  :class:`~repro.harness.journal.Journal`, carrying the pickled
  :class:`ExperimentResult` per cell key.  Completions may use the
  batched-fsync mode (``REPRO_JOURNAL_FSYNC_MS``): a completion lost to
  power loss is merely recomputed, never re-acknowledged differently.

``load()`` replays both (torn-tail tolerant) and reports the accepted
jobs with no completion and no cancel -- exactly the set ``--resume``
must re-enqueue.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional

from repro import obs
from repro.errors import JournalError
from repro.harness.journal import Journal

ACCEPT_SCHEMA = 1
ACCEPTED_NAME = "accepted.jsonl"

_ACCEPTS = obs.counters.counter("server.state.accepts")
_CANCELS = obs.counters.counter("server.state.cancels")
_COMPLETIONS = obs.counters.counter("server.state.completions")
_RECOVERED = obs.counters.counter("server.state.jobs_recovered")
_DAMAGED = obs.counters.counter("server.state.damaged_lines")


class ServerState:
    """The durable half of the job queue."""

    def __init__(
        self,
        state_dir: str,
        fsync_interval_ms: Optional[float] = None,
    ) -> None:
        self.state_dir = state_dir
        os.makedirs(state_dir, exist_ok=True)
        self.accepted_path = os.path.join(state_dir, ACCEPTED_NAME)
        self.completions = Journal.for_run_dir(
            state_dir, fsync_interval_ms=fsync_interval_ms
        )
        self._accepted: Dict[str, Dict[str, Any]] = {}
        self._cancelled: set = set()
        self._fh: Optional[Any] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------- #
    # Accept ledger

    def _append(self, record: Dict[str, Any]) -> None:
        """Write + flush + fsync one ledger line.  Unlike the completion
        journal this path must NOT degrade silently: an accept that is
        not durable must not be acknowledged, so I/O failure raises and
        the submit is refused."""
        line = json.dumps(record, default=str, separators=(",", ":"))
        with self._lock:
            try:
                if self._fh is None:
                    self._fh = open(
                        self.accepted_path, "a", encoding="utf-8"
                    )
                self._fh.write(line + "\n")
                self._fh.flush()
                os.fsync(self._fh.fileno())
            except OSError as exc:
                raise JournalError(
                    f"cannot persist accept ledger {self.accepted_path}: "
                    f"{exc}",
                    path=self.accepted_path,
                    reason=str(exc),
                ) from exc

    def record_accept(
        self,
        job_id: str,
        cell_key: str,
        spec: Dict[str, Any],
        trace: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Durably remember an accepted job *before* it is acknowledged.

        ``trace`` (the encoded trace context, when the submit carried a
        traceparent) persists with the accept so a ``--resume``-ed job
        keeps its distributed-trace lineage across the crash.
        """
        record = {
            "schema": ACCEPT_SCHEMA,
            "op": "accept",
            "job_id": job_id,
            "key": cell_key,
            "spec": spec,
            "ts": round(time.time(), 3),
        }
        if trace:
            record["trace"] = trace
        self._append(record)
        self._accepted[job_id] = record
        _ACCEPTS.add()

    def record_cancel(self, job_id: str) -> None:
        """Durably resolve an accepted job as cancelled (it must not be
        re-enqueued by ``--resume``)."""
        self._append(
            {
                "schema": ACCEPT_SCHEMA,
                "op": "cancel",
                "job_id": job_id,
                "ts": round(time.time(), 3),
            }
        )
        self._cancelled.add(job_id)
        _CANCELS.add()

    # ------------------------------------------------------------- #
    # Completions

    def record_completion(self, cell_key: str, result: Any, **meta: Any) -> None:
        self.completions.record(cell_key, result, **meta)
        _COMPLETIONS.add()

    def result_for(self, cell_key: str) -> Optional[Any]:
        return self.completions.result_for(cell_key)

    # ------------------------------------------------------------- #
    # Recovery

    def load(self) -> List[Dict[str, Any]]:
        """Replay both files; return every live (non-cancelled) accept
        record, in ledger order.  Records whose cell already has a
        journaled completion resolve instantly on re-registration; the
        rest are what ``--resume`` re-enqueues.

        Torn-tail tolerant like :meth:`Journal.load`: a record cut short
        by the crash was never fsynced-then-acknowledged, so dropping it
        breaks no promise.
        """
        self._accepted = {}
        self._cancelled = set()
        try:
            with open(self.accepted_path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except FileNotFoundError:
            lines = []
        except OSError as exc:
            raise JournalError(
                f"cannot read accept ledger {self.accepted_path}: {exc}",
                path=self.accepted_path,
                reason=str(exc),
            ) from exc
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("ledger record is not an object")
                op = record["op"]
                job_id = record["job_id"]
            except (ValueError, KeyError):
                if i == len(lines) - 1:
                    continue  # torn tail: the expected crash artifact
                _DAMAGED.add()
                obs.log_event(
                    "accept_ledger_damaged_line",
                    level="warning",
                    path=self.accepted_path,
                    line=i + 1,
                )
                continue
            if record.get("schema") != ACCEPT_SCHEMA:
                continue
            if op == "accept":
                self._accepted[job_id] = record
            elif op == "cancel":
                self._cancelled.add(job_id)
        self.completions.load()
        live = [
            record
            for job_id, record in self._accepted.items()
            if job_id not in self._cancelled
        ]
        pending = [
            record
            for record in live
            if self.completions.result_for(record["key"]) is None
        ]
        _RECOVERED.add(len(pending))
        if live:
            obs.log_event(
                "server_state_recovered",
                level="info",
                accepted=len(self._accepted),
                cancelled=len(self._cancelled),
                pending=len(pending),
            )
        return live

    def accepted_records(self) -> Dict[str, Dict[str, Any]]:
        return dict(self._accepted)

    def max_job_number(self) -> int:
        """The highest ``job-N`` ordinal in the ledger, so restarted
        servers keep issuing unique, monotonically increasing IDs."""
        best = 0
        for job_id in self._accepted:
            head, _, tail = job_id.rpartition("-")
            if head == "job" and tail.isdigit():
                best = max(best, int(tail))
        return best

    # ------------------------------------------------------------- #

    def sync(self) -> None:
        self.completions.sync()

    def close(self) -> None:
        self.completions.close()
        with self._lock:
            if self._fh is not None:
                try:
                    self._fh.close()
                except OSError:
                    pass
                self._fh = None
