"""Admission control: accept what the engine can finish, shed the rest.

The server must degrade by *refusing* work (fast, explicit, retryable)
rather than by timing out accepted work (slow, ambiguous, wasteful).
:class:`AdmissionController` makes that decision per submit:

- **Bounded queue depth**: beyond ``max_queue_depth`` waiting jobs the
  submit is shed with HTTP 429.
- **Breaker-aware**: while the worker-pool breaker is open, submits are
  shed with HTTP 503 (the dependency is known-broken; queueing onto it
  would just convert the client's error into a timeout).
- **Honest Retry-After**: derived from the observed p95 service time
  and the current backlog -- ``retry_after = p95 * (depth + 1) /
  workers`` (ProjectScylla's latency-budget discipline,
  ``max_concurrent = budget / p95``, read backwards: the backlog *is*
  the budget a new request would have to wait out), clamped to
  [1s, 120s].  Before any completion has been observed the estimate
  falls back to ``default_service_s``.

Every shed increments ``server.admission.shed_*`` counters so load
tests and chaos reports can account for the 429s they see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro import obs
from repro.server.breaker import CircuitBreaker

_SHED_QUEUE_FULL = obs.counters.counter("server.admission.shed_queue_full")
_SHED_BREAKER = obs.counters.counter("server.admission.shed_breaker_open")
_ADMITTED = obs.counters.counter("server.admission.admitted")

#: Clamp bounds for the Retry-After hint.
MIN_RETRY_AFTER_S = 1.0
MAX_RETRY_AFTER_S = 120.0


@dataclass(frozen=True)
class AdmissionDecision:
    """The verdict for one submit."""

    admitted: bool
    #: ``queue_full`` | ``breaker_open`` when shed, '' when admitted.
    reason: str = ""
    #: Populated when shed: the honest wait hint (whole seconds).
    retry_after_s: int = 0
    queue_depth: int = 0


class AdmissionController:
    """Decides, per submit, whether the queue may take another job."""

    def __init__(
        self,
        max_queue_depth: int = 64,
        workers: int = 1,
        pool_breaker: Optional[CircuitBreaker] = None,
        default_service_s: float = 5.0,
        latency_window: Optional[obs.LatencyWindow] = None,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self.max_queue_depth = max_queue_depth
        self.workers = max(1, workers)
        self.pool_breaker = pool_breaker
        self.default_service_s = default_service_s
        #: Observed per-job service times (seconds); fed by the queue on
        #: every completion, read here for the Retry-After estimate.
        self.latencies = latency_window or obs.LatencyWindow(256)

    # ----------------------------------------------------------------- #

    def observe_service_time(self, seconds: float) -> None:
        self.latencies.observe(seconds)

    def p95_service_s(self) -> float:
        p95 = self.latencies.p95()
        return p95 if p95 > 0.0 else self.default_service_s

    def retry_after_s(self, queue_depth: int) -> int:
        estimate = self.p95_service_s() * (queue_depth + 1) / self.workers
        return int(round(
            min(MAX_RETRY_AFTER_S, max(MIN_RETRY_AFTER_S, estimate))
        ))

    # ----------------------------------------------------------------- #

    def admit(self, queue_depth: int) -> AdmissionDecision:
        """The verdict for a submit arriving with ``queue_depth`` jobs
        already waiting."""
        if self.pool_breaker is not None and not self.pool_breaker.allow():
            _SHED_BREAKER.add()
            retry = max(
                int(self.pool_breaker.retry_after_s()),
                self.retry_after_s(queue_depth) if queue_depth else 1,
            )
            obs.log_event(
                "admission_shed",
                level="warning",
                reason="breaker_open",
                retry_after_s=retry,
                queue_depth=queue_depth,
            )
            return AdmissionDecision(
                admitted=False,
                reason="breaker_open",
                retry_after_s=retry,
                queue_depth=queue_depth,
            )
        if queue_depth >= self.max_queue_depth:
            _SHED_QUEUE_FULL.add()
            retry = self.retry_after_s(queue_depth)
            obs.log_event(
                "admission_shed",
                level="warning",
                reason="queue_full",
                retry_after_s=retry,
                queue_depth=queue_depth,
            )
            return AdmissionDecision(
                admitted=False,
                reason="queue_full",
                retry_after_s=retry,
                queue_depth=queue_depth,
            )
        _ADMITTED.add()
        return AdmissionDecision(admitted=True, queue_depth=queue_depth)

    def snapshot(self) -> Dict[str, object]:
        return {
            "max_queue_depth": self.max_queue_depth,
            "workers": self.workers,
            "p95_service_s": round(self.p95_service_s(), 4),
            "observed_completions": len(self.latencies),
        }
