"""A persistent process-pool runner for the experiment server.

The default queue runner executes jobs on the queue's worker *threads*
-- correct, but every phase shares the server process, so a
distributed trace never crosses a process boundary and a hot loop in
one job stalls the GIL for all of them.  ``repro serve --pool N``
swaps in :class:`PoolRunner`: a long-lived
:class:`~concurrent.futures.ProcessPoolExecutor` built with the same
worker initializer as the parallel harness engine (same simcache,
fault plan, column/cycle backends, quiet flag), so a served job runs
in a genuinely separate process.

Telemetry crosses back exactly like the harness path: each job returns
its obs-counter delta and its recorded trace spans, the runner merges
both into the server process, and the queue's completion path ships
them to the client.  A broken pool is rebuilt (bounded) and surfaces
as :class:`~repro.errors.WorkerCrashError`, which the queue's pool
breaker already understands.
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Optional

from repro import errors as errors_mod
from repro import obs
from repro.errors import (
    ExecutionError,
    SimulationTimeoutError,
    StructuredError,
    WorkerCrashError,
)
from repro.harness import parallel, simcache

_POOL_JOBS = obs.counters.counter("server.pool.jobs")
_POOL_REBUILDS = obs.counters.counter("server.pool.rebuilds")


class RemoteExecutionError(StructuredError):
    """A pool-worker job failed with an error class this process cannot
    reconstruct; retryable (it is not in ``NON_RETRYABLE``) and --
    deliberately -- not a pool-health signal."""


def _rebuild_exception(failure: Any) -> BaseException:
    """Turn a :class:`~repro.harness.parallel._WorkerFailure` back into
    the closest exception, preserving the class name (breaker
    classification) and retryability (HTTP status mapping)."""
    cls = getattr(errors_mod, failure.error, None)
    if isinstance(cls, type) and issubclass(cls, BaseException):
        try:
            if issubclass(cls, StructuredError):
                return cls(failure.message, **dict(failure.context))
            return cls(failure.message)
        except Exception:  # noqa: BLE001 - constructor mismatch
            pass
    message = f"{failure.error}: {failure.message}"
    if failure.retryable:
        return RemoteExecutionError(message, remote_error=failure.error)
    return ExecutionError(message)


class PoolRunner:
    """Queue ``Runner`` executing each job in a persistent process pool.

    Thread-safe: the queue's worker threads submit concurrently; the
    executor serializes dispatch internally and rebuilds are guarded.
    """

    def __init__(
        self,
        workers: int = 2,
        job_timeout_s: Optional[float] = None,
        max_rebuilds: int = 3,
    ) -> None:
        self.workers = max(1, workers)
        self.job_timeout_s = job_timeout_s
        self.max_rebuilds = max_rebuilds
        self._rebuilds = 0
        self._pool: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------- #

    def _make_pool(self) -> ProcessPoolExecutor:
        cache = simcache.get_cache()
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=parallel._worker_init,
            initargs=(
                cache.root if cache is not None else None,
                cache is not None,
                obs.current_level(),
                (),      # fault plans stay server-side; workers run clean
                False,   # no injected start failure
                None,    # column backend: worker default
                None,    # utrace: servers do not micro-trace
                None,    # cycle backend: worker default
                obs.is_quiet(),
            ),
        )

    def start(self) -> None:
        with self._lock:
            if self._pool is None and not self._closed:
                self._pool = self._make_pool()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _get_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._closed:
                raise WorkerCrashError(
                    "pool runner is closed", cause="closed"
                )
            if self._pool is None:
                self._pool = self._make_pool()
            return self._pool

    def _replace_broken(self, broken: ProcessPoolExecutor) -> None:
        with self._lock:
            if self._pool is not broken:
                return  # another thread already rebuilt it
            self._pool = None
            if self._rebuilds >= self.max_rebuilds:
                self._closed = True
                return
            self._rebuilds += 1
            _POOL_REBUILDS.add()
        broken.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------- #

    def __call__(self, job: Any) -> Any:
        pool = self._get_pool()
        trace = obs.tracectx.encode(obs.tracectx.current())
        try:
            future = pool.submit(
                parallel._worker_experiment,
                job,
                job.cell_key(),
                1,
                trace,
            )
            result, failure, delta, spans = future.result(
                timeout=self.job_timeout_s
            )
        except BrokenProcessPool as exc:
            self._replace_broken(pool)
            raise WorkerCrashError(
                "server worker pool broke mid-job",
                cause="broken_pool",
            ) from exc
        except TimeoutError as exc:
            # A hung worker cannot be cancelled; rebuild the pool so
            # the next job gets healthy processes.
            self._replace_broken(pool)
            raise SimulationTimeoutError(
                f"served job exceeded {self.job_timeout_s}s in the pool",
                timeout_s=self.job_timeout_s,
            ) from exc
        _POOL_JOBS.add()
        obs.counters.merge(delta)
        obs.tracectx.ingest(spans)
        if failure is not None:
            raise _rebuild_exception(failure)
        return result
