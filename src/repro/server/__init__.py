"""Resilient simulation-as-a-service: the ``repro serve`` stack.

The experiment engine (parallel, fault-tolerant, resumable,
content-addressed-cached) becomes a long-running HTTP/JSON service
whose headline feature is that it *stays up and stays correct under
abuse*:

- :mod:`repro.server.app`       -- the zero-dependency HTTP front end
  (submit/status/result/cancel, progress streaming, ``/healthz`` +
  ``/readyz``, graceful drain on SIGTERM);
- :mod:`repro.server.queue`     -- the async job queue feeding the
  engine, with in-flight dedup of identical cells;
- :mod:`repro.server.admission` -- bounded queue depth and load
  shedding (429 + ``Retry-After`` derived from observed p95);
- :mod:`repro.server.breaker`   -- circuit breakers around the worker
  pool and the simcache;
- :mod:`repro.server.state`     -- crash-safe accept/complete journals
  so ``repro serve --resume`` recovers every acknowledged job exactly
  once after a ``kill -9``;
- :mod:`repro.server.client`    -- the urllib client the load harness
  and chaos drill drive;
- :mod:`repro.server.loadtest`  -- open/closed-loop load generation
  emitting the mubench-style ``run_table.csv``
  (``throughput_rps`` / ``p95_latency_ms`` / ``failure_rate``);
- :mod:`repro.server.poolrunner` -- a persistent process-pool job
  runner (``repro serve --pool N``) so served jobs execute out of
  process and distributed traces span client/server/worker;
- :mod:`repro.server.top`       -- the ``repro top`` terminal
  dashboard over ``/v1/stats`` + ``/metrics``.
"""

from repro.server.admission import AdmissionController
from repro.server.app import ExperimentServer
from repro.server.breaker import CircuitBreaker
from repro.server.client import ServerClient
from repro.server.poolrunner import PoolRunner
from repro.server.queue import JobQueue, JobState
from repro.server.state import ServerState

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "ExperimentServer",
    "JobQueue",
    "JobState",
    "PoolRunner",
    "ServerClient",
    "ServerState",
]
