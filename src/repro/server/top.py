"""``repro top``: a curses-free terminal dashboard for a running server.

Polls ``/v1/stats``, ``/v1/jobs``, and the Prometheus ``/metrics``
exposition, and renders one plain-text frame per interval: queue and
admission state, breaker health, per-phase latency quantiles (from the
histogram buckets), and the most recent jobs with live progress/ETA.
ANSI clear-screen between frames; ``--once`` prints a single frame (CI
and scripts).  Rendering is pure (:func:`render_frame`), so tests
exercise it without a terminal or a server.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.obs import prom
from repro.server.client import ServerClient

#: Phase histogram families surfaced on the dashboard, in print order.
_PHASE_FAMILIES = (
    ("queue wait", "server_queue_wait_seconds"),
    ("service", "server_queue_service_seconds"),
    ("trace", "harness_phase_trace_seconds"),
    ("analysis", "harness_phase_analysis_seconds"),
    ("sim", "harness_phase_sim_seconds"),
)

_CLEAR = "\x1b[2J\x1b[H"


def _histogram_quantiles(
    family: Dict[str, Any]
) -> Optional[Dict[str, float]]:
    """p50/p95 + count from one parsed histogram family's cumulative
    ``_bucket`` samples."""
    buckets: List[tuple] = []
    count = 0.0
    for name, labels, value in family.get("samples", ()):
        if name.endswith("_bucket"):
            le = labels.get("le", "+Inf")
            bound = float("inf") if le == "+Inf" else float(le)
            buckets.append((bound, value))
        elif name.endswith("_count"):
            count = value
    if not buckets or count <= 0:
        return None
    buckets.sort(key=lambda bv: bv[0])
    out = {"count": count}
    for label, q in (("p50", 0.50), ("p95", 0.95)):
        rank = q * count
        chosen = buckets[-1][0]
        for bound, cumulative in buckets:
            if cumulative >= rank:
                chosen = bound
                break
        if chosen == float("inf"):
            # Report the largest finite bound rather than "inf".
            finite = [b for b, _ in buckets if b != float("inf")]
            chosen = finite[-1] if finite else 0.0
        out[label] = chosen
    return out


def _fmt_eta(value: Any) -> str:
    if value is None:
        return "-"
    try:
        return f"{float(value):.0f}s"
    except (TypeError, ValueError):
        return "-"


def render_frame(
    stats: Dict[str, Any],
    jobs: List[Dict[str, Any]],
    metrics_text: str = "",
    url: str = "",
    max_jobs: int = 12,
) -> str:
    """One dashboard frame from the three endpoint payloads (pure)."""
    lines: List[str] = []
    title = "repro top"
    if url:
        title += f" -- {url}"
    lines.append(title)
    lines.append("=" * len(title))

    by_state = stats.get("jobs", {})
    lines.append(
        "queue: depth={depth} running={running} draining={draining}  "
        "jobs: {states}".format(
            depth=stats.get("queued_depth", 0),
            running=stats.get("running", 0),
            draining=stats.get("draining", False),
            states=" ".join(
                f"{state}={n}" for state, n in sorted(by_state.items())
            ) or "none",
        )
    )
    admission = stats.get("admission", {})
    lines.append(
        "admission: p95_service={p95}s completions={n} "
        "max_depth={depth} workers={workers}".format(
            p95=admission.get("p95_service_s", 0.0),
            n=admission.get("observed_completions", 0),
            depth=admission.get("max_queue_depth", 0),
            workers=admission.get("workers", 0),
        )
    )
    breakers = stats.get("breakers", [])
    if breakers:
        lines.append(
            "breakers: "
            + "  ".join(
                "{name}={state} (fails={n}/{limit})".format(
                    name=b.get("name", "?"),
                    state=b.get("state", "?"),
                    n=b.get("consecutive_failures", 0),
                    limit=b.get("failure_threshold", 0),
                )
                for b in breakers
            )
        )

    if metrics_text:
        try:
            families = prom.parse_prometheus_text(metrics_text)
        except prom.PromFormatError:
            families = {}
        phase_lines = []
        for label, family_name in _PHASE_FAMILIES:
            family = families.get(family_name)
            if not family:
                continue
            quantiles = _histogram_quantiles(family)
            if quantiles is None:
                continue
            phase_lines.append(
                f"  {label:<10} p50<={quantiles['p50']:g}s "
                f"p95<={quantiles['p95']:g}s "
                f"n={int(quantiles['count'])}"
            )
        if phase_lines:
            lines.append("phase latency (histogram upper bounds):")
            lines.extend(phase_lines)

    lines.append("")
    lines.append(
        f"{'JOB':<12} {'STATE':<10} {'PROGRESS':>8} {'ETA':>6}  TRACE"
    )
    recent = sorted(
        jobs, key=lambda j: j.get("submitted_at") or 0.0, reverse=True
    )[:max_jobs]
    for job in recent:
        events = job.get("events") or []
        last = events[-1] if events else {}
        progress = last.get("progress_pct")
        lines.append(
            "{job_id:<12} {state:<10} {progress:>8} {eta:>6}  {trace}".format(
                job_id=str(job.get("job_id", "?"))[:12],
                state=str(job.get("state", "?")),
                progress=(
                    f"{progress:.1f}%" if progress is not None else "-"
                ),
                eta=_fmt_eta(last.get("eta_s")),
                trace=str(job.get("trace_id", "") or "")[:16],
            )
        )
    if not recent:
        lines.append("(no jobs)")
    return "\n".join(lines) + "\n"


def run_top(
    url: str,
    interval_s: float = 2.0,
    iterations: Optional[int] = None,
    out=None,
) -> int:
    """Poll the server and redraw until interrupted (or for
    ``iterations`` frames).  Returns a process exit code."""
    import sys

    stream = out or sys.stdout
    client = ServerClient(url)
    drawn = 0
    try:
        while True:
            stats_resp = client.stats()
            if not stats_resp.ok:
                stream.write(
                    f"repro top: cannot reach {url} "
                    f"(status {stats_resp.status} "
                    f"{stats_resp.transport_error or ''})\n"
                )
                return 1
            jobs_resp = client.jobs()
            metrics_resp = client.metrics()
            frame = render_frame(
                stats_resp.body,
                jobs_resp.body.get("jobs", []),
                metrics_resp.text,
                url=url,
            )
            if iterations is None:
                stream.write(_CLEAR)
            stream.write(frame)
            stream.flush()
            drawn += 1
            if iterations is not None and drawn >= iterations:
                return 0
            time.sleep(interval_s)
    except KeyboardInterrupt:
        return 0
